//! # polymg-repro — reproduction of "Optimizing Geometric Multigrid Method
//! Computation using a DSL Approach" (SC'17)
//!
//! This facade crate re-exports the workspace members; see README.md for a
//! guided tour and DESIGN.md for the system inventory.
//!
//! ```
//! use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
//! use polymg_repro::mg::solver::{run_cycles, setup_poisson, DslRunner};
//! use polymg_repro::compiler::{PipelineOptions, Variant};
//!
//! let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps { pre: 4, coarse: 50, post: 4 });
//! let mut runner = DslRunner::new(
//!     &cfg,
//!     PipelineOptions::for_variant(Variant::OptPlus, 2),
//!     "polymg-opt+",
//! ).unwrap();
//! let (mut v, f, _) = setup_poisson(&cfg);
//! let result = run_cycles(&mut runner, &cfg, &mut v, &f, 5);
//! assert!(result.res_final() < result.res0 * 1e-3);
//! ```

/// The structured-grid substrate.
pub use gmg_grid as grid;

/// The polyhedral-lite engine (ISL substitute).
pub use gmg_poly as poly;

/// The PolyMG DSL (language constructs + stage graph).
pub use gmg_ir as ir;

/// The optimizing compiler (the paper's contribution).
pub use polymg as compiler;

/// The execution substrate (pool, arenas, kernels, engine).
pub use gmg_runtime as runtime;

/// Multigrid cycles, baselines and solvers.
pub use gmg_multigrid as mg;

/// The NAS MG benchmark.
pub use gmg_nas as nas;

/// Simulated distributed-memory multigrid (rank decomposition, halo
/// exchange, communication aggregation).
pub use gmg_dist as dist;
