#!/usr/bin/env bash
# CI gate for a network-restricted environment: every dependency resolves
# to an in-tree path crate (see crates/shim-*), so the whole pipeline must
# build, test, and lint cleanly with no registry access.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace

# smoke: schedule-IR dump on a small 2-D V-cycle must produce an op stream
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-2-2-2 --n 31 --dump-schedule \
  | grep -q "run_" || { echo "ci: --dump-schedule produced no ops" >&2; exit 1; }

# chaos gate (DESIGN.md §12): the differential suite (random pipelines ×
# random fault plans, plus the fixed-seed cases) must hold — bitwise after
# recovery or a typed error, never a panic — and a CLI chaos run must
# record its fault events in the profile JSON.
cargo test -q --release --test chaos_differential
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-2-2-2 --n 31 \
  --profile /tmp/chaos_profile_ci.json --iters 2 --chaos-seed 7 --chaos-rate 1 \
  >/dev/null 2>&1 || true   # unrecoverable faults may fail cycles; the profile must still be written
grep -q '"chaos"' /tmp/chaos_profile_ci.json \
  || { echo "ci: chaos profile carries no chaos block" >&2; exit 1; }
grep -o '"fired": [0-9]*' /tmp/chaos_profile_ci.json | grep -qv '"fired": 0$' \
  || { echo "ci: chaos run fired no faults" >&2; exit 1; }

# perf smoke: median ns/point for generic vs specialized kernels and
# 1-thread vs all-host-threads, written as BENCH_pr3.json. Quick settings
# here (small grid, few repeats) — the comparisons are recorded in the JSON,
# not asserted, so a loaded CI host cannot hard-fail the build. Regenerate
# the checked-in artifact with the defaults: `perf-smoke -o BENCH_pr3.json`.
cargo run --release -p gmg-bench --bin perf-smoke -- -o /tmp/bench_pr3_ci.json --n 63 --repeats 3
grep -q '"median_ns_per_point"' /tmp/bench_pr3_ci.json \
  || { echo "ci: perf-smoke wrote no benchmark rows" >&2; exit 1; }

echo "ci: all green"
