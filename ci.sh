#!/usr/bin/env bash
# CI gate for a network-restricted environment: every dependency resolves
# to an in-tree path crate (see crates/shim-*), so the whole pipeline must
# build, test, and lint cleanly with no registry access.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace

# smoke: schedule-IR dump on a small 2-D V-cycle must produce an op stream
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-2-2-2 --n 31 --dump-schedule \
  | grep -q "run_" || { echo "ci: --dump-schedule produced no ops" >&2; exit 1; }

# chaos gate (DESIGN.md §12): the differential suite (random pipelines ×
# random fault plans, plus the fixed-seed cases) must hold — bitwise after
# recovery or a typed error, never a panic — and a CLI chaos run must
# record its fault events in the profile JSON.
cargo test -q --release --test chaos_differential
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-2-2-2 --n 31 \
  --profile /tmp/chaos_profile_ci.json --iters 2 --chaos-seed 7 --chaos-rate 1 \
  >/dev/null 2>&1 || true   # unrecoverable faults may fail cycles; the profile must still be written
grep -q '"chaos"' /tmp/chaos_profile_ci.json \
  || { echo "ci: chaos profile carries no chaos block" >&2; exit 1; }
grep -o '"fired": [0-9]*' /tmp/chaos_profile_ci.json | grep -qv '"fired": 0$' \
  || { echo "ci: chaos run fired no faults" >&2; exit 1; }

# SIMD-tier gate (DESIGN.md §16): the lane-safe tier must stay bitwise
# with the interpreter (including under cache blocking) and the
# reassociating fast-math tier must hold the magnitude-scaled ULP bound.
# Then profiled runs must actually *dispatch* the new tiers — the
# kernel_tiers histogram in the profile JSON is the witness, so a silent
# fallback to the scalar tier fails CI rather than shipping as a perf
# regression.
cargo test -q -p gmg-runtime --test proptest_specialized --test proptest_fastmath_ulp
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-4-4-4 --n 63 \
  --profile /tmp/simd_profile_ci.json --iters 2 >/dev/null
grep -q '"lane_safe": [1-9]' /tmp/simd_profile_ci.json \
  || { echo "ci: default profile dispatched no lane-safe kernels" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- V-2D-4-4-4 --n 63 --fast-math \
  --profile /tmp/fastmath_profile_ci.json --iters 2 >/dev/null
grep -q '"fast_math": [1-9]' /tmp/fastmath_profile_ci.json \
  || { echo "ci: --fast-math profile dispatched no fast-math kernels" >&2; exit 1; }

# perf smoke: median ns/point across the kernel-tier trajectory (generic →
# scalar-specialized → lane-safe SIMD → fast-math SIMD) on 2-D/3-D smoother
# chains and V-cycles. Quick settings here (small grids, few repeats) — the
# tier comparisons are recorded in the JSON, not asserted, so a loaded CI
# host cannot hard-fail the build; the bitwise witness IS asserted (by the
# binary and re-checked here). Regenerate the checked-in artifact with the
# defaults: `perf-smoke -o BENCH_pr8.json`.
cargo run --release -p gmg-bench --bin perf-smoke -- \
  -o /tmp/bench_pr8_ci.json --n 63 --n3 31 --repeats 3
grep -q '"schema": "perf-smoke/v2"' /tmp/bench_pr8_ci.json \
  || { echo "ci: perf-smoke JSON carries no schema tag" >&2; exit 1; }
grep -q '"median_ns_per_point"' /tmp/bench_pr8_ci.json \
  || { echo "ci: perf-smoke wrote no benchmark rows" >&2; exit 1; }
grep -q '"bitwise_default_ok": true' /tmp/bench_pr8_ci.json \
  || { echo "ci: a default tier diverged bitwise from the generic interpreter" >&2; exit 1; }
grep -q '"tier": "fast_math"' /tmp/bench_pr8_ci.json \
  || { echo "ci: perf-smoke recorded no fast-math rows" >&2; exit 1; }

# serving gate (DESIGN.md §13): start the solve service on loopback, drive
# it with the verifying load generator (every response checked bitwise
# against an in-process engine run), drain it with the protocol's shutdown
# frame, and require the server counters in the profile JSON. loadgen exits
# non-zero on any verification failure or unexpected error frame.
rm -f /tmp/gmg_ci.port
cargo run --release -p gmg-bench --bin polymg-cli -- serve --port 0 \
  --port-file /tmp/gmg_ci.port --workers 2 --profile /tmp/server_profile_ci.json &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/gmg_ci.port ] && break; sleep 0.1; done
[ -s /tmp/gmg_ci.port ] || { echo "ci: server never wrote its port file" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- loadgen \
  --port-file /tmp/gmg_ci.port --connections 3 --requests 6 -o /tmp/bench_pr5_ci.json \
  || { echo "ci: loadgen reported verification failures" >&2; kill $SERVE_PID 2>/dev/null; exit 1; }
wait $SERVE_PID || { echo "ci: server did not drain cleanly" >&2; exit 1; }
grep -q '"verify_failures": 0' /tmp/bench_pr5_ci.json \
  || { echo "ci: loadgen report carries verification failures" >&2; exit 1; }
grep -q '"server"' /tmp/server_profile_ci.json \
  || { echo "ci: server profile carries no server counter block" >&2; exit 1; }
if grep -q '"session_hits": 0,' /tmp/server_profile_ci.json; then
  echo "ci: warm-session reuse never happened" >&2; exit 1
fi

# batch serving gate (DESIGN.md §14): one worker with a coalescing window,
# loadgen mixing SOLVE_BATCH frames with same-shape singles — every grid
# verified bitwise, and the profile must record multi-RHS passes and at
# least one coalesced merge.
rm -f /tmp/gmg_ci_batch.port
cargo run --release -p gmg-bench --bin polymg-cli -- serve --port 0 \
  --port-file /tmp/gmg_ci_batch.port --workers 1 --coalesce-window-ms 40 --max-batch 8 \
  --tenant-cap 16 --queue-cap 64 --profile /tmp/server_profile_batch_ci.json &
BATCH_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/gmg_ci_batch.port ] && break; sleep 0.1; done
[ -s /tmp/gmg_ci_batch.port ] || { echo "ci: batch server never wrote its port file" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- loadgen \
  --port-file /tmp/gmg_ci_batch.port --connections 4 --requests 6 --batch 4 \
  -o /tmp/bench_pr6_loadgen_ci.json \
  || { echo "ci: batch loadgen reported verification failures" >&2; kill $BATCH_PID 2>/dev/null; exit 1; }
wait $BATCH_PID || { echo "ci: batch server did not drain cleanly" >&2; exit 1; }
grep -q '"verify_failures": 0' /tmp/bench_pr6_loadgen_ci.json \
  || { echo "ci: batch loadgen report carries verification failures" >&2; exit 1; }
grep -q '"batches": [1-9]' /tmp/server_profile_batch_ci.json \
  || { echo "ci: batch server profile recorded no multi-RHS passes" >&2; exit 1; }
grep -q '"coalesced": [1-9]' /tmp/server_profile_batch_ci.json \
  || { echo "ci: coalescing window merged nothing" >&2; exit 1; }

# event-core gate (DESIGN.md §15): two shards behind one nonblocking
# acceptor, 500 mostly-idle connections with reconnect churn riding on
# mixed latency/batch traffic — every grid bitwise-verified, idle churn
# must actually cycle connections, and the profile must carry per-shard
# counters with warm-session reuse on at least one shard.
rm -f /tmp/gmg_ci_shard.port
cargo run --release -p gmg-bench --bin polymg-cli -- serve --port 0 \
  --port-file /tmp/gmg_ci_shard.port --shards 2 --workers 2 --qos-weight 4 \
  --profile /tmp/server_profile_shard_ci.json &
SHARD_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/gmg_ci_shard.port ] && break; sleep 0.1; done
[ -s /tmp/gmg_ci_shard.port ] || { echo "ci: sharded server never wrote its port file" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- loadgen \
  --port-file /tmp/gmg_ci_shard.port --connections 4 --requests 6 --batch 3 --idle 500 \
  -o /tmp/bench_pr7_loadgen_ci.json \
  || { echo "ci: sharded loadgen reported verification failures" >&2; kill $SHARD_PID 2>/dev/null; exit 1; }
wait $SHARD_PID || { echo "ci: sharded server did not drain cleanly" >&2; exit 1; }
grep -q '"verify_failures": 0' /tmp/bench_pr7_loadgen_ci.json \
  || { echo "ci: sharded loadgen report carries verification failures" >&2; exit 1; }
grep -q '"reconnects": [1-9]' /tmp/bench_pr7_loadgen_ci.json \
  || { echo "ci: idle churn never reconnected" >&2; exit 1; }
grep -q '"shards": \[' /tmp/server_profile_shard_ci.json \
  || { echo "ci: server profile carries no per-shard block" >&2; exit 1; }
grep -o '"shards": \[[^]]*\]' /tmp/server_profile_shard_ci.json | grep -q '"session_hits": [1-9]' \
  || { echo "ci: no shard recorded warm-session reuse" >&2; exit 1; }

# the abuse, chaos-under-load, and QoS gauntlets must hold against the
# event-driven core
cargo test -q --release -p gmg-server --test protocol_abuse --test chaos_load --test shard_qos

# sequential-vs-batched serving rows (quick settings; regenerate the
# checked-in artifact with the defaults: `perf-smoke --batch-out BENCH_pr6.json`)
cargo run --release -p gmg-bench --bin perf-smoke -- --batch-out /tmp/bench_pr6_ci.json
grep -q '"ratio_vs_sequential"' /tmp/bench_pr6_ci.json \
  || { echo "ci: perf-smoke wrote no batch rows" >&2; exit 1; }

# online-tuning gate (DESIGN.md §17): the seeded-search suites must hold
# offline, then a live server with `--tune-online` must (a) answer a
# bitwise-verified load while trials run, (b) record a winner into the
# TunedStore file without ever starting a trial while work was queued,
# and (c) publish the tuner counters in STATS and the profile JSON.
cargo test -q --release -p polymg --test search_proptest
cargo test -q --release -p gmg-server --test online_tuning
rm -f /tmp/gmg_ci_tune.port /tmp/gmg_ci_tuned.json
cargo run --release -p gmg-bench --bin polymg-cli -- serve --port 0 \
  --port-file /tmp/gmg_ci_tune.port --workers 2 --tuned /tmp/gmg_ci_tuned.json \
  --tune-online --tune-seed 42 --tune-budget 6 \
  --profile /tmp/server_profile_tune_ci.json &
TUNE_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/gmg_ci_tune.port ] && break; sleep 0.1; done
[ -s /tmp/gmg_ci_tune.port ] || { echo "ci: tuning server never wrote its port file" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- loadgen \
  --port-file /tmp/gmg_ci_tune.port --connections 2 --requests 6 --no-shutdown \
  -o /tmp/bench_pr9_loadgen_ci.json \
  || { echo "ci: tuning loadgen reported verification failures" >&2; kill $TUNE_PID 2>/dev/null; exit 1; }
TUNE_OK=""
for _ in $(seq 1 300); do
  if cargo run --release -p gmg-bench --bin polymg-cli -- stats \
       --port-file /tmp/gmg_ci_tune.port 2>/dev/null \
     | grep -q '^tuner_winners [1-9]'; then TUNE_OK=1; break; fi
  sleep 0.2
done
[ -n "$TUNE_OK" ] \
  || { echo "ci: online tuner never recorded a winner" >&2; kill $TUNE_PID 2>/dev/null; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- stats \
  --port-file /tmp/gmg_ci_tune.port --shutdown >/dev/null
wait $TUNE_PID || { echo "ci: tuning server did not drain cleanly" >&2; exit 1; }
grep -q '"verify_failures": 0' /tmp/bench_pr9_loadgen_ci.json \
  || { echo "ci: loadgen during online tuning carries verification failures" >&2; exit 1; }
grep -q '"tuner"' /tmp/server_profile_tune_ci.json \
  || { echo "ci: tuning server profile carries no tuner block" >&2; exit 1; }
grep -q '"trials": [1-9]' /tmp/server_profile_tune_ci.json \
  || { echo "ci: tuner profile recorded no trials" >&2; exit 1; }
grep -q '"discarded_faulted"' /tmp/server_profile_tune_ci.json \
  || { echo "ci: tuner profile does not account discarded trials" >&2; exit 1; }
grep -q '"trial_queue_peak": 0' /tmp/server_profile_tune_ci.json \
  || { echo "ci: a tuning trial started while requests were queued" >&2; exit 1; }
grep -q '"fingerprint"' /tmp/gmg_ci_tuned.json \
  || { echo "ci: online tuner persisted no TunedStore entry" >&2; exit 1; }

# scenario gate (DESIGN.md §18): the differential pins must hold offline
# (varcoef-with-ones bitwise against the constant twin across kernel
# tiers; mixed precision converges), then a live server must answer a
# scenario-mixed load — variable-coefficient grids over the wire, RB-GS
# and Chebyshev smoother substitutions, f32-smoothing cycles — with every
# response verified bitwise and the scenario counters nonzero in the
# loadgen report's server block.
cargo test -q --release --test scenario_differential
cargo test -q --release -p gmg-server --test scenario_serving
rm -f /tmp/gmg_ci_scen.port
cargo run --release -p gmg-bench --bin polymg-cli -- serve --port 0 \
  --port-file /tmp/gmg_ci_scen.port --workers 2 \
  --profile /tmp/server_profile_scen_ci.json &
SCEN_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/gmg_ci_scen.port ] && break; sleep 0.1; done
[ -s /tmp/gmg_ci_scen.port ] || { echo "ci: scenario server never wrote its port file" >&2; exit 1; }
cargo run --release -p gmg-bench --bin polymg-cli -- loadgen \
  --port-file /tmp/gmg_ci_scen.port --connections 2 --requests 10 \
  --scenario varcoef,rbgs,chebyshev --mixed-precision \
  -o /tmp/bench_pr10_loadgen_ci.json \
  || { echo "ci: scenario loadgen reported verification failures" >&2; kill $SCEN_PID 2>/dev/null; exit 1; }
wait $SCEN_PID || { echo "ci: scenario server did not drain cleanly" >&2; exit 1; }
grep -q '"verify_failures": 0' /tmp/bench_pr10_loadgen_ci.json \
  || { echo "ci: scenario loadgen report carries verification failures" >&2; exit 1; }
for key in scenario_varcoef scenario_rbgs scenario_chebyshev mixed_solves; do
  grep -q "\"$key\": [1-9]" /tmp/bench_pr10_loadgen_ci.json \
    || { echo "ci: server counters recorded no $key solves" >&2; exit 1; }
done

# scenario perf rows (quick settings; regenerate the checked-in artifact
# with the defaults: `perf-smoke --scenario-out BENCH_pr10.json`)
cargo run --release -p gmg-bench --bin perf-smoke -- \
  --scenario-out /tmp/bench_pr10_ci.json --n 63
grep -q '"schema": "perf-smoke-scenario/v1"' /tmp/bench_pr10_ci.json \
  || { echo "ci: scenario perf-smoke JSON carries no schema tag" >&2; exit 1; }
grep -q '"mixed_vs_constant_ratio"' /tmp/bench_pr10_ci.json \
  || { echo "ci: scenario perf-smoke recorded no mixed/constant ratio" >&2; exit 1; }

echo "ci: all green"
