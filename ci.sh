#!/usr/bin/env bash
# CI gate for a network-restricted environment: every dependency resolves
# to an in-tree path crate (see crates/shim-*), so the whole pipeline must
# build, test, and lint cleanly with no registry access.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
