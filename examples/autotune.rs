//! Auto-tuning demo (§3.2.4): sweep the paper's tile-size × grouping-limit
//! space for a 2-D V-cycle and report the best configuration.
//!
//! ```sh
//! cargo run --release --example autotune          # strided subsample
//! cargo run --release --example autotune -- full  # all 80 configurations
//! ```

use polymg_repro::compiler::autotune::{tune, TuneConfig};
use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::ir::ParamBindings;
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::cycles::build_cycle_pipeline;
use polymg_repro::mg::solver::{setup_poisson, time_cycles, DslRunner};

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let stride = if full { 1 } else { 8 };

    let cfg = MgConfig::new(2, 511, CycleType::V, SmoothSteps::s1000());
    let pipeline = build_cycle_pipeline(&cfg);
    let (v0, f, _) = setup_poisson(&cfg);

    println!(
        "tuning {} over the §3.2.4 2-D space (stride {stride}) …",
        cfg.tag()
    );
    let evaluate = |tc: &TuneConfig| -> f64 {
        let base = PipelineOptions::for_variant(Variant::OptPlus, 2);
        let opts = tc.apply(&base);
        let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
        let mut runner = DslRunner::from_plan(plan, &cfg);
        let mut v = v0.clone();
        let secs = time_cycles(&mut runner, &mut v, &f, 2).as_secs_f64();
        println!(
            "  tiles {:?} group-limit {:>2} → {secs:.4}s",
            tc.tile_sizes, tc.group_limit
        );
        secs
    };

    let (samples, best) = tune(2, stride, evaluate).expect("2-D is a supported rank");
    let b = &samples[best];
    println!(
        "\nbest of {} configurations: tiles {:?}, group limit {} ({:.4}s)",
        samples.len(),
        b.config.tile_sizes,
        b.config.group_limit,
        b.metric
    );
}
