//! Simulated distributed-memory multigrid: rank decomposition, halo
//! exchange, and the communication-aggregation trade-off (§5 of the paper:
//! "equivalent to overlapped tiling, but applied in a distributed-memory
//! parallelization setting").
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use polymg_repro::dist::DistPoisson2D;
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::solver::setup_poisson;

fn main() {
    let cfg = MgConfig::new(2, 511, CycleType::V, SmoothSteps::s444());
    let (v0, f, _) = setup_poisson(&cfg);

    // shared-memory reference
    let mut reference = v0.clone();
    let mut hand = HandOpt::new(cfg.clone());
    for _ in 0..3 {
        hand.cycle(&mut reference, &f);
    }

    println!(
        "V-2D-4-4-4 on 511², 3 cycles, 8 ranks — ghost depth sweep \
         (communication aggregation):\n"
    );
    println!(
        "  {:>5} {:>10} {:>14} {:>18} {:>12}",
        "depth", "messages", "halo doubles", "redundant points", "max dev"
    );
    for depth in [1i64, 2, 4, 8] {
        let mut dist = DistPoisson2D::new(cfg.clone(), 8, depth);
        let mut v = v0.clone();
        for _ in 0..3 {
            dist.cycle(&mut v, &f)
                .expect("fault-free distributed cycle");
        }
        let dev = v
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let s = dist.stats();
        println!(
            "  {depth:>5} {:>10} {:>14} {:>18} {:>12.2e}",
            s.messages, s.doubles, dist.redundant_points, dev
        );
        assert!(dev < 1e-12);
    }
    println!(
        "\ndeeper ghosts ⇒ fewer messages, more redundant smoothing work —\n\
         the same trade-off overlapped tiling makes on shared memory; all\n\
         depths compute the identical solution."
    );
}
