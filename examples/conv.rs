use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::handopt::HandOpt;
use gmg_multigrid::solver::{run_cycles, setup_poisson};

fn main() {
    for (coarse, levels) in [(4usize, 4u32), (50, 4), (4, 2), (50, 2), (200, 4)] {
        let mut cfg = MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 4,
                coarse,
                post: 4,
            },
        );
        cfg.levels = levels;
        let mut r = HandOpt::new(cfg.clone());
        let (mut v, f, _) = setup_poisson(&cfg);
        let res = run_cycles(&mut r, &cfg, &mut v, &f, 6);
        println!(
            "coarse={coarse} levels={levels} factor={:.4} res0={:.3e} final={:.3e}",
            res.conv_factor(),
            res.res0,
            res.res_final()
        );
    }
}
