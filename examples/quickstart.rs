//! Quickstart: solve a 2-D Poisson problem with a PolyMG-compiled V-cycle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the V-cycle pipeline in the DSL, compiles it with the full
//! `polymg-opt+` optimization set (fusion + overlapped tiling + all storage
//! optimizations + pooled allocation), and iterates it on the manufactured
//! problem `−∇²u = 2π² sin(πx) sin(πy)` until the residual has dropped ten
//! orders of magnitude.

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::solver::{residual_norm, setup_poisson, CycleRunner, DslRunner};

fn main() {
    // 511² interior points, V(4,·,4); 7 levels take the coarsest grid down
    // to 7², where 100 Jacobi sweeps solve it essentially exactly
    let mut cfg = MgConfig::new(
        2,
        511,
        CycleType::V,
        SmoothSteps {
            pre: 4,
            coarse: 100,
            post: 4,
        },
    );
    cfg.levels = 7;

    let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    let mut runner = DslRunner::new(&cfg, opts, "polymg-opt+").expect("pipeline failed to compile");

    println!(
        "compiled {}: {} stages in {} groups",
        cfg.tag(),
        runner.engine().plan().graph.num_compute_stages(),
        runner.engine().plan().groups.len()
    );

    let (mut v, f, u_exact) = setup_poisson(&cfg);
    let n = cfg.n_at(cfg.levels - 1);
    let h = cfg.h_at(cfg.levels - 1);

    let r0 = residual_norm(2, n, h, &v, &f);
    println!("initial residual: {r0:.3e}");
    for it in 1..=12 {
        runner.cycle(&mut v, &f);
        let r = residual_norm(2, n, h, &v, &f);
        println!(
            "cycle {it:>2}: residual {r:.3e}  (reduction {:.3e})",
            r / r0
        );
        if r < r0 * 1e-10 {
            break;
        }
    }

    // error against the manufactured solution (bounded by discretisation)
    let mut max_err = 0.0f64;
    for (a, b) in v.iter().zip(&u_exact) {
        max_err = max_err.max((a - b).abs());
    }
    println!(
        "max error vs exact solution: {max_err:.3e} (O(h²) = {:.3e})",
        h * h
    );
}
