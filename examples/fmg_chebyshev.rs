//! Extensions demo: Full Multigrid (FMG) driving any cycle implementation,
//! red-black Gauss–Seidel smoothing, and Chebyshev polynomial smoothing —
//! the algorithmic directions the paper's related-work section points at
//! (HPGMG integration, GSRB as two parity grids, polynomial smoothers).
//!
//! ```sh
//! cargo run --release --example fmg_chebyshev
//! ```

use polymg_repro::compiler::{compile, PipelineOptions, Variant};
use polymg_repro::ir::{ParamBindings, Pipeline, StageGraph};
use polymg_repro::mg::chebyshev::build_chebyshev_chain;
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::fmg::fmg_solve;
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::solver::DslRunner;

fn main() {
    // ---- 1. FMG: solve to discretisation accuracy in one sweep ---------
    let mut finest = MgConfig::new(
        2,
        511,
        CycleType::V,
        SmoothSteps {
            pre: 3,
            coarse: 60,
            post: 3,
        },
    );
    finest.levels = 7;

    println!("FMG (one V-cycle per level), 7² → 511², Jacobi smoothing:");
    let t0 = std::time::Instant::now();
    let r = fmg_solve(&finest, 7, 1, |c| Box::new(HandOpt::new(c.clone())));
    println!(
        "  handopt      : {:?}, residual {:.2e} → {:.2e}, max error {:.2e} (h² = {:.2e})",
        t0.elapsed(),
        r.initial_residual,
        r.final_residual,
        r.max_error,
        (1.0f64 / 512.0).powi(2)
    );

    let t0 = std::time::Instant::now();
    let r = fmg_solve(&finest, 7, 1, |c| {
        let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        Box::new(DslRunner::new(c, opts, "polymg-opt+").expect("compile"))
    });
    println!(
        "  polymg-opt+  : {:?}, max error {:.2e}",
        t0.elapsed(),
        r.max_error
    );

    // ---- 2. GSRB through the DSL's parity cases ------------------------
    let gs = finest.clone().with_gsrb();
    let t0 = std::time::Instant::now();
    let r = fmg_solve(&gs, 7, 1, |c| {
        let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        Box::new(DslRunner::new(c, opts, "polymg-opt+/gsrb").expect("compile"))
    });
    println!(
        "  opt+ / GSRB  : {:?}, max error {:.2e}",
        t0.elapsed(),
        r.max_error
    );

    // ---- 3. Chebyshev smoothing chain, compiled & fused ----------------
    let cfg = MgConfig::new(2, 255, CycleType::V, SmoothSteps::s444());
    let level = cfg.levels - 1;
    let mut p = Pipeline::new("chebyshev-demo");
    let v = p.input("V", 2, cfg.n_at(level), level);
    let f = p.input("F", 2, cfg.n_at(level), level);
    let out = build_chebyshev_chain(&mut p, &cfg, "s", Some(v), f, level, 8);
    p.mark_output(out);
    let graph = StageGraph::build(&p, &ParamBindings::new());
    let plan = compile(
        &p,
        &ParamBindings::new(),
        PipelineOptions::for_variant(Variant::OptPlus, 2),
    )
    .expect("compile");
    println!(
        "\nChebyshev(8) chain on 255²: {} stages fused into {} group(s), \
         {} scratchpads after reuse",
        graph.num_compute_stages(),
        plan.groups.len(),
        plan.total_scratch_buffers()
    );
}
