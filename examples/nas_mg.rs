//! The NAS MG benchmark: the Fortran-port reference against the
//! PolyMG-compiled pipeline (Figure 10e at example scale).
//!
//! ```sh
//! cargo run --release --example nas_mg
//! ```

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::mg::solver::CycleRunner;
use polymg_repro::nas::dsl::NasDsl;
use polymg_repro::nas::reference::NasReference;
use std::time::Instant;

fn main() {
    let n = 63i64; // interior (64³ grid points with the boundary)
    let levels = 4u32;
    let iters = 10usize;
    let e = (n + 2) as usize;

    // NPB-style ±1 charge RHS
    let mut v = vec![0.0; e * e * e];
    polymg_repro::nas::init_charges(&mut v, n, 10, 314159);

    // reference port
    let mut nref = NasReference::new(n, levels as usize);
    nref.set_v(&v);
    let r0 = nref.rnm2();
    let t0 = Instant::now();
    for _ in 0..iters {
        nref.iteration();
    }
    let t_ref = t0.elapsed().as_secs_f64();
    let r_ref = nref.rnm2();
    println!("NAS reference : {t_ref:>7.3}s   residual {r0:.3e} → {r_ref:.3e}");

    // PolyMG variants
    for variant in [Variant::Naive, Variant::OptPlus] {
        let opts = PipelineOptions::for_variant(variant, 3);
        let mut dsl = NasDsl::new(n, levels, opts, variant.label()).expect("compile failed");
        println!(
            "{:<14}: {} DAG stages, {} groups",
            variant.label(),
            dsl.engine().plan().graph.num_compute_stages(),
            dsl.engine().plan().groups.len()
        );
        let mut u = vec![0.0; e * e * e];
        let t0 = Instant::now();
        for _ in 0..iters {
            dsl.cycle(&mut u, &v);
        }
        let secs = t0.elapsed().as_secs_f64();
        // verify against the reference result
        let mut max = 0.0f64;
        for (a, b) in u.iter().zip(nref.u()) {
            max = max.max((a - b).abs());
        }
        println!(
            "{:<14}: {secs:>7.3}s   speedup vs reference {:.2}x   max dev {max:.2e}",
            variant.label(),
            t_ref / secs
        );
        assert!(max < 1e-10);
    }
}
