//! Authoring a custom pipeline directly in the DSL — the programmability
//! side of the paper (Section 2): a 9-point Mehrstellen-style smoother with
//! a restrict/interp sandwich, written with the `Stencil`, `TStencil`,
//! `Restrict` and `Interp` constructs, then compiled at each optimization
//! level with the grouping/storage report printed.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use polymg_repro::compiler::{compile, report, PipelineOptions, Variant};
use polymg_repro::ir::expr::Operand as Op;
use polymg_repro::ir::stencil::{restrict_full_weighting_2d, stencil_2d};
use polymg_repro::ir::{ParamBindings, Pipeline, StepCount};
use polymg_repro::runtime::Engine;

fn main() {
    let n = 255i64;
    let nc = 127i64;
    let h = 1.0 / (n + 1) as f64;

    let mut p = Pipeline::new("custom-mehrstellen");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);

    // 9-point Mehrstellen operator: [1 4 1; 4 -20 4; 1 4 1] / (6h²)
    let nine = vec![
        vec![1.0, 4.0, 1.0],
        vec![4.0, -20.0, 4.0],
        vec![1.0, 4.0, 1.0],
    ];
    let w = 0.8 * h * h * 6.0 / 20.0;
    let smooth = p.tstencil(
        "smooth",
        2,
        n,
        1,
        StepCount::Fixed(6),
        Some(v),
        Op::State.at(&[0, 0])
            + w * (stencil_2d(Op::State, &nine, 1.0 / (6.0 * h * h)) + Op::Func(f).at(&[0, 0])),
    );
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Op::Func(f).at(&[0, 0]) + stencil_2d(Op::Func(smooth), &nine, 1.0 / (6.0 * h * h)),
    );
    let r = p.restrict_fn(
        "restrict",
        2,
        nc,
        0,
        restrict_full_weighting_2d(Op::Func(d)),
    );
    let e = p.interp_fn("interp", 2, n, 1, r);
    let out = p.function(
        "out",
        2,
        n,
        1,
        Op::Func(smooth).at(&[0, 0]) + Op::Func(e).at(&[0, 0]),
    );
    p.mark_output(out);

    for variant in [Variant::Naive, Variant::Opt, Variant::OptPlus] {
        let opts = PipelineOptions::for_variant(variant, 2);
        let plan = compile(&p, &ParamBindings::new(), opts).expect("compile failed");
        let stats = report::stats(&plan);
        println!(
            "{:<14}: {} stages → {} groups, {} full arrays ({} KiB), \
             {} scratch buffers ({} KiB peak/worker)",
            variant.label(),
            stats.num_stages,
            stats.num_groups,
            stats.num_full_arrays,
            stats.intermediate_bytes / 1024,
            stats.total_scratch_buffers,
            stats.peak_scratch_bytes / 1024,
        );
        if variant == Variant::OptPlus {
            println!("\n{}", report::grouping_dump(&plan));
            // and actually run it once
            let e2 = (n + 2) as usize;
            let vin = vec![0.0; e2 * e2];
            let mut fin = vec![0.0; e2 * e2];
            for (i, x) in fin.iter_mut().enumerate() {
                let (y, xx) = (i / e2, i % e2);
                if y > 0 && y < e2 - 1 && xx > 0 && xx < e2 - 1 {
                    *x = 1.0;
                }
            }
            let mut outbuf = vec![0.0; e2 * e2];
            let mut engine = Engine::new(plan);
            let stats = engine
                .run(&[("V", &vin), ("F", &fin)], vec![("out", &mut outbuf)])
                .expect("execution failed");
            println!(
                "executed in {:?}; centre value {:.6}",
                stats.elapsed,
                outbuf[(e2 / 2) * e2 + e2 / 2]
            );
        }
    }
}
