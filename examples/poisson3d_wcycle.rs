//! 3-D Poisson with a W-cycle: compare every evaluated implementation on
//! the same problem — the Figure 10 workload at example scale.
//!
//! ```sh
//! cargo run --release --example poisson3d_wcycle
//! ```

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::pluto::handopt_pluto_default;
use polymg_repro::mg::solver::{run_cycles, setup_poisson, CycleRunner, DslRunner};
use std::time::Instant;

fn main() {
    let cfg = MgConfig::new(3, 63, CycleType::W, SmoothSteps::s444());
    println!("benchmark: {} on {}³ interior", cfg.tag(), cfg.n);

    let mut runners: Vec<Box<dyn CycleRunner>> = vec![
        Box::new(HandOpt::new(cfg.clone())),
        Box::new(handopt_pluto_default(cfg.clone())),
    ];
    for variant in [
        Variant::Naive,
        Variant::Opt,
        Variant::OptPlus,
        Variant::DtileOptPlus,
    ] {
        let opts = PipelineOptions::for_variant(variant, 3);
        runners.push(Box::new(
            DslRunner::new(&cfg, opts, variant.label()).expect("compile failed"),
        ));
    }

    let (v0, f, _) = setup_poisson(&cfg);
    let mut reference: Option<Vec<f64>> = None;
    for runner in &mut runners {
        let mut v = v0.clone();
        let t0 = Instant::now();
        let result = run_cycles(&mut **runner, &cfg, &mut v, &f, 4);
        let secs = t0.elapsed().as_secs_f64();
        // all implementations compute the same math — verify
        match &reference {
            None => reference = Some(v),
            Some(r) => {
                let max = v
                    .iter()
                    .zip(r)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(max < 1e-10, "{} deviates by {max}", runner.label());
            }
        }
        println!(
            "  {:<20} {secs:>7.3}s   residual {:.3e} → {:.3e} (factor {:.3}/cycle)",
            runner.label(),
            result.res0,
            result.res_final(),
            result.conv_factor()
        );
    }
    println!("all six implementations agree to < 1e-10 ✓");
}
