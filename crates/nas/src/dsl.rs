//! The PolyMG program for one NAS MG iteration (`resid` + `mg3P`), built
//! with the DSL constructs and compiled/executed through the optimizing
//! stack — the `polymg-*` side of Figure 10e.

use crate::{class_weights, A_COEFF, C_COEFF, R_COEFF};
use gmg_ir::expr::{Access, AxisAccess, Expr, Operand};
use gmg_ir::stencil::stencil_3d;
use gmg_ir::{FuncId, ParamBindings, Pipeline};
use gmg_multigrid::solver::CycleRunner;
use gmg_runtime::Engine;
use polymg::PipelineOptions;

/// `A u` as a 27-point class stencil expression.
fn apply_a(u: Operand) -> Expr {
    stencil_3d(u, &class_weights(&A_COEFF), 1.0)
}

/// `C r` (the psinv smoother stencil).
fn apply_c(r: Operand) -> Expr {
    stencil_3d(r, &class_weights(&C_COEFF), 1.0)
}

/// The NPB `rprj3` as a `Restrict` expression: 27 downsampled reads with
/// class coefficients.
fn rprj3_expr(fine: Operand) -> Expr {
    let mut acc: Option<Expr> = None;
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let cls = (dz != 0) as usize + (dy != 0) as usize + (dx != 0) as usize;
                let read = fine.read(Access(vec![
                    AxisAccess::down(dz),
                    AxisAccess::down(dy),
                    AxisAccess::down(dx),
                ]));
                let term = if R_COEFF[cls] == 1.0 {
                    read
                } else {
                    R_COEFF[cls] * read
                };
                acc = Some(match acc {
                    None => term,
                    Some(a) => a + term,
                });
            }
        }
    }
    acc.unwrap()
}

/// Build the pipeline for one NAS MG iteration on a finest interior size
/// `n = 2^k − 1` with `nlevels` levels. Inputs: `U` (approximation), `V`
/// (RHS). Output: `u_out`.
pub fn build_nas_pipeline(n: i64, nlevels: u32) -> Pipeline {
    assert!(((n + 1) as u64).is_power_of_two());
    let n_at = |l: u32| ((n + 1) >> (nlevels - 1 - l)) - 1;
    let mut p = Pipeline::new("NAS-MG");
    let fin = nlevels - 1;
    let u = p.input("U", 3, n, fin);
    let v = p.input("V", 3, n, fin);
    let z3 = vec![0i64; 3];

    // r = v − A u at the finest level
    let mut r: Vec<Option<FuncId>> = vec![None; nlevels as usize];
    let rf = p.function(
        "resid_fine",
        3,
        n,
        fin,
        Operand::Func(v).at(&z3) - apply_a(Operand::Func(u)),
    );
    r[fin as usize] = Some(rf);

    // down: restrict residuals
    for k in (0..fin).rev() {
        let fine_r = r[(k + 1) as usize].unwrap();
        let rk = p.restrict_fn(
            &format!("rprj3_L{k}"),
            3,
            n_at(k),
            k,
            rprj3_expr(Operand::Func(fine_r)),
        );
        r[k as usize] = Some(rk);
    }

    // coarsest: z = C r (zero initial guess)
    let mut z = p.function(
        "psinv_L0",
        3,
        n_at(0),
        0,
        apply_c(Operand::Func(r[0].unwrap())),
    );

    // up
    for k in 1..=fin {
        let nk = n_at(k);
        let zi = p.interp_fn(&format!("interp_L{k}"), 3, nk, k, z);
        if k < fin {
            // r' = r_k − A z_i ; z_k = z_i + C r'
            let rp = p.function(
                &format!("resid_L{k}"),
                3,
                nk,
                k,
                Operand::Func(r[k as usize].unwrap()).at(&z3) - apply_a(Operand::Func(zi)),
            );
            z = p.function(
                &format!("psinv_L{k}"),
                3,
                nk,
                k,
                Operand::Func(zi).at(&z3) + apply_c(Operand::Func(rp)),
            );
        } else {
            // finest: u' = u + Q z ; r' = v − A u' ; u'' = u' + C r'
            let u1 = p.function(
                "correct_fine",
                3,
                nk,
                k,
                Operand::Func(u).at(&z3) + Operand::Func(zi).at(&z3),
            );
            let rp = p.function(
                "resid_fine2",
                3,
                nk,
                k,
                Operand::Func(v).at(&z3) - apply_a(Operand::Func(u1)),
            );
            z = p.function(
                "u_out",
                3,
                nk,
                k,
                Operand::Func(u1).at(&z3) + apply_c(Operand::Func(rp)),
            );
        }
    }
    p.mark_output(z);
    p
}

/// DSL-compiled NAS runner implementing [`CycleRunner`] (one "cycle" = one
/// NAS iteration).
pub struct NasDsl {
    engine: Engine,
    out: Vec<f64>,
    label: String,
}

impl NasDsl {
    /// Compile for finest size `n`, `nlevels` levels, under `opts`.
    pub fn new(
        n: i64,
        nlevels: u32,
        opts: PipelineOptions,
        label: &str,
    ) -> Result<Self, Vec<String>> {
        let p = build_nas_pipeline(n, nlevels);
        let plan = polymg::compile_cached(&p, &ParamBindings::new(), opts)?;
        let len = ((n + 2) as usize).pow(3);
        Ok(NasDsl {
            engine: Engine::new(plan),
            out: vec![0.0; len],
            label: label.to_string(),
        })
    }

    /// Plan access (stage counts for Table 3).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl CycleRunner for NasDsl {
    fn cycle(&mut self, u: &mut [f64], v: &[f64]) {
        self.engine
            .run(&[("U", u), ("V", v)], vec![("u_out", &mut self.out)])
            .expect("NAS cycle execution failed");
        u.copy_from_slice(&self.out);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init_charges;
    use crate::reference::NasReference;
    use gmg_ir::StageGraph;
    use polymg::Variant;

    #[test]
    fn pipeline_builds_and_validates() {
        let p = build_nas_pipeline(31, 4);
        let g = StageGraph::build(&p, &ParamBindings::new());
        let errs = gmg_ir::validate::validate(&p, &g);
        assert!(errs.is_empty(), "{errs:?}");
        // resid_fine + 3 rprj3 + psinv_L0 + 2×(interp,resid,psinv) +
        // (interp, correct, resid, u_out) = 15
        assert_eq!(g.num_compute_stages(), 15);
    }

    #[test]
    fn dsl_matches_reference() {
        let n = 15i64;
        let e = (n + 2) as usize;
        let mut v = vec![0.0; e * e * e];
        init_charges(&mut v, n, 8, 11);

        let mut nref = NasReference::new(n, 3);
        nref.set_v(&v);

        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 3);
        opts.tile_sizes = vec![4, 4, 8];
        let mut dsl = NasDsl::new(n, 3, opts, "polymg-opt+").unwrap();
        let mut u = vec![0.0; e * e * e];

        for it in 0..3 {
            nref.iteration();
            dsl.cycle(&mut u, &v);
            let mut max = 0.0f64;
            for (a, b) in u.iter().zip(nref.u()) {
                max = max.max((a - b).abs());
            }
            assert!(max < 1e-11, "iter {it}: deviation {max}");
        }
    }

    #[test]
    fn dsl_converges_across_variants() {
        let n = 15i64;
        let e = (n + 2) as usize;
        let mut v = vec![0.0; e * e * e];
        init_charges(&mut v, n, 8, 13);
        for variant in [Variant::Naive, Variant::Opt, Variant::OptPlus] {
            let mut opts = PipelineOptions::for_variant(variant, 3);
            opts.tile_sizes = vec![4, 4, 8];
            let mut dsl = NasDsl::new(n, 3, opts, variant.label()).unwrap();
            let mut u = vec![0.0; e * e * e];
            for _ in 0..4 {
                dsl.cycle(&mut u, &v);
            }
            // residual via the reference operator
            let mut nref = NasReference::new(n, 3);
            nref.set_v(&v);
            nref.set_u(&u);
            let r = nref.rnm2();
            // initial residual = |v| on 2·8 unit charges
            let r0 = (16.0 / (n as f64).powi(3)).sqrt();
            assert!(r < r0 * 0.05, "{}: {r} vs {r0}", variant.label());
        }
    }
}
