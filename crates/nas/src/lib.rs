//! # gmg-nas — the NAS Multigrid benchmark (MG from NPB 3.2)
//!
//! The paper's fifth benchmark: NAS MG solves `∇²u = v` with a V-cycle that
//! has **no pre-smoothing** (§4.1), using the NPB 27-point
//! coefficient-class operators:
//!
//! * `resid` — `r = v − A u` with `a = [−8/3, 0, 1/6, 1/12]` (coefficient by
//!   neighbour class: centre / face / edge / corner),
//! * `psinv` — the smoother `u = u + C r`, `c = [−3/8, 1/32, −1/64, 0]`,
//! * `rprj3` — restriction with `[1/2, 1/4, 1/8, 1/16]`,
//! * `interp` — trilinear prolongation.
//!
//! Per the paper we use the **non-periodic** (Dirichlet) boundary setting.
//! The NPB reference initialises the RHS with ±1 charges at pseudo-random
//! grid points; we reproduce that deterministically.
//!
//! Two implementations are provided: [`reference::NasReference`], a direct
//! Rust port of the Fortran loop nests (the paper's "reference version",
//! with its hand-optimized flavour of straightforward parallel loops), and
//! [`dsl::build_nas_pipeline`], the PolyMG program compiled and run through
//! the optimizing stack.

// Index-based loops here mirror the math (multi-slice stencil updates); clippy prefers iterators but the indices are the clearer notation.
#![allow(clippy::needless_range_loop)]

pub mod dsl;
pub mod reference;

/// Coefficient classes of the NPB operators, indexed by the number of
/// non-zero offset components (0 = centre, 1 = face, 2 = edge, 3 = corner).
pub const A_COEFF: [f64; 4] = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];

/// Smoother coefficients (classes A and up in NPB).
pub const C_COEFF: [f64; 4] = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// Restriction coefficients.
pub const R_COEFF: [f64; 4] = [0.5, 0.25, 0.125, 0.0625];

/// Expand a coefficient class array into a dense 3×3×3 weight volume.
pub fn class_weights(coef: &[f64; 4]) -> Vec<Vec<Vec<f64>>> {
    let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
    for (dz, plane) in w.iter_mut().enumerate() {
        for (dy, row) in plane.iter_mut().enumerate() {
            for (dx, v) in row.iter_mut().enumerate() {
                let cls = usize::from(dz != 1) + usize::from(dy != 1) + usize::from(dx != 1);
                *v = coef[cls];
            }
        }
    }
    w
}

/// NPB-style ±1 charge initialisation: `n_charges` points at +1 and
/// `n_charges` at −1, deterministic per seed. Buffer is dense `(n+2)³`.
pub fn init_charges(v: &mut [f64], n: i64, n_charges: usize, seed: u64) {
    let e = (n + 2) as usize;
    v.fill(0.0);
    let mut placed = 0usize;
    let mut k = 0u64;
    while placed < 2 * n_charges {
        let h = gmg_grid::init::splitmix64(seed.wrapping_add(k));
        k += 1;
        let z = 1 + (h % n as u64) as usize;
        let y = 1 + ((h >> 21) % n as u64) as usize;
        let x = 1 + ((h >> 42) % n as u64) as usize;
        let idx = (z * e + y) * e + x;
        if v[idx] != 0.0 {
            continue;
        }
        v[idx] = if placed < n_charges { 1.0 } else { -1.0 };
        placed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_weights_structure() {
        let w = class_weights(&A_COEFF);
        assert_eq!(w[1][1][1], -8.0 / 3.0);
        assert_eq!(w[0][1][1], 0.0); // face
        assert_eq!(w[0][0][1], 1.0 / 6.0); // edge
        assert_eq!(w[0][0][0], 1.0 / 12.0); // corner
                                            // 1 centre + 6 faces + 12 edges + 8 corners
        let mut counts = [0usize; 4];
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    let cls = usize::from(z != 1) + usize::from(y != 1) + usize::from(x != 1);
                    counts[cls] += 1;
                    assert_eq!(w[z][y][x], A_COEFF[cls]);
                }
            }
        }
        assert_eq!(counts, [1, 6, 12, 8]);
    }

    #[test]
    fn a_annihilates_constants_in_the_periodic_sense() {
        // Σ a-weights = -8/3 + 6·0 + 12/6 + 8/12 = 0: A of a constant field
        // vanishes away from boundaries.
        let s: f64 = [
            A_COEFF[0],
            6.0 * A_COEFF[1],
            12.0 * A_COEFF[2],
            8.0 * A_COEFF[3],
        ]
        .iter()
        .sum();
        assert!(s.abs() < 1e-15);
    }

    #[test]
    fn charges_balanced_and_deterministic() {
        let n = 15i64;
        let e = (n + 2) as usize;
        let mut a = vec![0.0; e * e * e];
        let mut b = vec![0.0; e * e * e];
        init_charges(&mut a, n, 10, 42);
        init_charges(&mut b, n, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&v| v == 1.0).count(), 10);
        assert_eq!(a.iter().filter(|&&v| v == -1.0).count(), 10);
        assert_eq!(a.iter().sum::<f64>(), 0.0);
        // all charges interior
        for z in [0, e - 1] {
            for y in 0..e {
                for x in 0..e {
                    assert_eq!(a[(z * e + y) * e + x], 0.0);
                }
            }
        }
        init_charges(&mut b, n, 10, 43);
        assert_ne!(a, b);
    }
}
