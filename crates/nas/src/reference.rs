//! Direct Rust port of the NPB MG reference kernels (`resid`, `psinv`,
//! `rprj3`, `interp`) and the `mg3P` V-cycle, with straightforward loop
//! parallelisation — the comparison target of Figure 10e.
//!
//! Like the Fortran original, `psinv` exploits partial sums: the 27-point
//! class stencil is computed from per-row running sums `r1 = Σ (face+edge)`
//! and `r2 = Σ (edge+corner)` reused across the inner loop (the paper notes
//! "NAS MG implementation uses a hand-optimized loop body computation that
//! computes a partial sum and reuses it multiple times through a line
//! buffer").

use crate::{A_COEFF, C_COEFF, R_COEFF};
use rayon::prelude::*;

/// Per-level grids of the NAS solver.
struct Level {
    /// Approximation `z` (called `u` at the finest level).
    z: Vec<f64>,
    /// Residual / restricted RHS.
    r: Vec<f64>,
    n: i64,
}

/// The NAS MG benchmark state (non-periodic boundaries).
pub struct NasReference {
    levels: Vec<Level>,
    /// RHS `v` at the finest level.
    v: Vec<f64>,
    nlevels: usize,
}

impl NasReference {
    /// New solver for a `(n+2)³` grid (`n = 2^k − 1`) with `nlevels` levels.
    pub fn new(n: i64, nlevels: usize) -> Self {
        assert!(((n + 1) as u64).is_power_of_two());
        let mut levels = Vec::with_capacity(nlevels);
        for l in 0..nlevels {
            let nl = ((n + 1) >> (nlevels - 1 - l)) - 1;
            assert!(nl >= 1, "too many levels");
            let len = ((nl + 2) as usize).pow(3);
            levels.push(Level {
                z: vec![0.0; len],
                r: vec![0.0; len],
                n: nl,
            });
        }
        let len = ((n + 2) as usize).pow(3);
        NasReference {
            levels,
            v: vec![0.0; len],
            nlevels,
        }
    }

    /// Finest interior size.
    pub fn n(&self) -> i64 {
        self.levels[self.nlevels - 1].n
    }

    /// Set the RHS (dense `(n+2)³`).
    pub fn set_v(&mut self, v: &[f64]) {
        self.v.copy_from_slice(v);
    }

    /// Current approximation at the finest level.
    pub fn u(&self) -> &[f64] {
        &self.levels[self.nlevels - 1].z
    }

    /// Overwrite the approximation (e.g. to reset between experiments).
    pub fn set_u(&mut self, u: &[f64]) {
        self.levels[self.nlevels - 1].z.copy_from_slice(u);
    }

    /// L2 norm of the current residual `v − A u`.
    pub fn rnm2(&mut self) -> f64 {
        let fin = self.nlevels - 1;
        let n = self.levels[fin].n;
        let mut tmp = vec![0.0; self.levels[fin].r.len()];
        resid(&self.levels[fin].z, &self.v, &mut tmp, n);
        let e = (n + 2) as usize;
        let mut s = 0.0;
        for z in 1..=n as usize {
            for y in 1..=n as usize {
                for x in 1..=n as usize {
                    let v = tmp[(z * e + y) * e + x];
                    s += v * v;
                }
            }
        }
        (s / (n as f64).powi(3)).sqrt()
    }

    /// One benchmark iteration: `r = v − A u`, then the `mg3P` V-cycle.
    pub fn iteration(&mut self) {
        let fin = self.nlevels - 1;
        // r = v - A u
        {
            let lv = &mut self.levels[fin];
            let n = lv.n;
            let mut tmp = std::mem::take(&mut lv.r);
            resid(&lv.z, &self.v, &mut tmp, n);
            lv.r = tmp;
        }
        self.mg3p();
    }

    /// The NPB `mg3P` V-cycle (no pre-smoothing).
    fn mg3p(&mut self) {
        let fin = self.nlevels - 1;
        // down: restrict residuals
        for k in (1..=fin).rev() {
            let (coarse, fine) = {
                let (a, b) = self.levels.split_at_mut(k);
                (&mut a[k - 1], &b[0])
            };
            rprj3(&fine.r, coarse.n, &mut coarse.r);
        }
        // coarsest: z = S r from a zero guess
        {
            let lv = &mut self.levels[0];
            lv.z.fill(0.0);
            let n = lv.n;
            let mut z = std::mem::take(&mut lv.z);
            psinv(&lv.r, &mut z, n);
            lv.z = z;
        }
        // up
        for k in 1..=fin {
            let (coarse, fine) = {
                let (a, b) = self.levels.split_at_mut(k);
                (&a[k - 1], &mut b[0])
            };
            let n = fine.n;
            if k < fin {
                // z_k = Q z_{k-1} (z_k starts at zero)
                fine.z.fill(0.0);
                interp_add(&coarse.z, &mut fine.z, n);
                // r_k = r_k − A z_k  (NPB: resid(u,r,r))
                let mut tmp = vec![0.0; fine.r.len()];
                resid(&fine.z, &fine.r, &mut tmp, n);
                fine.r.copy_from_slice(&tmp);
                // z_k = z_k + S r_k
                let mut z = std::mem::take(&mut fine.z);
                psinv(&fine.r, &mut z, n);
                fine.z = z;
            } else {
                // finest: u += Q z; r = v − A u; u += S r
                interp_add(&coarse.z, &mut fine.z, n);
                let mut tmp = vec![0.0; fine.r.len()];
                resid(&fine.z, &self.v, &mut tmp, n);
                fine.r.copy_from_slice(&tmp);
                let mut z = std::mem::take(&mut fine.z);
                psinv(&fine.r, &mut z, n);
                fine.z = z;
            }
        }
    }
}

/// `r = v − A u` with the 27-point class-`a` operator.
pub fn resid(u: &[f64], v: &[f64], r: &mut [f64], n: i64) {
    let e = (n + 2) as usize;
    let pb = e * e;
    let (a0, a2, a3) = (A_COEFF[0], A_COEFF[2], A_COEFF[3]);
    r[pb..(n as usize + 1) * pb]
        .par_chunks_mut(pb)
        .enumerate()
        .for_each(|(i, rp)| {
            let z = i + 1;
            for y in 1..=n as usize {
                let s = z * pb + y * e;
                for x in 1..=n as usize {
                    // partial sums by class (a1 = 0 is skipped like NPB)
                    let mut edge = 0.0;
                    let mut corner = 0.0;
                    for dz in [-1i64, 0, 1] {
                        for dy in [-1i64, 0, 1] {
                            for dx in [-1i64, 0, 1] {
                                let cls = (dz != 0) as u32 + (dy != 0) as u32 + (dx != 0) as u32;
                                if cls < 2 {
                                    continue;
                                }
                                let idx = ((z as i64 + dz) as usize) * pb
                                    + ((y as i64 + dy) as usize) * e
                                    + (x as i64 + dx) as usize;
                                if cls == 2 {
                                    edge += u[idx];
                                } else {
                                    corner += u[idx];
                                }
                            }
                        }
                    }
                    rp[y * e + x] = v[s + x] - a0 * u[s + x] - a2 * edge - a3 * corner;
                }
            }
        });
}

/// `z = z + C r` with the 27-point class-`c` smoother (corner class is 0
/// and skipped).
pub fn psinv(r: &[f64], z: &mut [f64], n: i64) {
    let e = (n + 2) as usize;
    let pb = e * e;
    let (c0, c1, c2) = (C_COEFF[0], C_COEFF[1], C_COEFF[2]);
    z[pb..(n as usize + 1) * pb]
        .par_chunks_mut(pb)
        .enumerate()
        .for_each(|(i, zp)| {
            let zc = i + 1;
            for y in 1..=n as usize {
                let s = zc * pb + y * e;
                // line buffers of partial sums, NPB-style:
                // r1[x] = r(z±1,y,x) + r(z,y±1,x)  (face contributions in z/y)
                // r2[x] = r(z±1,y±1,x)             (edge contributions in z/y)
                let mut r1 = vec![0.0; e];
                let mut r2 = vec![0.0; e];
                for x in 0..e {
                    r1[x] = r[s - pb + x] + r[s + pb + x] + r[s - e + x] + r[s + e + x];
                    r2[x] = r[s - pb - e + x]
                        + r[s - pb + e + x]
                        + r[s + pb - e + x]
                        + r[s + pb + e + x];
                }
                for x in 1..=n as usize {
                    let faces = r1[x] + r[s + x - 1] + r[s + x + 1];
                    let edges = r2[x] + r1[x - 1] + r1[x + 1];
                    zp[y * e + x] += c0 * r[s + x] + c1 * faces + c2 * edges;
                }
            }
        });
}

/// NPB `rprj3`: restrict `fine` onto `coarse` (interior size `nc`).
pub fn rprj3(fine: &[f64], nc: i64, coarse: &mut [f64]) {
    let ef = (2 * nc + 1 + 2) as usize;
    let pf = ef * ef;
    let ec = (nc + 2) as usize;
    let pc = ec * ec;
    coarse[pc..(nc as usize + 1) * pc]
        .par_chunks_mut(pc)
        .enumerate()
        .for_each(|(i, cp)| {
            let zc = i + 1;
            let zf = 2 * zc;
            for yc in 1..=nc as usize {
                let yf = 2 * yc;
                for xc in 1..=nc as usize {
                    let xf = 2 * xc;
                    let mut acc = 0.0;
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let cls =
                                    (dz != 0) as usize + (dy != 0) as usize + (dx != 0) as usize;
                                acc += R_COEFF[cls]
                                    * fine[((zf as i64 + dz) as usize) * pf
                                        + ((yf as i64 + dy) as usize) * ef
                                        + (xf as i64 + dx) as usize];
                            }
                        }
                    }
                    cp[yc * ec + xc] = acc;
                }
            }
        });
}

/// Trilinear prolongation, added into `fine` (interior size `nf`).
pub fn interp_add(coarse: &[f64], fine: &mut [f64], nf: i64) {
    let ef = (nf + 2) as usize;
    let pf = ef * ef;
    let ec = ((nf + 1) / 2 + 1) as usize;
    let pc = ec * ec;
    fine[pf..(nf as usize + 1) * pf]
        .par_chunks_mut(pf)
        .enumerate()
        .for_each(|(i, fp)| {
            let z = i + 1;
            let zs: Vec<usize> = if z % 2 == 0 {
                vec![z / 2]
            } else {
                vec![(z - 1) / 2, z.div_ceil(2)]
            };
            for y in 1..=nf as usize {
                let ys: Vec<usize> = if y % 2 == 0 {
                    vec![y / 2]
                } else {
                    vec![(y - 1) / 2, y.div_ceil(2)]
                };
                for x in 1..=nf as usize {
                    let xs: Vec<usize> = if x % 2 == 0 {
                        vec![x / 2]
                    } else {
                        vec![(x - 1) / 2, x.div_ceil(2)]
                    };
                    let mut acc = 0.0;
                    for &zc in &zs {
                        for &yc in &ys {
                            for &xc in &xs {
                                acc += coarse[zc * pc + yc * ec + xc];
                            }
                        }
                    }
                    fp[y * ef + x] += acc / (zs.len() * ys.len() * xs.len()) as f64;
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init_charges;

    #[test]
    fn resid_of_zero_u_is_v() {
        let n = 7i64;
        let e = (n + 2) as usize;
        let u = vec![0.0; e * e * e];
        let mut v = vec![0.0; e * e * e];
        init_charges(&mut v, n, 5, 1);
        let mut r = vec![0.0; e * e * e];
        resid(&u, &v, &mut r, n);
        for i in 0..v.len() {
            let z = i / (e * e);
            let y = (i / e) % e;
            let x = i % e;
            let interior = (1..=n as usize).contains(&z)
                && (1..=n as usize).contains(&y)
                && (1..=n as usize).contains(&x);
            if interior {
                assert_eq!(r[i], v[i]);
            }
        }
    }

    #[test]
    fn resid_annihilates_constants_away_from_boundary() {
        let n = 15i64;
        let e = (n + 2) as usize;
        let u = vec![1.0; e * e * e];
        let v = vec![0.0; e * e * e];
        let mut r = vec![0.0; e * e * e];
        resid(&u, &v, &mut r, n);
        // centre point: Σ a = 0
        let c = (8 * e + 8) * e + 8;
        assert!(r[c].abs() < 1e-13);
    }

    #[test]
    fn psinv_partial_sums_match_naive() {
        let n = 7i64;
        let e = (n + 2) as usize;
        let mut r = vec![0.0; e * e * e];
        init_charges(&mut r, n, 8, 3);
        for (i, v) in r.iter_mut().enumerate() {
            *v += ((i * 31) % 7) as f64 * 0.1;
        }
        // zero the ghost ring (boundary condition)
        for z in 0..e {
            for y in 0..e {
                for x in 0..e {
                    if z == 0 || z == e - 1 || y == 0 || y == e - 1 || x == 0 || x == e - 1 {
                        r[(z * e + y) * e + x] = 0.0;
                    }
                }
            }
        }
        let mut z1 = vec![0.0; e * e * e];
        psinv(&r, &mut z1, n);
        // naive evaluation
        let w = crate::class_weights(&C_COEFF);
        let mut z2 = vec![0.0; e * e * e];
        for zc in 1..=n as usize {
            for y in 1..=n as usize {
                for x in 1..=n as usize {
                    let mut acc = 0.0;
                    for dz in 0..3usize {
                        for dy in 0..3usize {
                            for dx in 0..3usize {
                                acc += w[dz][dy][dx]
                                    * r[((zc + dz - 1) * e + (y + dy - 1)) * e + x + dx - 1];
                            }
                        }
                    }
                    z2[(zc * e + y) * e + x] = acc;
                }
            }
        }
        for i in 0..z1.len() {
            assert!((z1[i] - z2[i]).abs() < 1e-13, "mismatch at {i}");
        }
    }

    #[test]
    fn iterations_reduce_residual() {
        let n = 31i64;
        let mut nas = NasReference::new(n, 4);
        let e = (n + 2) as usize;
        let mut v = vec![0.0; e * e * e];
        init_charges(&mut v, n, 10, 7);
        nas.set_v(&v);
        let r0 = nas.rnm2();
        for _ in 0..4 {
            nas.iteration();
        }
        let r4 = nas.rnm2();
        assert!(r4 < r0 * 0.05, "NAS MG failed to converge: {r0} → {r4}");
    }
}
