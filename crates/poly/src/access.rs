//! Affine access maps and dependence footprints.
//!
//! Every read a multigrid stage performs has the per-dimension form
//! `in_idx = (num · out_idx + off) / den` with `num, den ∈ {1, 2}`:
//!
//! * plain stencils / pointwise ops: `num = den = 1`, `off` the tap offset,
//! * `Restrict` (downsampling): `num = 2, den = 1`,
//! * `Interp` (upsampling): `num = 1, den = 2`, with the offset chosen per
//!   output-parity case so the division is exact.
//!
//! For region propagation only the *hull* of the taps matters, so a
//! producer↔consumer edge is summarised by an [`AxisFootprint`] per
//! dimension: the scaling plus the minimum/maximum tap offset.

use crate::interval::Interval;
use crate::ratio::Ratio;
use crate::{div_ceil, div_floor};

/// Per-dimension summary of all accesses a consumer makes into a producer:
/// `in ∈ [(num·out + off_min)/den , (num·out + off_max)/den]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AxisFootprint {
    /// Numerator of the index scaling (1 for stencils, 2 for `Restrict`).
    pub num: i64,
    /// Denominator of the index scaling (1 for stencils, 2 for `Interp`).
    pub den: i64,
    /// Minimum tap offset (applied before the division).
    pub off_min: i64,
    /// Maximum tap offset (applied before the division).
    pub off_max: i64,
}

impl AxisFootprint {
    /// Footprint with scaling `num/den` and offsets in `[off_min, off_max]`.
    pub fn new(num: i64, den: i64, off_min: i64, off_max: i64) -> Self {
        assert!(num > 0 && den > 0, "scaling must be positive");
        assert!(off_min <= off_max, "offset range inverted");
        AxisFootprint {
            num,
            den,
            off_min,
            off_max,
        }
    }

    /// Identity access of a single tap at distance 0 (pointwise read).
    pub fn pointwise() -> Self {
        Self::new(1, 1, 0, 0)
    }

    /// Plain stencil access with taps spanning `[-r, r]`.
    pub fn stencil(r: i64) -> Self {
        Self::new(1, 1, -r, r)
    }

    /// The scale factor producer-space / consumer-space as a [`Ratio`].
    ///
    /// A consumer index `x` touches producer indices around `x·num/den`, so
    /// the producer's index space is `num/den` times the consumer's.
    pub fn scale(&self) -> Ratio {
        Ratio::new(self.num, self.den)
    }

    /// The producer interval needed to compute the consumer interval `out`.
    ///
    /// This is the hull of `{ floor((num·x + off)/den) : x ∈ out, off ∈
    /// [off_min, off_max] }`; since the map is monotone in both `x` and
    /// `off`, the endpoints suffice. The result may extend beyond the
    /// producer's domain — the caller clamps against it and treats the excess
    /// as ghost/boundary reads.
    pub fn input_needed(&self, out: &Interval) -> Interval {
        if out.is_empty() {
            return Interval::empty();
        }
        Interval::new(
            div_floor(self.num * out.lo + self.off_min, self.den),
            div_floor(self.num * out.hi + self.off_max, self.den),
        )
    }

    /// The consumer interval whose computation touches producer point `p`
    /// (the transpose of [`Self::input_needed`] for a single point) —
    /// used by dependence-validation tests.
    pub fn consumers_of(&self, p: i64) -> Interval {
        // num·x + off ∈ [den·p, den·p + den - 1] for some off in range
        // ⇒ x ∈ [ceil((den·p - off_max)/num), floor((den·p + den - 1 - off_min)/num)]
        Interval::new(
            div_ceil(self.den * p - self.off_max, self.num),
            div_floor(self.den * p + self.den - 1 - self.off_min, self.num),
        )
    }

    /// Merge with another footprint on the same edge (hull of offsets).
    ///
    /// # Panics
    /// Panics if the scalings differ — a single producer/consumer edge in a
    /// multigrid pipeline always has a single scaling.
    pub fn merge(&self, other: &AxisFootprint) -> AxisFootprint {
        assert!(
            self.num == other.num && self.den == other.den,
            "cannot merge footprints with different scalings"
        );
        AxisFootprint {
            num: self.num,
            den: self.den,
            off_min: self.off_min.min(other.off_min),
            off_max: self.off_max.max(other.off_max),
        }
    }
}

/// A full multi-dimensional footprint: one [`AxisFootprint`] per dimension,
/// outermost first.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Footprint(pub Vec<AxisFootprint>);

impl Footprint {
    /// Uniform footprint across `ndims` dimensions.
    pub fn uniform(ndims: usize, axis: AxisFootprint) -> Self {
        Footprint(vec![axis; ndims])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// The per-dimension scale ratios (producer space / consumer space).
    pub fn scales(&self) -> Vec<Ratio> {
        self.0.iter().map(|a| a.scale()).collect()
    }

    /// Merge two footprints on the same edge.
    pub fn merge(&self, other: &Footprint) -> Footprint {
        assert_eq!(self.ndims(), other.ndims(), "dimensionality mismatch");
        Footprint(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.merge(b))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_footprint() {
        let f = AxisFootprint::stencil(1);
        assert_eq!(f.input_needed(&Interval::new(1, 10)), Interval::new(0, 11));
        assert_eq!(f.consumers_of(5), Interval::new(4, 6));
    }

    #[test]
    fn pointwise_footprint() {
        let f = AxisFootprint::pointwise();
        assert_eq!(f.input_needed(&Interval::new(3, 7)), Interval::new(3, 7));
        assert_eq!(f.consumers_of(5), Interval::new(5, 5));
    }

    #[test]
    fn restrict_footprint() {
        // restrict reads in(2y + {-1,0,1})
        let f = AxisFootprint::new(2, 1, -1, 1);
        assert_eq!(f.input_needed(&Interval::new(1, 4)), Interval::new(1, 9));
        // producer point 5 is read by outputs y with 2y+off = 5, off∈[-1,1] → y∈{2,3}
        assert_eq!(f.consumers_of(5), Interval::new(2, 3));
        assert_eq!(f.scale(), Ratio::new(2, 1));
    }

    #[test]
    fn interp_footprint() {
        // interp reads in((x + {0,1}) / 2)
        let f = AxisFootprint::new(1, 2, 0, 1);
        assert_eq!(f.input_needed(&Interval::new(2, 9)), Interval::new(1, 5));
        // producer point 3 feeds consumers x with floor((x+off)/2) = 3 for
        // some off ∈ {0,1} → x ∈ [5, 7]
        assert_eq!(f.consumers_of(3), Interval::new(5, 7));
        assert_eq!(f.scale(), Ratio::new(1, 2));
    }

    #[test]
    fn empty_in_empty_out() {
        let f = AxisFootprint::stencil(2);
        assert!(f.input_needed(&Interval::empty()).is_empty());
    }

    #[test]
    fn consumers_inverse_of_needed() {
        // For a variety of footprints, p ∈ input_needed([x,x]) ⇔ x ∈ consumers_of(p).
        let cases = [
            AxisFootprint::stencil(1),
            AxisFootprint::new(2, 1, -1, 1),
            AxisFootprint::new(1, 2, 0, 1),
            AxisFootprint::new(1, 1, -2, 3),
        ];
        for f in cases {
            for x in -8i64..8 {
                let needed = f.input_needed(&Interval::new(x, x));
                for p in -20i64..20 {
                    let forward = needed.contains(p);
                    let backward = f.consumers_of(p).contains(x);
                    assert_eq!(
                        forward, backward,
                        "adjoint mismatch for {f:?} at x={x}, p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_footprints() {
        let a = AxisFootprint::new(1, 1, -1, 0);
        let b = AxisFootprint::new(1, 1, 0, 2);
        let m = a.merge(&b);
        assert_eq!((m.off_min, m.off_max), (-1, 2));
        let fa = Footprint::uniform(2, a);
        let fb = Footprint::uniform(2, b);
        assert_eq!(fa.merge(&fb).0[1], m);
    }

    #[test]
    #[should_panic(expected = "different scalings")]
    fn merge_rejects_scale_mismatch() {
        let a = AxisFootprint::new(2, 1, 0, 0);
        let b = AxisFootprint::new(1, 1, 0, 0);
        let _ = a.merge(&b);
    }
}
