//! Concurrent-start time tiling for iterated stencils — the libPluto
//! substitute.
//!
//! The paper evaluates `polymg-dtile-opt+` and `handopt+pluto`, which apply
//! Pluto's diamond tiling [Bandishti et al. 2012] to the pre-/post-smoothing
//! `TStencil` iterations. We implement the equivalent *split tiling*
//! [Grosser et al. 2013] schedule over the (time × outermost-space) plane:
//! time is cut into bands of height `band_h`; within a band, phase 1 runs
//! shrinking trapezoids (concurrent start — all independent), then phase 2
//! runs the expanding trapezoids that fill the gaps. Both techniques share
//! the properties the paper relies on: O(band_h) temporal reuse per tile,
//! concurrent start (no wavefront pipeline fill/drain), and no redundant
//! computation — in contrast to overlapped tiling.
//!
//! Only the outermost spatial dimension is split; inner dimensions stream
//! whole rows/planes (this is also what Pluto's default diamond tiling does
//! for multidimensional stencils with concurrent start along one face).

use crate::interval::Interval;

/// A trapezoid in the (step × outer-dim) plane: at in-band step `s`
/// (0-based), the rows covered are `[lo_base + s·lo_slope, hi_base +
/// s·hi_slope]` (inclusive), clamped to the domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trapezoid {
    pub lo_base: i64,
    pub lo_slope: i64,
    pub hi_base: i64,
    pub hi_slope: i64,
}

impl Trapezoid {
    /// Row interval covered at in-band step `s`, clamped to `domain`.
    pub fn rows_at(&self, s: i64, domain: Interval) -> Interval {
        Interval::new(
            self.lo_base + s * self.lo_slope,
            self.hi_base + s * self.hi_slope,
        )
        .intersect(&domain)
    }
}

/// One band of time steps with its two phases of independent trapezoids.
#[derive(Clone, Debug)]
pub struct TimeBand {
    /// Global index of the first step in the band (0-based).
    pub t0: usize,
    /// Number of steps in the band.
    pub steps: usize,
    /// Shrinking trapezoids; mutually independent, run first.
    pub phase1: Vec<Trapezoid>,
    /// Expanding gap-filling trapezoids; mutually independent, run second.
    pub phase2: Vec<Trapezoid>,
}

/// Build the split-tiling schedule for `total_steps` applications of a
/// radius-`radius` stencil over rows `[1, n]` (1-based interior).
///
/// `tile_w` is the base width of the phase-1 trapezoids; `band_h` the time
/// band height. Two bounds must hold for a band of height `H`:
/// phase-2 trapezoids read phase-1 results of the *same* band, which needs
/// the phase-1 trapezoids non-degenerate (`tile_w ≥ 2·radius·(H−1) + 1`);
/// and with modulo-2 time buffers, concurrently running trapezoids of one
/// phase at different in-band steps must never touch the same rows of the
/// same parity buffer, which needs the stricter `tile_w ≥ radius·(2H − 1)`.
/// The band height is clamped to the largest `H` satisfying both (narrower
/// tiles ⇒ shorter bands), so every returned schedule is valid and
/// race-free under 2-buffer execution.
pub fn split_time_tiling(
    n: i64,
    total_steps: usize,
    tile_w: i64,
    band_h: usize,
    radius: i64,
) -> Vec<TimeBand> {
    assert!(n >= 1, "need at least one interior row");
    assert!(tile_w >= 1 && band_h >= 1 && radius >= 0, "bad parameters");
    // largest H with radius·(2H − 1) ≤ tile_w
    let max_h = if radius == 0 {
        band_h
    } else {
        (((tile_w / radius + 1) / 2) as usize).max(1)
    };
    let band_h = band_h.min(max_h);
    let mut bands = Vec::new();
    let mut t0 = 0usize;
    while t0 < total_steps {
        let steps = band_h.min(total_steps - t0);
        let mut phase1 = Vec::new();
        let mut phase2 = Vec::new();
        let mut lo = 1i64;
        while lo <= n {
            let hi = (lo + tile_w - 1).min(n);
            // Shrinking trapezoid: edges move inward by `radius` per step,
            // except edges that coincide with the domain boundary (no
            // neighbour to wait for there).
            let (lo_slope, hi_slope) = (
                if lo == 1 { 0 } else { radius },
                if hi == n { 0 } else { -radius },
            );
            phase1.push(Trapezoid {
                lo_base: lo,
                lo_slope,
                hi_base: hi,
                hi_slope,
            });
            // Expanding trapezoid centred on the seam at `hi+1` (only for
            // interior seams).
            if hi < n {
                phase2.push(Trapezoid {
                    // at step s covers [hi+1 - radius·s, hi + radius·s]
                    lo_base: hi + 1,
                    lo_slope: -radius,
                    hi_base: hi,
                    hi_slope: radius,
                });
            }
            lo = hi + 1;
        }
        bands.push(TimeBand {
            t0,
            steps,
            phase1,
            phase2,
        });
        t0 += steps;
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate the schedule on a 1-D space-time grid and assert:
    /// 1. every (step, row) pair is computed exactly once;
    /// 2. when (t, i) is computed, both (t-1, i±radius) were already
    ///    computed (or lie outside the domain / before step 0).
    fn check_schedule(n: i64, total_steps: usize, tile_w: i64, band_h: usize, radius: i64) {
        let bands = split_time_tiling(n, total_steps, tile_w, band_h, radius);
        let dom = Interval::new(1, n);
        let idx = |t: usize, i: i64| t * n as usize + (i - 1) as usize;
        let mut done = vec![false; total_steps * n as usize];
        let mut order: Vec<(usize, i64)> = Vec::new();

        for band in &bands {
            // Phase 1: all trapezoids conceptually parallel, but each runs
            // its own steps sequentially. For the check we can run them
            // tile-by-tile because tiles only depend on *previous-band* data
            // and their own cells; we assert that below by checking deps at
            // record time against "done before this phase or by this tile".
            for phase in [&band.phase1, &band.phase2] {
                let snapshot = done.clone();
                let mut phase_writes = Vec::new();
                for trap in phase.iter() {
                    let mut own = vec![false; total_steps * n as usize];
                    for s in 0..band.steps {
                        let t = band.t0 + s;
                        let rows = trap.rows_at(s as i64, dom);
                        if rows.is_empty() {
                            continue;
                        }
                        for i in rows.lo..=rows.hi {
                            // dependencies
                            if t > 0 {
                                for d in [-radius, 0, radius] {
                                    let j = i + d;
                                    if j >= 1 && j <= n {
                                        assert!(
                                            snapshot[idx(t - 1, j)] || own[idx(t - 1, j)],
                                            "dep ({},{}) of ({},{}) not ready",
                                            t - 1,
                                            j,
                                            t,
                                            i
                                        );
                                    }
                                }
                            }
                            assert!(!done[idx(t, i)], "({t},{i}) computed twice");
                            done[idx(t, i)] = true;
                            own[idx(t, i)] = true;
                            order.push((t, i));
                        }
                    }
                    phase_writes.push(own);
                }
                // tiles within a phase must be pairwise disjoint (parallel-safe)
                for a in 0..phase_writes.len() {
                    for b in a + 1..phase_writes.len() {
                        assert!(
                            !phase_writes[a]
                                .iter()
                                .zip(&phase_writes[b])
                                .any(|(x, y)| *x && *y),
                            "phase tiles {a} and {b} overlap"
                        );
                    }
                }
            }
        }
        assert!(done.iter().all(|&d| d), "some (step,row) never computed");
    }

    #[test]
    fn covers_and_respects_deps_basic() {
        check_schedule(32, 6, 12, 3, 1);
    }

    #[test]
    fn single_band_taller_than_steps() {
        check_schedule(20, 2, 10, 8, 1);
    }

    #[test]
    fn radius_two() {
        check_schedule(40, 4, 20, 3, 2);
    }

    #[test]
    fn domain_smaller_than_tile() {
        check_schedule(5, 4, 16, 2, 1);
    }

    #[test]
    fn many_bands() {
        check_schedule(24, 10, 12, 2, 1);
    }

    #[test]
    fn narrow_tiles_clamp_band_height() {
        // tile_w = 4, radius 1 ⇒ max safe band height is 2; the schedule
        // must clamp and stay correct.
        check_schedule(16, 4, 4, 4, 1);
        let bands = split_time_tiling(16, 4, 4, 4, 1);
        assert!(bands.iter().all(|b| b.steps <= 2));
        assert_eq!(bands.len(), 2);
    }

    #[test]
    fn radius_zero_pointwise() {
        // Pointwise "stencil": no dependence between rows, bands never clamp.
        check_schedule(10, 5, 4, 5, 0);
        assert_eq!(split_time_tiling(10, 5, 4, 5, 0).len(), 1);
    }

    #[test]
    fn band_structure() {
        let bands = split_time_tiling(64, 10, 16, 4, 1);
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].steps, 4);
        assert_eq!(bands[2].steps, 2);
        assert_eq!(bands[0].t0, 0);
        assert_eq!(bands[2].t0, 8);
        // 64/16 = 4 phase-1 tiles, 3 interior seams
        assert_eq!(bands[0].phase1.len(), 4);
        assert_eq!(bands[0].phase2.len(), 3);
    }

    #[test]
    fn trapezoid_rows_clamp() {
        let t = Trapezoid {
            lo_base: 1,
            lo_slope: 0,
            hi_base: 8,
            hi_slope: -1,
        };
        let dom = Interval::new(1, 32);
        assert_eq!(t.rows_at(0, dom), Interval::new(1, 8));
        assert_eq!(t.rows_at(2, dom), Interval::new(1, 6));
        let t2 = Trapezoid {
            lo_base: 9,
            lo_slope: -1,
            hi_base: 8,
            hi_slope: 1,
        };
        assert!(t2.rows_at(0, dom).is_empty());
        assert_eq!(t2.rows_at(1, dom), Interval::new(8, 9));
    }
}
