//! Reduced rationals, used for inter-level scale relations.
//!
//! PolyMage's "alignment and scaling" phase assigns every pipeline function a
//! scale relative to a reference space; across a `Restrict` the producer is
//! finer by 2, across an `Interp` coarser by 2. In a multigrid pipeline all
//! scales are powers of two, but we keep a general reduced rational so the
//! machinery stays honest.

/// A reduced rational `num / den` with `den > 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

impl Ratio {
    /// Construct and reduce. `den` must be non-zero.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        if g > 1 {
            num /= g as i64;
            den /= g as i64;
        }
        Ratio { num, den }
    }

    /// The rational 1/1.
    pub fn one() -> Self {
        Ratio { num: 1, den: 1 }
    }

    /// Reduced numerator.
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Reduced (positive) denominator.
    pub fn den(&self) -> i64 {
        self.den
    }

    /// Multiply two ratios.
    pub fn mul(&self, other: &Ratio) -> Ratio {
        Ratio::new(self.num * other.num, self.den * other.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inv(&self) -> Ratio {
        assert!(self.num != 0, "inverse of zero");
        Ratio::new(self.den, self.num)
    }

    /// True when the ratio equals 1.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Apply to an integer, requiring exact divisibility.
    pub fn apply_exact(&self, x: i64) -> Option<i64> {
        let p = x * self.num;
        if p % self.den == 0 {
            Some(p / self.den)
        } else {
            None
        }
    }

    /// Apply to an integer with floor rounding.
    pub fn apply_floor(&self, x: i64) -> i64 {
        crate::div_floor(x * self.num, self.den)
    }

    /// Apply to an integer with ceil rounding.
    pub fn apply_ceil(&self, x: i64) -> i64 {
        crate::div_ceil(x * self.num, self.den)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction() {
        let r = Ratio::new(4, 8);
        assert_eq!((r.num(), r.den()), (1, 2));
        let r = Ratio::new(-4, 8);
        assert_eq!((r.num(), r.den()), (-1, 2));
        let r = Ratio::new(4, -8);
        assert_eq!((r.num(), r.den()), (-1, 2));
        assert!(Ratio::new(3, 3).is_one());
    }

    #[test]
    fn mul_inv() {
        let half = Ratio::new(1, 2);
        let two = Ratio::new(2, 1);
        assert!(half.mul(&two).is_one());
        assert_eq!(half.inv(), two);
        assert_eq!(half.mul(&half), Ratio::new(1, 4));
    }

    #[test]
    fn apply() {
        let half = Ratio::new(1, 2);
        assert_eq!(half.apply_exact(6), Some(3));
        assert_eq!(half.apply_exact(7), None);
        assert_eq!(half.apply_floor(7), 3);
        assert_eq!(half.apply_ceil(7), 4);
        assert_eq!(half.apply_floor(-7), -4);
        assert_eq!(half.apply_ceil(-7), -3);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_den_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inv_panics() {
        let _ = Ratio::new(0, 5).inv();
    }
}
