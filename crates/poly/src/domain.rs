//! Box domains — products of integer intervals.
//!
//! A stage's iteration domain is always a box: the interior points of its
//! grid, `[1, N_l]` per dimension for level-`l` problem size `N_l`. Tile
//! regions, scratchpad extents and owned regions are boxes too.

use crate::interval::Interval;

/// A rectangular integer domain, outermost dimension first.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BoxDomain(pub Vec<Interval>);

impl BoxDomain {
    /// Build from per-dimension intervals (outermost first).
    pub fn new(dims: Vec<Interval>) -> Self {
        BoxDomain(dims)
    }

    /// The interior domain `[1, n]^ndims` of a grid with 1-deep ghost ring.
    pub fn interior(ndims: usize, n: i64) -> Self {
        BoxDomain(vec![Interval::new(1, n); ndims])
    }

    /// An empty domain of the given rank.
    pub fn empty(ndims: usize) -> Self {
        BoxDomain(vec![Interval::empty(); ndims])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.0.iter().any(Interval::is_empty)
    }

    /// Number of integer points.
    pub fn len(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.0.iter().map(Interval::len).product()
        }
    }

    /// Per-dimension intersection.
    pub fn intersect(&self, other: &BoxDomain) -> BoxDomain {
        assert_eq!(self.ndims(), other.ndims(), "rank mismatch");
        BoxDomain(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        )
    }

    /// Per-dimension convex hull.
    pub fn hull(&self, other: &BoxDomain) -> BoxDomain {
        assert_eq!(self.ndims(), other.ndims(), "rank mismatch");
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        BoxDomain(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Grow every dimension by `r` on both sides.
    pub fn dilate(&self, r: i64) -> BoxDomain {
        BoxDomain(self.0.iter().map(|i| i.dilate(r)).collect())
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &BoxDomain) -> bool {
        assert_eq!(self.ndims(), other.ndims(), "rank mismatch");
        other.is_empty()
            || self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.contains_interval(b))
    }

    /// Point membership (point given outermost-first).
    pub fn contains_point(&self, p: &[i64]) -> bool {
        assert_eq!(self.ndims(), p.len(), "rank mismatch");
        self.0.iter().zip(p).all(|(i, &x)| i.contains(x))
    }

    /// True when the boxes share at least one point.
    pub fn overlaps(&self, other: &BoxDomain) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Per-dimension extents (0 for empty dims).
    pub fn extents(&self) -> Vec<i64> {
        self.0.iter().map(Interval::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_domain() {
        let d = BoxDomain::interior(2, 8);
        assert_eq!(d.ndims(), 2);
        assert_eq!(d.len(), 64);
        assert!(d.contains_point(&[1, 8]));
        assert!(!d.contains_point(&[0, 8]));
        assert!(!d.contains_point(&[1, 9]));
    }

    #[test]
    fn set_ops() {
        let a = BoxDomain::new(vec![Interval::new(0, 5), Interval::new(0, 5)]);
        let b = BoxDomain::new(vec![Interval::new(3, 8), Interval::new(2, 4)]);
        let i = a.intersect(&b);
        assert_eq!(i.0[0], Interval::new(3, 5));
        assert_eq!(i.0[1], Interval::new(2, 4));
        let h = a.hull(&b);
        assert_eq!(h.0[0], Interval::new(0, 8));
        assert!(a.overlaps(&b));
        assert!(a.contains(&i));
        assert!(!b.contains(&a));
    }

    #[test]
    fn empty_behaviour() {
        let e = BoxDomain::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let d = BoxDomain::interior(3, 4);
        assert!(d.contains(&e));
        assert_eq!(d.hull(&e), d);
        assert!(!d.overlaps(&e));
        // one empty dim makes the whole box empty
        let partial = BoxDomain::new(vec![Interval::new(1, 3), Interval::empty()]);
        assert!(partial.is_empty());
        assert_eq!(partial.len(), 0);
    }

    #[test]
    fn dilate_grows() {
        let d = BoxDomain::interior(2, 4).dilate(1);
        assert_eq!(d.0[0], Interval::new(0, 5));
        assert_eq!(d.len(), 36);
    }

    #[test]
    fn extents() {
        let d = BoxDomain::new(vec![Interval::new(1, 4), Interval::new(0, 9)]);
        assert_eq!(d.extents(), vec![4, 10]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        let a = BoxDomain::interior(2, 4);
        let b = BoxDomain::interior(3, 4);
        let _ = a.intersect(&b);
    }
}
