//! # gmg-poly — polyhedral-lite engine
//!
//! The SC'17 paper builds PolyMG on top of ISL [Verdoolaege 2010] for
//! representing iteration domains, dependences and schedules, and for
//! generating loop ASTs. Rust bindings for ISL are thin and the full
//! Presburger machinery is not actually exercised by multigrid pipelines:
//! every domain is a (possibly parametric) rectangular box, every dependence
//! is a constant-distance stencil access optionally composed with a scaling
//! by two (`Restrict`/`Interp`), and every tile is a box in the reference
//! space. This crate therefore implements exactly that fragment from scratch:
//!
//! * [`interval`] — inclusive integer intervals with floor/ceil division,
//! * [`ratio`] — reduced rationals used for inter-level scale relations,
//! * [`access`] — per-dimension affine access maps `x ↦ (num·x + off) / den`
//!   and dependence footprints (offset ranges),
//! * [`domain`] — box domains (products of intervals),
//! * [`region`] — backward region propagation through a group's DAG, which
//!   yields the hyper-trapezoidal overlapped tile shapes of Section 3.1,
//! * [`tiling`] — tile partitions of a reference domain, owned-region
//!   scaling across levels, and redundant-computation statistics used by the
//!   grouping heuristic,
//! * [`diamond`] — concurrent-start split/diamond schedules for
//!   time-iterated stencils (the libPluto substitute used by
//!   `polymg-dtile-opt+` and `handopt+pluto`).
//!
//! Everything in this crate is pure integer math with no allocation in hot
//! paths; the runtime consumes the structures produced here.

pub mod access;
pub mod diamond;
pub mod domain;
pub mod interval;
pub mod ratio;
pub mod region;
pub mod tiling;

pub use access::{AxisFootprint, Footprint};
pub use domain::BoxDomain;
pub use interval::Interval;
pub use ratio::Ratio;

/// Floor division on i64 (rounds toward negative infinity).
#[inline]
pub fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor requires positive divisor");
    let q = a / b;
    if a % b < 0 {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on i64 (rounds toward positive infinity).
#[inline]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil requires positive divisor");
    let q = a / b;
    if a % b > 0 {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_ceil_div() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(8, 2), 4);
        assert_eq!(div_floor(0, 5), 0);
        assert_eq!(div_ceil(0, 5), 0);
    }
}
