//! Tile partitions, owned-region scaling across levels, and the
//! redundant-computation statistics used by the grouping heuristic.
//!
//! A fused group is tiled over the *reference space* — the index space of its
//! finest stage. The reference domain is partitioned into rectangular tiles;
//! each live-out stage of the group receives an *owned* sub-box per tile,
//! obtained by mapping the tile's half-open boundaries through the stage's
//! scale ratio with ceiling rounding. Because the boundary map is monotone
//! and hits both domain ends, owned boxes partition every live-out's domain:
//! each output point is written by exactly one tile (no write races, a
//! property the integration tests assert).

use crate::domain::BoxDomain;
use crate::interval::Interval;
use crate::ratio::Ratio;
use crate::region::{propagate_regions, GroupEdge, GroupStage};

/// Partition `domain` into tiles of size `tile_sizes` (outermost first).
/// Trailing tiles are clipped to the domain.
pub fn tile_partition(domain: &BoxDomain, tile_sizes: &[i64]) -> Vec<BoxDomain> {
    assert_eq!(domain.ndims(), tile_sizes.len(), "rank mismatch");
    assert!(
        tile_sizes.iter().all(|&t| t > 0),
        "tile sizes must be positive"
    );
    if domain.is_empty() {
        return vec![];
    }
    // per-dimension lists of intervals
    let per_dim: Vec<Vec<Interval>> = domain
        .0
        .iter()
        .zip(tile_sizes)
        .map(|(iv, &t)| {
            let mut v = Vec::new();
            let mut lo = iv.lo;
            while lo <= iv.hi {
                let hi = (lo + t - 1).min(iv.hi);
                v.push(Interval::new(lo, hi));
                lo = hi + 1;
            }
            v
        })
        .collect();
    // cartesian product
    let mut tiles = vec![BoxDomain(Vec::with_capacity(domain.ndims()))];
    for dim in &per_dim {
        let mut next = Vec::with_capacity(tiles.len() * dim.len());
        for prefix in &tiles {
            for iv in dim {
                let mut b = prefix.clone();
                b.0.push(*iv);
                next.push(b);
            }
        }
        tiles = next;
    }
    tiles
}

/// Map one boundary point of a half-open tile interval from reference space
/// into a stage's space with scale `s` (stage index ≈ ref index · s).
///
/// Interiors are 1-based, so the half-open boundary set in reference space is
/// `{1, 1+T, 1+2T, …, N+1}`; the mapped boundary is `ceil((p-1)·s) + 1`,
/// which keeps `1 ↦ 1` and `N+1 ↦ N·s + 1`.
fn scale_boundary(p: i64, s: &Ratio) -> i64 {
    s.apply_ceil(p - 1) + 1
}

/// The owned sub-box of `stage_domain` for a reference-space `tile`, where
/// `scales` gives the per-dimension stage/reference scale ratio.
///
/// The result is clamped to `stage_domain` (for non-power-of-two stragglers).
pub fn owned_region(tile: &BoxDomain, scales: &[Ratio], stage_domain: &BoxDomain) -> BoxDomain {
    assert_eq!(tile.ndims(), scales.len(), "rank mismatch");
    let raw = BoxDomain::new(
        tile.0
            .iter()
            .zip(scales)
            .map(|(iv, s)| {
                if iv.is_empty() {
                    Interval::empty()
                } else {
                    Interval::new(scale_boundary(iv.lo, s), scale_boundary(iv.hi + 1, s) - 1)
                }
            })
            .collect(),
    );
    raw.intersect(stage_domain)
}

/// Redundant-computation statistics for one candidate grouping + tile size.
///
/// `work_ratio` is total points computed across all tiles divided by the
/// points a fusion-free execution would compute (the sum of stage domain
/// sizes for stages that are actually needed). 1.0 means no redundancy;
/// PolyMage's auto-grouping heuristic rejects groupings whose ratio exceeds
/// its overlap threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TilingStats {
    /// Points computed summed over every tile and stage.
    pub tiled_points: i64,
    /// Points a non-overlapped execution computes (sum of stage domains).
    pub base_points: i64,
    /// Number of tiles in the partition.
    pub num_tiles: usize,
    /// Maximum scratchpad points needed by any single tile (sum over stages
    /// of the per-stage alloc box, for non-live-out stages).
    pub max_tile_alloc: i64,
}

impl TilingStats {
    /// Redundant-work ratio (≥ 1 when every stage is live or consumed).
    pub fn work_ratio(&self) -> f64 {
        if self.base_points == 0 {
            1.0
        } else {
            self.tiled_points as f64 / self.base_points as f64
        }
    }
}

/// Evaluate overlapped tiling of a group: partition the reference domain
/// (stage `ref_stage`'s domain) with `tile_sizes`, derive owned regions for
/// live-outs via `scales` (per stage, per dim, stage/reference), propagate
/// regions and accumulate statistics.
///
/// `live_out[s]` marks stages whose full domain must be produced.
pub fn evaluate_tiling(
    stages: &[GroupStage],
    edges: &[GroupEdge],
    ref_stage: usize,
    scales: &[Vec<Ratio>],
    live_out: &[bool],
    tile_sizes: &[i64],
) -> TilingStats {
    let ref_domain = stages[ref_stage].domain.clone();
    let tiles = tile_partition(&ref_domain, tile_sizes);
    let base_points: i64 = stages.iter().map(|s| s.domain.len()).sum();
    let mut tiled_points = 0i64;
    let mut max_tile_alloc = 0i64;
    for tile in &tiles {
        let tile_stages: Vec<GroupStage> = stages
            .iter()
            .enumerate()
            .map(|(i, s)| GroupStage {
                domain: s.domain.clone(),
                owned: if live_out[i] {
                    owned_region(tile, &scales[i], &s.domain)
                } else {
                    BoxDomain::empty(s.domain.ndims())
                },
            })
            .collect();
        let regions = propagate_regions(&tile_stages, edges);
        let mut alloc = 0i64;
        for (i, r) in regions.iter().enumerate() {
            tiled_points += r.compute.len();
            if !live_out[i] {
                alloc += r.alloc.len();
            }
        }
        max_tile_alloc = max_tile_alloc.max(alloc);
    }
    TilingStats {
        tiled_points,
        base_points,
        num_tiles: tiles.len(),
        max_tile_alloc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AxisFootprint, Footprint};

    #[test]
    fn partition_covers_exactly() {
        let dom = BoxDomain::interior(2, 10);
        let tiles = tile_partition(&dom, &[4, 3]);
        assert_eq!(tiles.len(), 3 * 4);
        // exact cover: every point in exactly one tile
        for y in 1..=10 {
            for x in 1..=10 {
                let n = tiles.iter().filter(|t| t.contains_point(&[y, x])).count();
                assert_eq!(n, 1, "point ({y},{x}) covered {n} times");
            }
        }
        let total: i64 = tiles.iter().map(BoxDomain::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn partition_of_empty_domain() {
        assert!(tile_partition(&BoxDomain::empty(2), &[4, 4]).is_empty());
    }

    #[test]
    fn owned_regions_partition_coarse_domain() {
        // ref = fine interior [1,16]; stage = coarse [1,8] at scale 1/2.
        let fine = BoxDomain::interior(1, 16);
        let coarse = BoxDomain::interior(1, 8);
        let half = vec![Ratio::new(1, 2)];
        let tiles = tile_partition(&fine, &[4]);
        let owned: Vec<BoxDomain> = tiles
            .iter()
            .map(|t| owned_region(t, &half, &coarse))
            .collect();
        // each coarse point owned exactly once
        for p in 1..=8i64 {
            let n = owned.iter().filter(|o| o.contains_point(&[p])).count();
            assert_eq!(n, 1, "coarse point {p} owned {n} times");
        }
        // boundaries: tile [1,4] owns coarse [1,2], [5,8] owns [3,4] ...
        assert_eq!(owned[0].0[0], Interval::new(1, 2));
        assert_eq!(owned[1].0[0], Interval::new(3, 4));
    }

    #[test]
    fn owned_regions_partition_with_odd_tiles() {
        // Non-divisible tile size: partition property must still hold.
        let fine = BoxDomain::interior(1, 16);
        let coarse = BoxDomain::interior(1, 8);
        let half = vec![Ratio::new(1, 2)];
        let tiles = tile_partition(&fine, &[5]);
        let owned: Vec<BoxDomain> = tiles
            .iter()
            .map(|t| owned_region(t, &half, &coarse))
            .collect();
        for p in 1..=8i64 {
            let n = owned.iter().filter(|o| o.contains_point(&[p])).count();
            assert_eq!(n, 1, "coarse point {p} owned {n} times");
        }
    }

    #[test]
    fn identity_scale_owned_is_tile() {
        let dom = BoxDomain::interior(2, 8);
        let tiles = tile_partition(&dom, &[4, 4]);
        let one = vec![Ratio::one(), Ratio::one()];
        for t in &tiles {
            assert_eq!(&owned_region(t, &one, &dom), t);
        }
    }

    #[test]
    fn stats_single_stage_no_redundancy() {
        let dom = BoxDomain::interior(2, 16);
        let stages = vec![GroupStage {
            domain: dom,
            owned: BoxDomain::empty(2),
        }];
        let stats = evaluate_tiling(&stages, &[], 0, &[vec![Ratio::one(); 2]], &[true], &[8, 8]);
        assert_eq!(stats.tiled_points, 256);
        assert_eq!(stats.base_points, 256);
        assert_eq!(stats.num_tiles, 4);
        assert!((stats.work_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(stats.max_tile_alloc, 0);
    }

    #[test]
    fn stats_two_stage_overlap() {
        // Two chained radius-1 stages, 16x16, 8x8 tiles: first stage computes
        // up to 10x10 per tile (clamped at domain edges).
        let dom = BoxDomain::interior(2, 16);
        let mk = || GroupStage {
            domain: dom.clone(),
            owned: BoxDomain::empty(2),
        };
        let stages = vec![mk(), mk()];
        let edges = vec![GroupEdge {
            producer: 0,
            consumer: 1,
            footprint: Footprint::uniform(2, AxisFootprint::stencil(1)),
        }];
        let stats = evaluate_tiling(
            &stages,
            &edges,
            1,
            &[vec![Ratio::one(); 2], vec![Ratio::one(); 2]],
            &[false, true],
            &[8, 8],
        );
        // stage 1: 256 points; stage 0: 4 tiles × 9×9 = 324 (one side clamped)
        assert_eq!(stats.tiled_points, 256 + 4 * 81);
        assert_eq!(stats.base_points, 512);
        assert!(stats.work_ratio() > 1.0);
        // scratchpad: stage 0 alloc is 10x10 per tile
        assert_eq!(stats.max_tile_alloc, 100);
    }
}
