//! Backward region propagation through a fused group.
//!
//! Given one tile's *owned* output region for each live-out stage, this pass
//! computes, for every stage in the group, the region the tile must compute
//! (and allocate scratchpad space for) so that all reads resolve. Walking
//! consumers-to-producers and dilating by each edge's footprint produces
//! exactly the symmetric hyper-trapezoidal overlapped tiles of Section 3.1
//! of the paper: each earlier stage grows by its dependence radius, and the
//! growth is scaled across `Restrict`/`Interp` edges.
//!
//! Two boxes are reported per stage:
//!
//! * `compute` — the points the tile evaluates (clamped to the stage domain);
//! * `alloc` — the scratchpad box, which additionally covers ghost/boundary
//!   positions consumers read. Points in `alloc \ compute` hold the boundary
//!   value (zero for the homogeneous Dirichlet problems evaluated); the
//!   runtime zeroes that halo before use.

use crate::access::Footprint;
use crate::domain::BoxDomain;
use crate::interval::Interval;

/// A stage of a fused group, as seen by region propagation.
#[derive(Clone, Debug)]
pub struct GroupStage {
    /// Full iteration domain of the stage (its grid interior).
    pub domain: BoxDomain,
    /// The sub-box of `domain` this tile is responsible for writing to the
    /// stage's full array. Empty for stages that are not live-out.
    pub owned: BoxDomain,
}

/// A producer→consumer dependence edge inside a group.
///
/// Stage indices are positions in the group's topologically-ordered stage
/// list, so `producer < consumer` always holds.
#[derive(Clone, Debug)]
pub struct GroupEdge {
    pub producer: usize,
    pub consumer: usize,
    pub footprint: Footprint,
}

/// The per-stage result of region propagation for one tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRegion {
    /// Points the tile computes (within the stage domain).
    pub compute: BoxDomain,
    /// Scratchpad box covering `compute` plus ghost positions read by
    /// consumers.
    pub alloc: BoxDomain,
}

/// Propagate regions backward through the group.
///
/// `stages` must be in topological order; every edge must satisfy
/// `producer < consumer`.
///
/// # Panics
/// Panics on malformed edges (non-topological, out of range, or rank
/// mismatches between a footprint and the stages it connects).
pub fn propagate_regions(stages: &[GroupStage], edges: &[GroupEdge]) -> Vec<StageRegion> {
    let n = stages.len();
    for e in edges {
        assert!(
            e.producer < e.consumer && e.consumer < n,
            "edge {} -> {} is not topological (n = {n})",
            e.producer,
            e.consumer
        );
        assert_eq!(
            e.footprint.ndims(),
            stages[e.consumer].domain.ndims(),
            "footprint rank must match consumer rank"
        );
        assert_eq!(
            e.footprint.ndims(),
            stages[e.producer].domain.ndims(),
            "footprint rank must match producer rank"
        );
    }

    // raw need accumulated from consumers, not yet clamped to the domain
    let mut raw_need: Vec<BoxDomain> = stages
        .iter()
        .map(|s| BoxDomain::empty(s.domain.ndims()))
        .collect();
    let mut out: Vec<Option<StageRegion>> = vec![None; n];

    for c in (0..n).rev() {
        let alloc = stages[c].owned.hull(&raw_need[c]);
        let compute = alloc.intersect(&stages[c].domain);
        // propagate this stage's computed region to its producers
        for e in edges.iter().filter(|e| e.consumer == c) {
            if compute.is_empty() {
                continue;
            }
            let needed = BoxDomain::new(
                compute
                    .0
                    .iter()
                    .zip(&e.footprint.0)
                    .map(|(iv, fp): (&Interval, _)| fp.input_needed(iv))
                    .collect(),
            );
            raw_need[e.producer] = raw_need[e.producer].hull(&needed);
        }
        out[c] = Some(StageRegion { compute, alloc });
    }

    out.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AxisFootprint;

    fn stencil_edge(p: usize, c: usize, r: i64, ndims: usize) -> GroupEdge {
        GroupEdge {
            producer: p,
            consumer: c,
            footprint: Footprint::uniform(ndims, AxisFootprint::stencil(r)),
        }
    }

    #[test]
    fn smoother_chain_grows_trapezoidally() {
        // Three chained radius-1 smoothing steps on a 2-D interior [1,64]^2.
        // Tile owns [17,32]^2 of the last stage; earlier stages grow by 1
        // per step — the symmetric trapezoid of Figure 5.
        let dom = BoxDomain::interior(2, 64);
        let owned_last = BoxDomain::new(vec![Interval::new(17, 32); 2]);
        let stages = vec![
            GroupStage {
                domain: dom.clone(),
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: dom.clone(),
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: dom.clone(),
                owned: owned_last.clone(),
            },
        ];
        let edges = vec![stencil_edge(0, 1, 1, 2), stencil_edge(1, 2, 1, 2)];
        let r = propagate_regions(&stages, &edges);
        assert_eq!(r[2].compute, owned_last);
        assert_eq!(r[1].compute.0[0], Interval::new(16, 33));
        assert_eq!(r[0].compute.0[0], Interval::new(15, 34));
        // alloc equals compute here (no clamping happened away from edges)
        assert_eq!(r[0].alloc, r[0].compute);
    }

    #[test]
    fn clamping_at_domain_boundary() {
        // Tile at the domain corner: compute clamps to the domain, alloc
        // still covers the ghost reads.
        let dom = BoxDomain::interior(2, 64);
        let owned_last = BoxDomain::new(vec![Interval::new(1, 16); 2]);
        let stages = vec![
            GroupStage {
                domain: dom.clone(),
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: dom,
                owned: owned_last,
            },
        ];
        let edges = vec![stencil_edge(0, 1, 1, 2)];
        let r = propagate_regions(&stages, &edges);
        assert_eq!(r[0].alloc.0[0], Interval::new(0, 17));
        assert_eq!(r[0].compute.0[0], Interval::new(1, 17));
    }

    #[test]
    fn restrict_scales_need_up() {
        // defect (fine, [1,64]) -> restrict (coarse, [1,32]).
        // Tile owns restrict rows [9,16]; defect must compute 2y±1 → [17,33].
        let fine = BoxDomain::interior(2, 64);
        let coarse = BoxDomain::interior(2, 32);
        let owned = BoxDomain::new(vec![Interval::new(9, 16); 2]);
        let stages = vec![
            GroupStage {
                domain: fine,
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: coarse,
                owned,
            },
        ];
        let edges = vec![GroupEdge {
            producer: 0,
            consumer: 1,
            footprint: Footprint::uniform(2, AxisFootprint::new(2, 1, -1, 1)),
        }];
        let r = propagate_regions(&stages, &edges);
        assert_eq!(r[0].compute.0[0], Interval::new(17, 33));
    }

    #[test]
    fn interp_scales_need_down() {
        // error (coarse, [1,32]) -> interp (fine, [1,64]) with taps (x+{0,1})/2.
        // Tile owns interp rows [17,32]; coarse need = [floor(17/2), floor(33/2)] = [8,16].
        let coarse = BoxDomain::interior(2, 32);
        let fine = BoxDomain::interior(2, 64);
        let owned = BoxDomain::new(vec![Interval::new(17, 32); 2]);
        let stages = vec![
            GroupStage {
                domain: coarse,
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: fine,
                owned,
            },
        ];
        let edges = vec![GroupEdge {
            producer: 0,
            consumer: 1,
            footprint: Footprint::uniform(2, AxisFootprint::new(1, 2, 0, 1)),
        }];
        let r = propagate_regions(&stages, &edges);
        assert_eq!(r[0].compute.0[0], Interval::new(8, 16));
    }

    #[test]
    fn diamond_dag_unions_needs() {
        // 0 -> 1, 0 -> 2, {1,2} -> 3: stage 0's need is the union from both
        // intermediate consumers.
        let dom = BoxDomain::interior(2, 64);
        let owned = BoxDomain::new(vec![Interval::new(30, 40); 2]);
        let mk = |o: BoxDomain| GroupStage {
            domain: dom.clone(),
            owned: o,
        };
        let stages = vec![
            mk(BoxDomain::empty(2)),
            mk(BoxDomain::empty(2)),
            mk(BoxDomain::empty(2)),
            mk(owned),
        ];
        let edges = vec![
            stencil_edge(0, 1, 2, 2), // wide radius through stage 1
            stencil_edge(0, 2, 0, 2),
            stencil_edge(1, 3, 0, 2),
            stencil_edge(2, 3, 1, 2),
        ];
        let r = propagate_regions(&stages, &edges);
        // via 1: need [30,40] dilated by 2 → [28,42]; via 2: [29,41] dilated 0 → [29,41]
        assert_eq!(r[0].compute.0[0], Interval::new(28, 42));
        assert_eq!(r[1].compute.0[0], Interval::new(30, 40));
        assert_eq!(r[2].compute.0[0], Interval::new(29, 41));
    }

    #[test]
    fn non_liveout_unused_stage_is_empty() {
        // A stage with no consumers and no owned region computes nothing.
        let dom = BoxDomain::interior(2, 16);
        let stages = vec![
            GroupStage {
                domain: dom.clone(),
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: dom,
                owned: BoxDomain::new(vec![Interval::new(1, 8); 2]),
            },
        ];
        let r = propagate_regions(&stages, &[]);
        assert!(r[0].compute.is_empty());
        assert!(!r[1].compute.is_empty());
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn rejects_backward_edge() {
        let dom = BoxDomain::interior(2, 8);
        let stages = vec![
            GroupStage {
                domain: dom.clone(),
                owned: BoxDomain::empty(2),
            },
            GroupStage {
                domain: dom,
                owned: BoxDomain::empty(2),
            },
        ];
        let _ = propagate_regions(&stages, &[stencil_edge(1, 0, 1, 2).clone()]);
    }
}
