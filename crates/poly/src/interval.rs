//! Inclusive integer intervals — the 1-D building block of every domain and
//! region in the engine.

use std::fmt;

/// An inclusive integer interval `[lo, hi]`. `lo > hi` encodes the empty
/// interval (canonicalised by [`Interval::empty`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

impl Interval {
    /// `[lo, hi]`, inclusive on both ends.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The canonical empty interval.
    pub fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// True when the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of integer points in the interval.
    pub fn len(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.hi - self.lo + 1
        }
    }

    /// Point membership.
    pub fn contains(&self, p: i64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// True when `other` is entirely inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            Interval::empty()
        } else {
            Interval { lo, hi }
        }
    }

    /// Convex hull of the union.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translate by `d`.
    pub fn shift(&self, d: i64) -> Interval {
        if self.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo + d,
                hi: self.hi + d,
            }
        }
    }

    /// Grow by `r` on both sides (the dependence-radius expansion that makes
    /// overlapped tiles trapezoidal).
    pub fn dilate(&self, r: i64) -> Interval {
        if self.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo - r,
                hi: self.hi + r,
            }
        }
    }

    /// True when the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Interval::new(1, 10);
        assert_eq!(a.len(), 10);
        assert!(a.contains(1) && a.contains(10) && !a.contains(11));
        assert!(!a.is_empty());
        assert!(Interval::empty().is_empty());
        assert_eq!(Interval::empty().len(), 0);
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(1, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert_eq!(a.hull(&b), Interval::new(1, 20));
        let c = Interval::new(11, 12);
        assert!(a.intersect(&c).is_empty());
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn hull_with_empty_is_identity() {
        let a = Interval::new(3, 7);
        assert_eq!(a.hull(&Interval::empty()), a);
        assert_eq!(Interval::empty().hull(&a), a);
    }

    #[test]
    fn shift_dilate() {
        let a = Interval::new(2, 4);
        assert_eq!(a.shift(3), Interval::new(5, 7));
        assert_eq!(a.dilate(1), Interval::new(1, 5));
        assert!(Interval::empty().shift(5).is_empty());
        assert!(Interval::empty().dilate(5).is_empty());
    }

    #[test]
    fn containment() {
        let a = Interval::new(0, 10);
        assert!(a.contains_interval(&Interval::new(2, 5)));
        assert!(a.contains_interval(&Interval::empty()));
        assert!(!a.contains_interval(&Interval::new(5, 11)));
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(1, 3).to_string(), "[1, 3]");
        assert_eq!(Interval::empty().to_string(), "∅");
    }
}
