//! Property tests for the polyhedral-lite engine.

use gmg_poly::diamond::split_time_tiling;
use gmg_poly::tiling::{evaluate_tiling, tile_partition};
use gmg_poly::{div_ceil, div_floor, AxisFootprint, BoxDomain, Interval, Ratio};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Floor/ceil division agree with the mathematical definition.
    #[test]
    fn floor_ceil_consistent(a in -1000i64..1000, b in 1i64..50) {
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        prop_assert!(f * b <= a && a < (f + 1) * b);
        prop_assert!((c - 1) * b < a && a <= c * b);
        prop_assert!(c - f <= 1);
        prop_assert_eq!(c == f, a % b == 0);
    }

    /// `input_needed` and `consumers_of` are adjoint for arbitrary
    /// footprints of the shapes multigrid uses.
    #[test]
    fn footprint_adjoint(
        scale in 0usize..3,
        off_min in -3i64..1,
        extra in 0i64..4,
        x in -30i64..30,
        p in -60i64..60,
    ) {
        let (num, den) = [(1, 1), (2, 1), (1, 2)][scale];
        let fp = AxisFootprint::new(num, den, off_min, off_min + extra);
        let forward = fp.input_needed(&Interval::new(x, x)).contains(p);
        let backward = fp.consumers_of(p).contains(x);
        prop_assert_eq!(forward, backward);
    }

    /// Ratios form a commutative group under multiplication (away from 0).
    #[test]
    fn ratio_group_laws(
        a in 1i64..40, b in 1i64..40,
        c in 1i64..40, d in 1i64..40,
    ) {
        let r1 = Ratio::new(a, b);
        let r2 = Ratio::new(c, d);
        prop_assert_eq!(r1.mul(&r2), r2.mul(&r1));
        prop_assert!(r1.mul(&r1.inv()).is_one());
        // floor/ceil bracket the rational value
        for x in [-7i64, 0, 13] {
            let fl = r1.apply_floor(x);
            let ce = r1.apply_ceil(x);
            prop_assert!(fl as f64 <= x as f64 * a as f64 / b as f64 + 1e-9);
            prop_assert!(ce as f64 >= x as f64 * a as f64 / b as f64 - 1e-9);
        }
    }

    /// Box-domain intersection/hull are consistent with membership.
    #[test]
    fn box_ops_membership(
        alo in 0i64..10, alen in 0i64..10,
        blo in 0i64..10, blen in 0i64..10,
        px in -2i64..14, py in -2i64..14,
    ) {
        let a = BoxDomain::new(vec![
            Interval::new(alo, alo + alen),
            Interval::new(alo, alo + alen),
        ]);
        let b = BoxDomain::new(vec![
            Interval::new(blo, blo + blen),
            Interval::new(blo, blo + blen),
        ]);
        let p = [py, px];
        let in_i = a.intersect(&b).contains_point(&p);
        prop_assert_eq!(in_i, a.contains_point(&p) && b.contains_point(&p));
        if a.contains_point(&p) || b.contains_point(&p) {
            prop_assert!(a.hull(&b).contains_point(&p));
        }
    }

    /// Tiled redundant work never drops below the untiled baseline, and a
    /// single full-domain tile has zero redundancy.
    #[test]
    fn tiling_stats_bounds(n in 8i64..40, t in 2i64..16, radius in 0i64..3) {
        use gmg_poly::region::{GroupEdge, GroupStage};
        use gmg_poly::Footprint;
        let dom = BoxDomain::interior(2, n);
        let stages = vec![
            GroupStage { domain: dom.clone(), owned: BoxDomain::empty(2) },
            GroupStage { domain: dom.clone(), owned: BoxDomain::empty(2) },
        ];
        let edges = vec![GroupEdge {
            producer: 0,
            consumer: 1,
            footprint: Footprint::uniform(2, AxisFootprint::stencil(radius)),
        }];
        let scales = vec![vec![Ratio::one(); 2], vec![Ratio::one(); 2]];
        let live = [false, true];
        let tiled = evaluate_tiling(&stages, &edges, 1, &scales, &live, &[t, t]);
        prop_assert!(tiled.work_ratio() >= 1.0 - 1e-12);
        let whole = evaluate_tiling(&stages, &edges, 1, &scales, &live, &[n, n]);
        prop_assert!((whole.work_ratio() - 1.0).abs() < 1e-12);
        // smaller tiles ⇒ at least as much redundant work
        if radius > 0 && t < n {
            prop_assert!(tiled.tiled_points >= whole.tiled_points);
        }
    }

    /// Split tiling is an exact space-time cover for radius 2 as well.
    #[test]
    fn split_tiling_cover_radius2(
        n in 4i64..30,
        steps in 1usize..8,
        w in 3i64..16,
        h in 1usize..5,
    ) {
        let bands = split_time_tiling(n, steps, w, h, 2);
        let dom = Interval::new(1, n);
        let mut count = vec![0u32; steps * n as usize];
        for band in &bands {
            for phase in [&band.phase1, &band.phase2] {
                for trap in phase {
                    for s in 0..band.steps {
                        let rows = trap.rows_at(s as i64, dom);
                        if rows.is_empty() { continue; }
                        for i in rows.lo..=rows.hi {
                            count[(band.t0 + s) * n as usize + (i - 1) as usize] += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    /// Tile partitions are disjoint and total for 3-D too.
    #[test]
    fn tile_partition_3d(n in 1i64..12, t1 in 1i64..6, t2 in 1i64..6, t3 in 1i64..6) {
        let dom = BoxDomain::interior(3, n);
        let tiles = tile_partition(&dom, &[t1, t2, t3]);
        let total: i64 = tiles.iter().map(BoxDomain::len).sum();
        prop_assert_eq!(total, n * n * n);
        for a in 0..tiles.len() {
            for b in a + 1..tiles.len() {
                prop_assert!(!tiles[a].overlaps(&tiles[b]));
            }
        }
    }
}
