//! Chebyshev polynomial smoothing — the "polynomial smoothers" of Ghysels,
//! Klosiewicz & Vanroose (the paper's reference \[7\]) that motivated trading more smoothing work per
//! cycle for arithmetic intensity (the same trade-off behind the paper's
//! 10-0-0 configuration).
//!
//! A degree-`k` Chebyshev smoother damps the error over the eigenvalue
//! window `[λ_lo, λ_hi]` of the (symmetric positive definite) operator
//! `A = −∇²`. We use the standard three-term recurrence in its
//! residual-correction form:
//!
//! ```text
//! x_{j+1} = x_j + α_j (f − A x_j) + β_j (x_j − x_{j−1})
//! ```
//!
//! with the classical coefficients derived from the Chebyshev polynomials
//! on `[λ_lo, λ_hi]`. For the smoothing role the window's lower end is set
//! to a fraction of λ_max (`λ_hi/α` with `α ≈ 10..30`) so the *high*
//! frequency band is damped uniformly — the textbook "Chebyshev smoother".
//!
//! Every step is a plain DSL `Function` (the coefficients differ per step,
//! so a single `TStencil` cannot express the chain; this is exactly the
//! verbosity trade-off §2 of the paper discusses for the basic `Stencil`
//! construct), and the whole chain fuses/tiles like any smoother.

use crate::config::MgConfig;
use gmg_ir::expr::{Expr, Operand};
use gmg_ir::stencil::{stencil_2d, stencil_3d};
use gmg_ir::{FuncId, Pipeline};

/// Chebyshev recurrence coefficients (α_j, β_j) for degree `k` on
/// `[lo, hi]`.
pub fn chebyshev_coefficients(k: usize, lo: f64, hi: f64) -> Vec<(f64, f64)> {
    assert!(k >= 1 && hi > lo && lo > 0.0);
    let theta = 0.5 * (hi + lo); // window centre
    let delta = 0.5 * (hi - lo); // window half-width
    let sigma = theta / delta;
    let mut rho_prev = 1.0 / sigma;
    let mut out = Vec::with_capacity(k);
    // j = 0: x1 = x0 + (1/theta) r0
    out.push((1.0 / theta, 0.0));
    for _ in 1..k {
        let rho = 1.0 / (2.0 * sigma - rho_prev);
        let alpha = 2.0 * rho / delta;
        let beta = rho * rho_prev;
        out.push((alpha, beta));
        rho_prev = rho;
    }
    out
}

/// Largest eigenvalue of the model 5-/7-point `−∇²/h²` on the unit domain
/// (`(2d/h²)·…` upper bound: `4d/h²·sin²(πn h/2) → 4d/h²`).
pub fn lambda_max(ndims: usize, h: f64) -> f64 {
    4.0 * ndims as f64 / (h * h)
}

/// Smoothing window `[λ_max/ratio, λ_max]`; `ratio = 20` is a common
/// choice.
pub fn smoothing_window(ndims: usize, h: f64, ratio: f64) -> (f64, f64) {
    let hi = lambda_max(ndims, h);
    (hi / ratio, hi)
}

/// `A v` as a stencil expression for an operand (for building residuals).
fn apply_a(ndims: usize, v: Operand, h: f64) -> Expr {
    let inv_h2 = 1.0 / (h * h);
    match ndims {
        2 => stencil_2d(
            v,
            &[
                vec![0.0, -1.0, 0.0],
                vec![-1.0, 4.0, -1.0],
                vec![0.0, -1.0, 0.0],
            ],
            inv_h2,
        ),
        3 => {
            let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
            w[1][1][1] = 6.0;
            for (z, y, x) in [
                (0, 1, 1),
                (2, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (1, 1, 0),
                (1, 1, 2),
            ] {
                w[z][y][x] = -1.0;
            }
            stencil_3d(v, &w, inv_h2)
        }
        _ => panic!("unsupported rank"),
    }
}

/// Emit a degree-`k` Chebyshev smoothing chain into `p`, starting from the
/// iterate `v` (`None` = zero) with RHS `f`, at `level` of `cfg`. Returns
/// the final iterate's function.
pub fn build_chebyshev_chain(
    p: &mut Pipeline,
    cfg: &MgConfig,
    name_prefix: &str,
    v: Option<FuncId>,
    f: FuncId,
    level: u32,
    degree: usize,
) -> FuncId {
    let nd = cfg.ndims;
    let n = cfg.n_at(level);
    let h = cfg.h_at(level);
    let (lo, hi) = smoothing_window(nd, h, 20.0);
    let coeffs = chebyshev_coefficients(degree, lo, hi);
    let zero = vec![0i64; nd];

    let read = |fid: Option<FuncId>, off: &[i64]| -> Expr {
        match fid {
            Some(id) => Operand::Func(id).at(off),
            None => Expr::Const(0.0),
        }
    };

    let mut xm1: Option<FuncId> = None; // x_{j-1}
    let mut x = v; // x_j
    for (j, (alpha, beta)) in coeffs.iter().enumerate() {
        // r_j = f - A x_j (folds to f when x_j is the zero grid)
        let residual: Expr = match x {
            Some(xid) => Operand::Func(f).at(&zero) - apply_a(nd, Operand::Func(xid), h),
            None => Operand::Func(f).at(&zero) + Expr::Const(0.0),
        };
        let mut expr = read(x, &zero) + *alpha * residual;
        if *beta != 0.0 {
            expr = expr + *beta * (read(x, &zero) - read(xm1, &zero));
        }
        let name = format!("{name_prefix}_cheb{j}_L{level}");
        let next = p.function(&name, nd, n, level, expr);
        xm1 = x;
        x = Some(next);
    }
    x.expect("degree >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CycleType, SmoothSteps};
    use gmg_ir::{ParamBindings, StageGraph};

    #[test]
    fn coefficients_match_recurrence_structure() {
        let c = chebyshev_coefficients(4, 1.0, 10.0);
        assert_eq!(c.len(), 4);
        assert!((c[0].0 - 1.0 / 5.5).abs() < 1e-12);
        assert_eq!(c[0].1, 0.0);
        for (a, b) in &c[1..] {
            assert!(*a > 0.0 && *b > 0.0 && *b < 1.0);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_window() {
        let _ = chebyshev_coefficients(3, 5.0, 2.0);
    }

    #[test]
    fn chain_builds_and_validates() {
        let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
        let mut p = Pipeline::new("cheb");
        let v = p.input("V", 2, 63, cfg.levels - 1);
        let f = p.input("F", 2, 63, cfg.levels - 1);
        let out = build_chebyshev_chain(&mut p, &cfg, "pre", Some(v), f, cfg.levels - 1, 4);
        p.mark_output(out);
        let g = StageGraph::build(&p, &ParamBindings::new());
        assert_eq!(g.num_compute_stages(), 4);
        assert!(gmg_ir::validate::validate(&p, &g).is_empty());
    }

    /// Chebyshev smoothing must damp the high-frequency half of the
    /// spectrum much harder than a comparable-cost Jacobi chain.
    #[test]
    fn damps_high_frequencies_better_than_jacobi() {
        use gmg_runtime::interp::run_reference;
        let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
        let level = cfg.levels - 1;
        let n = cfg.n_at(level);
        let e = (n + 2) as usize;
        let h = cfg.h_at(level);

        // error = a mid-window mode (k = 7 on n = 31 sits near λ_max/9):
        // weighted Jacobi damps the top of the spectrum well but is weak
        // here, while Chebyshev is uniform over the whole window
        let k = 7.0 * std::f64::consts::PI;
        let mut v0 = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                v0[y * e + x] = (k * y as f64 * h).sin() * (k * x as f64 * h).sin();
            }
        }
        let f0 = vec![0.0; e * e];
        let degree = 6;

        // Chebyshev chain
        let mut pc = Pipeline::new("cheb");
        let v = pc.input("V", 2, n, level);
        let f = pc.input("F", 2, n, level);
        let out = build_chebyshev_chain(&mut pc, &cfg, "s", Some(v), f, level, degree);
        pc.mark_output(out);
        let g = StageGraph::build(&pc, &ParamBindings::new());
        let vals = run_reference(&g, &[("V", &v0), ("F", &f0)]);
        let cheb_out = &vals[&g.stages.last().unwrap().name];

        // Jacobi chain of the same length for comparison
        let mut pj = Pipeline::new("jac");
        let vj = pj.input("V", 2, n, level);
        let fj = pj.input("F", 2, n, level);
        let w = cfg.omega * h * h / 4.0;
        let sm = pj.tstencil(
            "sm",
            2,
            n,
            level,
            gmg_ir::StepCount::Fixed(degree),
            Some(vj),
            Operand::State.at(&[0, 0])
                - w * (apply_a(2, Operand::State, h) - Operand::Func(fj).at(&[0, 0])),
        );
        pj.mark_output(sm);
        let gj = StageGraph::build(&pj, &ParamBindings::new());
        let valsj = run_reference(&gj, &[("V", &v0), ("F", &f0)]);
        let jac_out = &valsj[&format!("sm.s{}", degree - 1)];

        let norm = |b: &Vec<f64>| (b.iter().map(|x| x * x).sum::<f64>() / b.len() as f64).sqrt();
        let nc = norm(cheb_out);
        let nj = norm(jac_out);
        assert!(
            nc < nj * 0.7,
            "Chebyshev ({nc:.2e}) should damp mid-window modes better than Jacobi ({nj:.2e})"
        );
    }

    /// The chain, compiled and optimized, matches the interpreter.
    #[test]
    fn optimized_chain_matches_interpreter() {
        use gmg_runtime::interp::run_reference;
        use gmg_runtime::Engine;
        use polymg::{compile, PipelineOptions, Variant};
        let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
        let level = cfg.levels - 1;
        let n = cfg.n_at(level);
        let e = (n + 2) as usize;

        let mut p = Pipeline::new("cheb-opt");
        let v = p.input("V", 2, n, level);
        let f = p.input("F", 2, n, level);
        let out = build_chebyshev_chain(&mut p, &cfg, "s", Some(v), f, level, 5);
        p.mark_output(out);

        let mut v0 = vec![0.0; e * e];
        let mut f0 = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                v0[y * e + x] = ((y * 13 + x * 7) % 5) as f64 - 2.0;
                f0[y * e + x] = ((y * 3 + x * 11) % 7) as f64 - 3.0;
            }
        }
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = vec![8, 16];
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let graph = plan.graph.clone();
        let out_name = graph.stages.last().unwrap().name.clone();
        let mut engine = Engine::new(plan);
        let mut got = vec![0.0; e * e];
        engine
            .run(&[("V", &v0), ("F", &f0)], vec![(&out_name, &mut got)])
            .unwrap();
        let reference = run_reference(&graph, &[("V", &v0), ("F", &f0)]);
        let want = &reference[&out_name];
        let max = got
            .iter()
            .zip(want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max < 1e-11, "deviation {max}");
    }
}
