//! Cycle drivers, residual norms and problem setup.
//!
//! The iteration over whole multigrid cycles is *external* to the DSL
//! pipeline (§2) — this module owns that loop: `v ← cycle(v, f)` until the
//! iteration budget is spent (the paper's Table 2 iteration counts) or a
//! residual tolerance is reached.

use crate::config::MgConfig;
use crate::cycles::build_cycle_pipeline;
use crate::handopt::HandOpt;
use gmg_ir::ParamBindings;
use gmg_runtime::{BatchRhs, Engine, ExecError, RunStats};
use gmg_trace::Trace;
use polymg::{CompiledPipeline, PipelineOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Anything that can run one multigrid cycle in place.
pub trait CycleRunner {
    /// `v ← cycle(v, f)`. Buffers are dense `(n+2)^d`, ghost rings hold
    /// boundary values.
    fn cycle(&mut self, v: &mut [f64], f: &[f64]);

    /// Display label of the variant.
    fn label(&self) -> String;

    /// Install a trace for per-stage instrumentation. Runners without an
    /// instrumented execution path (the hand-optimized baselines) ignore it;
    /// per-cycle events are still recorded by [`run_cycles_traced`].
    fn set_trace(&mut self, _trace: Trace) {}
}

/// DSL-compiled runner (any PolyMG variant).
pub struct DslRunner {
    engine: Engine,
    out: Vec<f64>,
    /// Per-RHS live-out staging for batched cycles (lazily sized).
    outs: Vec<Vec<f64>>,
    /// Extra read-only external inputs bound on every run (the
    /// variable-coefficient scenario's `A` grid).
    extras: Vec<(String, Vec<f64>)>,
    label: String,
}

impl DslRunner {
    /// Compile `cfg` under `opts` (via the global plan cache — repeated
    /// construction with identical structure reuses the compiled plan) and
    /// wrap the engine.
    pub fn new(cfg: &MgConfig, opts: PipelineOptions, label: &str) -> Result<Self, Vec<String>> {
        DslRunner::from_pipeline(&build_cycle_pipeline(cfg), cfg, opts, label)
    }

    /// Like [`DslRunner::new`] but for a caller-built pipeline (the
    /// scenario builders emit variable-coefficient / smoother-sequence
    /// structures that `build_cycle_pipeline` does not).
    pub fn from_pipeline(
        pipeline: &gmg_ir::Pipeline,
        cfg: &MgConfig,
        opts: PipelineOptions,
        label: &str,
    ) -> Result<Self, Vec<String>> {
        // chaos is a runtime property: it is stripped from the (cacheable)
        // plan by compile, so arm the engine with it directly
        let chaos = opts.chaos;
        let plan = polymg::compile_cached(pipeline, &ParamBindings::new(), opts)?;
        let out_len = cfg.alloc_len(cfg.levels - 1);
        let mut engine = Engine::new(plan);
        engine.set_chaos(chaos);
        Ok(DslRunner {
            engine,
            out: vec![0.0; out_len],
            outs: Vec::new(),
            extras: Vec::new(),
            label: label.to_string(),
        })
    }

    /// Bind an extra read-only external grid (e.g. `("A", coeff)`) on
    /// every subsequent run. Re-binding a name replaces it.
    pub fn bind_extra(&mut self, name: &str, data: Vec<f64>) {
        if let Some(e) = self.extras.iter_mut().find(|(n, _)| n == name) {
            e.1 = data;
        } else {
            self.extras.push((name.to_string(), data));
        }
    }

    /// Wrap an already-compiled plan (used by the harness for custom option
    /// combinations, e.g. the Figure 11b ablation).
    pub fn from_plan(plan: impl Into<Arc<CompiledPipeline>>, cfg: &MgConfig) -> Self {
        let plan = plan.into();
        let label = format!(
            "custom({}, {})",
            plan.graph.pipeline_name,
            plan.options.summary()
        );
        DslRunner {
            engine: Engine::new(plan),
            out: vec![0.0; cfg.alloc_len(cfg.levels - 1)],
            outs: Vec::new(),
            extras: Vec::new(),
            label,
        }
    }

    /// The underlying engine (for plan inspection / pool stats).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (pool stat resets, trace installation).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Run one cycle and also report engine stats. Binding failures (a
    /// missing or mis-sized external array) surface as a typed
    /// [`ExecError`] instead of a panic.
    pub fn cycle_with_stats(&mut self, v: &mut [f64], f: &[f64]) -> Result<RunStats, ExecError> {
        let mut inputs: Vec<(&str, &[f64])> = vec![("V", v), ("F", f)];
        for (name, data) in &self.extras {
            inputs.push((name, data));
        }
        let stats = self.engine.run(&inputs, vec![("out", &mut self.out)])?;
        v.copy_from_slice(&self.out);
        Ok(stats)
    }

    /// Run one cycle over a batch of right-hand sides in a single engine
    /// pass: `vs[k] ← cycle(vs[k], fs[k])` for every k, bitwise-identical
    /// to calling [`DslRunner::cycle_with_stats`] per RHS but with one
    /// allocation/ghost-fill setup amortised across the sweep.
    pub fn cycle_batch_with_stats(
        &mut self,
        vs: &mut [Vec<f64>],
        fs: &[&[f64]],
    ) -> Result<RunStats, ExecError> {
        if vs.is_empty() || vs.len() != fs.len() {
            return Err(ExecError::PlanViolation(
                "batch needs equal, nonzero v and f counts",
            ));
        }
        let out_len = self.out.len();
        self.outs.resize_with(vs.len(), || vec![0.0; out_len]);
        let batch = vs
            .iter()
            .zip(fs)
            .zip(self.outs.iter_mut())
            .map(|((v, f), out)| {
                let mut inputs: Vec<(&str, &[f64])> = vec![("V", v.as_slice()), ("F", *f)];
                for (name, data) in &self.extras {
                    inputs.push((name, data));
                }
                BatchRhs {
                    inputs,
                    outputs: vec![("out", out.as_mut_slice())],
                }
            })
            .collect();
        let stats = self.engine.run_batch(batch)?;
        for (v, out) in vs.iter_mut().zip(&self.outs) {
            v.copy_from_slice(out);
        }
        Ok(stats)
    }
}

impl CycleRunner for DslRunner {
    fn cycle(&mut self, v: &mut [f64], f: &[f64]) {
        self.cycle_with_stats(v, f).expect("cycle execution failed");
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn set_trace(&mut self, trace: Trace) {
        self.engine.set_trace(trace);
    }
}

impl CycleRunner for HandOpt {
    fn cycle(&mut self, v: &mut [f64], f: &[f64]) {
        HandOpt::cycle(self, v, f);
    }

    fn label(&self) -> String {
        HandOpt::label(self).to_string()
    }
}

/// Discrete L2 norm of `f − A v` over the interior, `A = −∇²` with the
/// 5-/7-point stencil.
pub fn residual_norm(ndims: usize, n: i64, h: f64, v: &[f64], f: &[f64]) -> f64 {
    let e = (n + 2) as usize;
    let inv_h2 = 1.0 / (h * h);
    let mut sum = 0.0;
    match ndims {
        2 => {
            for y in 1..=n as usize {
                let s = y * e;
                for x in 1..=n as usize {
                    let a = (4.0 * v[s + x]
                        - v[s + x - 1]
                        - v[s + x + 1]
                        - v[s - e + x]
                        - v[s + e + x])
                        * inv_h2;
                    let r = f[s + x] - a;
                    sum += r * r;
                }
            }
            (sum / (n as f64 * n as f64)).sqrt()
        }
        3 => {
            let pb = e * e;
            for z in 1..=n as usize {
                for y in 1..=n as usize {
                    let s = z * pb + y * e;
                    for x in 1..=n as usize {
                        let a = (6.0 * v[s + x]
                            - v[s + x - 1]
                            - v[s + x + 1]
                            - v[s - e + x]
                            - v[s + e + x]
                            - v[s - pb + x]
                            - v[s + pb + x])
                            * inv_h2;
                        let r = f[s + x] - a;
                        sum += r * r;
                    }
                }
            }
            (sum / (n as f64).powi(3)).sqrt()
        }
        _ => panic!("unsupported rank"),
    }
}

/// Manufactured Poisson problem for `−∇²u = f`: returns `(v0, f, u_exact)`
/// with zero initial guess.
pub fn setup_poisson(cfg: &MgConfig) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = cfg.n_at(cfg.levels - 1);
    let e = (n + 2) as usize;
    let len = cfg.alloc_len(cfg.levels - 1);
    let v0 = vec![0.0; len];
    let mut f = vec![0.0; len];
    let mut u = vec![0.0; len];
    match cfg.ndims {
        2 => {
            {
                let mut fv = gmg_grid::View2Mut::dense(&mut f, e, e);
                gmg_grid::init::poisson_rhs_2d(&mut fv);
            }
            // grid helper targets ∇²u = f; we solve −∇²u = f ⇒ negate
            for x in f.iter_mut() {
                *x = -*x;
            }
            let mut uv = gmg_grid::View2Mut::dense(&mut u, e, e);
            gmg_grid::init::poisson_exact_2d(&mut uv);
        }
        3 => {
            {
                let mut fv = gmg_grid::View3Mut::dense(&mut f, e, e, e);
                gmg_grid::init::poisson_rhs_3d(&mut fv);
            }
            for x in f.iter_mut() {
                *x = -*x;
            }
            let mut uv = gmg_grid::View3Mut::dense(&mut u, e, e, e);
            gmg_grid::init::poisson_exact_3d(&mut uv);
        }
        _ => panic!("unsupported rank"),
    }
    (v0, f, u)
}

/// Result of a fixed-iteration solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Residual norm before the first cycle.
    pub res0: f64,
    /// Residual norm after every cycle.
    pub norms: Vec<f64>,
    /// Wall-clock time of the cycle iterations (norm evaluation excluded).
    pub elapsed: Duration,
}

impl SolveResult {
    /// Final residual norm.
    pub fn res_final(&self) -> f64 {
        *self.norms.last().unwrap_or(&self.res0)
    }

    /// Geometric-mean convergence factor per cycle.
    pub fn conv_factor(&self) -> f64 {
        if self.norms.is_empty() || self.res0 == 0.0 {
            return 1.0;
        }
        (self.res_final() / self.res0).powf(1.0 / self.norms.len() as f64)
    }
}

/// Run `iters` cycles, recording residual norms.
pub fn run_cycles(
    runner: &mut dyn CycleRunner,
    cfg: &MgConfig,
    v: &mut [f64],
    f: &[f64],
    iters: usize,
) -> SolveResult {
    run_cycles_traced(runner, cfg, v, f, iters, &Trace::disabled())
}

/// Like [`run_cycles`], additionally emitting one trace event per cycle
/// (wall time of the cycle + residual norm after it) so a profile shows
/// where convergence stalls or a variant diverges.
pub fn run_cycles_traced(
    runner: &mut dyn CycleRunner,
    cfg: &MgConfig,
    v: &mut [f64],
    f: &[f64],
    iters: usize,
    trace: &Trace,
) -> SolveResult {
    let n = cfg.n_at(cfg.levels - 1);
    let h = cfg.h_at(cfg.levels - 1);
    let res0 = residual_norm(cfg.ndims, n, h, v, f);
    let mut norms = Vec::with_capacity(iters);
    let mut elapsed = Duration::ZERO;
    for i in 0..iters {
        let t0 = Instant::now();
        runner.cycle(v, f);
        let dt = t0.elapsed();
        elapsed += dt;
        let norm = residual_norm(cfg.ndims, n, h, v, f);
        norms.push(norm);
        trace.record_cycle(i as u64, dt.as_nanos() as u64, norm);
    }
    SolveResult {
        res0,
        norms,
        elapsed,
    }
}

/// Timing-only driver (no norm evaluation between cycles) — what the
/// benchmark harness uses.
pub fn time_cycles(
    runner: &mut dyn CycleRunner,
    v: &mut [f64],
    f: &[f64],
    iters: usize,
) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        runner.cycle(v, f);
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CycleType, SmoothSteps};
    use polymg::Variant;

    #[test]
    fn residual_norm_zero_for_exact_discrete_solution() {
        // build f = A u for a random u: residual must vanish
        let n = 7i64;
        let e = (n + 2) as usize;
        let h = 1.0 / (n + 1) as f64;
        let mut u = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                u[y * e + x] = ((y * 7 + x * 3) % 5) as f64;
            }
        }
        let inv_h2 = 1.0 / (h * h);
        let mut f = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                let s = y * e + x;
                f[s] = (4.0 * u[s] - u[s - 1] - u[s + 1] - u[s - e] - u[s + e]) * inv_h2;
            }
        }
        assert!(residual_norm(2, n, h, &u, &f) < 1e-10);
    }

    #[test]
    fn dsl_vcycle_converges_2d() {
        // convergence check wants an adequate coarsest-level solve; the
        // paper's 4-4-4 deliberately under-solves the coarsest level (it is
        // a performance benchmark), so use 4-50-4 here
        let cfg = MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 4,
                coarse: 50,
                post: 4,
            },
        );
        let mut runner = DslRunner::new(
            &cfg,
            PipelineOptions::for_variant(Variant::OptPlus, 2),
            "polymg-opt+",
        )
        .unwrap();
        let (mut v, f, _) = setup_poisson(&cfg);
        let r = run_cycles(&mut runner, &cfg, &mut v, &f, 6);
        assert!(
            r.conv_factor() < 0.22,
            "V-cycle convergence factor too weak: {}",
            r.conv_factor()
        );
        assert!(r.res_final() < r.res0 * 1e-3);
    }

    #[test]
    fn handopt_vcycle_converges_3d() {
        let cfg = MgConfig::new(
            3,
            31,
            CycleType::V,
            SmoothSteps {
                pre: 4,
                coarse: 50,
                post: 4,
            },
        );
        let mut runner = HandOpt::new(cfg.clone());
        let (mut v, f, _) = setup_poisson(&cfg);
        let r = run_cycles(&mut runner, &cfg, &mut v, &f, 6);
        assert!(
            r.conv_factor() < 0.25,
            "convergence factor too weak: {}",
            r.conv_factor()
        );
    }

    #[test]
    fn dsl_matches_handopt_exactly() {
        // Same math, same operator order ⇒ results agree to round-off.
        let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
        let mut dsl = DslRunner::new(
            &cfg,
            PipelineOptions::for_variant(Variant::Naive, 2),
            "polymg-naive",
        )
        .unwrap();
        let mut hand = HandOpt::new(cfg.clone());
        let (v0, f, _) = setup_poisson(&cfg);
        let mut v1 = v0.clone();
        let mut v2 = v0;
        for _ in 0..2 {
            dsl.cycle(&mut v1, &f);
            hand.cycle(&mut v2, &f);
        }
        let mut max = 0.0f64;
        for (a, b) in v1.iter().zip(&v2) {
            max = max.max((a - b).abs());
        }
        assert!(max < 1e-11, "DSL vs handopt deviation {max}");
    }

    #[test]
    fn wcycle_converges_faster_per_cycle_than_vcycle() {
        let mk = |cy| MgConfig::new(2, 63, cy, SmoothSteps::s444());
        let run = |cfg: &MgConfig| {
            let mut r = HandOpt::new(cfg.clone());
            let (mut v, f, _) = setup_poisson(cfg);
            run_cycles(&mut r, cfg, &mut v, &f, 4).conv_factor()
        };
        let v = run(&mk(CycleType::V));
        let w = run(&mk(CycleType::W));
        assert!(w <= v * 1.05, "W-cycle ({w}) should beat V-cycle ({v})");
    }

    #[test]
    fn solution_error_shrinks_toward_discretisation() {
        let cfg = MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 4,
                coarse: 50,
                post: 4,
            },
        );
        let mut runner = HandOpt::new(cfg.clone());
        let (mut v, f, u_exact) = setup_poisson(&cfg);
        run_cycles(&mut runner, &cfg, &mut v, &f, 10);
        let mut max_err = 0.0f64;
        for (a, b) in v.iter().zip(&u_exact) {
            max_err = max_err.max((a - b).abs());
        }
        // O(h²) discretisation error, h = 1/64 ⇒ ~2.4e-4 × constant
        assert!(max_err < 2e-3, "solution error {max_err}");
        assert!(max_err > 0.0);
    }
}
