//! # gmg-multigrid — geometric multigrid over the PolyMG DSL
//!
//! The benchmark layer of the reproduction. It provides:
//!
//! * [`config`] — problem/cycle configuration (V/W/F cycles, 2-D/3-D,
//!   the paper's 4-4-4 and 10-0-0 smoothing configurations, problem-size
//!   classes);
//! * [`cycles`] — the DSL builders: a recursive cycle builder in the style
//!   of the paper's Figure 3 that emits one feed-forward pipeline per
//!   multigrid cycle (the iteration over cycles stays external, §2);
//! * [`handopt`] — the `handopt` baseline: a hand-written multigrid with
//!   explicit loop parallelisation, two modulo buffers per level and pooled
//!   allocations (modelled on the Ghysels & Vanroose code the paper
//!   compares against);
//! * [`pluto`] — `handopt+pluto`: the same baseline with its smoothing
//!   loops time-tiled by the concurrent-start split/diamond schedule;
//! * [`scenario`] — builders that translate `polymg::scenario` descriptors
//!   into pipelines: variable-coefficient operators, smoother-sequence
//!   swaps (RB-GS, Chebyshev), DSL-native FMG prolongation;
//! * [`solver`] — drivers that iterate cycles to convergence and measure
//!   residual norms, used by the correctness tests and the benchmark
//!   harness.
//!
//! Grid convention: vertex-centred hierarchy, interior sizes `2^k − 1`,
//! allocation `(2^k + 1)^d` including the Dirichlet ghost ring, solving
//! `−∇²u = f` on the unit square/cube with homogeneous boundaries.

pub mod chebyshev;
pub mod config;
pub mod cycles;
pub mod fmg;
pub mod handopt;
pub mod pluto;
pub mod scenario;
pub mod solver;

pub use config::{CycleType, MgConfig, SmoothSteps};
pub use cycles::{build_cycle_pipeline, build_varcoef_cycle_pipeline};
pub use scenario::{build_scenario_pipeline, scenario_runner, ScenarioSpec};
pub use solver::{residual_norm, CycleRunner, DslRunner, SolveResult};
