//! DSL builders for multigrid cycles — the Rust counterpart of the paper's
//! Figure 3 program.
//!
//! `build_cycle_pipeline` emits one feed-forward pipeline describing a full
//! V-, W- or F-cycle: pre-smoothing (`TStencil`), defect, `Restrict`,
//! recursive coarse solve, `Interp`, correction, post-smoothing — recursing
//! exactly like the paper's `rec_v_cycle`. Zero-step smoothers and
//! zero-initial-guess recursion (`v = None`) are expressed naturally and
//! folded by the compiler.

use crate::config::{CycleType, MgConfig, OperatorKind};
use gmg_ir::expr::{Expr, Operand};
use gmg_ir::stencil::{
    restrict_full_weighting_2d, restrict_full_weighting_3d, stencil_2d, stencil_3d,
};
use gmg_ir::{FuncId, Pipeline, StepCount};

/// The Poisson operator's stencil weights `A = −∇²` (times `h²`):
/// `[−1 …; −1 2d −1; … −1]`.
fn a_weights_2d() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ]
}

fn a_weights_3d() -> Vec<Vec<Vec<f64>>> {
    let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
    w[1][1][1] = 6.0;
    for (z, y, x) in [
        (0, 1, 1),
        (2, 1, 1),
        (1, 0, 1),
        (1, 2, 1),
        (1, 1, 0),
        (1, 1, 2),
    ] {
        w[z][y][x] = -1.0;
    }
    w
}

/// The Mehrstellen (compact 9-point) 2-D operator `A = −∇²` (times `h²`):
/// `(1/6)·[−1 −4 −1; −4 20 −4; −1 −4 −1]`.
fn dense_weights_2d() -> Vec<Vec<f64>> {
    vec![
        vec![-1.0 / 6.0, -4.0 / 6.0, -1.0 / 6.0],
        vec![-4.0 / 6.0, 20.0 / 6.0, -4.0 / 6.0],
        vec![-1.0 / 6.0, -4.0 / 6.0, -1.0 / 6.0],
    ]
}

/// The Mehrstellen (compact 27-point) 3-D operator: center `128/30`, faces
/// `−14/30`, edges `−3/30`, corners `−1/30` (weights sum to zero).
fn dense_weights_3d() -> Vec<Vec<Vec<f64>>> {
    let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
    for (z, row) in w.iter_mut().enumerate() {
        for (y, col) in row.iter_mut().enumerate() {
            for (x, v) in col.iter_mut().enumerate() {
                let off_axis =
                    (z != 1) as usize + (y != 1) as usize + (x != 1) as usize;
                *v = match off_axis {
                    0 => 128.0 / 30.0,
                    1 => -14.0 / 30.0,
                    2 => -3.0 / 30.0,
                    _ => -1.0 / 30.0,
                };
            }
        }
    }
    w
}

/// Diagonal (center weight) of `A` — the Jacobi damping denominator.
fn a_diag(ndims: usize, op: OperatorKind) -> f64 {
    match (op, ndims) {
        (OperatorKind::Star, d) => 2.0 * d as f64,
        (OperatorKind::Dense, 2) => 20.0 / 6.0,
        (OperatorKind::Dense, _) => 128.0 / 30.0,
    }
}

/// `A·v` scaled by `1/h²` as an expression.
fn apply_a(ndims: usize, op: OperatorKind, v: Operand, h: f64) -> Expr {
    let inv_h2 = 1.0 / (h * h);
    match (op, ndims) {
        (OperatorKind::Star, 2) => stencil_2d(v, &a_weights_2d(), inv_h2),
        (OperatorKind::Star, _) => stencil_3d(v, &a_weights_3d(), inv_h2),
        (OperatorKind::Dense, 2) => stencil_2d(v, &dense_weights_2d(), inv_h2),
        (OperatorKind::Dense, _) => stencil_3d(v, &dense_weights_3d(), inv_h2),
    }
}

/// Weighted-Jacobi step expression: `v − w·(A v − f)` with
/// `w = ω h² / diag(A)` (the paper's Figure 3 smoother with the canonical
/// weight).
fn jacobi_expr(ndims: usize, op: OperatorKind, h: f64, omega: f64, f: Operand) -> Expr {
    let w = omega * h * h / a_diag(ndims, op);
    Operand::State.at(&vec![0; ndims])
        - w * (apply_a(ndims, op, Operand::State, h) - f.at(&vec![0; ndims]))
}

/// Is a parity combination a "red" point (coordinate sum even)?
fn is_red(combo: &[gmg_ir::Parity]) -> bool {
    combo
        .iter()
        .filter(|p| matches!(p, gmg_ir::Parity::Odd))
        .count()
        % 2
        == 0
}

/// The parity `Case` list of one GSRB half-sweep: points of the active
/// colour take the Gauss–Seidel update `(Σ neighbours + h²·f) / (2d)`,
/// the other colour copies through. `prev = None` encodes a zero previous
/// iterate (then the update is `h²f/(2d)` and the copy is 0).
fn gsrb_cases(
    ndims: usize,
    h: f64,
    red: bool,
    prev: Option<FuncId>,
    f: FuncId,
) -> Vec<(gmg_ir::ParityPattern, Expr)> {
    use gmg_ir::{Parity, ParityPattern};
    let diag = 2.0 * ndims as f64;
    let zero = vec![0i64; ndims];
    let read_prev = |off: &[i64]| -> Expr {
        match prev {
            Some(p) => Operand::Func(p).at(off),
            None => Expr::Const(0.0),
        }
    };
    let neighbours = || -> Expr {
        let mut acc: Option<Expr> = None;
        for d in 0..ndims {
            for s in [-1i64, 1] {
                let mut off = vec![0i64; ndims];
                off[d] = s;
                let t = read_prev(&off);
                acc = Some(match acc {
                    None => t,
                    Some(a) => a + t,
                });
            }
        }
        acc.unwrap()
    };
    let update = (neighbours() + h * h * Operand::Func(f).at(&zero)) / diag;
    let copy = read_prev(&zero);

    let mut cases = Vec::new();
    let mut combos = vec![vec![]];
    for _ in 0..ndims {
        let mut next = Vec::new();
        for c in &combos {
            for p in [Parity::Even, Parity::Odd] {
                let mut c2: Vec<Parity> = c.clone();
                c2.push(p);
                next.push(c2);
            }
        }
        combos = next;
    }
    for combo in combos {
        let expr = if is_red(&combo) == red {
            update.clone()
        } else {
            copy.clone()
        };
        cases.push((ParityPattern(combo), expr));
    }
    cases
}

/// Internal builder state (unique-name counter).
struct Builder<'a> {
    p: &'a mut Pipeline,
    cfg: &'a MgConfig,
    visit: usize,
    /// Finest-level coefficient grid for the variable-coefficient scenario
    /// (`a(x)·(−∇²u) = f`); coarse-grid correction stays constant-coefficient.
    coeff: Option<FuncId>,
    /// The reciprocal grid `a⁻¹(x)` (second coefficient input `Ainv`):
    /// the Jacobi update multiplies by it — see [`Builder::split_smoother`].
    coeff_inv: Option<FuncId>,
    /// Apply the operator as its own stage even without a coefficient —
    /// the structural twin of the coefficient path, used to pin the
    /// variable-coefficient kernels bitwise against the constant
    /// specialized/SIMD ones (with `a ≡ 1` both emit identical tap lists).
    split_op: bool,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self, base: &str, level: u32) -> String {
        self.visit += 1;
        format!("{base}_L{level}_v{}", self.visit)
    }

    fn finest(&self) -> u32 {
        self.cfg.levels - 1
    }

    /// Does `level` use the split-operator (possibly coefficient-scaled)
    /// stage forms?
    fn split_at(&self, level: u32) -> bool {
        (self.coeff.is_some() || self.split_op) && level == self.finest()
    }

    /// Jacobi smoothing with the operator application as its own stage:
    /// `av = [a ·] (A v)` then `v' = v − w·(av − f)[·a⁻¹]`. Keeping the
    /// two stages separate means the `v` identity tap and the operator
    /// taps never merge, so the constant (`split_op`) twin lowers to the
    /// exact same tap lists as the coefficient form with `a ≡ 1`.
    ///
    /// The update scales by the local reciprocal `a⁻¹(x)`: the diagonal
    /// of `a·(−∇²)` is `a·a_diag/h²`, so proper weighted Jacobi scales
    /// the residual by `ω·h²/(a_diag·a)`. Folding `a` into the fixed
    /// weight instead (or dropping it) makes the effective weight grow
    /// with `a` — wherever `a·ω` exceeds the constant-coefficient
    /// stability bound the highest-frequency modes *amplify* each sweep,
    /// a slow leak that only shows up over many heavy-smoothing cycles.
    ///
    /// The reciprocal rides a second coefficient input `Ainv` (bound from
    /// the same grid by [`crate::scenario::scenario_runner`]) rather than
    /// an `Expr::Div` by `A`: a coefficient *multiply* linearizes into
    /// the tap list (the divisor form would fall back to expression-tree
    /// evaluation, whose different rounding order breaks the twin pin),
    /// and with `a ≡ 1` every `·1.0` is an IEEE identity, so the bitwise
    /// equivalence against the constant twin is preserved.
    fn split_smoother(
        &mut self,
        v: Option<FuncId>,
        f: FuncId,
        level: u32,
        steps: usize,
    ) -> Option<FuncId> {
        let nd = self.cfg.ndims;
        let n = self.cfg.n_at(level);
        let h = self.cfg.h_at(level);
        let w = self.cfg.omega * h * h / a_diag(nd, self.cfg.operator);
        let zero = vec![0i64; nd];
        let mut prev = v;
        for _ in 0..steps {
            let next = match prev {
                // zero iterate: A·0 = 0, the update collapses to w·f[·a⁻¹]
                None => {
                    let name = self.fresh("smooth", level);
                    let mut e = w * Operand::Func(f).at(&zero);
                    if let Some(ai) = self.coeff_inv {
                        e = e * Operand::Func(ai).at(&zero);
                    }
                    self.p.function(&name, nd, n, level, e)
                }
                Some(pv) => {
                    let an = self.fresh("apply_a", level);
                    let mut av_e = apply_a(nd, self.cfg.operator, Operand::Func(pv), h);
                    if let Some(a) = self.coeff {
                        av_e = Operand::Func(a).at(&zero) * av_e;
                    }
                    let av = self.p.function(&an, nd, n, level, av_e);
                    let name = self.fresh("smooth", level);
                    let mut resid =
                        Operand::Func(av).at(&zero) - Operand::Func(f).at(&zero);
                    if let Some(ai) = self.coeff_inv {
                        resid = resid * Operand::Func(ai).at(&zero);
                    }
                    let e = Operand::Func(pv).at(&zero) - w * resid;
                    self.p.function(&name, nd, n, level, e)
                }
            };
            prev = Some(next);
        }
        prev
    }

    fn smoother(
        &mut self,
        v: Option<FuncId>,
        f: FuncId,
        level: u32,
        steps: usize,
    ) -> Option<FuncId> {
        if steps == 0 {
            return v; // zero-step smoother forwards its state
        }
        if self.split_at(level) {
            assert!(
                self.cfg.smoother == crate::config::SmootherKind::Jacobi,
                "variable-coefficient cycles smooth with weighted Jacobi"
            );
            return self.split_smoother(v, f, level, steps);
        }
        let nd = self.cfg.ndims;
        let n = self.cfg.n_at(level);
        let h = self.cfg.h_at(level);
        match self.cfg.smoother {
            crate::config::SmootherKind::Jacobi => {
                let name = self.fresh("smooth", level);
                let e = jacobi_expr(nd, self.cfg.operator, h, self.cfg.omega, Operand::Func(f));
                Some(
                    self.p
                        .tstencil(&name, nd, n, level, StepCount::Fixed(steps), v, e),
                )
            }
            crate::config::SmootherKind::Chebyshev => {
                // per-step recurrence coefficients: a chain of Function
                // stages emitted by the dedicated builder
                let prefix = self.fresh("cheb", level);
                Some(crate::chebyshev::build_chebyshev_chain(
                    self.p, self.cfg, &prefix, v, f, level, steps,
                ))
            }
            crate::config::SmootherKind::GaussSeidelRB => {
                // each step = a red half-sweep then a black half-sweep,
                // expressed as piecewise (parity Case) functions — the
                // "red and black points as two grids" abstraction
                let mut prev = v;
                for _ in 0..steps {
                    let rn = self.fresh("gsrb_red", level);
                    let red =
                        self.p
                            .function_cases(&rn, nd, n, level, gsrb_cases(nd, h, true, prev, f));
                    let bn = self.fresh("gsrb_black", level);
                    let black = self.p.function_cases(
                        &bn,
                        nd,
                        n,
                        level,
                        gsrb_cases(nd, h, false, Some(red), f),
                    );
                    prev = Some(black);
                }
                prev
            }
        }
    }

    fn defect(&mut self, v: Option<FuncId>, f: FuncId, level: u32) -> FuncId {
        let nd = self.cfg.ndims;
        let n = self.cfg.n_at(level);
        let h = self.cfg.h_at(level);
        let name = self.fresh("defect", level);
        let zero = vec![0i64; nd];
        let e = match v {
            Some(v) => {
                let mut av = apply_a(nd, self.cfg.operator, Operand::Func(v), h);
                if self.split_at(level) {
                    if let Some(a) = self.coeff {
                        av = Operand::Func(a).at(&zero) * av;
                    }
                }
                Operand::Func(f).at(&zero) - av
            }
            // zero guess: r = f
            None => Operand::Func(f).at(&zero) + Expr::Const(0.0),
        };
        self.p.function(&name, nd, n, level, e)
    }

    fn restrict(&mut self, d: FuncId, level: u32) -> FuncId {
        // output at level-1
        let nd = self.cfg.ndims;
        let nc = self.cfg.n_at(level - 1);
        let name = self.fresh("restrict", level - 1);
        let e = match nd {
            2 => restrict_full_weighting_2d(Operand::Func(d)),
            3 => restrict_full_weighting_3d(Operand::Func(d)),
            _ => unreachable!(),
        };
        self.p.restrict_fn(&name, nd, nc, level - 1, e)
    }

    fn interpolate(&mut self, e: FuncId, level: u32) -> FuncId {
        let nd = self.cfg.ndims;
        let nf = self.cfg.n_at(level);
        let name = self.fresh("interp", level);
        self.p.interp_fn(&name, nd, nf, level, e)
    }

    fn correct(&mut self, v: Option<FuncId>, e: FuncId, level: u32) -> FuncId {
        let nd = self.cfg.ndims;
        let n = self.cfg.n_at(level);
        let name = self.fresh("correct", level);
        let zero = vec![0i64; nd];
        let expr = match v {
            Some(v) => Operand::Func(v).at(&zero) + Operand::Func(e).at(&zero),
            None => Operand::Func(e).at(&zero) + Expr::Const(0.0),
        };
        self.p.function(&name, nd, n, level, expr)
    }

    /// The recursive cycle (Algorithm 1 / Figure 3). Returns the function
    /// holding the updated solution at `level` (or `None` when the cycle is
    /// provably a no-op on a zero guess).
    fn cycle(
        &mut self,
        v: Option<FuncId>,
        f: FuncId,
        level: u32,
        shape: CycleType,
    ) -> Option<FuncId> {
        let steps = self.cfg.steps;
        if level == 0 {
            // coarsest: relax only
            return self.smoother(v, f, 0, steps.coarse);
        }
        let s1 = self.smoother(v, f, level, steps.pre);
        let d = self.defect(s1, f, level);
        let r = self.restrict(d, level);
        // coarse solve on the error equation, zero initial guess
        let mut e = self.recurse(None, r, level - 1, shape);
        if matches!(shape, CycleType::W | CycleType::F) && self.cfg.levels > 1 {
            // second visit of the coarse level (W: same shape; F: a V-cycle)
            let shape2 = if shape == CycleType::W {
                CycleType::W
            } else {
                CycleType::V
            };
            e = self.recurse(e, r, level - 1, shape2);
        }
        let vc = match e {
            Some(e) => {
                let ef = self.interpolate(e, level);
                Some(self.correct(s1, ef, level))
            }
            None => s1, // zero correction
        };
        self.smoother(vc, f, level, steps.post).or(vc)
    }

    fn recurse(
        &mut self,
        v: Option<FuncId>,
        f: FuncId,
        level: u32,
        shape: CycleType,
    ) -> Option<FuncId> {
        self.cycle(v, f, level, shape)
    }
}

/// Build the full cycle pipeline for `cfg`. Inputs are named `V` and `F`;
/// the output is named `out` (an alias stage for a stable name).
pub fn build_cycle_pipeline(cfg: &MgConfig) -> Pipeline {
    build_pipeline_inner(cfg, false, false)
}

/// Build the variable-coefficient cycle pipeline: the finest level's
/// smoother and defect apply `a(x)·(−∇²)` with the coefficient grid read
/// from a third external input `A` (coarse-grid correction keeps the
/// constant operator). With `with_coeff = false` the *same structure* is
/// emitted without the coefficient multiplication — its finest-level
/// operator stages are plain constant stencils that lower to the
/// specialized/SIMD kernels, and with `a ≡ 1` the two pipelines compute
/// bitwise-identical results (the differential tests pin this).
pub fn build_varcoef_cycle_pipeline(cfg: &MgConfig, with_coeff: bool) -> Pipeline {
    build_pipeline_inner(cfg, with_coeff, true)
}

fn build_pipeline_inner(cfg: &MgConfig, with_coeff: bool, split_op: bool) -> Pipeline {
    let mut p = Pipeline::new(&cfg.tag());
    let finest = cfg.levels - 1;
    let n = cfg.n_at(finest);
    let v = p.input("V", cfg.ndims, n, finest);
    let f = p.input("F", cfg.ndims, n, finest);
    let a = with_coeff.then(|| p.coeff_input("A", cfg.ndims, n, finest));
    let a_inv = with_coeff.then(|| p.coeff_input("Ainv", cfg.ndims, n, finest));
    let mut b = Builder {
        p: &mut p,
        cfg,
        visit: 0,
        coeff: a,
        coeff_inv: a_inv,
        split_op,
    };
    let result = b
        .cycle(Some(v), f, finest, cfg.cycle)
        .expect("cycle with a non-zero input guess cannot be a no-op");
    // stable output name
    let zero = vec![0i64; cfg.ndims];
    let out = p.function(
        "out",
        cfg.ndims,
        n,
        finest,
        Operand::Func(result).at(&zero) + Expr::Const(0.0),
    );
    p.mark_output(out);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmoothSteps;
    use gmg_ir::{ParamBindings, StageGraph};

    fn stages(cfg: &MgConfig) -> usize {
        let p = build_cycle_pipeline(cfg);
        let g = StageGraph::build(&p, &ParamBindings::new());
        let errs = gmg_ir::validate::validate(&p, &g);
        assert!(errs.is_empty(), "{errs:?}");
        g.num_compute_stages()
    }

    #[test]
    fn v444_stage_count_matches_paper() {
        // Table 3: V-cycle 4-4-4 has 40 DAG nodes (at 4 levels):
        // 3 fine levels × (4 pre + defect + restrict + interp + correct +
        // 4 post) = 36, coarsest 4, plus our 1 alias stage = 41.
        let cfg = MgConfig::new(2, 255, CycleType::V, SmoothSteps::s444());
        assert_eq!(stages(&cfg), 41);
    }

    #[test]
    fn v1000_stage_count_matches_paper() {
        // Table 3 reports 42 for V-10-0-0: 3 × (10 + 4) = 42; coarsest
        // contributes nothing, and the last interp/correct remain: 3 fine
        // levels × (10 pre + defect + restrict) = 36 … plus interp+correct
        // at levels where a correction exists. With zero coarse smoothing
        // the coarsest returns no correction, so level-1's correction
        // vanishes but levels 2,3 still interp+correct: 36 + 2×2 + alias.
        let cfg = MgConfig::new(2, 255, CycleType::V, SmoothSteps::s1000());
        assert_eq!(stages(&cfg), 41);
    }

    #[test]
    fn w444_stage_count_near_paper() {
        // Table 3: W-2D-4-4-4 ≈ 100 stages (the exact count depends on how
        // the second coarse visit is folded; ours lands at 117 with the
        // alias stage).
        let cfg = MgConfig::new(2, 255, CycleType::W, SmoothSteps::s444());
        let s = stages(&cfg);
        assert!((90..=125).contains(&s), "got {s}");
    }

    #[test]
    fn f_cycle_between_v_and_w() {
        let v = stages(&MgConfig::new(2, 255, CycleType::V, SmoothSteps::s444()));
        let w = stages(&MgConfig::new(2, 255, CycleType::W, SmoothSteps::s444()));
        let f = stages(&MgConfig::new(2, 255, CycleType::F, SmoothSteps::s444()));
        assert!(v < f && f < w, "V={v}, F={f}, W={w}");
    }

    #[test]
    fn three_d_builds_and_validates() {
        let cfg = MgConfig::new(3, 31, CycleType::V, SmoothSteps::s444());
        assert_eq!(stages(&cfg), 41);
        let cfg = MgConfig::new(3, 31, CycleType::W, SmoothSteps::s1000());
        let _ = stages(&cfg);
    }

    #[test]
    fn varcoef_pipeline_builds_and_validates() {
        for ndims in [2usize, 3] {
            let n = if ndims == 2 { 63 } else { 31 };
            let cfg = MgConfig::new(ndims, n, CycleType::V, SmoothSteps::s444());
            let with = build_varcoef_cycle_pipeline(&cfg, true);
            let without = build_varcoef_cycle_pipeline(&cfg, false);
            let gw = StageGraph::build(&with, &ParamBindings::new());
            let go = StageGraph::build(&without, &ParamBindings::new());
            assert!(gmg_ir::validate::validate(&with, &gw).is_empty());
            assert!(gmg_ir::validate::validate(&without, &go).is_empty());
            // structural twins: the coefficient variant only adds the `A`
            // input, never a compute stage
            assert_eq!(gw.num_compute_stages(), go.num_compute_stages());
            // the split-operator form emits one apply_a stage per finest
            // smoothing step (pre + post) plus one inside the defect read
            assert!(with
                .iter_funcs()
                .any(|(_, d)| d.name.starts_with("apply_a")));
            assert!(with.func_by_name("A").is_some());
            assert!(without.func_by_name("A").is_none());
        }
    }

    #[test]
    fn chebyshev_smoother_cycles_build() {
        let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444()).with_chebyshev();
        let s = stages(&cfg);
        // same stage count as Jacobi 4-4-4: each chain is 4 stages
        assert_eq!(s, 41);
        let cfg3 = MgConfig::new(3, 31, CycleType::W, SmoothSteps::s444()).with_chebyshev();
        let _ = stages(&cfg3);
    }

    #[test]
    fn jacobi_expr_consistency() {
        // the Jacobi expression must be a fixed point when A v = f
        let h: f64 = 0.5;
        let e = jacobi_expr(2, OperatorKind::Star, h, 0.8, Operand::Func(FuncId(0)));
        // fields: v = constant c (A v = 0 away from boundary... choose v
        // linear so A v = 0) and f = 0 → v unchanged
        let v = e.eval_at(&[5, 5], &mut |op, idx| match op {
            Operand::State => (idx[0] + idx[1]) as f64,
            Operand::Func(_) => 0.0,
            _ => unreachable!(),
        });
        assert!((v - 10.0).abs() < 1e-12);
    }
}
