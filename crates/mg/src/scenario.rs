//! Scenario builders: translate a [`polymg::scenario::Scenario`] descriptor
//! into a concrete DSL pipeline / runner.
//!
//! The compiler-side descriptor (`polymg::scenario`) only *names* the
//! problem families; this module owns the mapping onto `MgConfig` and the
//! pipeline builders:
//!
//! * `constant` — the paper's constant-coefficient Poisson cycle;
//! * `varcoef` — `a(x)·(−∇²u) = f` with the coefficient grid as a third
//!   external input `A` ([`build_varcoef_cycle_pipeline`]);
//! * `rbgs` / `chebyshev` — the same cycle with the smoother sequence
//!   swapped through [`crate::config::SmootherKind`];
//! * `fmg` — constant-coefficient cycles driven by the full-multigrid
//!   ladder, with the level-to-level prolongation itself a DSL pipeline
//!   ([`DslProlong`]).

use crate::config::MgConfig;
use crate::cycles::{build_cycle_pipeline, build_varcoef_cycle_pipeline};
use crate::solver::DslRunner;
use gmg_ir::{ParamBindings, Pipeline};
use gmg_runtime::{Engine, ExecError};
use polymg::scenario::{Scenario, ScenarioError};
use polymg::PipelineOptions;

/// A fully-specified scenario request: the problem family plus the
/// mixed-precision smoothing opt-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    pub scenario: Scenario,
    /// Run the smoother chains on the f32 tier (only meaningful where
    /// [`Scenario::supports_mixed_precision`] holds).
    pub mixed: bool,
}

impl ScenarioSpec {
    pub fn new(scenario: Scenario) -> ScenarioSpec {
        ScenarioSpec {
            scenario,
            mixed: false,
        }
    }

    /// Display label (`varcoef`, `constant+mp`, …).
    pub fn label(&self) -> String {
        if self.mixed {
            format!("{}+mp", self.scenario.label())
        } else {
            self.scenario.label().to_string()
        }
    }
}

/// `cfg` adjusted for a scenario (smoother kind swapped where the scenario
/// demands one).
pub fn scenario_config(cfg: &MgConfig, scenario: Scenario) -> MgConfig {
    match scenario {
        Scenario::Constant | Scenario::VarCoef | Scenario::Fmg => cfg.clone(),
        Scenario::Rbgs => cfg.clone().with_gsrb(),
        Scenario::Chebyshev => cfg.clone().with_chebyshev(),
    }
}

/// Build the per-cycle pipeline for a scenario. `Fmg` emits the constant
/// cycle — the coarse-to-fine ladder is a *driver* concern
/// ([`crate::fmg::fmg_solve`]), each rung of which runs this pipeline.
pub fn build_scenario_pipeline(cfg: &MgConfig, scenario: Scenario) -> Pipeline {
    let cfg = scenario_config(cfg, scenario);
    match scenario {
        Scenario::VarCoef => build_varcoef_cycle_pipeline(&cfg, true),
        _ => build_cycle_pipeline(&cfg),
    }
}

/// Construct a [`DslRunner`] for a scenario: validates the spec against
/// the supplied coefficient grid, applies the mixed-precision opt-in to
/// the options, compiles the scenario pipeline (plan-cached) and binds the
/// coefficient grid as the `A` external.
pub fn scenario_runner(
    cfg: &MgConfig,
    spec: ScenarioSpec,
    mut opts: PipelineOptions,
    label: &str,
    coeff: Option<Vec<f64>>,
) -> Result<DslRunner, ScenarioRunnerError> {
    spec.scenario
        .validate(spec.mixed, coeff.is_some())
        .map_err(ScenarioRunnerError::Scenario)?;
    if let Some(a) = &coeff {
        if a.len() != cfg.alloc_len(cfg.levels - 1) {
            return Err(ScenarioRunnerError::CoeffSize {
                got: a.len(),
                want: cfg.alloc_len(cfg.levels - 1),
            });
        }
    }
    opts.mixed_precision = spec.mixed;
    let cfg2 = scenario_config(cfg, spec.scenario);
    let pipeline = build_scenario_pipeline(cfg, spec.scenario);
    let mut runner = DslRunner::from_pipeline(&pipeline, &cfg2, opts, label)
        .map_err(ScenarioRunnerError::Compile)?;
    if let Some(a) = coeff {
        runner.bind_extra("Ainv", reciprocal_field(&a));
        runner.bind_extra("A", a);
    }
    Ok(runner)
}

/// Elementwise reciprocal of a coefficient grid — the `Ainv` external the
/// variable-coefficient Jacobi update multiplies by (see
/// `cycles::Builder::split_smoother`). Derived deterministically from the
/// same grid everywhere (runner, warm server sessions, references), so
/// server and client references stay bitwise-comparable. `a ≡ 1` gives
/// `a⁻¹ ≡ 1` exactly.
pub fn reciprocal_field(a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| 1.0 / x).collect()
}

/// Why a scenario runner could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioRunnerError {
    /// The spec itself is invalid (mixed on an unsupported scenario, a
    /// missing/unexpected coefficient grid).
    Scenario(ScenarioError),
    /// The coefficient grid does not match the finest level's dense
    /// allocation length.
    CoeffSize { got: usize, want: usize },
    /// Pipeline compilation failed (validation errors).
    Compile(Vec<String>),
}

impl std::fmt::Display for ScenarioRunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioRunnerError::Scenario(e) => write!(f, "{e}"),
            ScenarioRunnerError::CoeffSize { got, want } => {
                write!(f, "coefficient grid has {got} values, expected {want}")
            }
            ScenarioRunnerError::Compile(errs) => write!(f, "compile failed: {errs:?}"),
        }
    }
}

/// The canonical smooth positive coefficient field used by benchmarks and
/// the load generator: `a(x) = 1 + 0.3·Π sin(2π x_d)` over the unit
/// domain, filled on the full dense buffer (ghost included — the operator
/// only reads the interior, but engines bind whole grids).
pub fn coeff_field(cfg: &MgConfig) -> Vec<f64> {
    let level = cfg.levels - 1;
    let n = cfg.n_at(level);
    let h = cfg.h_at(level);
    let e = (n + 2) as usize;
    let mut a = vec![1.0; cfg.alloc_len(level)];
    let s = |i: usize| (2.0 * std::f64::consts::PI * i as f64 * h).sin();
    match cfg.ndims {
        2 => {
            for y in 0..e {
                for x in 0..e {
                    a[y * e + x] = 1.0 + 0.3 * s(y) * s(x);
                }
            }
        }
        3 => {
            for z in 0..e {
                for y in 0..e {
                    for x in 0..e {
                        a[(z * e + y) * e + x] = 1.0 + 0.3 * s(z) * s(y) * s(x);
                    }
                }
            }
        }
        _ => panic!("unsupported rank"),
    }
    a
}

/// A coefficient grid of exact ones — scales every tap by `1.0`, which is
/// a bitwise no-op, so a varcoef solve with this grid must match the
/// constant-coefficient structural twin bit for bit.
pub fn ones_field(cfg: &MgConfig) -> Vec<f64> {
    vec![1.0; cfg.alloc_len(cfg.levels - 1)]
}

/// Discrete L2 norm of `f − a·(A v)` over the interior (the
/// variable-coefficient analogue of [`crate::solver::residual_norm`]).
pub fn residual_norm_varcoef(
    ndims: usize,
    n: i64,
    h: f64,
    v: &[f64],
    f: &[f64],
    a: &[f64],
) -> f64 {
    let e = (n + 2) as usize;
    let inv_h2 = 1.0 / (h * h);
    let mut sum = 0.0;
    match ndims {
        2 => {
            for y in 1..=n as usize {
                let s = y * e;
                for x in 1..=n as usize {
                    let av = (4.0 * v[s + x]
                        - v[s + x - 1]
                        - v[s + x + 1]
                        - v[s - e + x]
                        - v[s + e + x])
                        * inv_h2;
                    let r = f[s + x] - a[s + x] * av;
                    sum += r * r;
                }
            }
            (sum / (n as f64 * n as f64)).sqrt()
        }
        3 => {
            let pb = e * e;
            for z in 1..=n as usize {
                for y in 1..=n as usize {
                    let s = z * pb + y * e;
                    for x in 1..=n as usize {
                        let av = (6.0 * v[s + x]
                            - v[s + x - 1]
                            - v[s + x + 1]
                            - v[s - e + x]
                            - v[s + e + x]
                            - v[s - pb + x]
                            - v[s + pb + x])
                            * inv_h2;
                        let r = f[s + x] - a[s + x] * av;
                        sum += r * r;
                    }
                }
            }
            (sum / (n as f64).powi(3)).sqrt()
        }
        _ => panic!("unsupported rank"),
    }
}

/// DSL-native FMG prolongation: one compiled `Interp` pipeline per coarse
/// size, interpolating a full solution grid from interior size `nc` to
/// `2·nc + 1`. Replaces the hand-written scalar interpolation the FMG
/// driver used to carry — the same bilinear/trilinear parity cases now
/// flow through the compiler and the instrumented runtime like every
/// other stage.
pub struct DslProlong {
    engine: Engine,
    nc: i64,
    ndims: usize,
}

impl DslProlong {
    /// Build (or fetch from the plan cache) the prolongation pipeline for
    /// interior size `nc` at rank `ndims`.
    pub fn new(ndims: usize, nc: i64) -> Result<DslProlong, Vec<String>> {
        let nf = 2 * nc + 1;
        let mut p = Pipeline::new(&format!("fmg-prolong-{ndims}d"));
        let coarse = p.input("C", ndims, nc, 0);
        let fine = p.interp_fn("out", ndims, nf, 1, coarse);
        p.mark_output(fine);
        let opts = PipelineOptions::for_variant(polymg::Variant::OptPlus, ndims);
        let plan = polymg::compile_cached(&p, &ParamBindings::new(), opts)?;
        Ok(DslProlong {
            engine: Engine::new(plan),
            nc,
            ndims,
        })
    }

    /// Interior size of the fine output grid.
    pub fn fine_n(&self) -> i64 {
        2 * self.nc + 1
    }

    /// `fine ← P(coarse)`. Buffers are dense with ghost rings
    /// (`(nc+2)^d` / `(2nc+3)^d`).
    pub fn run(&mut self, coarse: &[f64], fine: &mut [f64]) -> Result<(), ExecError> {
        let ef = (self.fine_n() + 2) as usize;
        assert_eq!(fine.len(), ef.pow(self.ndims as u32));
        self.engine.run(&[("C", coarse)], vec![("out", fine)])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CycleType, SmoothSteps};
    use crate::solver::{run_cycles, setup_poisson, CycleRunner};
    use polymg::Variant;

    fn cfg2(n: i64) -> MgConfig {
        MgConfig::new(
            2,
            n,
            CycleType::V,
            SmoothSteps {
                pre: 4,
                coarse: 50,
                post: 4,
            },
        )
    }

    #[test]
    fn prolong_reproduces_bilinear_fields() {
        // interpolation is exact on (bi)linear fields — the invariant the
        // old scalar prolongation was pinned to
        let nc = 7i64;
        let ec = (nc + 2) as usize;
        let mut coarse = vec![0.0; ec * ec];
        for y in 0..ec {
            for x in 0..ec {
                coarse[y * ec + x] = 3.0 * y as f64 + x as f64;
            }
        }
        let nf = 15i64;
        let ef = (nf + 2) as usize;
        let mut fine = vec![0.0; ef * ef];
        let mut pro = DslProlong::new(2, nc).unwrap();
        pro.run(&coarse, &mut fine).unwrap();
        for y in 1..=nf as usize {
            for x in 1..=nf as usize {
                let want = 1.5 * y as f64 + 0.5 * x as f64;
                assert!(
                    (fine[y * ef + x] - want).abs() < 1e-12,
                    "({y},{x}): {} vs {want}",
                    fine[y * ef + x]
                );
            }
        }
    }

    #[test]
    fn prolong_3d_is_exact_on_trilinear_fields() {
        let nc = 7i64;
        let ec = (nc + 2) as usize;
        let mut coarse = vec![0.0; ec * ec * ec];
        for z in 0..ec {
            for y in 0..ec {
                for x in 0..ec {
                    coarse[(z * ec + y) * ec + x] =
                        2.0 * z as f64 + 3.0 * y as f64 + x as f64 + 1.0;
                }
            }
        }
        let nf = 15i64;
        let ef = (nf + 2) as usize;
        let mut fine = vec![0.0; ef * ef * ef];
        let mut pro = DslProlong::new(3, nc).unwrap();
        pro.run(&coarse, &mut fine).unwrap();
        for z in 1..=nf as usize {
            for y in 1..=nf as usize {
                for x in 1..=nf as usize {
                    let want = z as f64 + 1.5 * y as f64 + 0.5 * x as f64 + 1.0;
                    let got = fine[(z * ef + y) * ef + x];
                    assert!((got - want).abs() < 1e-12, "({z},{y},{x}): {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn varcoef_solve_converges() {
        let cfg = cfg2(63);
        let a = coeff_field(&cfg);
        let mut runner = scenario_runner(
            &cfg,
            ScenarioSpec::new(Scenario::VarCoef),
            PipelineOptions::for_variant(Variant::OptPlus, 2),
            "varcoef",
            Some(a.clone()),
        )
        .unwrap();
        let (mut v, f, _) = setup_poisson(&cfg);
        let n = cfg.n_at(cfg.levels - 1);
        let h = cfg.h_at(cfg.levels - 1);
        let r0 = residual_norm_varcoef(2, n, h, &v, &f, &a);
        for _ in 0..8 {
            runner.cycle(&mut v, &f);
        }
        let r = residual_norm_varcoef(2, n, h, &v, &f, &a);
        assert!(
            r < r0 * 1e-3,
            "variable-coefficient cycles stalled: {r0:.3e} -> {r:.3e}"
        );
    }

    #[test]
    fn scenario_runner_validates_specs() {
        let cfg = cfg2(31);
        let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        // varcoef without a grid
        let e = scenario_runner(
            &cfg,
            ScenarioSpec::new(Scenario::VarCoef),
            opts.clone(),
            "x",
            None,
        )
        .err()
        .expect("spec should be rejected");
        assert!(matches!(e, ScenarioRunnerError::Scenario(_)));
        // mis-sized grid
        let e = scenario_runner(
            &cfg,
            ScenarioSpec::new(Scenario::VarCoef),
            opts.clone(),
            "x",
            Some(vec![1.0; 7]),
        )
        .err()
        .expect("spec should be rejected");
        assert!(matches!(e, ScenarioRunnerError::CoeffSize { got: 7, .. }));
        // mixed on a multi-case smoother
        let e = scenario_runner(
            &cfg,
            ScenarioSpec {
                scenario: Scenario::Rbgs,
                mixed: true,
            },
            opts,
            "x",
            None,
        )
        .err()
        .expect("spec should be rejected");
        assert!(e.to_string().contains("mixed-precision"));
    }

    #[test]
    fn rbgs_and_chebyshev_scenarios_converge() {
        for sc in [Scenario::Rbgs, Scenario::Chebyshev] {
            let cfg = cfg2(63);
            let mut runner = scenario_runner(
                &cfg,
                ScenarioSpec::new(sc),
                PipelineOptions::for_variant(Variant::OptPlus, 2),
                sc.label(),
                None,
            )
            .unwrap();
            let (mut v, f, _) = setup_poisson(&cfg);
            let r = run_cycles(&mut runner, &cfg, &mut v, &f, 6);
            assert!(
                r.res_final() < r.res0 * 1e-3,
                "{}: residual {:.3e} -> {:.3e}",
                sc.label(),
                r.res0,
                r.res_final()
            );
        }
    }

    #[test]
    fn spec_labels() {
        assert_eq!(ScenarioSpec::new(Scenario::VarCoef).label(), "varcoef");
        assert_eq!(
            ScenarioSpec {
                scenario: Scenario::Constant,
                mixed: true
            }
            .label(),
            "constant+mp"
        );
    }
}
