//! Full Multigrid (FMG / nested iteration) — the HPGMG-style driver the
//! paper names as a future integration target ("we also plan to integrate
//! our approach into open community-driven efforts such as HPGMG").
//!
//! FMG solves the problem once, to discretisation accuracy, in O(N) work:
//! start on the coarsest grid, solve there, interpolate the solution up one
//! level, run a few V-cycles, and repeat to the finest level. Each level's
//! cycles run through any [`CycleRunner`] — so the FMG driver composes with
//! every implementation in this repo (DSL variants, handopt, GSRB, …) —
//! and the level-to-level prolongation is itself a compiled DSL `Interp`
//! pipeline ([`crate::scenario::DslProlong`]), not a hand-written scalar
//! loop.

use crate::config::MgConfig;
use crate::scenario::DslProlong;
use crate::solver::{residual_norm, setup_poisson, CycleRunner};

/// The result of an FMG solve.
#[derive(Clone, Debug)]
pub struct FmgResult {
    /// Residual norm on the finest grid after the final level's cycles.
    pub final_residual: f64,
    /// Residual norm of the zero guess on the finest grid (for reduction
    /// reporting).
    pub initial_residual: f64,
    /// Max-norm error against the manufactured solution.
    pub max_error: f64,
}

/// Run FMG for the manufactured Poisson problem described by `finest_cfg`:
/// at every grid size from the coarsest FMG level up to `finest_cfg.n`, a
/// solver is built via `make_runner(cfg_for_that_size)` and `cycles_per_level`
/// cycles are run, with the previous level's solution prolonged as the
/// initial guess.
///
/// `coarsest_n` is the interior size FMG starts from (e.g. 7).
pub fn fmg_solve(
    finest_cfg: &MgConfig,
    coarsest_n: i64,
    cycles_per_level: usize,
    mut make_runner: impl FnMut(&MgConfig) -> Box<dyn CycleRunner>,
) -> FmgResult {
    assert!(((coarsest_n + 1) as u64).is_power_of_two());
    assert!(coarsest_n <= finest_cfg.n);

    // list of FMG grid sizes, coarse → fine
    let mut sizes = vec![coarsest_n];
    while *sizes.last().unwrap() < finest_cfg.n {
        let next = (sizes.last().unwrap() + 1) * 2 - 1;
        sizes.push(next);
    }
    assert_eq!(*sizes.last().unwrap(), finest_cfg.n, "size ladder mismatch");

    let mut solution: Vec<f64> = Vec::new();
    for (li, &nl) in sizes.iter().enumerate() {
        // per-level configuration: same cycle shape, levels shrunk so the
        // coarsest internal level stays solvable
        let mut cfg = finest_cfg.clone();
        cfg.n = nl;
        let max_levels = ((nl + 1) as u64).trailing_zeros().saturating_sub(1).max(1);
        cfg.levels = finest_cfg.levels.min(max_levels);

        let (v0, f, _) = setup_poisson(&cfg);
        let mut v = if li == 0 {
            v0
        } else {
            // DSL prolongation of the previous level's solution (plan-cached
            // per coarse size, so repeated FMG solves compile once)
            let mut fine = vec![0.0; cfg.alloc_len(cfg.levels - 1)];
            let mut pro = DslProlong::new(cfg.ndims, sizes[li - 1])
                .expect("prolongation pipeline failed to compile");
            pro.run(&solution, &mut fine)
                .expect("prolongation execution failed");
            fine
        };
        let mut runner = make_runner(&cfg);
        for _ in 0..cycles_per_level {
            runner.cycle(&mut v, &f);
        }
        solution = v;
    }

    // final metrics on the finest level
    let cfg = finest_cfg;
    let (_, f, exact) = setup_poisson(cfg);
    let n = cfg.n_at(cfg.levels - 1);
    let h = cfg.h_at(cfg.levels - 1);
    let zero = vec![0.0; cfg.alloc_len(cfg.levels - 1)];
    FmgResult {
        final_residual: residual_norm(cfg.ndims, n, h, &solution, &f),
        initial_residual: residual_norm(cfg.ndims, n, h, &zero, &f),
        max_error: solution
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CycleType, SmoothSteps};
    use crate::handopt::HandOpt;
    use polymg::{PipelineOptions, Variant};

    fn cfg(n: i64) -> MgConfig {
        let mut c = MgConfig::new(
            2,
            n,
            CycleType::V,
            SmoothSteps {
                pre: 3,
                coarse: 60,
                post: 3,
            },
        );
        c.levels = 6;
        c
    }

    #[test]
    fn fmg_reaches_discretisation_accuracy_with_one_cycle_per_level() {
        let finest = cfg(127);
        let r = fmg_solve(&finest, 7, 1, |c| Box::new(HandOpt::new(c.clone())));
        // FMG with a single V-cycle per level lands near discretisation
        // error: O(h²) with h = 1/128 → ~6e-5·C
        assert!(r.max_error < 5e-4, "FMG error too large: {}", r.max_error);
        assert!(r.final_residual < r.initial_residual * 1e-2);
    }

    #[test]
    fn fmg_beats_same_budget_of_plain_cycles() {
        // One V-cycle per level of FMG vs one V-cycle from a zero guess on
        // the finest level only: FMG must end with a (much) smaller error.
        let finest = cfg(127);
        let fmg = fmg_solve(&finest, 7, 1, |c| Box::new(HandOpt::new(c.clone())));

        let (mut v, f, exact) = setup_poisson(&finest);
        let mut plain = HandOpt::new(finest.clone());
        plain.cycle(&mut v, &f);
        let plain_err = v
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            fmg.max_error < plain_err * 0.5,
            "FMG {} vs plain {}",
            fmg.max_error,
            plain_err
        );
    }

    #[test]
    fn fmg_works_with_dsl_runners() {
        let finest = cfg(63);
        let r = fmg_solve(&finest, 7, 2, |c| {
            let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
            Box::new(crate::solver::DslRunner::new(c, opts, "polymg-opt+").expect("compile failed"))
        });
        assert!(r.max_error < 5e-3, "{}", r.max_error);
    }

    #[test]
    fn fmg_3d() {
        let mut finest = MgConfig::new(
            3,
            31,
            CycleType::V,
            SmoothSteps {
                pre: 3,
                coarse: 60,
                post: 3,
            },
        );
        finest.levels = 4;
        let r = fmg_solve(&finest, 7, 1, |c| Box::new(HandOpt::new(c.clone())));
        assert!(r.max_error < 6e-3, "{}", r.max_error);
    }
}
