//! Multigrid problem and cycle configuration.

/// Cycle shape (Figure 2 of the paper; F is the miniGMG/HPGMG shape the
/// paper mentions as "in between V- and W-cycles in complexity").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleType {
    V,
    W,
    F,
}

impl CycleType {
    /// Short display tag ("V", "W", "F").
    pub fn tag(&self) -> &'static str {
        match self {
            CycleType::V => "V",
            CycleType::W => "W",
            CycleType::F => "F",
        }
    }
}

/// Smoothing-step configuration `pre-coarse-post` (the paper's 4-4-4 and
/// 10-0-0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SmoothSteps {
    pub pre: usize,
    pub coarse: usize,
    pub post: usize,
}

impl SmoothSteps {
    /// The paper's `4-4-4`.
    pub fn s444() -> Self {
        SmoothSteps {
            pre: 4,
            coarse: 4,
            post: 4,
        }
    }

    /// The paper's `10-0-0`.
    pub fn s1000() -> Self {
        SmoothSteps {
            pre: 10,
            coarse: 0,
            post: 0,
        }
    }

    /// `"4-4-4"` style tag.
    pub fn tag(&self) -> String {
        format!("{}-{}-{}", self.pre, self.coarse, self.post)
    }
}

/// Smoothing operator. The paper evaluates weighted Jacobi; GSRB is the
/// extension it sketches ("all optimization presented in this paper apply
/// to it if the red and black points are abstracted as two grids") —
/// expressed here through parity `Case` definitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmootherKind {
    /// Weighted (damped) Jacobi.
    Jacobi,
    /// Gauss–Seidel with red-black ordering (two half-sweeps per step).
    GaussSeidelRB,
    /// Chebyshev polynomial chain; the configured step count is the
    /// polynomial degree (each step carries its own recurrence
    /// coefficients, so the chain is a sequence of distinct `Function`
    /// stages rather than a `TStencil`).
    Chebyshev,
}

/// Discretization of `A = −∇²` on the finest grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Star stencil: the paper's 5-point (2-D) / 7-point (3-D) Laplacian.
    Star,
    /// Dense compact neighborhood: the Mehrstellen 9-point (2-D) /
    /// 27-point (3-D) Laplacian — the footprint Galerkin coarsening
    /// produces, and ~4× the arithmetic intensity of the star operator.
    Dense,
}

/// Full multigrid configuration for one benchmark.
#[derive(Clone, Debug)]
pub struct MgConfig {
    /// 2 or 3 spatial dimensions.
    pub ndims: usize,
    /// Finest interior size per dimension; must be `2^k − 1`.
    pub n: i64,
    /// Number of levels (≥ 1); level `levels−1` is the finest.
    pub levels: u32,
    pub steps: SmoothSteps,
    pub cycle: CycleType,
    /// Weighted-Jacobi damping factor (ignored for GSRB).
    pub omega: f64,
    /// Smoothing operator.
    pub smoother: SmootherKind,
    /// Discretization of `A` used by the Jacobi smoother and the defect
    /// (GSRB always uses the star operator).
    pub operator: OperatorKind,
}

impl MgConfig {
    /// A default configuration matching the paper's setup (4 levels, ω
    /// chosen per rank: 4/5 in 2-D, 6/7 in 3-D — the optimal damped-Jacobi
    /// factors for the 5-/7-point Laplacians).
    pub fn new(ndims: usize, n: i64, cycle: CycleType, steps: SmoothSteps) -> Self {
        assert!(ndims == 2 || ndims == 3, "2-D/3-D only");
        assert!(
            ((n + 1) as u64).is_power_of_two() && n >= 3,
            "interior size must be 2^k - 1, got {n}"
        );
        let omega = if ndims == 2 { 4.0 / 5.0 } else { 6.0 / 7.0 };
        MgConfig {
            ndims,
            n,
            levels: 4,
            steps,
            cycle,
            omega,
            smoother: SmootherKind::Jacobi,
            operator: OperatorKind::Star,
        }
    }

    /// Switch the smoother to red-black Gauss–Seidel.
    pub fn with_gsrb(mut self) -> Self {
        self.smoother = SmootherKind::GaussSeidelRB;
        self
    }

    /// Switch the smoother to Chebyshev polynomial chains.
    pub fn with_chebyshev(mut self) -> Self {
        self.smoother = SmootherKind::Chebyshev;
        self
    }

    /// Switch the operator to the dense compact (Mehrstellen) Laplacian.
    pub fn with_dense_operator(mut self) -> Self {
        self.operator = OperatorKind::Dense;
        self
    }

    /// Interior size at `level` (0 = coarsest).
    pub fn n_at(&self, level: u32) -> i64 {
        assert!(level < self.levels);
        let shift = self.levels - 1 - level;
        let size = (self.n + 1) >> shift;
        assert!(size >= 2, "too many levels for n = {}", self.n);
        size - 1
    }

    /// Mesh spacing at `level` for the unit domain.
    pub fn h_at(&self, level: u32) -> f64 {
        1.0 / (self.n_at(level) + 1) as f64
    }

    /// Benchmark tag, e.g. `V-2D-4-4-4`.
    pub fn tag(&self) -> String {
        format!("{}-{}D-{}", self.cycle.tag(), self.ndims, self.steps.tag())
    }

    /// Total allocation length per grid at `level` (ghost included).
    pub fn alloc_len(&self, level: u32) -> usize {
        let e = (self.n_at(level) + 2) as usize;
        e.pow(self.ndims as u32)
    }
}

/// Scaled problem-size classes (Table 2 of the paper, shrunk for a
/// single-core container — see DESIGN.md's substitution table). `paper`
/// selects the original sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Scaled class B: 1023² / 63³.
    B,
    /// Scaled class C: 2047² / 127³.
    C,
    /// Tiny smoke-test size: 255² / 31³.
    Smoke,
    /// The paper's real class B: 8191² / 255³.
    PaperB,
    /// The paper's real class C: 16383² / 511³.
    PaperC,
}

impl SizeClass {
    /// Finest interior size for the class at the given rank.
    pub fn n(&self, ndims: usize) -> i64 {
        match (self, ndims) {
            (SizeClass::Smoke, 2) => 255,
            (SizeClass::Smoke, 3) => 31,
            (SizeClass::B, 2) => 1023,
            (SizeClass::B, 3) => 63,
            (SizeClass::C, 2) => 2047,
            (SizeClass::C, 3) => 127,
            (SizeClass::PaperB, 2) => 8191,
            (SizeClass::PaperB, 3) => 255,
            (SizeClass::PaperC, 2) => 16383,
            (SizeClass::PaperC, 3) => 511,
            _ => panic!("unsupported rank"),
        }
    }

    /// Cycle iteration counts per Table 2 (scaled classes reuse the paper's
    /// counts).
    pub fn cycle_iters(&self, ndims: usize) -> usize {
        match (self, ndims) {
            (SizeClass::Smoke, _) => 5,
            (SizeClass::B, 2) | (SizeClass::PaperB, 2) => 10,
            (SizeClass::C, 2) | (SizeClass::PaperC, 2) => 10,
            (SizeClass::B, 3) | (SizeClass::PaperB, 3) => 25,
            (SizeClass::C, 3) | (SizeClass::PaperC, 3) => 10,
            _ => panic!("unsupported rank"),
        }
    }

    /// Display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            SizeClass::B => "B",
            SizeClass::C => "C",
            SizeClass::Smoke => "smoke",
            SizeClass::PaperB => "paperB",
            SizeClass::PaperC => "paperC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sizes_halve() {
        let c = MgConfig::new(2, 255, CycleType::V, SmoothSteps::s444());
        assert_eq!(c.n_at(3), 255);
        assert_eq!(c.n_at(2), 127);
        assert_eq!(c.n_at(1), 63);
        assert_eq!(c.n_at(0), 31);
        assert!((c.h_at(3) - 1.0 / 256.0).abs() < 1e-15);
        assert!((c.h_at(0) - 1.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn tags() {
        let c = MgConfig::new(3, 63, CycleType::W, SmoothSteps::s1000());
        assert_eq!(c.tag(), "W-3D-10-0-0");
        assert_eq!(SmoothSteps::s444().tag(), "4-4-4");
        assert_eq!(CycleType::F.tag(), "F");
    }

    #[test]
    #[should_panic(expected = "2^k - 1")]
    fn rejects_bad_sizes() {
        let _ = MgConfig::new(2, 100, CycleType::V, SmoothSteps::s444());
    }

    #[test]
    fn alloc_len() {
        let c = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
        assert_eq!(c.alloc_len(c.levels - 1), 33 * 33);
    }

    #[test]
    fn size_classes() {
        assert_eq!(SizeClass::B.n(2), 1023);
        assert_eq!(SizeClass::C.n(3), 127);
        assert_eq!(SizeClass::PaperC.n(2), 16383);
        assert_eq!(SizeClass::B.cycle_iters(3), 25);
        assert!(((SizeClass::B.n(2) + 1) as u64).is_power_of_two());
    }
}
