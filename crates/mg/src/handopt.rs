//! The `handopt` baseline: hand-written multigrid modelled on the Ghysels &
//! Vanroose implementation the paper compares against — explicit loop
//! parallelisation (rayon over rows/planes), storage reuse via **two modulo
//! buffers per level**, and pooled allocations (all level buffers allocated
//! once, up front, and reused across cycles).
//!
//! With `time_tiled = true` this becomes the `handopt+pluto` configuration:
//! the pre-/post-smoothing loops are executed through the concurrent-start
//! split/diamond schedule of `gmg-poly` instead of step-by-step sweeps
//! (§4.1: "handopt further optimized by time tiling the smoothing steps").

// Index-based loops and wide row-kernel signatures mirror the hand-written C this baseline ports.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

use crate::config::{CycleType, MgConfig};
use gmg_poly::diamond::split_time_tiling;
use gmg_poly::Interval;
use gmg_runtime::tilebuf::SharedOut;
use rayon::prelude::*;

/// Per-level working set: the iterate, its modulo partner, and the RHS.
struct Level {
    u: Vec<f64>,
    tmp: Vec<f64>,
    rhs: Vec<f64>,
    n: i64,
    h: f64,
}

/// Hand-optimized multigrid solver (2-D and 3-D).
pub struct HandOpt {
    cfg: MgConfig,
    levels: Vec<Level>,
    /// Split/diamond time tiling of the smoother (`handopt+pluto`).
    time_tiled: bool,
    /// Outer-dim tile width for time tiling.
    pub dtile_w: i64,
    /// Time-band height for time tiling.
    pub dtile_h: usize,
}

impl HandOpt {
    /// Plain `handopt`.
    pub fn new(cfg: MgConfig) -> Self {
        Self::with_time_tiling(cfg, false)
    }

    /// `handopt+pluto`.
    pub fn new_pluto(cfg: MgConfig) -> Self {
        Self::with_time_tiling(cfg, true)
    }

    fn with_time_tiling(cfg: MgConfig, time_tiled: bool) -> Self {
        // pooled allocation: every level buffer allocated once, here
        let levels = (0..cfg.levels)
            .map(|l| {
                let len = cfg.alloc_len(l);
                Level {
                    u: vec![0.0; len],
                    tmp: vec![0.0; len],
                    rhs: vec![0.0; len],
                    n: cfg.n_at(l),
                    h: cfg.h_at(l),
                }
            })
            .collect();
        HandOpt {
            cfg,
            levels,
            time_tiled,
            dtile_w: 64,
            dtile_h: 4,
        }
    }

    /// Variant label matching the paper.
    pub fn label(&self) -> &'static str {
        if self.time_tiled {
            "handopt+pluto"
        } else {
            "handopt"
        }
    }

    /// Run one full cycle: `v ← cycle(v, f)`.
    pub fn cycle(&mut self, v: &mut [f64], f: &[f64]) {
        let finest = (self.cfg.levels - 1) as usize;
        self.levels[finest].u.copy_from_slice(v);
        self.levels[finest].rhs.copy_from_slice(f);
        let shape = self.cfg.cycle;
        self.recurse(finest, shape);
        v.copy_from_slice(&self.levels[finest].u);
    }

    fn recurse(&mut self, level: usize, shape: CycleType) {
        let (pre, coarse, post) = (
            self.cfg.steps.pre,
            self.cfg.steps.coarse,
            self.cfg.steps.post,
        );
        if level == 0 {
            self.smooth(level, coarse);
            return;
        }
        self.smooth(level, pre);
        self.residual_into_tmp(level);
        self.restrict_tmp_to_coarse_rhs(level);
        // zero initial coarse guess
        self.levels[level - 1].u.fill(0.0);
        self.recurse(level - 1, shape);
        if matches!(shape, CycleType::W | CycleType::F) {
            let shape2 = if shape == CycleType::W {
                CycleType::W
            } else {
                CycleType::V
            };
            self.recurse(level - 1, shape2);
        }
        self.correct_from_coarse(level);
        self.smooth(level, post);
    }

    // ---- operators ----------------------------------------------------

    fn smooth(&mut self, level: usize, steps: usize) {
        if steps == 0 {
            return;
        }
        let nd = self.cfg.ndims;
        if self.cfg.smoother == crate::config::SmootherKind::GaussSeidelRB {
            // in-place red/black half-sweeps (neighbours of a point always
            // have the opposite colour for the 5-/7-point operator, so
            // in-place equals the two-stage functional formulation)
            let lv = &mut self.levels[level];
            let h2 = lv.h * lv.h;
            for _ in 0..steps {
                for red in [true, false] {
                    match nd {
                        2 => gsrb_half_2d(&mut lv.u, &lv.rhs, lv.n, h2, red),
                        3 => gsrb_half_3d(&mut lv.u, &lv.rhs, lv.n, h2, red),
                        _ => unreachable!(),
                    }
                }
            }
            return;
        }
        if self.time_tiled {
            self.smooth_split_tiled(level, steps);
            return;
        }
        let omega = self.cfg.omega;
        let lv = &mut self.levels[level];
        let w = omega * lv.h * lv.h / (2.0 * nd as f64);
        let inv_h2 = 1.0 / (lv.h * lv.h);
        for _ in 0..steps {
            match nd {
                2 => jacobi_step_2d(&lv.u, &mut lv.tmp, &lv.rhs, lv.n, w, inv_h2),
                3 => jacobi_step_3d(&lv.u, &mut lv.tmp, &lv.rhs, lv.n, w, inv_h2),
                _ => unreachable!(),
            }
            std::mem::swap(&mut lv.u, &mut lv.tmp);
        }
    }

    /// Time-tiled smoothing with the split/diamond schedule and the two
    /// modulo buffers (the Pluto-style execution of the paper's baseline).
    fn smooth_split_tiled(&mut self, level: usize, steps: usize) {
        let nd = self.cfg.ndims;
        let omega = self.cfg.omega;
        let lv = &mut self.levels[level];
        let n = lv.n;
        let w = omega * lv.h * lv.h / (2.0 * nd as f64);
        let inv_h2 = 1.0 / (lv.h * lv.h);
        let e = (n + 2) as usize;
        let row_block = e.pow(nd as u32 - 1);

        {
            // buffers by parity: step s writes buf[(s+1)%2] reading buf[s%2];
            // i.e. src(s) = parity s, dst(s) = parity s+1 (u starts as src).
            let bufs = [SharedOut::new(&mut lv.u), SharedOut::new(&mut lv.tmp)];
            let rhs: &[f64] = &lv.rhs;
            let schedule = split_time_tiling(n, steps, self.dtile_w, self.dtile_h, 1);
            let dom = Interval::new(1, n);
            for band in &schedule {
                for phase in [&band.phase1, &band.phase2] {
                    phase.par_iter().for_each(|trap| {
                        for s in 0..band.steps {
                            let t = band.t0 + s;
                            let rows = trap.rows_at(s as i64, dom);
                            if rows.is_empty() {
                                continue;
                            }
                            let src = &bufs[t % 2];
                            let dst = &bufs[(t + 1) % 2];
                            // SAFETY: split-tiling row disjointness within a
                            // phase plus the band-height clamp (see
                            // gmg_poly::diamond) keep all concurrent
                            // accesses disjoint.
                            unsafe {
                                let sread = src.read_segment(
                                    (rows.lo - 1) as usize * row_block,
                                    (rows.len() + 2) as usize * row_block,
                                );
                                let dwrite = dst.segment(
                                    rows.lo as usize * row_block,
                                    rows.len() as usize * row_block,
                                );
                                match nd {
                                    2 => jacobi_rows_2d(
                                        sread, dwrite, rhs, n, w, inv_h2, rows.lo, rows.hi,
                                    ),
                                    3 => jacobi_rows_3d(
                                        sread, dwrite, rhs, n, w, inv_h2, rows.lo, rows.hi,
                                    ),
                                    _ => unreachable!(),
                                }
                            }
                        }
                    });
                }
            }
        }
        if steps % 2 == 1 {
            let lv = &mut self.levels[level];
            std::mem::swap(&mut lv.u, &mut lv.tmp);
        }
    }

    fn residual_into_tmp(&mut self, level: usize) {
        let nd = self.cfg.ndims;
        let lv = &mut self.levels[level];
        let inv_h2 = 1.0 / (lv.h * lv.h);
        match nd {
            2 => residual_2d(&lv.u, &lv.rhs, &mut lv.tmp, lv.n, inv_h2),
            3 => residual_3d(&lv.u, &lv.rhs, &mut lv.tmp, lv.n, inv_h2),
            _ => unreachable!(),
        }
    }

    fn restrict_tmp_to_coarse_rhs(&mut self, level: usize) {
        let nd = self.cfg.ndims;
        let (coarse, fine) = {
            let (a, b) = self.levels.split_at_mut(level);
            (&mut a[level - 1], &b[0])
        };
        match nd {
            2 => restrict_2d(&fine.tmp, &mut coarse.rhs, coarse.n),
            3 => restrict_3d(&fine.tmp, &mut coarse.rhs, coarse.n),
            _ => unreachable!(),
        }
    }

    fn correct_from_coarse(&mut self, level: usize) {
        let nd = self.cfg.ndims;
        let (coarse, fine) = {
            let (a, b) = self.levels.split_at_mut(level);
            (&a[level - 1], &mut b[0])
        };
        match nd {
            2 => interp_add_2d(&coarse.u, &mut fine.u, fine.n),
            3 => interp_add_3d(&coarse.u, &mut fine.u, fine.n),
            _ => unreachable!(),
        }
    }
}

// ---- GSRB kernels -------------------------------------------------------

/// One in-place red or black Gauss–Seidel half-sweep (2-D):
/// `u = (Σ neighbours + h²·rhs) / 4` at points with `(y+x) % 2` matching
/// the colour. Parallel over rows (each row only reads neighbouring rows of
/// the other colour, which this half-sweep never writes).
fn gsrb_half_2d(u: &mut [f64], rhs: &[f64], n: i64, h2: f64, red: bool) {
    let e = (n + 2) as usize;
    let start_parity = if red { 0usize } else { 1 };
    let un = SharedOut::new(u);
    (1..=n as usize).into_par_iter().for_each(|y| {
        // SAFETY: rows are written disjointly (one task per row), and reads
        // of rows y±1 touch only the colour this sweep does not write.
        let row = unsafe { un.segment(y * e, e) };
        let above = unsafe { un.read_segment((y - 1) * e, e) };
        let below = unsafe { un.read_segment((y + 1) * e, e) };
        let first = 1 + ((start_parity + y + 1) % 2);
        let mut x = first;
        while x <= n as usize {
            row[x] = (row[x - 1] + row[x + 1] + above[x] + below[x] + h2 * rhs[y * e + x]) / 4.0;
            x += 2;
        }
    });
}

/// One in-place red or black half-sweep (3-D, 7-point).
fn gsrb_half_3d(u: &mut [f64], rhs: &[f64], n: i64, h2: f64, red: bool) {
    let e = (n + 2) as usize;
    let pb = e * e;
    let start_parity = if red { 0usize } else { 1 };
    let un = SharedOut::new(u);
    (1..=n as usize).into_par_iter().for_each(|z| {
        // SAFETY: planes are written disjointly; cross-plane reads touch
        // only the colour this sweep does not write.
        let plane = unsafe { un.segment(z * pb, pb) };
        let zm = unsafe { un.read_segment((z - 1) * pb, pb) };
        let zp = unsafe { un.read_segment((z + 1) * pb, pb) };
        for y in 1..=n as usize {
            let first = 1 + ((start_parity + z + y + 1) % 2);
            let mut x = first;
            while x <= n as usize {
                let s = y * e + x;
                plane[s] = (plane[s - 1]
                    + plane[s + 1]
                    + plane[s - e]
                    + plane[s + e]
                    + zm[s]
                    + zp[s]
                    + h2 * rhs[z * pb + s])
                    / 6.0;
                x += 2;
            }
        }
    });
}

// ---- 2-D kernels --------------------------------------------------------

/// One Jacobi sweep over the whole interior, parallel over rows.
fn jacobi_step_2d(src: &[f64], dst: &mut [f64], rhs: &[f64], n: i64, w: f64, inv_h2: f64) {
    let e = (n + 2) as usize;
    dst[e..(n as usize + 1) * e]
        .par_chunks_mut(e)
        .enumerate()
        .for_each(|(i, drow)| {
            let y = i + 1;
            jacobi_row_2d(src, drow, rhs, e, y, n as usize, w, inv_h2);
        });
}

/// Jacobi over rows `[ylo, yhi]` where `src` starts at row `ylo − 1` and
/// `dst` at row `ylo` (the split-tiled path).
#[allow(clippy::too_many_arguments)]
fn jacobi_rows_2d(
    src: &[f64],
    dst: &mut [f64],
    rhs: &[f64],
    n: i64,
    w: f64,
    inv_h2: f64,
    ylo: i64,
    yhi: i64,
) {
    let e = (n + 2) as usize;
    for y in ylo..=yhi {
        let s = ((y - ylo + 1) * (n + 2)) as usize; // src row offset (src starts at ylo-1)
        let d = ((y - ylo) * (n + 2)) as usize;
        let r = (y * (n + 2)) as usize;
        for x in 1..=n as usize {
            let c = src[s + x];
            let a = (4.0 * c - src[s + x - 1] - src[s + x + 1] - src[s - e + x] - src[s + e + x])
                * inv_h2;
            dst[d + x] = c - w * (a - rhs[r + x]);
        }
    }
}

fn jacobi_row_2d(
    src: &[f64],
    drow: &mut [f64],
    rhs: &[f64],
    e: usize,
    y: usize,
    n: usize,
    w: f64,
    inv_h2: f64,
) {
    let s = y * e;
    for x in 1..=n {
        let c = src[s + x];
        let a =
            (4.0 * c - src[s + x - 1] - src[s + x + 1] - src[s - e + x] - src[s + e + x]) * inv_h2;
        drow[x] = c - w * (a - rhs[s + x]);
    }
}

fn residual_2d(u: &[f64], rhs: &[f64], r: &mut [f64], n: i64, inv_h2: f64) {
    let e = (n + 2) as usize;
    r[e..(n as usize + 1) * e]
        .par_chunks_mut(e)
        .enumerate()
        .for_each(|(i, rrow)| {
            let y = i + 1;
            let s = y * e;
            for x in 1..=n as usize {
                let a =
                    (4.0 * u[s + x] - u[s + x - 1] - u[s + x + 1] - u[s - e + x] - u[s + e + x])
                        * inv_h2;
                rrow[x] = rhs[s + x] - a;
            }
        });
}

fn restrict_2d(fine: &[f64], coarse: &mut [f64], nc: i64) {
    let ef = (2 * nc + 1 + 2) as usize;
    let ec = (nc + 2) as usize;
    coarse[ec..(nc as usize + 1) * ec]
        .par_chunks_mut(ec)
        .enumerate()
        .for_each(|(i, crow)| {
            let yc = i + 1;
            let yf = 2 * yc;
            for xc in 1..=nc as usize {
                let xf = 2 * xc;
                let at = |dy: isize, dx: isize| {
                    fine[(yf as isize + dy) as usize * ef + (xf as isize + dx) as usize]
                };
                crow[xc] = (at(-1, -1)
                    + at(-1, 1)
                    + at(1, -1)
                    + at(1, 1)
                    + 2.0 * (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1))
                    + 4.0 * at(0, 0))
                    / 16.0;
            }
        });
}

fn interp_add_2d(coarse: &[f64], fine: &mut [f64], nf: i64) {
    let ef = (nf + 2) as usize;
    let ec = ((nf + 1) / 2 + 1) as usize;
    fine[ef..(nf as usize + 1) * ef]
        .par_chunks_mut(ef)
        .enumerate()
        .for_each(|(i, frow)| {
            let y = i + 1;
            for x in 1..=nf as usize {
                let v = if y.is_multiple_of(2) {
                    if x % 2 == 0 {
                        coarse[(y / 2) * ec + x / 2]
                    } else {
                        0.5 * (coarse[(y / 2) * ec + (x - 1) / 2]
                            + coarse[(y / 2) * ec + x.div_ceil(2)])
                    }
                } else if x % 2 == 0 {
                    0.5 * (coarse[((y - 1) / 2) * ec + x / 2] + coarse[y.div_ceil(2) * ec + x / 2])
                } else {
                    0.25 * (coarse[((y - 1) / 2) * ec + (x - 1) / 2]
                        + coarse[((y - 1) / 2) * ec + x.div_ceil(2)]
                        + coarse[y.div_ceil(2) * ec + (x - 1) / 2]
                        + coarse[y.div_ceil(2) * ec + x.div_ceil(2)])
                };
                frow[x] += v;
            }
        });
}

// ---- 3-D kernels --------------------------------------------------------

fn jacobi_step_3d(src: &[f64], dst: &mut [f64], rhs: &[f64], n: i64, w: f64, inv_h2: f64) {
    let e = (n + 2) as usize;
    let pb = e * e;
    dst[pb..(n as usize + 1) * pb]
        .par_chunks_mut(pb)
        .enumerate()
        .for_each(|(i, dplane)| {
            let z = i + 1;
            for y in 1..=n as usize {
                let s = z * pb + y * e;
                for x in 1..=n as usize {
                    let c = src[s + x];
                    let a = (6.0 * c
                        - src[s + x - 1]
                        - src[s + x + 1]
                        - src[s - e + x]
                        - src[s + e + x]
                        - src[s - pb + x]
                        - src[s + pb + x])
                        * inv_h2;
                    dplane[y * e + x] = c - w * (a - rhs[s + x]);
                }
            }
        });
}

#[allow(clippy::too_many_arguments)]
fn jacobi_rows_3d(
    src: &[f64],
    dst: &mut [f64],
    rhs: &[f64],
    n: i64,
    w: f64,
    inv_h2: f64,
    zlo: i64,
    zhi: i64,
) {
    let e = (n + 2) as usize;
    let pb = e * e;
    for z in zlo..=zhi {
        let sp = ((z - zlo + 1) as usize) * pb; // src starts at zlo-1
        let dp = ((z - zlo) as usize) * pb;
        let rp = z as usize * pb;
        for y in 1..=n as usize {
            let s = sp + y * e;
            for x in 1..=n as usize {
                let c = src[s + x];
                let a = (6.0 * c
                    - src[s + x - 1]
                    - src[s + x + 1]
                    - src[s - e + x]
                    - src[s + e + x]
                    - src[s - pb + x]
                    - src[s + pb + x])
                    * inv_h2;
                dst[dp + y * e + x] = c - w * (a - rhs[rp + y * e + x]);
            }
        }
    }
}

fn residual_3d(u: &[f64], rhs: &[f64], r: &mut [f64], n: i64, inv_h2: f64) {
    let e = (n + 2) as usize;
    let pb = e * e;
    r[pb..(n as usize + 1) * pb]
        .par_chunks_mut(pb)
        .enumerate()
        .for_each(|(i, rplane)| {
            let z = i + 1;
            for y in 1..=n as usize {
                let s = z * pb + y * e;
                for x in 1..=n as usize {
                    let a = (6.0 * u[s + x]
                        - u[s + x - 1]
                        - u[s + x + 1]
                        - u[s - e + x]
                        - u[s + e + x]
                        - u[s - pb + x]
                        - u[s + pb + x])
                        * inv_h2;
                    rplane[y * e + x] = rhs[s + x] - a;
                }
            }
        });
}

fn restrict_3d(fine: &[f64], coarse: &mut [f64], nc: i64) {
    let ef = (2 * nc + 1 + 2) as usize;
    let pf = ef * ef;
    let ec = (nc + 2) as usize;
    let pc = ec * ec;
    coarse[pc..(nc as usize + 1) * pc]
        .par_chunks_mut(pc)
        .enumerate()
        .for_each(|(i, cplane)| {
            let zc = i + 1;
            let zf = 2 * zc;
            for yc in 1..=nc as usize {
                let yf = 2 * yc;
                for xc in 1..=nc as usize {
                    let xf = 2 * xc;
                    let mut acc = 0.0;
                    for dz in -1i32..=1 {
                        for dy in -1i32..=1 {
                            for dx in -1i32..=1 {
                                let wgt = (2 - dz.abs()) * (2 - dy.abs()) * (2 - dx.abs());
                                acc += wgt as f64
                                    * fine[(zf as i32 + dz) as usize * pf
                                        + (yf as i32 + dy) as usize * ef
                                        + (xf as i32 + dx) as usize];
                            }
                        }
                    }
                    cplane[yc * ec + xc] = acc / 64.0;
                }
            }
        });
}

fn interp_add_3d(coarse: &[f64], fine: &mut [f64], nf: i64) {
    let ef = (nf + 2) as usize;
    let pf = ef * ef;
    let ec = ((nf + 1) / 2 + 1) as usize;
    let pc = ec * ec;
    let cread = |z: usize, y: usize, x: usize| coarse[z * pc + y * ec + x];
    fine[pf..(nf as usize + 1) * pf]
        .par_chunks_mut(pf)
        .enumerate()
        .for_each(|(i, fplane)| {
            let z = i + 1;
            let zs: &[usize] = &if z % 2 == 0 {
                vec![z / 2]
            } else {
                vec![(z - 1) / 2, z.div_ceil(2)]
            };
            for y in 1..=nf as usize {
                let ys: Vec<usize> = if y % 2 == 0 {
                    vec![y / 2]
                } else {
                    vec![(y - 1) / 2, y.div_ceil(2)]
                };
                for x in 1..=nf as usize {
                    let xs: Vec<usize> = if x % 2 == 0 {
                        vec![x / 2]
                    } else {
                        vec![(x - 1) / 2, x.div_ceil(2)]
                    };
                    let mut acc = 0.0;
                    for &zc in zs {
                        for &yc in &ys {
                            for &xc in &xs {
                                acc += cread(zc, yc, xc);
                            }
                        }
                    }
                    fplane[y * ef + x] += acc / (zs.len() * ys.len() * xs.len()) as f64;
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmoothSteps;

    #[test]
    fn jacobi_2d_fixed_point_on_solution() {
        // if A u = f exactly, one Jacobi step leaves u unchanged
        let n = 7i64;
        let e = (n + 2) as usize;
        let h = 1.0 / (n + 1) as f64;
        // u = x(1-x)y(1-y)-like discrete: easier — pick u random, compute
        // f = A u, then step must be identity.
        let mut u = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                u[y * e + x] = ((y * 31 + x * 17) % 11) as f64;
            }
        }
        let inv_h2 = 1.0 / (h * h);
        let mut f = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                let s = y * e + x;
                f[s] = (4.0 * u[s] - u[s - 1] - u[s + 1] - u[s - e] - u[s + e]) * inv_h2;
            }
        }
        let mut dst = vec![0.0; e * e];
        jacobi_step_2d(&u, &mut dst, &f, n, 0.8 * h * h / 4.0, inv_h2);
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                assert!((dst[y * e + x] - u[y * e + x]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn restrict_2d_constant_preserved() {
        let nc = 3i64;
        let nf = 7i64;
        let ef = (nf + 2) as usize;
        let ec = (nc + 2) as usize;
        let mut fine = vec![0.0; ef * ef];
        for y in 1..=nf as usize {
            for x in 1..=nf as usize {
                fine[y * ef + x] = 5.0;
            }
        }
        let mut coarse = vec![0.0; ec * ec];
        restrict_2d(&fine, &mut coarse, nc);
        // centre coarse point sees only interior fine points → exactly 5
        assert!((coarse[2 * ec + 2] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn interp_add_2d_linear_exact() {
        let nf = 7i64;
        let nc = 3i64;
        let ef = (nf + 2) as usize;
        let ec = (nc + 2) as usize;
        let mut coarse = vec![0.0; ec * ec];
        for y in 0..ec {
            for x in 0..ec {
                coarse[y * ec + x] = (2 * y + x) as f64;
            }
        }
        let mut fine = vec![0.0; ef * ef];
        interp_add_2d(&coarse, &mut fine, nf);
        // fine (y,x) ↔ coarse (y/2, x/2): value = 2·y/2 + x/2
        for y in 1..=nf as usize {
            for x in 1..=nf as usize {
                let want = y as f64 + x as f64 / 2.0;
                assert!(
                    (fine[y * ef + x] - want).abs() < 1e-12,
                    "({y},{x}): {} vs {want}",
                    fine[y * ef + x]
                );
            }
        }
    }

    #[test]
    fn split_tiled_smoother_matches_plain_2d() {
        let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
        let mut plain = HandOpt::new(cfg.clone());
        let mut tiled = HandOpt::new_pluto(cfg.clone());
        tiled.dtile_w = 16;
        tiled.dtile_h = 3;
        let l = (cfg.levels - 1) as usize;
        let len = cfg.alloc_len(cfg.levels - 1);
        for i in 0..len {
            let v = ((i * 29) % 13) as f64 - 6.0;
            plain.levels[l].u[i] = v;
            tiled.levels[l].u[i] = v;
            plain.levels[l].rhs[i] = ((i * 7) % 5) as f64;
            tiled.levels[l].rhs[i] = plain.levels[l].rhs[i];
        }
        // zero ghosts
        let e = (cfg.n_at(cfg.levels - 1) + 2) as usize;
        for k in 0..e {
            for (a, b) in [(0, k), (e - 1, k), (k, 0), (k, e - 1)] {
                plain.levels[l].u[a * e + b] = 0.0;
                tiled.levels[l].u[a * e + b] = 0.0;
            }
        }
        plain.smooth(l, 7);
        tiled.smooth(l, 7);
        for i in 0..len {
            assert!(
                (plain.levels[l].u[i] - tiled.levels[l].u[i]).abs() < 1e-12,
                "mismatch at {i}"
            );
        }
    }

    #[test]
    fn split_tiled_smoother_matches_plain_3d() {
        let cfg = MgConfig::new(3, 31, CycleType::V, SmoothSteps::s444());
        let mut plain = HandOpt::new(cfg.clone());
        let mut tiled = HandOpt::new_pluto(cfg.clone());
        tiled.dtile_w = 8;
        tiled.dtile_h = 2;
        let l = (cfg.levels - 1) as usize;
        let n = cfg.n_at(cfg.levels - 1);
        let e = (n + 2) as usize;
        for z in 1..=n as usize {
            for y in 1..=n as usize {
                for x in 1..=n as usize {
                    let i = (z * e + y) * e + x;
                    plain.levels[l].u[i] = ((i * 29) % 13) as f64 - 6.0;
                    tiled.levels[l].u[i] = plain.levels[l].u[i];
                    plain.levels[l].rhs[i] = ((i * 7) % 5) as f64;
                    tiled.levels[l].rhs[i] = plain.levels[l].rhs[i];
                }
            }
        }
        plain.smooth(l, 5);
        tiled.smooth(l, 5);
        for i in 0..cfg.alloc_len(cfg.levels - 1) {
            assert!(
                (plain.levels[l].u[i] - tiled.levels[l].u[i]).abs() < 1e-12,
                "mismatch at {i}"
            );
        }
    }
}

#[cfg(test)]
mod gsrb_tests {
    use super::*;
    use crate::config::{CycleType, MgConfig, SmoothSteps};

    #[test]
    fn gsrb_half_updates_only_one_colour_2d() {
        let n = 5i64;
        let e = (n + 2) as usize;
        // non-harmonic field so every update changes the value
        let mut u: Vec<f64> = (0..e * e).map(|i| ((i * 37) % 11) as f64).collect();
        let rhs = vec![0.0; e * e];
        // zero the ghost ring
        for k in 0..e {
            for (a, b) in [(0, k), (e - 1, k), (k, 0), (k, e - 1)] {
                u[a * e + b] = 0.0;
            }
        }
        let before = u.clone();
        gsrb_half_2d(&mut u, &rhs, n, 1.0, true);
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                let i = y * e + x;
                if (y + x) % 2 == 0 {
                    assert_ne!(u[i], before[i], "red ({y},{x}) not updated");
                } else {
                    assert_eq!(u[i], before[i], "black ({y},{x}) modified");
                }
            }
        }
    }

    #[test]
    fn gsrb_half_updates_only_one_colour_3d() {
        let n = 3i64;
        let e = (n + 2) as usize;
        let mut u = vec![0.0; e * e * e];
        for z in 1..=n as usize {
            for y in 1..=n as usize {
                for x in 1..=n as usize {
                    let i = (z * e + y) * e + x;
                    u[i] = ((i * 53) % 13) as f64 + 1.0;
                }
            }
        }
        let rhs = vec![0.0; e * e * e];
        let before = u.clone();
        gsrb_half_3d(&mut u, &rhs, n, 1.0, false); // black sweep
        for z in 1..=n as usize {
            for y in 1..=n as usize {
                for x in 1..=n as usize {
                    let i = (z * e + y) * e + x;
                    if (z + y + x) % 2 == 1 {
                        assert_ne!(u[i], before[i], "black ({z},{y},{x}) not updated");
                    } else {
                        assert_eq!(u[i], before[i], "red ({z},{y},{x}) modified");
                    }
                }
            }
        }
    }

    #[test]
    fn gsrb_converges_faster_than_jacobi() {
        let base = MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 2,
                coarse: 40,
                post: 2,
            },
        );
        let run = |cfg: MgConfig| {
            let mut h = HandOpt::new(cfg.clone());
            let (mut v, f, _) = crate::solver::setup_poisson(&cfg);
            crate::solver::run_cycles(&mut h, &cfg, &mut v, &f, 4).conv_factor()
        };
        let jac = run(base.clone());
        let gs = run(base.with_gsrb());
        assert!(
            gs < jac,
            "GSRB ({gs}) should smooth better than Jacobi ({jac})"
        );
    }
}
