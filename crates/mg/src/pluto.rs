//! `handopt+pluto` — re-export of the hand-optimized baseline with its
//! smoothers executed through the concurrent-start split/diamond schedule
//! (the libPluto-substitute of this reproduction; see `gmg-poly::diamond`).
//!
//! The implementation lives in [`crate::handopt`] (the two variants share
//! every operator except the smoother loop); this module provides the
//! paper-facing constructor and tuning knobs.

use crate::config::MgConfig;
use crate::handopt::HandOpt;

/// Construct the `handopt+pluto` configuration with tuned tile parameters
/// ("tile sizes were tuned empirically around optimized ones that shipped
/// with its release" — we default to a width that keeps full bands legal
/// for 10 smoothing steps).
pub fn handopt_pluto(cfg: MgConfig, tile_w: i64, band_h: usize) -> HandOpt {
    let mut h = HandOpt::new_pluto(cfg);
    h.dtile_w = tile_w;
    h.dtile_h = band_h;
    h
}

/// Default-tuned `handopt+pluto`.
pub fn handopt_pluto_default(cfg: MgConfig) -> HandOpt {
    let (w, h) = if cfg.ndims == 2 { (128, 5) } else { (32, 3) };
    handopt_pluto(cfg, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CycleType, SmoothSteps};

    #[test]
    fn constructor_sets_label_and_knobs() {
        let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
        let h = handopt_pluto(cfg.clone(), 64, 4);
        assert_eq!(h.label(), "handopt+pluto");
        assert_eq!(h.dtile_w, 64);
        let d = handopt_pluto_default(cfg);
        assert_eq!(d.dtile_w, 128);
    }
}
