//! Integration tests for the mg crate that exercise less-travelled paths:
//! runtime-bound `TStencil` step counts, very deep level hierarchies, and
//! smoothing-configuration asymmetries across implementations.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::handopt::HandOpt;
use gmg_multigrid::solver::{run_cycles, setup_poisson, DslRunner};
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};

/// The paper's point about `TStencil`: the step count can be a runtime
/// parameter. Bind the same pipeline at several counts and check each
/// matches a fixed-count compile.
#[test]
fn runtime_step_count_matches_fixed() {
    let n = 31i64;
    let e = (n + 2) as usize;
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let build = |steps: StepCount| -> Pipeline {
        let mut p = Pipeline::new("rt");
        let t_ = p.parameter("T"); // declared in both so ids align
        let v = p.input("V", 2, n, 0);
        let f = p.input("F", 2, n, 0);
        let steps = match steps {
            StepCount::Param(_) => StepCount::Param(t_),
            fixed => fixed,
        };
        let sm = p.tstencil(
            "sm",
            2,
            n,
            0,
            steps,
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.15 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(sm);
        p
    };

    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    for y in 1..=n as usize {
        for x in 1..=n as usize {
            vin[y * e + x] = ((y * 3 + x) % 7) as f64;
            fin[y * e + x] = ((y + x * 5) % 3) as f64;
        }
    }

    for t in [1usize, 3, 6] {
        let p_rt = build(StepCount::Param(gmg_ir::ParamId(0)));
        let mut bindings = ParamBindings::new();
        bindings.bind(gmg_ir::ParamId(0), t as i64);
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = vec![8, 16];
        let plan_rt = compile(&p_rt, &bindings, opts.clone()).unwrap();

        let p_fx = build(StepCount::Fixed(t));
        let plan_fx = compile(&p_fx, &ParamBindings::new(), opts).unwrap();

        let out_name = format!("sm.s{}", t - 1);
        let run = |plan: polymg::CompiledPipeline| -> Vec<f64> {
            let mut engine = Engine::new(plan);
            let mut out = vec![0.0; e * e];
            engine
                .run(&[("V", &vin), ("F", &fin)], vec![(&out_name, &mut out)])
                .unwrap();
            out
        };
        assert_eq!(run(plan_rt), run(plan_fx), "T = {t}");
    }
}

/// Deep hierarchies: 8 levels down to a 3² coarsest grid.
#[test]
fn eight_level_hierarchy() {
    let mut cfg = MgConfig::new(
        2,
        1023,
        CycleType::V,
        SmoothSteps {
            pre: 2,
            coarse: 30,
            post: 2,
        },
    );
    cfg.levels = 9; // coarsest interior: (1024 >> 8) - 1 = 3
    assert_eq!(cfg.n_at(0), 3);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = vec![32, 128];
    let mut dsl = DslRunner::new(&cfg, opts, "opt+").unwrap();
    let (mut v, f, _) = setup_poisson(&cfg);
    let r = run_cycles(&mut dsl, &cfg, &mut v, &f, 3);
    assert!(
        r.conv_factor() < 0.12,
        "deep hierarchy should converge fast: {}",
        r.conv_factor()
    );
}

/// Asymmetric configurations run identically in DSL and handopt.
#[test]
fn asymmetric_configs_agree() {
    for (pre, coarse, post) in [(0, 5, 3), (7, 1, 0), (1, 0, 1)] {
        let cfg = MgConfig::new(2, 63, CycleType::W, SmoothSteps { pre, coarse, post });
        let mut hand = HandOpt::new(cfg.clone());
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = vec![16, 32];
        let mut dsl = DslRunner::new(&cfg, opts, "opt+").unwrap();
        let (v0, f, _) = setup_poisson(&cfg);
        let mut vh = v0.clone();
        let mut vd = v0;
        use gmg_multigrid::solver::CycleRunner;
        hand.cycle(&mut vh, &f);
        dsl.cycle(&mut vd, &f);
        let dev = vh
            .iter()
            .zip(&vd)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-11, "{pre}-{coarse}-{post}: dev {dev}");
    }
}
