//! Batched multi-RHS execution: bitwise equivalence against sequential
//! single-RHS cycles across variants, pool-traffic amortisation, typed
//! mid-batch fault handling without pooled-slot leaks, and input
//! validation.

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, DslRunner};
use polymg::{ChaosOptions, PipelineOptions, Variant};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// B perturbed copies of the base problem: distinct interiors, same shape.
fn perturbed_batch(cfg: &MgConfig, b: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let (v0, f, _) = setup_poisson(cfg);
    let mut vs = Vec::with_capacity(b);
    let mut fs = Vec::with_capacity(b);
    for k in 0..b {
        let mut v = v0.clone();
        let mut fk = f.clone();
        for (i, x) in fk.iter_mut().enumerate() {
            let r = splitmix64((k as u64) << 32 | i as u64);
            *x += (r % 1000) as f64 * 1e-6;
        }
        if k > 0 {
            // nonzero initial guesses exercise the V input path too
            for (i, x) in v.iter_mut().enumerate() {
                let r = splitmix64(0xABCD ^ (k as u64) << 32 ^ i as u64);
                *x = (r % 100) as f64 * 1e-7;
            }
            // ghost ring must keep the boundary value
            gmg_runtime::fill_ghost(
                &mut v,
                &vec![cfg.n_at(cfg.levels - 1) + 2; cfg.ndims],
                0.0,
            );
        }
        vs.push(v);
        fs.push(fk);
    }
    (vs, fs)
}

fn assert_batch_matches_sequential(cfg: &MgConfig, variant: Variant, b: usize, cycles: usize) {
    let opts = || PipelineOptions::for_variant(variant, cfg.ndims);
    let (vs0, fs) = perturbed_batch(cfg, b);

    // sequential references, one fresh runner per RHS
    let mut expect = Vec::new();
    for (v0, f) in vs0.iter().zip(&fs) {
        let mut r = DslRunner::new(cfg, opts(), "seq").unwrap();
        let mut v = v0.clone();
        for _ in 0..cycles {
            r.cycle_with_stats(&mut v, f).unwrap();
        }
        expect.push(v);
    }

    let mut batch_runner = DslRunner::new(cfg, opts(), "batch").unwrap();
    let mut vs = vs0;
    let fslices: Vec<&[f64]> = fs.iter().map(|f| f.as_slice()).collect();
    for _ in 0..cycles {
        batch_runner.cycle_batch_with_stats(&mut vs, &fslices).unwrap();
    }

    for (k, (got, want)) in vs.iter().zip(&expect).enumerate() {
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            gb, wb,
            "batched RHS {k} diverged bitwise from sequential ({variant:?}, {}d)",
            cfg.ndims
        );
    }
}

#[test]
fn batch_matches_sequential_bitwise_2d_all_variants() {
    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    for variant in [
        Variant::Naive,
        Variant::Opt,
        Variant::OptPlus,
        Variant::DtileOptPlus,
    ] {
        assert_batch_matches_sequential(&cfg, variant, 3, 2);
    }
}

#[test]
fn batch_matches_sequential_bitwise_3d() {
    let mut cfg = MgConfig::new(3, 15, CycleType::V, SmoothSteps::s444());
    cfg.levels = 3;
    for variant in [Variant::Naive, Variant::OptPlus] {
        assert_batch_matches_sequential(&cfg, variant, 3, 2);
    }
}

#[test]
fn batch_matches_sequential_bitwise_wcycle() {
    let cfg = MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444());
    assert_batch_matches_sequential(&cfg, Variant::OptPlus, 4, 1);
}

#[test]
fn batch_amortises_pool_traffic() {
    // A warm batched pass of B RHS must do no more pool allocations than a
    // warm single pass: PoolAlloc runs only on the first RHS of the sweep.
    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    let mut runner = DslRunner::new(&cfg, opts, "pool").unwrap();
    let (mut vs, fs) = perturbed_batch(&cfg, 4);
    let fslices: Vec<&[f64]> = fs.iter().map(|f| f.as_slice()).collect();

    // warm the pool
    runner.cycle_batch_with_stats(&mut vs, &fslices).unwrap();

    let warm = runner.engine().pool_stats();
    let mut v1 = vec![vs[0].clone()];
    runner
        .cycle_batch_with_stats(&mut v1, &fslices[..1])
        .unwrap();
    let after_single = runner.engine().pool_stats();
    let single_allocs =
        (after_single.hits - warm.hits) + (after_single.misses - warm.misses);

    runner.cycle_batch_with_stats(&mut vs, &fslices).unwrap();
    let after_batch = runner.engine().pool_stats();
    let batch_allocs =
        (after_batch.hits - after_single.hits) + (after_batch.misses - after_single.misses);

    assert!(single_allocs > 0, "plan must use the pool");
    assert_eq!(
        batch_allocs, single_allocs,
        "a batch of 4 must allocate exactly as much as a single pass"
    );
}

#[test]
fn mid_batch_fault_is_typed_and_leaks_nothing() {
    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.chaos = Some(ChaosOptions::new(0xBA7C4, 1.0));
    let mut runner = DslRunner::new(&cfg, opts, "chaos").unwrap();
    let (mut vs, fs) = perturbed_batch(&cfg, 3);
    let fslices: Vec<&[f64]> = fs.iter().map(|f| f.as_slice()).collect();

    let live0 = runner.engine().pool_stats().live_bytes;
    let err = runner
        .cycle_batch_with_stats(&mut vs, &fslices)
        .expect_err("rate-1.0 chaos must fail the batch");
    // typed, never a panic
    let _ = format!("{err}");
    assert_eq!(
        runner.engine().pool_stats().live_bytes,
        live0,
        "failed batch leaked pooled bytes"
    );

    // disarm and rerun: the engine and pool stay usable and correct
    runner.engine_mut().set_chaos(None);
    let (vs0, _) = perturbed_batch(&cfg, 3);
    let mut expect = vs0.clone();
    {
        let mut seq = DslRunner::new(
            &cfg,
            PipelineOptions::for_variant(Variant::OptPlus, 2),
            "seq",
        )
        .unwrap();
        for (v, f) in expect.iter_mut().zip(&fs) {
            seq.cycle_with_stats(v, f).unwrap();
        }
    }
    let mut vs = vs0;
    runner.cycle_batch_with_stats(&mut vs, &fslices).unwrap();
    for (got, want) in vs.iter().zip(&expect) {
        assert_eq!(
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "post-recovery batch diverged"
        );
    }
}

#[test]
fn empty_and_mismatched_batches_are_typed_errors() {
    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let mut runner = DslRunner::new(
        &cfg,
        PipelineOptions::for_variant(Variant::OptPlus, 2),
        "bad",
    )
    .unwrap();
    let (v0, f, _) = setup_poisson(&cfg);
    assert!(runner.cycle_batch_with_stats(&mut [], &[]).is_err());
    let mut vs = vec![v0];
    assert!(runner
        .cycle_batch_with_stats(&mut vs, &[f.as_slice(), f.as_slice()])
        .is_err());
}
