//! Timing utilities: "the minimum execution time from five runs was taken
//! in all cases" (§4) — the repeat count is a parameter here so quick runs
//! stay cheap.

use gmg_multigrid::config::MgConfig;
use gmg_multigrid::solver::{setup_poisson, time_cycles, CycleRunner};
use std::time::Duration;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct TimingResult {
    pub label: String,
    /// Minimum over repeats of the total time for `iters` cycles.
    pub total: Duration,
    pub iters: usize,
}

impl TimingResult {
    /// Seconds for the whole iteration budget.
    pub fn seconds(&self) -> f64 {
        self.total.as_secs_f64()
    }

    /// Seconds per cycle. A zero-iteration measurement has no per-cycle
    /// time; returning NaN (rather than clamping the divisor) keeps the
    /// degenerate case visible instead of reporting the total as one cycle.
    pub fn per_cycle(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.seconds() / self.iters as f64
    }
}

/// Run `iters` cycles `repeats` times on fresh problems; keep the minimum.
pub fn min_time(
    runner: &mut dyn CycleRunner,
    cfg: &MgConfig,
    iters: usize,
    repeats: usize,
) -> TimingResult {
    let (v0, f, _) = setup_poisson(cfg);
    let mut best = Duration::MAX;
    for _ in 0..repeats.max(1) {
        let mut v = v0.clone();
        let t = time_cycles(runner, &mut v, &f, iters);
        best = best.min(t);
    }
    TimingResult {
        label: runner.label(),
        total: best,
        iters,
    }
}

/// Format a speedup table row. A non-positive or non-finite measurement
/// (e.g. a timer too coarse to resolve the run) renders the speedup as
/// "n/a" instead of dividing by zero.
pub fn fmt_row(label: &str, secs: f64, base_secs: f64) -> String {
    let ratio = base_secs / secs;
    if secs > 0.0 && ratio.is_finite() {
        format!("  {label:<20} {secs:>9.3}s   speedup vs naive: {ratio:>5.2}x")
    } else {
        format!("  {label:<20} {secs:>9.3}s   speedup vs naive:   n/a")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runners::{make_runner, ImplKind};
    use gmg_multigrid::config::{CycleType, SmoothSteps};

    #[test]
    fn min_time_runs() {
        let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
        let mut r = make_runner(&cfg, ImplKind::HandOpt, 1);
        let t = min_time(&mut *r, &cfg, 2, 2);
        assert_eq!(t.iters, 2);
        assert!(t.seconds() > 0.0);
        assert!(t.per_cycle() <= t.seconds());
        assert_eq!(t.label, "handopt");
    }

    #[test]
    fn fmt_row_shows_speedup() {
        let s = fmt_row("x", 1.0, 3.0);
        assert!(s.contains("3.00x"));
    }

    #[test]
    fn fmt_row_degenerate_times_render_na() {
        assert!(fmt_row("x", 0.0, 3.0).contains("n/a"));
        assert!(fmt_row("x", -1.0, 3.0).contains("n/a"));
        assert!(fmt_row("x", f64::NAN, 3.0).contains("n/a"));
        assert!(fmt_row("x", 1.0, f64::INFINITY).contains("n/a"));
    }

    #[test]
    fn per_cycle_of_zero_iters_is_nan() {
        let t = TimingResult {
            label: "z".to_string(),
            total: Duration::from_secs(1),
            iters: 0,
        };
        assert!(t.per_cycle().is_nan());
    }
}
