//! One function per table/figure of Section 4.
//!
//! Every function prints a paper-style block and returns it as a `String`
//! (the `reproduce` binary also tees these into `EXPERIMENTS.md`-ready
//! form). Shapes to compare against the paper are noted inline.

use crate::runners::{harness_tiles, make_runner, ImplKind};
use crate::timing::{fmt_row, min_time};
use gmg_ir::expr::Operand as Op;
use gmg_ir::stencil::{stencil_2d, stencil_3d};
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_multigrid::config::{CycleType, MgConfig, SizeClass, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::CycleRunner as _;
use gmg_nas::dsl::NasDsl;
use gmg_nas::reference::NasReference;
use gmg_runtime::Engine;
use gmg_trace::Trace;
use polymg::{PipelineOptions, Variant};
use std::fmt::Write as _;
use std::time::Instant;

/// Harness-wide options.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    pub class: SizeClass,
    /// Override the per-class cycle iteration counts (quick mode).
    pub iters_override: Option<usize>,
    /// Timing repeats (paper: 5, minimum taken).
    pub repeats: usize,
    /// Thread counts for scaling rows.
    pub threads: Vec<usize>,
    /// Shared trace handle; disabled unless `--profile` asked for one.
    /// Cloned into every engine the experiments construct, so one profile
    /// file aggregates the whole run.
    pub trace: Trace,
}

impl ExpOptions {
    /// Quick defaults for a small container.
    pub fn quick() -> Self {
        ExpOptions {
            class: SizeClass::Smoke,
            iters_override: Some(2),
            repeats: 1,
            threads: vec![1],
            trace: Trace::disabled(),
        }
    }

    /// Scaled-class defaults (the EXPERIMENTS.md runs).
    pub fn scaled(class: SizeClass) -> Self {
        ExpOptions {
            class,
            iters_override: None,
            repeats: 2,
            threads: vec![1],
            trace: Trace::disabled(),
        }
    }

    fn iters(&self, ndims: usize) -> usize {
        self.iters_override
            .unwrap_or_else(|| self.class.cycle_iters(ndims))
    }
}

/// The four Poisson benchmarks of §4.1.
pub fn benchmarks(ndims: usize, class: SizeClass) -> Vec<MgConfig> {
    let n = class.n(ndims);
    let mut v = Vec::new();
    for cycle in [CycleType::V, CycleType::W] {
        for steps in [SmoothSteps::s444(), SmoothSteps::s1000()] {
            v.push(MgConfig::new(ndims, n, cycle, steps));
        }
    }
    v
}

/// Table 2: problem-size configurations.
pub fn table2(class: SizeClass) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: problem sizes (class {}) ==", class.tag());
    let _ = writeln!(
        out,
        "  2D      grid {n2}^2 (interior), {i2} cycle iters",
        n2 = class.n(2),
        i2 = class.cycle_iters(2)
    );
    let _ = writeln!(
        out,
        "  3D      grid {n3}^3 (interior), {i3} cycle iters",
        n3 = class.n(3),
        i3 = class.cycle_iters(3)
    );
    let _ = writeln!(
        out,
        "  NAS-MG  grid {n3}^3 (interior), 20 cycle iters",
        n3 = class.n(3)
    );
    out
}

/// Table 3: benchmark characteristics — DAG stage counts, compiled-plan
/// sizes (our analogue of generated LoC) and polymg-naive execution times.
pub fn table3(o: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 3: benchmark characteristics (class {}) ==",
        o.class.tag()
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>7} {:>8} {:>8} {:>12}",
        "benchmark", "stages", "groups+", "arrays+", "naive-time(s)"
    );
    for ndims in [2usize, 3] {
        for cfg in benchmarks(ndims, o.class) {
            let pipeline = build_cycle_pipeline(&cfg);
            let graph = gmg_ir::StageGraph::build(&pipeline, &ParamBindings::new());
            let mut opts = PipelineOptions::for_variant(Variant::OptPlus, ndims);
            opts.tile_sizes = harness_tiles(ndims);
            let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
            let stats = polymg::report::stats(&plan);
            let mut naive = make_runner(&cfg, ImplKind::PolymgNaive, 1);
            let t = min_time(&mut *naive, &cfg, o.iters(ndims), o.repeats);
            let _ = writeln!(
                out,
                "  {:<14} {:>7} {:>8} {:>8} {:>12.3}",
                cfg.tag(),
                graph.num_compute_stages(),
                stats.num_groups,
                stats.num_full_arrays,
                t.seconds()
            );
        }
    }
    // NAS
    let n = o.class.n(3);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 3);
    opts.tile_sizes = harness_tiles(3);
    let nas = NasDsl::new(n, 4, opts, "polymg-opt+").unwrap();
    let _ = writeln!(
        out,
        "  {:<14} {:>7} {:>8} {:>8} {:>12}",
        "NAS-MG",
        nas.engine().plan().graph.num_compute_stages(),
        nas.engine().plan().groups.len(),
        nas.engine().plan().storage.num_intermediate_arrays(),
        "-"
    );
    out
}

/// Figures 9/10 core: speedups of all six implementations over
/// polymg-naive, for the four benchmarks at one rank.
pub fn fig_speedups(ndims: usize, o: &ExpOptions) -> String {
    let fig = if ndims == 2 { "Figure 9" } else { "Figure 10" };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {fig}: {ndims}D speedups over polymg-naive (class {}) ==",
        o.class.tag()
    );
    for cfg in benchmarks(ndims, o.class) {
        let iters = o.iters(ndims);
        let _ = writeln!(
            out,
            "{} class {} ({} iters):",
            cfg.tag(),
            o.class.tag(),
            iters
        );
        let mut rows = Vec::new();
        for kind in ImplKind::all() {
            let mut r = make_runner(&cfg, kind, o.threads[0]);
            r.set_trace(o.trace.clone());
            let t = min_time(&mut *r, &cfg, iters, o.repeats);
            rows.push((kind, t.seconds()));
        }
        let base = rows
            .iter()
            .find(|(k, _)| *k == ImplKind::PolymgNaive)
            .map(|(_, s)| *s)
            .unwrap();
        for (kind, secs) in rows {
            let _ = writeln!(out, "{}", fmt_row(kind.label(), secs, base));
        }
    }
    out
}

/// Figure 10e: NAS MG — reference vs PolyMG variants.
pub fn fig10_nas(o: &ExpOptions) -> String {
    let n = o.class.n(3);
    let iters = o.iters_override.unwrap_or(20);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 10e: NAS-MG class {} ({iters} iters, {n}^3) ==",
        o.class.tag()
    );
    let e = (n + 2) as usize;
    let mut v = vec![0.0; e * e * e];
    gmg_nas::init_charges(&mut v, n, 10, 314159);

    // reference port
    let mut best_ref = f64::MAX;
    for _ in 0..o.repeats {
        let mut nref = NasReference::new(n, 4);
        nref.set_v(&v);
        let t0 = Instant::now();
        for _ in 0..iters {
            nref.iteration();
        }
        best_ref = best_ref.min(t0.elapsed().as_secs_f64());
    }
    let mut base_naive = None;
    let mut rows = vec![format!("  {:<20} {:>9.3}s", "NAS reference", best_ref)];
    for kind in ImplKind::polymg() {
        if kind == ImplKind::PolymgDtileOptPlus {
            continue; // NAS has no TStencil chains; identical to opt+
        }
        let mut opts = PipelineOptions::for_variant(kind.variant().unwrap(), 3);
        opts.tile_sizes = harness_tiles(3);
        opts.threads = o.threads[0];
        let mut best = f64::MAX;
        for _ in 0..o.repeats {
            let mut dsl = NasDsl::new(n, 4, opts.clone(), kind.label()).unwrap();
            let mut u = vec![0.0; e * e * e];
            let t0 = Instant::now();
            for _ in 0..iters {
                gmg_multigrid::solver::CycleRunner::cycle(&mut dsl, &mut u, &v);
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        if kind == ImplKind::PolymgNaive {
            base_naive = Some(best);
        }
        rows.push(fmt_row(kind.label(), best, base_naive.unwrap_or(best)));
    }
    let _ = writeln!(
        out,
        "{}\n  (paper shape: polymg-opt+ beats the reference by ~1.3x on class C)",
        rows.join("\n")
    );
    out
}

/// A pure Jacobi smoother pipeline (for Figure 11a).
pub fn smoother_pipeline(ndims: usize, n: i64, steps: usize, omega: f64) -> Pipeline {
    let mut p = Pipeline::new(&format!("smoother-{ndims}d-{steps}"));
    let v = p.input("V", ndims, n, 0);
    let f = p.input("F", ndims, n, 0);
    let h = 1.0 / (n + 1) as f64;
    let w = omega * h * h / (2.0 * ndims as f64);
    let zero = vec![0i64; ndims];
    let lap = match ndims {
        2 => stencil_2d(
            Op::State,
            &[
                vec![0.0, -1.0, 0.0],
                vec![-1.0, 4.0, -1.0],
                vec![0.0, -1.0, 0.0],
            ],
            1.0 / (h * h),
        ),
        3 => {
            let mut wts = vec![vec![vec![0.0; 3]; 3]; 3];
            wts[1][1][1] = 6.0;
            for (z, y, x) in [
                (0, 1, 1),
                (2, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (1, 1, 0),
                (1, 1, 2),
            ] {
                wts[z][y][x] = -1.0;
            }
            stencil_3d(Op::State, &wts, 1.0 / (h * h))
        }
        _ => panic!("unsupported rank"),
    };
    let defn = Op::State.at(&zero) - w * (lap - Op::Func(f).at(&zero));
    let sm = p.tstencil("sm", ndims, n, 0, StepCount::Fixed(steps), Some(v), defn);
    let out = p.function("out", ndims, n, 0, Op::Func(sm).at(&zero) + 0.0);
    p.mark_output(out);
    p
}

/// Figure 11a: smoother-only comparison — overlapped tiling (opt+) vs
/// diamond/split (dtile) vs untiled sweeps, for 4 and 10 Jacobi steps in
/// 3-D.
pub fn fig11a(o: &ExpOptions) -> String {
    let n = o.class.n(3);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 11a: 3D smoother-only, {n}^3, overlapped vs diamond =="
    );
    for steps in [4usize, 10] {
        let _ = writeln!(out, " {steps} Jacobi steps:");
        let p = smoother_pipeline(3, n, steps, 6.0 / 7.0);
        let mut base = None;
        for (label, variant) in [
            ("untiled (naive)", Variant::Naive),
            ("overlapped (opt+)", Variant::OptPlus),
            ("diamond (dtile)", Variant::DtileOptPlus),
        ] {
            let mut opts = PipelineOptions::for_variant(variant, 3);
            opts.tile_sizes = harness_tiles(3);
            opts.threads = o.threads[0];
            opts.dtile_band = 4;
            let plan = polymg::compile_cached(&p, &ParamBindings::new(), opts).unwrap();
            let mut engine = Engine::new(plan);
            engine.set_trace(o.trace.clone());
            let e = (n + 2) as usize;
            let len = e * e * e;
            let vin = vec![0.0; len];
            let mut fin = vec![0.0; len];
            for (i, x) in fin.iter_mut().enumerate() {
                *x = ((i % 17) as f64 - 8.0) * 0.1;
            }
            let mut buf = vec![0.0; len];
            let reps = o.repeats.max(1) * 2;
            let t0 = Instant::now();
            for _ in 0..reps {
                engine
                    .run(&[("V", &vin), ("F", &fin)], vec![("out", &mut buf)])
                    .unwrap();
            }
            let secs = t0.elapsed().as_secs_f64() / reps as f64;
            if base.is_none() {
                base = Some(secs);
            }
            let _ = writeln!(out, "{}", fmt_row(label, secs, base.unwrap()));
        }
    }
    let _ = writeln!(
        out,
        "  (paper shape: overlapped slightly ahead at 4 steps; diamond wins at 10)"
    );
    out
}

/// Figure 11b: storage-optimization breakdown for V-10-0-0, 2-D and 3-D:
/// naive → +intra-group reuse → +pooled allocation → +inter-group reuse.
pub fn fig11b(o: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 11b: storage-optimization breakdown, V-10-0-0 (class {}) ==",
        o.class.tag()
    );
    for ndims in [2usize, 3] {
        let cfg = MgConfig::new(ndims, o.class.n(ndims), CycleType::V, SmoothSteps::s1000());
        let iters = o.iters(ndims);
        let _ = writeln!(out, " {}D ({} iters):", ndims, iters);
        let mut base = None;
        type OptTweak = Box<dyn Fn(&mut PipelineOptions)>;
        let steps: [(&str, OptTweak); 4] = [
            (
                "naive",
                Box::new(|o: &mut PipelineOptions| {
                    o.tiling = polymg::TilingMode::None;
                    o.group_limit = 1;
                }),
            ),
            (
                "+intra-group reuse",
                Box::new(|o: &mut PipelineOptions| {
                    o.intra_group_reuse = true;
                }),
            ),
            (
                "+pooled allocation",
                Box::new(|o: &mut PipelineOptions| {
                    o.intra_group_reuse = true;
                    o.pooled_allocation = true;
                }),
            ),
            (
                "+inter-group reuse",
                Box::new(|o: &mut PipelineOptions| {
                    o.intra_group_reuse = true;
                    o.pooled_allocation = true;
                    o.inter_group_reuse = true;
                }),
            ),
        ];
        for (label, tweak) in steps.iter() {
            let mut opts = PipelineOptions::for_variant(Variant::Opt, ndims);
            opts.tile_sizes = harness_tiles(ndims);
            opts.threads = o.threads[0];
            tweak(&mut opts);
            let pipeline = build_cycle_pipeline(&cfg);
            let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
            let bytes = plan.storage.intermediate_bytes();
            let mut runner = gmg_multigrid::solver::DslRunner::from_plan(plan, &cfg);
            runner.set_trace(o.trace.clone());
            // One cold cycle fills the pool with fresh allocations; reset the
            // counters afterwards so the reported row describes steady-state
            // recycling rather than the first-touch misses.
            min_time(&mut runner, &cfg, 1, 1);
            runner.engine_mut().reset_pool_stats();
            let t = min_time(&mut runner, &cfg, iters, o.repeats);
            let pool = runner.engine_mut().pool_stats();
            if base.is_none() {
                base = Some(t.seconds());
            }
            let total = pool.hits + pool.misses;
            let _ = writeln!(
                out,
                "{}   intermediates: {:>8} KiB planned, {:>8} KiB pool peak, {}/{} pooled reuses",
                fmt_row(label, t.seconds(), base.unwrap()),
                bytes / 1024,
                pool.peak_live_bytes / 1024,
                pool.hits,
                total,
            );
        }
    }
    out
}

/// Figure 12: auto-tuning sweep over tile sizes × group limits for
/// 2D-V-10-0-0, comparing opt and opt+ per configuration.
pub fn fig12(o: &ExpOptions, stride: usize) -> String {
    let cfg = MgConfig::new(2, o.class.n(2), CycleType::V, SmoothSteps::s1000());
    let iters = o.iters(2).min(3);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 12: autotuning sweep, 2D-V-10-0-0 class {} (stride {stride}) ==",
        o.class.tag()
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>12} {:>12}",
        "config (tiles,limit)", "opt (s)", "opt+ (s)"
    );
    let pipeline = build_cycle_pipeline(&cfg);
    let mut best = (f64::MAX, String::new());
    let space = polymg::autotune::search_space(2).expect("2-D search space");
    for tc in space.iter().step_by(stride) {
        let mut row = format!(
            "  {:<22}",
            format!("{:?} gl={}", tc.tile_sizes, tc.group_limit)
        );
        let mut optplus_secs = f64::MAX;
        for variant in [Variant::Opt, Variant::OptPlus] {
            let mut opts = PipelineOptions::for_variant(variant, 2);
            opts = tc.apply(&opts);
            opts.threads = o.threads[0];
            let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
            let mut runner = gmg_multigrid::solver::DslRunner::from_plan(plan, &cfg);
            let t = min_time(&mut runner, &cfg, iters, 1);
            let _ = write!(row, " {:>11.3}s", t.seconds());
            if variant == Variant::OptPlus {
                optplus_secs = t.seconds();
            }
        }
        if optplus_secs < best.0 {
            best = (
                optplus_secs,
                format!("{:?} gl={}", tc.tile_sizes, tc.group_limit),
            );
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out, "  best opt+ config: {} ({:.3}s)", best.1, best.0);
    out
}

/// Figure 6/7: the grouping and storage-mapping dump for 2D V-4-4-4.
pub fn grouping_report(class: SizeClass) -> String {
    let cfg = MgConfig::new(2, class.n(2), CycleType::V, SmoothSteps::s444());
    let pipeline = build_cycle_pipeline(&cfg);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = harness_tiles(2);
    let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
    format!(
        "== Figures 6/7: grouping & storage mapping (2D V-4-4-4) ==\n{}",
        polymg::report::grouping_dump(&plan)
    )
}

/// Figure 2/6 as Graphviz: the grouped stage DAG of the 2-D V- and W-cycles.
pub fn dot_report(class: SizeClass) -> String {
    let mut out = String::new();
    for cycle in [CycleType::V, CycleType::W] {
        let cfg = MgConfig::new(2, class.n(2), cycle, SmoothSteps::s444());
        let pipeline = build_cycle_pipeline(&cfg);
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = harness_tiles(2);
        let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
        std::fs::create_dir_all("reports").ok();
        let path = format!("reports/dag_{}.dot", cfg.tag());
        std::fs::write(&path, polymg::report::dot_dump(&plan)).expect("write dot");
        let _ = writeln!(
            out,
            "wrote {path} ({} stages, {} groups) — render with `dot -Tsvg {path}`",
            plan.graph.num_compute_stages(),
            plan.groups.len()
        );
    }
    out
}

/// Thread-scaling rows (the paper's scaling analysis; on a 1-core host the
/// extra rows measure oversubscription, and the table mainly documents that
/// threading is a runtime parameter).
pub fn scaling(o: &ExpOptions, threads: &[usize]) -> String {
    let cfg = MgConfig::new(2, o.class.n(2), CycleType::W, SmoothSteps::s1000());
    let iters = o.iters(2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Scaling: {} class {} across thread counts ==",
        cfg.tag(),
        o.class.tag()
    );
    for &t in threads {
        let mut naive = make_runner(&cfg, ImplKind::PolymgNaive, t);
        let tn = min_time(&mut *naive, &cfg, iters, o.repeats);
        let mut plus = make_runner(&cfg, ImplKind::PolymgOptPlus, t);
        let tp = min_time(&mut *plus, &cfg, iters, o.repeats);
        let _ = writeln!(
            out,
            "  threads={t:<3} naive {:>8.3}s   opt+ {:>8.3}s   (opt+ speedup {:.2}x)",
            tn.seconds(),
            tp.seconds(),
            tn.seconds() / tp.seconds()
        );
    }
    out
}

/// §4.2 memory claims: intermediate-storage footprint and pool behaviour
/// per variant. Each row pairs the planner's prediction with counters
/// observed by actually running a cycle under a per-row trace — the same
/// `gmg-trace` counters the runtime increments during any profiled run
/// (see `polymg::report::observed_memory`).
pub fn memory_report(o: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Memory: intermediate full-array footprint per variant (class {}) ==",
        o.class.tag()
    );
    for ndims in [2usize, 3] {
        let cfg = MgConfig::new(ndims, o.class.n(ndims), CycleType::W, SmoothSteps::s444());
        let pipeline = build_cycle_pipeline(&cfg);
        let iters = o.iters(ndims).clamp(1, 2);
        let _ = writeln!(out, " {} :", cfg.tag());
        for kind in ImplKind::polymg() {
            let mut opts = PipelineOptions::for_variant(kind.variant().unwrap(), ndims);
            opts.tile_sizes = harness_tiles(ndims);
            opts.threads = o.threads[0];
            let plan = polymg::compile_cached(&pipeline, &ParamBindings::new(), opts).unwrap();
            let static_cols = format!(
                "{:>4} arrays, {:>9} KiB intermediates, {:>7} KiB scratch/worker",
                plan.storage.num_intermediate_arrays(),
                plan.storage.intermediate_bytes() / 1024,
                plan.peak_scratch_bytes() / 1024,
            );
            // Observe the pool with a row-local trace so the numbers are
            // per-variant, not cumulative over the table.
            let row_trace = Trace::enabled();
            let mut runner = gmg_multigrid::solver::DslRunner::from_plan(plan, &cfg);
            runner.set_trace(row_trace.clone());
            let (mut v, f, _) = gmg_multigrid::solver::setup_poisson(&cfg);
            gmg_multigrid::solver::run_cycles_traced(
                &mut runner,
                &cfg,
                &mut v,
                &f,
                iters,
                &row_trace,
            );
            let observed = match row_trace.report() {
                Some(rep) => {
                    let m = polymg::report::observed_memory(runner.engine_mut().plan(), &rep);
                    format!(
                        " | observed: {:>7} KiB pool peak, {:.0}% pool hits",
                        m.pool.peak_live_bytes / 1024,
                        100.0 * m.pool_hit_rate(),
                    )
                }
                // Tracing compiled out (`gmg-trace` built without `capture`).
                None => String::new(),
            };
            let _ = writeln!(out, "  {:<20} {static_cols}{observed}", kind.label());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> ExpOptions {
        ExpOptions::quick()
    }

    #[test]
    fn table2_mentions_classes() {
        let s = table2(SizeClass::B);
        assert!(s.contains("1023"));
        assert!(s.contains("63"));
    }

    #[test]
    fn benchmarks_enumerate_four() {
        let b = benchmarks(2, SizeClass::Smoke);
        assert_eq!(b.len(), 4);
        assert!(b.iter().any(|c| c.tag() == "W-2D-10-0-0"));
    }

    #[test]
    fn smoother_pipeline_builds() {
        let p = smoother_pipeline(3, 15, 4, 6.0 / 7.0);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        assert_eq!(g.num_compute_stages(), 5);
        assert!(gmg_ir::validate::validate(&p, &g).is_empty());
    }

    #[test]
    fn grouping_report_runs() {
        let s = grouping_report(SizeClass::Smoke);
        assert!(s.contains("group 0"));
        assert!(s.contains("scratch#"));
    }

    #[test]
    fn memory_report_shows_reuse_gain() {
        let s = memory_report(&q());
        assert!(s.contains("polymg-opt+"));
        // observed columns come from the runtime counters
        assert!(s.contains("pool peak"));
        assert!(s.contains("% pool hits"));
    }

    #[test]
    fn fig11b_reports_live_pool_counters() {
        let mut o = q();
        o.trace = Trace::enabled();
        let s = fig11b(&o);
        assert!(s.contains("+pooled allocation"));
        assert!(s.contains("KiB pool peak"));
        assert!(s.contains("pooled reuses"));
        let rep = o.trace.report().expect("capture enabled by default");
        assert!(!rep.stages.is_empty(), "stage spans should be recorded");
        let json = rep.to_json();
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"dispatch\""));
    }

    #[test]
    fn fig11a_runs_quickly() {
        let s = fig11a(&q());
        assert!(s.contains("overlapped"));
        assert!(s.contains("diamond"));
    }
}
