//! Construction of the six evaluated configurations for any benchmark.

use gmg_multigrid::config::MgConfig;
use gmg_multigrid::handopt::HandOpt;
use gmg_multigrid::pluto::handopt_pluto_default;
use gmg_multigrid::solver::{CycleRunner, DslRunner};
use polymg::{PipelineOptions, Variant};

/// The six implementations compared in Figures 9/10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplKind {
    PolymgNaive,
    PolymgOpt,
    PolymgOptPlus,
    PolymgDtileOptPlus,
    HandOpt,
    HandOptPluto,
}

impl ImplKind {
    /// All six, in the paper's plotting order.
    pub fn all() -> [ImplKind; 6] {
        [
            ImplKind::HandOpt,
            ImplKind::HandOptPluto,
            ImplKind::PolymgNaive,
            ImplKind::PolymgOpt,
            ImplKind::PolymgOptPlus,
            ImplKind::PolymgDtileOptPlus,
        ]
    }

    /// The PolyMG-compiled subset.
    pub fn polymg() -> [ImplKind; 4] {
        [
            ImplKind::PolymgNaive,
            ImplKind::PolymgOpt,
            ImplKind::PolymgOptPlus,
            ImplKind::PolymgDtileOptPlus,
        ]
    }

    /// Display label (paper naming).
    pub fn label(&self) -> &'static str {
        match self {
            ImplKind::PolymgNaive => "polymg-naive",
            ImplKind::PolymgOpt => "polymg-opt",
            ImplKind::PolymgOptPlus => "polymg-opt+",
            ImplKind::PolymgDtileOptPlus => "polymg-dtile-opt+",
            ImplKind::HandOpt => "handopt",
            ImplKind::HandOptPluto => "handopt+pluto",
        }
    }

    /// The compiler variant for PolyMG kinds.
    pub fn variant(&self) -> Option<Variant> {
        match self {
            ImplKind::PolymgNaive => Some(Variant::Naive),
            ImplKind::PolymgOpt => Some(Variant::Opt),
            ImplKind::PolymgOptPlus => Some(Variant::OptPlus),
            ImplKind::PolymgDtileOptPlus => Some(Variant::DtileOptPlus),
            _ => None,
        }
    }
}

/// Default tile sizes per rank used by the harness (a good middle of the
/// §3.2.4 space for the scaled classes on this host).
pub fn harness_tiles(ndims: usize) -> Vec<i64> {
    match ndims {
        2 => vec![32, 256],
        3 => vec![16, 32, 128],
        _ => panic!("unsupported rank"),
    }
}

/// Build a runner for `cfg` under `kind`, with `threads` workers (0 =
/// rayon default).
pub fn make_runner(cfg: &MgConfig, kind: ImplKind, threads: usize) -> Box<dyn CycleRunner> {
    match kind {
        ImplKind::HandOpt => Box::new(HandOpt::new(cfg.clone())),
        ImplKind::HandOptPluto => Box::new(handopt_pluto_default(cfg.clone())),
        _ => {
            let mut opts = PipelineOptions::for_variant(kind.variant().unwrap(), cfg.ndims);
            opts.tile_sizes = harness_tiles(cfg.ndims);
            opts.threads = threads;
            Box::new(
                DslRunner::new(cfg, opts, kind.label())
                    .unwrap_or_else(|e| panic!("{}: {e:?}", kind.label())),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_multigrid::config::{CycleType, SmoothSteps};
    use gmg_multigrid::solver::{run_cycles, setup_poisson};

    #[test]
    fn all_six_run_and_agree() {
        let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
        let (v0, f, _) = setup_poisson(&cfg);
        let mut results: Vec<(String, Vec<f64>)> = Vec::new();
        for kind in ImplKind::all() {
            let mut r = make_runner(&cfg, kind, 1);
            let mut v = v0.clone();
            let sol = run_cycles(&mut *r, &cfg, &mut v, &f, 2);
            assert!(sol.res_final() < sol.res0, "{} diverged", kind.label());
            results.push((kind.label().to_string(), v));
        }
        let base = &results[0].1;
        for (label, v) in &results[1..] {
            let mut max = 0.0f64;
            for (a, b) in v.iter().zip(base) {
                max = max.max((a - b).abs());
            }
            assert!(max < 1e-10, "{label} deviates from handopt by {max}");
        }
    }

    #[test]
    fn labels_and_sets() {
        assert_eq!(ImplKind::all().len(), 6);
        assert_eq!(ImplKind::polymg().len(), 4);
        assert_eq!(ImplKind::PolymgOptPlus.label(), "polymg-opt+");
        assert!(ImplKind::HandOpt.variant().is_none());
        assert_eq!(
            ImplKind::PolymgDtileOptPlus.variant(),
            Some(Variant::DtileOptPlus)
        );
    }
}
