//! # gmg-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (Section 4),
//! each printing the same rows/series the paper reports and returning
//! structured results. The `reproduce` binary drives them; the Criterion
//! benches under `benches/` wrap the same workloads for `cargo bench`.
//!
//! Scaled problem classes are used by default (this container has one core
//! and a fraction of the paper's memory — see DESIGN.md's substitution
//! table); the original sizes remain selectable.

pub mod experiments;
pub mod runners;
pub mod timing;

pub use runners::{make_runner, ImplKind};
pub use timing::{min_time, TimingResult};
