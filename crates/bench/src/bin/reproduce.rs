//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! reproduce [EXPERIMENT] [--class smoke|B|C|paperB|paperC] [--iters N]
//!           [--repeats N] [--stride N] [--threads N] [--profile OUT.json]
//!
//! EXPERIMENT ∈ {table2, table3, fig9, fig10, fig11a, fig11b, fig12,
//!               grouping, memory, all}   (default: all)
//! ```
//!
//! `--profile OUT.json` attaches a `gmg-trace` handle to every engine the
//! experiments build and writes the aggregated profile (per-stage times,
//! tile/cell counts, kernel-dispatch histogram, pool/arena/comm counters,
//! per-cycle residuals) as structured JSON when the run finishes. See
//! DESIGN.md §Observability for the schema.
//!
//! Scaled classes are the default (see DESIGN.md). `--class C --repeats 2`
//! reproduces the EXPERIMENTS.md numbers.

use gmg_bench::experiments::{
    dot_report, fig10_nas, fig11a, fig11b, fig12, fig_speedups, grouping_report, memory_report,
    scaling, table2, table3, ExpOptions,
};
use gmg_multigrid::config::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut class = SizeClass::B;
    let mut iters: Option<usize> = None;
    let mut repeats = 2usize;
    let mut stride = 8usize;
    let mut threads = 1usize;
    let mut profile: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--class" => {
                i += 1;
                class = match args[i].as_str() {
                    "smoke" => SizeClass::Smoke,
                    "B" => SizeClass::B,
                    "C" => SizeClass::C,
                    "paperB" => SizeClass::PaperB,
                    "paperC" => SizeClass::PaperC,
                    other => panic!("unknown class '{other}'"),
                };
            }
            "--iters" => {
                i += 1;
                iters = Some(args[i].parse().expect("--iters N"));
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats N");
            }
            "--stride" => {
                i += 1;
                stride = args[i].parse().expect("--stride N");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads N");
            }
            "--profile" => {
                i += 1;
                profile = Some(args[i].clone());
            }
            name if !name.starts_with("--") => exp = name.to_string(),
            other => panic!("unknown flag '{other}'"),
        }
        i += 1;
    }

    let trace = if profile.is_some() {
        let t = gmg_trace::Trace::enabled();
        if !t.is_enabled() {
            eprintln!(
                "warning: --profile requested but gmg-trace was built without \
                 the `capture` feature; the profile will be empty"
            );
        }
        t.set_meta("tool", "reproduce");
        t.set_meta("experiment", &exp);
        t.set_meta("class", class.tag());
        t
    } else {
        gmg_trace::Trace::disabled()
    };

    let o = ExpOptions {
        class,
        iters_override: iters,
        repeats,
        threads: vec![threads],
        trace: trace.clone(),
    };

    let run = |name: &str| exp == "all" || exp == name;

    if run("table2") {
        print!("{}", table2(o.class));
        println!();
    }
    if run("table3") {
        print!("{}", table3(&o));
        println!();
    }
    if run("fig9") {
        print!("{}", fig_speedups(2, &o));
        println!();
    }
    if run("fig10") {
        print!("{}", fig_speedups(3, &o));
        print!("{}", fig10_nas(&o));
        println!();
    }
    if run("fig11a") {
        print!("{}", fig11a(&o));
        println!();
    }
    if run("fig11b") {
        print!("{}", fig11b(&o));
        println!();
    }
    if run("fig12") {
        print!("{}", fig12(&o, stride));
        println!();
    }
    if run("grouping") {
        print!("{}", grouping_report(o.class));
        println!();
    }
    if run("dot") {
        print!("{}", dot_report(o.class));
        println!();
    }
    if exp == "scaling" {
        print!("{}", scaling(&o, &[1, 2, 4]));
        println!();
    }
    if run("memory") {
        print!("{}", memory_report(&o));
        println!();
    }

    if let Some(path) = profile {
        let (hits, misses) = polymg::PlanCache::global().counters();
        trace.record_plan_cache(hits, misses, polymg::PlanCache::global().evictions());
        match trace.report() {
            Some(rep) => {
                std::fs::write(&path, rep.to_json()).expect("write profile");
                eprintln!(
                    "wrote profile {path} ({} stages, {} cycles recorded)",
                    rep.stages.len(),
                    rep.cycles.len()
                );
            }
            None => eprintln!("no profile data captured; {path} not written"),
        }
    }
}
