//! `perf-smoke` — a fast CI guard for the execution backend: median
//! ns/point of 2-D and 3-D smoother chains and full V-cycles, measured
//! across the whole kernel-tier trajectory (generic interpreter →
//! scalar-specialized → lane-safe SIMD → fast-math SIMD; DESIGN.md §16)
//! and with 1 thread vs all host threads, written as `BENCH_pr8.json`.
//!
//! ```text
//! perf-smoke [-o OUT.json] [--n N] [--n3 N] [--repeats R]
//! perf-smoke --batch-out OUT.json     # sequential-vs-batched serving rows
//! ```
//!
//! Expectations encoded by the output (checked by eye / downstream tooling,
//! not asserted here so a loaded CI host cannot hard-fail the build):
//! each tier ≤ the one before it, N-thread ≤ 1-thread (equal when the host
//! has one core — the samples are then the same configuration). What *is*
//! asserted: the default tiers (everything but fast-math) must agree
//! bitwise with the generic interpreter — `bitwise_default_ok` in the JSON
//! is witnessed, not assumed.
//!
//! `--batch-out` switches to the PR-6 serving benchmark instead: a
//! one-worker in-process server answers the same 32 same-shape RHS first
//! as 32 single `SOLVE` frames, then as `SOLVE_BATCH` frames of 4 and 8
//! grids, every grid verified bitwise against an independent single-RHS
//! reference. Rows carry grids/s and the batched:sequential ratio.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use gmg_bench::runners::harness_tiles;
use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, time_cycles, DslRunner};
use gmg_server::protocol::{self, BatchSolveRequest, BatchSolveResponse, SolveRequest};
use gmg_server::{start, ServerConfig};
use polymg::{PipelineOptions, Variant};

/// The tier trajectory the benchmark walks: label, then the
/// (specialize, simd, fast_math) option triple that selects it.
const TIERS: [(&str, bool, bool, bool); 4] = [
    ("generic", false, true, false),
    ("specialized", true, false, false),
    ("simd", true, true, false),
    ("fast_math", true, true, true),
];

struct Row {
    bench: &'static str,
    threads: usize,
    tier: &'static str,
    schedule: &'static str,
    operator: &'static str,
    median_ns_per_point: f64,
    samples: usize,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn build_runner(cfg: &MgConfig, threads: usize, tiled: bool, tier: (bool, bool, bool)) -> DslRunner {
    // The smoother-chain rows run the untiled schedule: full-grid sweeps
    // whose row length is the whole unit-stride extent, so the measurement
    // is dominated by the row kernels the tier trajectory actually swaps.
    // The V-cycle rows keep the tiled OptPlus pipeline — there the tier
    // delta is diluted by scratch/halo traffic, which is the honest
    // end-to-end picture.
    let variant = if tiled { Variant::OptPlus } else { Variant::Naive };
    let mut opts = PipelineOptions::for_variant(variant, cfg.ndims);
    if tiled {
        opts.tile_sizes = harness_tiles(cfg.ndims);
    } else {
        // Pooled + reused buffers for the untiled rows: without these each
        // sweep writes a fresh multi-MB allocation (mmap + page-fault churn
        // that swamps the kernels), and the ping-pong working set never
        // becomes cache-resident.
        opts.pooled_allocation = true;
        opts.inter_group_reuse = true;
    }
    opts.threads = threads;
    opts.specialize = tier.0;
    opts.simd = tier.1;
    opts.fast_math = tier.2;
    DslRunner::new(cfg, opts, "perf-smoke").unwrap_or_else(|e| panic!("compile: {e:?}"))
}

/// Median ns/point per tier, interleaved sample-by-sample so slow drift of
/// a shared host biases no tier. Each sample is the *minimum* of three
/// back-to-back single-cycle timings, which filters out
/// scheduler-preemption spikes. The first cycle of each runner doubles as
/// warm-up (plan lowering, worker spawn, buffer-pool fill) and as the
/// bitwise witness: every default tier must reproduce the generic
/// interpreter's cycle exactly (only fast-math may reassociate).
fn measure_tiers(
    cfg: &MgConfig,
    threads: usize,
    tiled: bool,
    repeats: usize,
) -> ([(f64, usize); TIERS.len()], bool) {
    let mut runners: Vec<DslRunner> = TIERS
        .iter()
        .map(|&(_, sp, simd, fm)| build_runner(cfg, threads, tiled, (sp, simd, fm)))
        .collect();
    let (v0, f, _) = setup_poisson(cfg);
    let points = (cfg.n as f64).powi(cfg.ndims as i32);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); TIERS.len()];
    let mut warm_bits: Vec<Vec<u64>> = Vec::new();
    for r in runners.iter_mut() {
        let mut v = v0.clone();
        time_cycles(r, &mut v, &f, 1); // warm-up + witness cycle
        warm_bits.push(v.iter().map(|x| x.to_bits()).collect());
    }
    // generic, scalar-specialized and lane-safe SIMD are one equivalence
    // class; fast-math (the last tier) is allowed to differ
    let bitwise_ok = warm_bits[1..TIERS.len() - 1]
        .iter()
        .all(|b| *b == warm_bits[0]);
    for _ in 0..repeats {
        for (r, s) in runners.iter_mut().zip(&mut samples) {
            let best = (0..3)
                .map(|_| {
                    let mut v = v0.clone();
                    time_cycles(r, &mut v, &f, 1).as_nanos() as f64 / points
                })
                .fold(f64::INFINITY, f64::min);
            s.push(best);
        }
    }
    let mut out = [(0.0, 0); TIERS.len()];
    for (o, s) in out.iter_mut().zip(samples) {
        let n = s.len();
        *o = (median(s), n);
    }
    (out, bitwise_ok)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

struct BatchRow {
    mode: &'static str,
    batch: usize,
    frames: usize,
    grids_per_s: f64,
    ratio_vs_sequential: f64,
    service_p50_ns: u64,
    service_p99_ns: u64,
}

fn pctl(xs: &mut [u64], pct: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    let rank = ((pct / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// One pre-encoded request frame: opcode, payload, grids it carries.
type FrameSpec = (u8, Vec<u8>, usize);

/// Answer all `payloads` back-to-back on one connection, verifying each
/// response's grids bitwise against `refs` (flattened in send order).
/// Returns (elapsed, per-frame service latencies).
fn drive_frames(
    addr: std::net::SocketAddr,
    payloads: &[FrameSpec],
    refs: &[Vec<u64>],
) -> (Duration, Vec<u64>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut service = Vec::with_capacity(payloads.len());
    let mut grid = 0usize;
    let t0 = Instant::now();
    for (opcode, payload, ngrids) in payloads {
        let f0 = Instant::now();
        protocol::write_frame(&mut s, *opcode, payload).expect("send");
        let frame = protocol::read_frame(&mut s).expect("response");
        service.push(f0.elapsed().as_nanos() as u64);
        let vs: Vec<Vec<f64>> = if frame.opcode == protocol::OP_SOLVE_OK {
            vec![protocol::SolveResponse::decode(&frame.payload).expect("decode").v]
        } else if frame.opcode == protocol::OP_SOLVE_BATCH_OK {
            BatchSolveResponse::decode(&frame.payload).expect("decode").vs
        } else {
            panic!(
                "unexpected opcode {:#x}: {:?}",
                frame.opcode,
                protocol::decode_error(&frame.payload)
            );
        };
        assert_eq!(vs.len(), *ngrids);
        for v in vs {
            let bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, refs[grid], "grid {grid} diverged from reference");
            grid += 1;
        }
    }
    (t0.elapsed(), service)
}

/// The PR-6 serving benchmark: 32 RHS of one shape, sequential singles vs
/// `SOLVE_BATCH` frames of 4 and 8, best-of-3, every grid bitwise-verified.
fn batch_bench(out_path: &str, n: i64) {
    const RHS: usize = 32;
    const ITERS: u16 = 1;
    let cfg = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());

    // perturbed problems + independent single-RHS references
    let (v0, f, _) = setup_poisson(&cfg);
    let mut problems = Vec::with_capacity(RHS);
    let mut refs = Vec::with_capacity(RHS);
    let opts = PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
    let mut runner = DslRunner::new(&cfg, opts, "batch-ref").expect("reference compile");
    for k in 0..RHS {
        let mut fk = f.clone();
        for (i, x) in fk.iter_mut().enumerate() {
            let r = splitmix64((k as u64) << 32 | i as u64);
            *x += (r % 1000) as f64 * 1e-6;
        }
        let mut v = v0.clone();
        for _ in 0..ITERS {
            runner.cycle_with_stats(&mut v, &fk).expect("reference cycle");
        }
        refs.push(v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
        problems.push((v0.clone(), fk));
    }
    let mk_req = |k: usize| {
        let (v0, fk) = &problems[k];
        SolveRequest::from_config(&cfg, Variant::OptPlus, 0, ITERS, v0.clone(), fk.clone())
    };

    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // frame sets: 32 singles, then 32/B batch frames per batch size
    let mut modes: Vec<(&'static str, usize, Vec<FrameSpec>)> = Vec::new();
    let singles: Vec<FrameSpec> = (0..RHS)
        .map(|k| (protocol::OP_SOLVE, mk_req(k).encode(), 1))
        .collect();
    modes.push(("sequential", 1, singles));
    for b in [4usize, 8] {
        let frames: Vec<FrameSpec> = (0..RHS / b)
            .map(|i| {
                let reqs: Vec<SolveRequest> = (i * b..(i + 1) * b).map(mk_req).collect();
                (protocol::OP_SOLVE_BATCH, BatchSolveRequest { reqs }.encode(), b)
            })
            .collect();
        modes.push(("batched", b, frames));
    }

    // warm the session (compile + engine) off the clock
    drive_frames(addr, &modes[0].2[..1], &refs[..1]);

    let mut rows: Vec<BatchRow> = Vec::new();
    let mut sequential_rps = 0.0f64;
    for (mode, b, payloads) in &modes {
        let mut best: Option<(Duration, Vec<u64>)> = None;
        for _ in 0..3 {
            let (elapsed, service) = drive_frames(addr, payloads, &refs);
            if best.as_ref().is_none_or(|(e, _)| elapsed < *e) {
                best = Some((elapsed, service));
            }
        }
        let (elapsed, mut service) = best.unwrap();
        let rps = RHS as f64 / elapsed.as_secs_f64();
        if *b == 1 {
            sequential_rps = rps;
        }
        let row = BatchRow {
            mode,
            batch: *b,
            frames: payloads.len(),
            grids_per_s: rps,
            ratio_vs_sequential: if sequential_rps > 0.0 {
                rps / sequential_rps
            } else {
                1.0
            },
            service_p50_ns: pctl(&mut service, 50.0),
            service_p99_ns: pctl(&mut service, 99.0),
        };
        eprintln!(
            "{:<10} batch={:<2} {:8.1} grids/s  ratio {:.2}x  frame p50 {:.2} ms",
            row.mode,
            row.batch,
            row.grids_per_s,
            row.ratio_vs_sequential,
            row.service_p50_ns as f64 * 1e-6
        );
        rows.push(row);
    }

    let mut s = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").expect("drain");
    let _ = protocol::read_frame(&mut s);
    let snap = handle.join();
    assert!(snap.batches > 0, "server recorded no multi-RHS passes");

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke-batch/v2\",\n  \"pr\": 8,\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"iters\": {ITERS},\n  \"rhs\": {RHS},\n  \"verified_bitwise\": true,\n"
    ));
    json.push_str(&format!(
        "  \"server\": {{\"batches\": {}, \"coalesced\": {}}},\n  \"rows\": [\n",
        snap.batches, snap.coalesced
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch\": {}, \"frames\": {}, \"grids_per_s\": {:.1}, \
             \"ratio_vs_sequential\": {:.3}, \"service_p50_ns\": {}, \"service_p99_ns\": {}}}{}\n",
            r.mode,
            r.batch,
            r.frames,
            r.grids_per_s,
            r.ratio_vs_sequential,
            r.service_p50_ns,
            r.service_p99_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, json).expect("write batch BENCH json");
    eprintln!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pr8.json".to_string();
    let mut batch_out: Option<String> = None;
    let mut n: i64 = 127;
    let mut n3: i64 = 63;
    let mut batch_n: i64 = 31;
    let mut repeats = 9usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--batch-out" => {
                i += 1;
                batch_out = Some(args[i].clone());
            }
            "--batch-n" => {
                i += 1;
                batch_n = args[i].parse().expect("--batch-n");
            }
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n");
            }
            "--n3" => {
                i += 1;
                n3 = args[i].parse().expect("--n3");
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats");
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: perf-smoke [-o OUT.json] [--n N] [--n3 N] [--repeats R] \
                     [--batch-out OUT.json [--batch-n N]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = batch_out {
        batch_bench(&path, batch_n);
        return;
    }

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Smoother-dominated cycles: all smoothing on the fine level (10-0-0),
    // two levels so the chain is pure fine-grid sweeps. The smoother rows
    // use the dense Mehrstellen operator (9-point in 2-D, 27-point in 3-D
    // — the footprint Galerkin coarse operators have): its ~4× arithmetic
    // intensity keeps the sweep compute-bound at these grid sizes, so the
    // rows measure the kernel tiers rather than the host's L3/DRAM
    // bandwidth. The V-cycle rows keep the paper's star operator.
    let mut smoother2 = MgConfig::new(2, n, CycleType::V, SmoothSteps::s1000()).with_dense_operator();
    smoother2.levels = 2;
    let vcycle2 = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());
    let mut smoother3 = MgConfig::new(3, n3, CycleType::V, SmoothSteps::s1000()).with_dense_operator();
    smoother3.levels = 2;
    let mut vcycle3 = MgConfig::new(3, n3, CycleType::V, SmoothSteps::s444());
    vcycle3.levels = 3;
    // (name, config, tiled): smoother chains run untiled — kernel-bound
    // rows measuring the tier swap itself; V-cycles run the tiled OptPlus
    // pipeline — the end-to-end number with scratch/halo traffic included
    let benches: [(&'static str, &MgConfig, bool, &'static str); 4] = [
        ("smoother2d", &smoother2, false, "dense"),
        ("vcycle2d", &vcycle2, true, "star"),
        ("smoother3d", &smoother3, false, "dense"),
        ("vcycle3d", &vcycle3, true, "star"),
    ];
    // a single-core host would sample the same configuration twice
    let thread_counts: &[usize] = if host_threads > 1 {
        &[1, host_threads]
    } else {
        &[1]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut bitwise_all = true;
    for (name, cfg, tiled, operator) in benches {
        for &threads in thread_counts {
            let (meds, bitwise_ok) = measure_tiers(cfg, threads, tiled, repeats);
            bitwise_all &= bitwise_ok;
            assert!(
                bitwise_ok,
                "{name}: a default tier diverged bitwise from the generic interpreter"
            );
            for ((tier, _, _, _), (med, samples)) in TIERS.into_iter().zip(meds) {
                eprintln!(
                    "{name:<12} threads={threads} tier={tier:<11} \
                     median {med:8.2} ns/point ({samples} samples)"
                );
                rows.push(Row {
                    bench: name,
                    threads,
                    tier,
                    schedule: if tiled { "tiled" } else { "untiled" },
                    operator,
                    median_ns_per_point: med,
                    samples,
                });
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke/v2\",\n  \"pr\": 8,\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"n\": {n},\n  \"n3\": {n3},\n"));
    json.push_str(&format!("  \"bitwise_default_ok\": {bitwise_all},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"threads\": {}, \"tier\": \"{}\", \
             \"schedule\": \"{}\", \"operator\": \"{}\", \
             \"median_ns_per_point\": {:.3}, \"samples\": {}}}{}\n",
            r.bench,
            r.threads,
            r.tier,
            r.schedule,
            r.operator,
            r.median_ns_per_point,
            r.samples,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
}
