//! `perf-smoke` — a fast CI guard for the PR-3 execution backend: median
//! ns/point of a 2-D smoother chain and a full 2-D V-cycle, measured with
//! specialization on vs off and with 1 thread vs all host threads, written
//! as `BENCH_pr3.json`.
//!
//! ```text
//! perf-smoke [-o OUT.json] [--n N] [--repeats R]
//! ```
//!
//! Expectations encoded by the output (checked by eye / downstream tooling,
//! not asserted here so a loaded CI host cannot hard-fail the build):
//! specialized ≤ generic, N-thread ≤ 1-thread (equal when the host has one
//! core — the samples are then the same configuration).

use gmg_bench::runners::harness_tiles;
use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, time_cycles, DslRunner};
use polymg::{PipelineOptions, Variant};

struct Row {
    bench: &'static str,
    threads: usize,
    specialize: bool,
    median_ns_per_point: f64,
    samples: usize,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn build_runner(cfg: &MgConfig, threads: usize, specialize: bool) -> DslRunner {
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
    opts.tile_sizes = harness_tiles(cfg.ndims);
    opts.threads = threads;
    opts.specialize = specialize;
    DslRunner::new(cfg, opts, "perf-smoke").unwrap_or_else(|e| panic!("compile: {e:?}"))
}

/// Median ns/point of samples for generic vs specialized, interleaved
/// sample-by-sample so slow drift of a shared host biases neither side.
/// Each sample is the *minimum* of three back-to-back single-cycle timings,
/// which filters out scheduler-preemption spikes. The first cycle of each
/// runner is a discarded warm-up (plan lowering, worker spawn, buffer-pool
/// fill).
fn measure_pair(cfg: &MgConfig, threads: usize, repeats: usize) -> [(f64, usize); 2] {
    let mut runners = [
        build_runner(cfg, threads, false),
        build_runner(cfg, threads, true),
    ];
    let (v0, f, _) = setup_poisson(cfg);
    let points = (cfg.n as f64).powi(cfg.ndims as i32);
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for r in &mut runners {
        let mut v = v0.clone();
        time_cycles(r, &mut v, &f, 1); // warm-up
    }
    for _ in 0..repeats {
        for (r, s) in runners.iter_mut().zip(&mut samples) {
            let best = (0..3)
                .map(|_| {
                    let mut v = v0.clone();
                    time_cycles(r, &mut v, &f, 1).as_nanos() as f64 / points
                })
                .fold(f64::INFINITY, f64::min);
            s.push(best);
        }
    }
    samples.map(|s| {
        let n = s.len();
        (median(s), n)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pr3.json".to_string();
    let mut n: i64 = 127;
    let mut repeats = 9usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n");
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats");
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: perf-smoke [-o OUT.json] [--n N] [--repeats R]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // smoother-dominated cycle: all smoothing on the fine level (10-0-0)
    let smoother = MgConfig::new(2, n, CycleType::V, SmoothSteps::s1000());
    let vcycle = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());
    let benches: [(&'static str, &MgConfig); 2] =
        [("smoother2d", &smoother), ("vcycle2d", &vcycle)];

    let mut rows: Vec<Row> = Vec::new();
    for (name, cfg) in benches {
        for threads in [1usize, host_threads] {
            let pair = measure_pair(cfg, threads, repeats);
            for (specialize, (med, samples)) in [false, true].into_iter().zip(pair) {
                eprintln!(
                    "{name:<12} threads={threads} specialize={specialize:<5} \
                     median {med:8.2} ns/point ({samples} samples)"
                );
                rows.push(Row {
                    bench: name,
                    threads,
                    specialize,
                    median_ns_per_point: med,
                    samples,
                });
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"n\": {n},\n  \"benchmarks\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"threads\": {}, \"specialize\": {}, \
             \"median_ns_per_point\": {:.3}, \"samples\": {}}}{}\n",
            r.bench,
            r.threads,
            r.specialize,
            r.median_ns_per_point,
            r.samples,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
}
