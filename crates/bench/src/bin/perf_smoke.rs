//! `perf-smoke` — a fast CI guard for the execution backend: median
//! ns/point of 2-D and 3-D smoother chains and full V-cycles, measured
//! across the whole kernel-tier trajectory (generic interpreter →
//! scalar-specialized → lane-safe SIMD → fast-math SIMD; DESIGN.md §16)
//! and with 1 thread vs all host threads, written as `BENCH_pr8.json`.
//!
//! ```text
//! perf-smoke [-o OUT.json] [--n N] [--n3 N] [--repeats R]
//! perf-smoke --batch-out OUT.json     # sequential-vs-batched serving rows
//! perf-smoke --tune-out OUT.json      # search-vs-sweep + tuned-vs-default rows
//! perf-smoke --scenario-out OUT.json  # constant/varcoef/mixed-precision rows
//! ```
//!
//! Expectations encoded by the output (checked by eye / downstream tooling,
//! not asserted here so a loaded CI host cannot hard-fail the build):
//! each tier ≤ the one before it, N-thread ≤ 1-thread (equal when the host
//! has one core — the samples are then the same configuration). What *is*
//! asserted: the default tiers (everything but fast-math) must agree
//! bitwise with the generic interpreter — `bitwise_default_ok` in the JSON
//! is witnessed, not assumed.
//!
//! `--batch-out` switches to the PR-6 serving benchmark instead: a
//! one-worker in-process server answers the same 32 same-shape RHS first
//! as 32 single `SOLVE` frames, then as `SOLVE_BATCH` frames of 4 and 8
//! grids, every grid verified bitwise against an independent single-RHS
//! reference. Rows carry grids/s and the batched:sequential ratio.
//!
//! `--scenario-out` switches to the PR-10 scenario benchmark: on one
//! smoother-dominated shape (heavy 8-8-8 Jacobi smoothing, the paper's
//! star operator), each scenario row — constant-coefficient
//! f64, variable-coefficient, and mixed-precision (f32 smoothing) — is run
//! to the *same* relative residual target, and throughput is reported as
//! cycles/s at that equal target. Convergence is asserted; the
//! mixed:constant throughput ratio is recorded, not asserted (the §18
//! expectation is ≥ 1.15×, but a loaded CI host must not hard-fail the
//! build on a timing).
//!
//! `--tune-out` switches to the PR-9 autotuning benchmark: (a) for each
//! rank, the full §3.2.4 sweep is timed (memoized, min-of-3 real cycle
//! timings) and the seeded evolutionary search runs against the *same*
//! memoized evaluator under its 25% budget — the row records both optima
//! and the eval counts; (b) an online-tuned server (`--tune-online`
//! in-process) is driven to convergence with every response bitwise-
//! verified, then its post-convergence throughput is compared against an
//! identical untuned server.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use gmg_bench::runners::harness_tiles;
use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, time_cycles, DslRunner};
use gmg_server::protocol::{self, BatchSolveRequest, BatchSolveResponse, SolveRequest};
use gmg_server::{start, ServerConfig};
use polymg::{PipelineOptions, Variant};

/// The tier trajectory the benchmark walks: label, then the
/// (specialize, simd, fast_math) option triple that selects it.
const TIERS: [(&str, bool, bool, bool); 4] = [
    ("generic", false, true, false),
    ("specialized", true, false, false),
    ("simd", true, true, false),
    ("fast_math", true, true, true),
];

struct Row {
    bench: &'static str,
    threads: usize,
    tier: &'static str,
    schedule: &'static str,
    operator: &'static str,
    median_ns_per_point: f64,
    samples: usize,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn build_runner(cfg: &MgConfig, threads: usize, tiled: bool, tier: (bool, bool, bool)) -> DslRunner {
    // The smoother-chain rows run the untiled schedule: full-grid sweeps
    // whose row length is the whole unit-stride extent, so the measurement
    // is dominated by the row kernels the tier trajectory actually swaps.
    // The V-cycle rows keep the tiled OptPlus pipeline — there the tier
    // delta is diluted by scratch/halo traffic, which is the honest
    // end-to-end picture.
    let variant = if tiled { Variant::OptPlus } else { Variant::Naive };
    let mut opts = PipelineOptions::for_variant(variant, cfg.ndims);
    if tiled {
        opts.tile_sizes = harness_tiles(cfg.ndims);
    } else {
        // Pooled + reused buffers for the untiled rows: without these each
        // sweep writes a fresh multi-MB allocation (mmap + page-fault churn
        // that swamps the kernels), and the ping-pong working set never
        // becomes cache-resident.
        opts.pooled_allocation = true;
        opts.inter_group_reuse = true;
    }
    opts.threads = threads;
    opts.specialize = tier.0;
    opts.simd = tier.1;
    opts.fast_math = tier.2;
    DslRunner::new(cfg, opts, "perf-smoke").unwrap_or_else(|e| panic!("compile: {e:?}"))
}

/// Median ns/point per tier, interleaved sample-by-sample so slow drift of
/// a shared host biases no tier. Each sample is the *minimum* of three
/// back-to-back single-cycle timings, which filters out
/// scheduler-preemption spikes. The first cycle of each runner doubles as
/// warm-up (plan lowering, worker spawn, buffer-pool fill) and as the
/// bitwise witness: every default tier must reproduce the generic
/// interpreter's cycle exactly (only fast-math may reassociate).
fn measure_tiers(
    cfg: &MgConfig,
    threads: usize,
    tiled: bool,
    repeats: usize,
) -> ([(f64, usize); TIERS.len()], bool) {
    let mut runners: Vec<DslRunner> = TIERS
        .iter()
        .map(|&(_, sp, simd, fm)| build_runner(cfg, threads, tiled, (sp, simd, fm)))
        .collect();
    let (v0, f, _) = setup_poisson(cfg);
    let points = (cfg.n as f64).powi(cfg.ndims as i32);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); TIERS.len()];
    let mut warm_bits: Vec<Vec<u64>> = Vec::new();
    for r in runners.iter_mut() {
        let mut v = v0.clone();
        time_cycles(r, &mut v, &f, 1); // warm-up + witness cycle
        warm_bits.push(v.iter().map(|x| x.to_bits()).collect());
    }
    // generic, scalar-specialized and lane-safe SIMD are one equivalence
    // class; fast-math (the last tier) is allowed to differ
    let bitwise_ok = warm_bits[1..TIERS.len() - 1]
        .iter()
        .all(|b| *b == warm_bits[0]);
    for _ in 0..repeats {
        for (r, s) in runners.iter_mut().zip(&mut samples) {
            let best = (0..3)
                .map(|_| {
                    let mut v = v0.clone();
                    time_cycles(r, &mut v, &f, 1).as_nanos() as f64 / points
                })
                .fold(f64::INFINITY, f64::min);
            s.push(best);
        }
    }
    let mut out = [(0.0, 0); TIERS.len()];
    for (o, s) in out.iter_mut().zip(samples) {
        let n = s.len();
        *o = (median(s), n);
    }
    (out, bitwise_ok)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

struct BatchRow {
    mode: &'static str,
    batch: usize,
    frames: usize,
    grids_per_s: f64,
    ratio_vs_sequential: f64,
    service_p50_ns: u64,
    service_p99_ns: u64,
}

fn pctl(xs: &mut [u64], pct: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    let rank = ((pct / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// One pre-encoded request frame: opcode, payload, grids it carries.
type FrameSpec = (u8, Vec<u8>, usize);

/// Answer all `payloads` back-to-back on one connection, verifying each
/// response's grids bitwise against `refs` (flattened in send order).
/// Returns (elapsed, per-frame service latencies).
fn drive_frames(
    addr: std::net::SocketAddr,
    payloads: &[FrameSpec],
    refs: &[Vec<u64>],
) -> (Duration, Vec<u64>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut service = Vec::with_capacity(payloads.len());
    let mut grid = 0usize;
    let t0 = Instant::now();
    for (opcode, payload, ngrids) in payloads {
        let f0 = Instant::now();
        protocol::write_frame(&mut s, *opcode, payload).expect("send");
        let frame = protocol::read_frame(&mut s).expect("response");
        service.push(f0.elapsed().as_nanos() as u64);
        let vs: Vec<Vec<f64>> = if frame.opcode == protocol::OP_SOLVE_OK {
            vec![protocol::SolveResponse::decode(&frame.payload).expect("decode").v]
        } else if frame.opcode == protocol::OP_SOLVE_BATCH_OK {
            BatchSolveResponse::decode(&frame.payload).expect("decode").vs
        } else {
            panic!(
                "unexpected opcode {:#x}: {:?}",
                frame.opcode,
                protocol::decode_error(&frame.payload)
            );
        };
        assert_eq!(vs.len(), *ngrids);
        for v in vs {
            let bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, refs[grid], "grid {grid} diverged from reference");
            grid += 1;
        }
    }
    (t0.elapsed(), service)
}

/// The PR-6 serving benchmark: 32 RHS of one shape, sequential singles vs
/// `SOLVE_BATCH` frames of 4 and 8, best-of-3, every grid bitwise-verified.
fn batch_bench(out_path: &str, n: i64) {
    const RHS: usize = 32;
    const ITERS: u16 = 1;
    let cfg = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());

    // perturbed problems + independent single-RHS references
    let (v0, f, _) = setup_poisson(&cfg);
    let mut problems = Vec::with_capacity(RHS);
    let mut refs = Vec::with_capacity(RHS);
    let opts = PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
    let mut runner = DslRunner::new(&cfg, opts, "batch-ref").expect("reference compile");
    for k in 0..RHS {
        let mut fk = f.clone();
        for (i, x) in fk.iter_mut().enumerate() {
            let r = splitmix64((k as u64) << 32 | i as u64);
            *x += (r % 1000) as f64 * 1e-6;
        }
        let mut v = v0.clone();
        for _ in 0..ITERS {
            runner.cycle_with_stats(&mut v, &fk).expect("reference cycle");
        }
        refs.push(v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
        problems.push((v0.clone(), fk));
    }
    let mk_req = |k: usize| {
        let (v0, fk) = &problems[k];
        SolveRequest::from_config(&cfg, Variant::OptPlus, 0, ITERS, v0.clone(), fk.clone())
    };

    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // frame sets: 32 singles, then 32/B batch frames per batch size
    let mut modes: Vec<(&'static str, usize, Vec<FrameSpec>)> = Vec::new();
    let singles: Vec<FrameSpec> = (0..RHS)
        .map(|k| (protocol::OP_SOLVE, mk_req(k).encode(), 1))
        .collect();
    modes.push(("sequential", 1, singles));
    for b in [4usize, 8] {
        let frames: Vec<FrameSpec> = (0..RHS / b)
            .map(|i| {
                let reqs: Vec<SolveRequest> = (i * b..(i + 1) * b).map(mk_req).collect();
                (protocol::OP_SOLVE_BATCH, BatchSolveRequest { reqs }.encode(), b)
            })
            .collect();
        modes.push(("batched", b, frames));
    }

    // warm the session (compile + engine) off the clock
    drive_frames(addr, &modes[0].2[..1], &refs[..1]);

    let mut rows: Vec<BatchRow> = Vec::new();
    let mut sequential_rps = 0.0f64;
    for (mode, b, payloads) in &modes {
        let mut best: Option<(Duration, Vec<u64>)> = None;
        for _ in 0..3 {
            let (elapsed, service) = drive_frames(addr, payloads, &refs);
            if best.as_ref().is_none_or(|(e, _)| elapsed < *e) {
                best = Some((elapsed, service));
            }
        }
        let (elapsed, mut service) = best.unwrap();
        let rps = RHS as f64 / elapsed.as_secs_f64();
        if *b == 1 {
            sequential_rps = rps;
        }
        let row = BatchRow {
            mode,
            batch: *b,
            frames: payloads.len(),
            grids_per_s: rps,
            ratio_vs_sequential: if sequential_rps > 0.0 {
                rps / sequential_rps
            } else {
                1.0
            },
            service_p50_ns: pctl(&mut service, 50.0),
            service_p99_ns: pctl(&mut service, 99.0),
        };
        eprintln!(
            "{:<10} batch={:<2} {:8.1} grids/s  ratio {:.2}x  frame p50 {:.2} ms",
            row.mode,
            row.batch,
            row.grids_per_s,
            row.ratio_vs_sequential,
            row.service_p50_ns as f64 * 1e-6
        );
        rows.push(row);
    }

    let mut s = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").expect("drain");
    let _ = protocol::read_frame(&mut s);
    let snap = handle.join();
    assert!(snap.batches > 0, "server recorded no multi-RHS passes");

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke-batch/v2\",\n  \"pr\": 8,\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"iters\": {ITERS},\n  \"rhs\": {RHS},\n  \"verified_bitwise\": true,\n"
    ));
    json.push_str(&format!(
        "  \"server\": {{\"batches\": {}, \"coalesced\": {}}},\n  \"rows\": [\n",
        snap.batches, snap.coalesced
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch\": {}, \"frames\": {}, \"grids_per_s\": {:.1}, \
             \"ratio_vs_sequential\": {:.3}, \"service_p50_ns\": {}, \"service_p99_ns\": {}}}{}\n",
            r.mode,
            r.batch,
            r.frames,
            r.grids_per_s,
            r.ratio_vs_sequential,
            r.service_p50_ns,
            r.service_p99_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, json).expect("write batch BENCH json");
    eprintln!("wrote {out_path}");
}

/// Real-timing evaluator over tuning configs, memoized so the sweep and
/// the search judge shared configurations by the *same* measurement (the
/// comparison is then about which points each method visits, not about
/// timing noise between visits). Each fresh measurement is the minimum of
/// five single-cycle timings on a throwaway engine.
struct TuneEval {
    cfg: MgConfig,
    v0: Vec<f64>,
    f: Vec<f64>,
    memo: std::collections::BTreeMap<String, f64>,
    evals: usize,
}

impl TuneEval {
    fn new(cfg: MgConfig) -> TuneEval {
        let (v0, f, _) = setup_poisson(&cfg);
        TuneEval {
            cfg,
            v0,
            f,
            memo: std::collections::BTreeMap::new(),
            evals: 0,
        }
    }

    fn measure(&mut self, tc: &polymg::TuneConfig) -> f64 {
        let key = format!("{tc:?}");
        if let Some(&ns) = self.memo.get(&key) {
            return ns;
        }
        self.evals += 1;
        let pipeline = gmg_multigrid::cycles::build_cycle_pipeline(&self.cfg);
        let opts = tc.apply(&PipelineOptions::for_variant(Variant::OptPlus, self.cfg.ndims));
        let plan = polymg::compile(&pipeline, &gmg_ir::ParamBindings::new(), opts)
            .unwrap_or_else(|e| panic!("candidate {tc:?} failed to compile: {e:?}"));
        let mut runner = DslRunner::from_plan(plan, &self.cfg);
        let mut v = self.v0.clone();
        time_cycles(&mut runner, &mut v, &self.f, 1); // warm-up
        let ns = (0..5)
            .map(|_| {
                let mut v = self.v0.clone();
                time_cycles(&mut runner, &mut v, &self.f, 1).as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min);
        self.memo.insert(key, ns);
        ns
    }
}

/// The PR-9 autotuning benchmark: search-vs-sweep rows on real timings for
/// both ranks, then a tuned-vs-default serving row driven through an
/// online-tuning server with every response bitwise-verified.
fn tune_bench(out_path: &str, n: i64, n3: i64) {
    use polymg::autotune::search::{search, SearchParams};
    use polymg::autotune::search_space;

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke-tune/v1\",\n  \"pr\": 9,\n");
    json.push_str(&format!("  \"n\": {n},\n  \"n3\": {n3},\n"));
    json.push_str("  \"search_vs_sweep\": [\n");

    for (i, (ndims, nn)) in [(2usize, n), (3usize, n3)].into_iter().enumerate() {
        let cfg = MgConfig::new(ndims, nn, CycleType::V, SmoothSteps::s444());
        let mut eval = TuneEval::new(cfg);
        let space = search_space(ndims).expect("supported rank");

        let sweep_best = space
            .iter()
            .map(|tc| eval.measure(tc))
            .fold(f64::INFINITY, f64::min);
        let sweep_evals = eval.evals;

        let params = SearchParams::for_rank(ndims).expect("supported rank");
        let before = eval.evals;
        let out = search(ndims, &params, |tc| eval.measure(tc)).expect("search");
        let fresh = eval.evals - before;
        let ratio = out.best.metric / sweep_best;
        eprintln!(
            "{ndims}-D sweep: {sweep_evals} evals, best {:.2} ms | search: {} evals \
             ({fresh} fresh), best {:.2} ms, ratio {ratio:.3}",
            sweep_best * 1e-6,
            out.evals,
            out.best.metric * 1e-6,
        );
        assert!(
            out.evals * 4 <= sweep_evals,
            "search used more than 25% of the sweep budget"
        );
        json.push_str(&format!(
            "    {{\"ndims\": {ndims}, \"n\": {nn}, \"sweep_evals\": {sweep_evals}, \
             \"sweep_best_ns\": {:.0}, \"search_evals\": {}, \"search_fresh_evals\": {fresh}, \
             \"search_best_ns\": {:.0}, \"search_vs_sweep_ratio\": {ratio:.4}, \
             \"search_best\": \"tiles {:?} group {} band {} tier {:?}\"}}{}\n",
            sweep_best,
            out.evals,
            out.best.metric,
            out.best.config.tile_sizes,
            out.best.config.group_limit,
            out.best.config.smooth_band,
            out.best.config.tier,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    // tuned-vs-default serving: identical shape and load against (a) an
    // untuned baseline server and (b) a server that converged online
    const REQS: usize = 16;
    let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
    let (v0, f, _) = setup_poisson(&cfg);
    let opts = PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
    let mut reference = DslRunner::new(&cfg, opts, "tune-ref").expect("reference compile");
    let mut v = v0.clone();
    reference.cycle_with_stats(&mut v, &f).expect("reference cycle");
    let reference_bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
    let refs: Vec<Vec<u64>> = (0..REQS).map(|_| reference_bits.clone()).collect();
    let frames: Vec<FrameSpec> = (0..REQS)
        .map(|_| {
            let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 0, 1, v0.clone(), f.clone());
            (protocol::OP_SOLVE, req.encode(), 1)
        })
        .collect();
    let throughput = |addr: std::net::SocketAddr| -> f64 {
        drive_frames(addr, &frames[..1], &refs[..1]); // warm off the clock
        (0..3)
            .map(|_| {
                let (elapsed, _) = drive_frames(addr, &frames, &refs);
                REQS as f64 / elapsed.as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };
    let shutdown = |handle: gmg_server::ServerHandle| {
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").expect("drain");
        let _ = protocol::read_frame(&mut s);
        handle.join()
    };

    let baseline = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start baseline");
    let default_rps = throughput(baseline.addr());
    shutdown(baseline);

    let store_path = std::env::temp_dir().join(format!(
        "polymg-tune-bench-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store_path);
    let tuned = start(ServerConfig {
        workers: 1,
        tuner: Some(gmg_server::TunerConfig {
            budget: 0, // rank default: 25% of the sweep
            seed: 0x9e3c_0901,
            store_path: Some(store_path.clone()),
            trial_iters: 2,
        }),
        ..ServerConfig::default()
    })
    .expect("start tuned");
    // every response during tuning is bitwise-verified by drive_frames
    let during_tuning_rps = throughput(tuned.addr());
    let deadline = Instant::now() + Duration::from_secs(300);
    let snap = loop {
        let snap = tuned.tuner_snapshot().expect("tuner armed");
        if snap.winners > 0 {
            break snap;
        }
        assert!(Instant::now() < deadline, "tuner never converged: {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(snap.trial_queue_peak, 0, "trial overlapped queued work");
    assert_eq!(snap.leaked_trials, 0);
    let tuned_rps = throughput(tuned.addr());
    let store = tuned.tuned_store().expect("shared store");
    let winner = store.entries().first().expect("winner recorded").clone();
    shutdown(tuned);
    let _ = std::fs::remove_file(&store_path);

    let ratio = tuned_rps / default_rps;
    eprintln!(
        "serving: default {default_rps:.1} grids/s | during tuning {during_tuning_rps:.1} | \
         tuned {tuned_rps:.1} ({ratio:.3}x) — winner tiles {:?} group {} band {} ({} trials)",
        winner.config.tile_sizes,
        winner.config.group_limit,
        winner.config.smooth_band,
        snap.trials,
    );
    json.push_str(&format!(
        "  \"serving\": {{\"n\": 63, \"requests_per_wave\": {REQS}, \"waves\": 3, \
         \"verified_bitwise\": true, \"default_grids_per_s\": {default_rps:.1}, \
         \"during_tuning_grids_per_s\": {during_tuning_rps:.1}, \
         \"tuned_grids_per_s\": {tuned_rps:.1}, \"tuned_vs_default_ratio\": {ratio:.4}, \
         \"trials\": {}, \"trial_queue_peak\": {}, \"winner\": \"tiles {:?} group {} band {} \
         tier {:?} evals {}\"}}\n",
        snap.trials,
        snap.trial_queue_peak,
        winner.config.tile_sizes,
        winner.config.group_limit,
        winner.config.smooth_band,
        winner.config.tier,
        winner.evals,
    ));
    json.push_str("}\n");
    std::fs::write(out_path, json).expect("write tune BENCH json");
    eprintln!("wrote {out_path}");
}

/// The PR-10 scenario benchmark (DESIGN.md §18): constant-coefficient f64,
/// variable-coefficient, and mixed-precision rows on one smoother-dominated
/// shape, each run to the same relative residual target.
fn scenario_bench(out_path: &str, n: i64) {
    use gmg_multigrid::scenario::{
        coeff_field, residual_norm_varcoef, scenario_runner, ScenarioSpec,
    };
    use gmg_multigrid::solver::residual_norm;
    use polymg::Scenario;

    // Heavy 8-8-8 smoothing, star operator: the Jacobi chains dominate the
    // cycle (so the f32 smoothing tier moves the end-to-end number instead
    // of drowning in transfer traffic) while the full level hierarchy keeps
    // the cycle an actual solver — all-fine-level smoothing (s1000) is pure
    // Jacobi and never reaches the target.
    let steps = SmoothSteps {
        pre: 8,
        coarse: 8,
        post: 8,
    };
    let cfg = MgConfig::new(2, n, CycleType::V, steps);
    let (v0, f, _) = setup_poisson(&cfg);
    let fine = cfg.levels - 1;
    let (nn, h) = (cfg.n_at(fine), cfg.h_at(fine));
    let coeff = coeff_field(&cfg);
    // The shared target sits above the mixed-precision residual floor:
    // f32 smoothing round-off (~1e-7 relative on the iterate) reaches the
    // residual through the 1/h² operator, flooring it near 1e-4 of the
    // initial norm at n=127 — a tighter target would make the mixed row
    // unreachable by construction rather than by throughput.
    const TARGET_REDUCTION: f64 = 1e-3;
    const MAX_CYCLES: usize = 200;

    struct ScRow {
        label: &'static str,
        precision: &'static str,
        cycles_to_target: usize,
        cycles_per_s: f64,
        rel_residual: f64,
    }

    let rows_spec: [(&'static str, &'static str, ScenarioSpec); 3] = [
        ("constant", "f64", ScenarioSpec::new(Scenario::Constant)),
        ("varcoef", "f64", ScenarioSpec::new(Scenario::VarCoef)),
        (
            "mixed",
            "f32-smooth",
            ScenarioSpec {
                scenario: Scenario::Constant,
                mixed: true,
            },
        ),
    ];

    let mut rows: Vec<ScRow> = Vec::new();
    for (label, precision, spec) in rows_spec {
        let opts = PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
        let coeff_arg = spec.scenario.needs_coeff().then(|| coeff.clone());
        let mut runner = scenario_runner(&cfg, spec, opts, "scenario-bench", coeff_arg)
            .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
        let norm = |v: &[f64]| {
            if spec.scenario.needs_coeff() {
                residual_norm_varcoef(cfg.ndims, nn, h, v, &f, &coeff)
            } else {
                residual_norm(cfg.ndims, nn, h, v, &f)
            }
        };
        // count cycles to the shared relative target (also the warm-up)
        let res0 = norm(&v0);
        let target = res0 * TARGET_REDUCTION;
        let mut v = v0.clone();
        let mut cycles = 0usize;
        let rel = loop {
            runner.cycle_with_stats(&mut v, &f).expect("cycle");
            cycles += 1;
            let r = norm(&v);
            if r <= target {
                break r / res0;
            }
            assert!(
                cycles < MAX_CYCLES,
                "{label}: no convergence to {TARGET_REDUCTION:.0e} in {MAX_CYCLES} cycles \
                 (residual {:.3e} of initial)",
                r / res0
            );
        };
        // throughput at that equal target: best-of-3 timed reruns
        let secs = (0..3)
            .map(|_| {
                let mut v = v0.clone();
                time_cycles(&mut runner, &mut v, &f, cycles).as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let row = ScRow {
            label,
            precision,
            cycles_to_target: cycles,
            cycles_per_s: cycles as f64 / secs,
            rel_residual: rel,
        };
        eprintln!(
            "{:<9} ({:<10}) {:3} cycles to {TARGET_REDUCTION:.0e}, {:8.2} cycles/s, \
             final rel residual {:.3e}",
            row.label, row.precision, row.cycles_to_target, row.cycles_per_s, row.rel_residual
        );
        rows.push(row);
    }

    let constant_cps = rows[0].cycles_per_s;
    let ratio = rows[2].cycles_per_s / constant_cps;
    eprintln!(
        "mixed-precision smoothing vs constant-f64: {ratio:.3}x \
         (§18 expectation ≥ 1.15x — recorded, not asserted)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke-scenario/v1\",\n  \"pr\": 10,\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"levels\": {},\n  \"smoothing\": \"8-8-8\",\n  \
         \"operator\": \"star\",\n  \"target_reduction\": {TARGET_REDUCTION:e},\n  \
         \"converged_all\": true,\n",
        cfg.levels
    ));
    json.push_str(&format!(
        "  \"mixed_vs_constant_ratio\": {ratio:.4},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"precision\": \"{}\", \"cycles_to_target\": {}, \
             \"cycles_per_s\": {:.2}, \"final_rel_residual\": {:.3e}}}{}\n",
            r.label,
            r.precision,
            r.cycles_to_target,
            r.cycles_per_s,
            r.rel_residual,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, json).expect("write scenario BENCH json");
    eprintln!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pr8.json".to_string();
    let mut batch_out: Option<String> = None;
    let mut tune_out: Option<String> = None;
    let mut scenario_out: Option<String> = None;
    let mut n: i64 = 127;
    let mut n3: i64 = 63;
    let mut batch_n: i64 = 31;
    let mut repeats = 9usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--batch-out" => {
                i += 1;
                batch_out = Some(args[i].clone());
            }
            "--tune-out" => {
                i += 1;
                tune_out = Some(args[i].clone());
            }
            "--scenario-out" => {
                i += 1;
                scenario_out = Some(args[i].clone());
            }
            "--batch-n" => {
                i += 1;
                batch_n = args[i].parse().expect("--batch-n");
            }
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n");
            }
            "--n3" => {
                i += 1;
                n3 = args[i].parse().expect("--n3");
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats");
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: perf-smoke [-o OUT.json] [--n N] [--n3 N] [--repeats R] \
                     [--batch-out OUT.json [--batch-n N]] [--tune-out OUT.json] \
                     [--scenario-out OUT.json]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = batch_out {
        batch_bench(&path, batch_n);
        return;
    }
    if let Some(path) = tune_out {
        tune_bench(&path, n, n3);
        return;
    }
    if let Some(path) = scenario_out {
        scenario_bench(&path, n);
        return;
    }

    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Smoother-dominated cycles: all smoothing on the fine level (10-0-0),
    // two levels so the chain is pure fine-grid sweeps. The smoother rows
    // use the dense Mehrstellen operator (9-point in 2-D, 27-point in 3-D
    // — the footprint Galerkin coarse operators have): its ~4× arithmetic
    // intensity keeps the sweep compute-bound at these grid sizes, so the
    // rows measure the kernel tiers rather than the host's L3/DRAM
    // bandwidth. The V-cycle rows keep the paper's star operator.
    let mut smoother2 = MgConfig::new(2, n, CycleType::V, SmoothSteps::s1000()).with_dense_operator();
    smoother2.levels = 2;
    let vcycle2 = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());
    let mut smoother3 = MgConfig::new(3, n3, CycleType::V, SmoothSteps::s1000()).with_dense_operator();
    smoother3.levels = 2;
    let mut vcycle3 = MgConfig::new(3, n3, CycleType::V, SmoothSteps::s444());
    vcycle3.levels = 3;
    // (name, config, tiled): smoother chains run untiled — kernel-bound
    // rows measuring the tier swap itself; V-cycles run the tiled OptPlus
    // pipeline — the end-to-end number with scratch/halo traffic included
    let benches: [(&'static str, &MgConfig, bool, &'static str); 4] = [
        ("smoother2d", &smoother2, false, "dense"),
        ("vcycle2d", &vcycle2, true, "star"),
        ("smoother3d", &smoother3, false, "dense"),
        ("vcycle3d", &vcycle3, true, "star"),
    ];
    // a single-core host would sample the same configuration twice
    let thread_counts: &[usize] = if host_threads > 1 {
        &[1, host_threads]
    } else {
        &[1]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut bitwise_all = true;
    for (name, cfg, tiled, operator) in benches {
        for &threads in thread_counts {
            let (meds, bitwise_ok) = measure_tiers(cfg, threads, tiled, repeats);
            bitwise_all &= bitwise_ok;
            assert!(
                bitwise_ok,
                "{name}: a default tier diverged bitwise from the generic interpreter"
            );
            for ((tier, _, _, _), (med, samples)) in TIERS.into_iter().zip(meds) {
                eprintln!(
                    "{name:<12} threads={threads} tier={tier:<11} \
                     median {med:8.2} ns/point ({samples} samples)"
                );
                rows.push(Row {
                    bench: name,
                    threads,
                    tier,
                    schedule: if tiled { "tiled" } else { "untiled" },
                    operator,
                    median_ns_per_point: med,
                    samples,
                });
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"perf-smoke/v2\",\n  \"pr\": 8,\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"n\": {n},\n  \"n3\": {n3},\n"));
    json.push_str(&format!("  \"bitwise_default_ok\": {bitwise_all},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"threads\": {}, \"tier\": \"{}\", \
             \"schedule\": \"{}\", \"operator\": \"{}\", \
             \"median_ns_per_point\": {:.3}, \"samples\": {}}}{}\n",
            r.bench,
            r.threads,
            r.tier,
            r.schedule,
            r.operator,
            r.median_ns_per_point,
            r.samples,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
}
