//! `polymg-cli` — compile a multigrid benchmark and inspect or export the
//! result, without writing any Rust:
//!
//! ```text
//! polymg-cli serve   [--port N] [--workers N] [...]    # solve service
//! polymg-cli loadgen [--port N] [--connections N] [...] # verifying client
//! polymg-cli stats   [--addr A | --port-file F] [--shutdown] # query a server
//! polymg-cli <benchmark> [--variant naive|opt|opt+|dtile-opt+]
//!            [--n N] [--levels L] [--tiles A,B[,C]] [--gsrb]
//!            [--threads N] [--no-specialize] [--fast-math] [--no-simd]
//!            [--emit dump|dot|c|stats] [--dump-schedule] [-o FILE]
//!            [--profile OUT.json [--iters N]]
//!            [--chaos-seed N] [--chaos-rate R]
//!
//! <benchmark> ∈ {V-2D, W-2D, F-2D, V-3D, W-3D, F-3D} with an optional
//! smoothing suffix, e.g. V-2D-4-4-4 or W-3D-10-0-0 (default 4-4-4).
//! ```
//!
//! `--emit c` writes the Figure-8 C translation unit; `--emit dot` the
//! Graphviz DAG; `--emit dump` the Figures-6/7 grouping report (default);
//! `--emit stats` a one-line plan summary. `--dump-schedule` prints the
//! lowered schedule IR instead — the flat op stream the VM interprets, with
//! slot table and per-op geometry summaries.
//!
//! `--profile OUT.json` additionally *executes* the compiled plan (`--iters`
//! multigrid cycles on the manufactured Poisson problem, default 2) under a
//! `gmg-trace` handle and writes the captured profile — per-stage and
//! per-op times, kernel-dispatch histogram, pool/arena and plan-cache
//! counters, per-cycle residuals — as JSON. It also prints the
//! human-readable observability dump to stderr.
//!
//! `--chaos-seed N` arms deterministic fault injection (`polymg::chaos`)
//! for the profiled run: pool/arena exhaustion, worker panics, per-op
//! faults. `--chaos-rate R` sets the per-site firing probability (default
//! 0.01). Recovered faults leave results bitwise-identical; unrecoverable
//! ones surface as typed errors per cycle (the run continues) and every
//! armed/fired/recovered counter lands in the profile JSON under `chaos`.

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use polymg::{codegen, report, PipelineOptions, Variant};

fn usage() -> ! {
    eprintln!(
        "usage: polymg-cli <V-2D[-a-b-c]|W-3D[-a-b-c]|…> [--variant naive|opt|opt+|dtile-opt+]\n\
         \x20      [--n N] [--levels L] [--tiles A,B[,C]] [--gsrb] [--threads N]\n\
         \x20      [--no-specialize] [--fast-math] [--no-simd]\n\
         \x20      [--emit dump|dot|c|stats] [--dump-schedule] [-o FILE]\n\
         \x20      [--profile OUT.json [--iters N]] [--chaos-seed N] [--chaos-rate R]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    // serving subcommands (see gmg-server and DESIGN.md §13)
    match args[0].as_str() {
        "serve" => std::process::exit(gmg_server::cli::serve_main(&args[1..])),
        "loadgen" => std::process::exit(gmg_server::cli::loadgen_main(&args[1..])),
        "stats" => std::process::exit(gmg_server::cli::stats_main(&args[1..])),
        _ => {}
    }

    // benchmark spec: CYCLE-RANK[-pre-coarse-post]
    let parts: Vec<&str> = args[0].split('-').collect();
    if parts.len() < 2 {
        usage();
    }
    let cycle = match parts[0] {
        "V" | "v" => CycleType::V,
        "W" | "w" => CycleType::W,
        "F" | "f" => CycleType::F,
        _ => usage(),
    };
    let ndims = match parts[1] {
        "2D" | "2d" => 2usize,
        "3D" | "3d" => 3usize,
        _ => usage(),
    };
    let steps = if parts.len() >= 5 {
        SmoothSteps {
            pre: parts[2].parse().unwrap_or_else(|_| usage()),
            coarse: parts[3].parse().unwrap_or_else(|_| usage()),
            post: parts[4].parse().unwrap_or_else(|_| usage()),
        }
    } else {
        SmoothSteps::s444()
    };

    let mut variant = Variant::OptPlus;
    let mut n: i64 = if ndims == 2 { 255 } else { 31 };
    let mut levels: Option<u32> = None;
    let mut tiles: Option<Vec<i64>> = None;
    let mut emit = "dump".to_string();
    let mut out_file: Option<String> = None;
    let mut gsrb = false;
    let mut profile: Option<String> = None;
    let mut profile_iters = 2usize;
    let mut dump_schedule = false;
    let mut threads: Option<usize> = None;
    let mut specialize = true;
    let mut simd = true;
    let mut fast_math = false;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_rate = 0.01f64;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--variant" => {
                i += 1;
                variant = match args[i].as_str() {
                    "naive" => Variant::Naive,
                    "opt" => Variant::Opt,
                    "opt+" => Variant::OptPlus,
                    "dtile-opt+" => Variant::DtileOptPlus,
                    _ => usage(),
                };
            }
            "--n" => {
                i += 1;
                n = args[i].parse().unwrap_or_else(|_| usage());
            }
            "--levels" => {
                i += 1;
                levels = Some(args[i].parse().unwrap_or_else(|_| usage()));
            }
            "--tiles" => {
                i += 1;
                tiles = Some(
                    args[i]
                        .split(',')
                        .map(|t| t.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--emit" => {
                i += 1;
                emit = args[i].clone();
            }
            "--threads" => {
                i += 1;
                threads = Some(args[i].parse().unwrap_or_else(|_| usage()));
            }
            "--no-specialize" => specialize = false,
            "--no-simd" => simd = false,
            "--fast-math" => fast_math = true,
            "--gsrb" => gsrb = true,
            "--dump-schedule" => dump_schedule = true,
            "-o" => {
                i += 1;
                out_file = Some(args[i].clone());
            }
            "--profile" => {
                i += 1;
                profile = Some(args[i].clone());
            }
            "--iters" => {
                i += 1;
                profile_iters = args[i].parse().unwrap_or_else(|_| usage());
            }
            "--chaos-seed" => {
                i += 1;
                chaos_seed = Some(args[i].parse().unwrap_or_else(|_| usage()));
            }
            "--chaos-rate" => {
                i += 1;
                chaos_rate = args[i].parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let mut cfg = MgConfig::new(ndims, n, cycle, steps);
    if let Some(l) = levels {
        cfg.levels = l;
    }
    if gsrb {
        cfg = cfg.with_gsrb();
    }

    let pipeline = build_cycle_pipeline(&cfg);
    let mut opts = PipelineOptions::for_variant(variant, ndims);
    if let Some(t) = tiles {
        if t.len() < ndims {
            usage();
        }
        opts.tile_sizes = t;
    }
    if let Some(t) = threads {
        opts.threads = t;
    }
    opts.specialize = specialize;
    opts.simd = simd;
    opts.fast_math = fast_math;
    let chaos = chaos_seed.map(|s| polymg::ChaosOptions::new(s, chaos_rate));
    opts.chaos = chaos; // stripped by compile — a runtime property only
    let plan = match polymg::compile_cached(&pipeline, &gmg_ir::ParamBindings::new(), opts) {
        Ok(p) => p,
        Err(errs) => {
            eprintln!("compilation failed:");
            for e in errs {
                eprintln!("  {e}");
            }
            std::process::exit(1);
        }
    };

    let output = if dump_schedule {
        polymg::schedule::lower(&plan).dump()
    } else {
        match emit.as_str() {
            "dump" => report::grouping_dump(&plan),
            "dot" => report::dot_dump(&plan),
            "c" => codegen::emit_c(&plan),
            "stats" => {
                let s = report::stats(&plan);
                format!(
                    "{} [{}]: {} stages → {} groups ({} overlapped, {} diamond, {} untiled), \
                     {} full arrays / {} KiB intermediates, {} scratch buffers / {} KiB peak per worker\n",
                    cfg.tag(),
                    variant.label(),
                    s.num_stages,
                    s.num_groups,
                    s.num_overlapped_groups,
                    s.num_diamond_groups,
                    s.num_untiled_groups,
                    s.num_full_arrays,
                    s.intermediate_bytes / 1024,
                    s.total_scratch_buffers,
                    s.peak_scratch_bytes / 1024,
                )
            }
            _ => usage(),
        }
    };

    match out_file {
        Some(f) => {
            std::fs::write(&f, output).expect("write failed");
            eprintln!("wrote {f}");
        }
        None => print!("{output}"),
    }

    if let Some(path) = profile {
        use gmg_multigrid::solver::{
            residual_norm, run_cycles_traced, setup_poisson, CycleRunner as _,
        };
        let trace = gmg_trace::Trace::enabled();
        trace.set_meta("tool", "polymg-cli");
        trace.set_meta("benchmark", cfg.tag());
        trace.set_meta("variant", variant.label());
        let mut runner = gmg_multigrid::solver::DslRunner::from_plan(plan, &cfg);
        runner.set_trace(trace.clone());
        runner.engine_mut().set_chaos(chaos);
        let (mut v, f, _) = setup_poisson(&cfg);
        let nf = cfg.n_at(cfg.levels - 1);
        let hf = cfg.h_at(cfg.levels - 1);
        let final_res = if chaos.is_some() {
            // chaos-tolerant drive: an unrecoverable injected fault ends a
            // cycle with a typed error, the run keeps going, and the
            // profile (with its fault counters) is still written
            let mut faulted = 0usize;
            let mut last = residual_norm(cfg.ndims, nf, hf, &v, &f);
            for i in 0..profile_iters {
                let t0 = std::time::Instant::now();
                if let Err(e) = runner.cycle_with_stats(&mut v, &f) {
                    faulted += 1;
                    eprintln!("cycle {i}: {e}");
                }
                let dt = t0.elapsed();
                last = residual_norm(cfg.ndims, nf, hf, &v, &f);
                trace.record_cycle(i as u64, dt.as_nanos() as u64, last);
            }
            eprintln!("chaos: {faulted}/{profile_iters} cycles surfaced a typed fault");
            last
        } else {
            let res = run_cycles_traced(&mut runner, &cfg, &mut v, &f, profile_iters, &trace);
            res.norms.last().copied().unwrap_or(res.res0)
        };
        let (hits, misses) = polymg::PlanCache::global().counters();
        trace.record_plan_cache(hits, misses, polymg::PlanCache::global().evictions());
        match trace.report() {
            Some(rep) => {
                eprint!(
                    "{}",
                    report::observability_dump(runner.engine_mut().plan(), &rep)
                );
                std::fs::write(&path, rep.to_json()).expect("write profile");
                eprintln!(
                    "wrote profile {path} ({profile_iters} cycles, final residual {final_res:.3e})"
                );
            }
            None => eprintln!("gmg-trace built without `capture`; {path} not written"),
        }
    }
}
