//! `tier-probe` — microbenchmark of one stencil stage across kernel tiers,
//! bypassing the multigrid harness entirely: one 2-D/3-D constant-coefficient
//! stencil over a dense grid, timed per `(tier, xblock)` selection. This is
//! the tool for answering "is the lane tier's codegen actually wider" and
//! "does blocking pay at which row length" without cycle-level noise.
//!
//! ```text
//! tier-probe [--n N] [--reps R] [--dims 2|3] [--wide]
//! ```
//!
//! `--wide` switches to the dense-neighborhood operator for the dimension
//! (9-point in 2-D, 27-point in 3-D — the shape Galerkin coarsening
//! produces), which has ~4× the arithmetic intensity of the star stencil.

use gmg_ir::expr::Access;
use gmg_ir::{LinearForm, ParityPattern, Tap};
use gmg_poly::BoxDomain;
use gmg_runtime::kernel::{execute_stage_sel, KernelInput, Space, SpaceMut};
use polymg::specialize::classify;
use polymg::{KernelBody, KernelCase, KernelImpl, KernelSel, KernelTier, StageKernel};
use std::time::Instant;

fn unit_tap(offs: &[i64], coeff: f64) -> Tap {
    Tap {
        slot: 0,
        access: Access::offsets(offs),
        coeff,
        cfactor: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: i64 = 512;
    let mut reps = 50usize;
    let mut ndims = 2usize;
    let mut wide = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wide" => wide = true,
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps");
            }
            "--dims" => {
                i += 1;
                ndims = args[i].parse().expect("--dims");
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    let (offsets, expect): (Vec<Vec<i64>>, KernelImpl) = match (ndims, wide) {
        (2, false) => (
            [[0, 0], [0, 1], [0, -1], [1, 0], [-1, 0]]
                .iter()
                .map(|o| o.to_vec())
                .collect(),
            KernelImpl::Stencil2D5,
        ),
        (2, true) => {
            let mut o = Vec::new();
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    o.push(vec![dy, dx]);
                }
            }
            (o, KernelImpl::Stencil2D9)
        }
        (_, false) => (
            [
                [0, 0, 0],
                [0, 0, 1],
                [0, 0, -1],
                [0, 1, 0],
                [0, -1, 0],
                [1, 0, 0],
                [-1, 0, 0],
            ]
            .iter()
            .map(|o| o.to_vec())
            .collect(),
            KernelImpl::Stencil3D7,
        ),
        (_, true) => {
            let mut o = Vec::new();
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        o.push(vec![dz, dy, dx]);
                    }
                }
            }
            (o, KernelImpl::Stencil3D27)
        }
    };
    let taps: Vec<Tap> = offsets
        .iter()
        .enumerate()
        .map(|(k, o)| unit_tap(o, 0.1 + 0.05 * k as f64))
        .collect();
    let kernel = StageKernel {
        cases: vec![KernelCase {
            pattern: ParityPattern::any(ndims),
            body: KernelBody::Linear(LinearForm { bias: 0.25, taps }),
        }],
    };
    let tag = classify(&kernel, ndims);
    assert_eq!(tag, expect);

    let e = n + 2;
    let extents: Vec<i64> = vec![e; ndims];
    let origin: Vec<i64> = vec![0; ndims];
    let len = extents.iter().product::<i64>() as usize;
    let mut input = vec![0.0f64; len];
    for (i, v) in input.iter_mut().enumerate() {
        *v = (i % 97) as f64 * 0.01;
    }
    let region = BoxDomain::interior(ndims, n);
    let points = (n as f64).powi(ndims as i32);

    let sels: Vec<(String, KernelSel)> = vec![
        ("scalar".into(), KernelSel::scalar(tag)),
        (
            "lane_safe".into(),
            KernelSel {
                impl_tag: tag,
                tier: KernelTier::LaneSafe,
                xblock: 0,
            },
        ),
        (
            "lane_safe b128".into(),
            KernelSel {
                impl_tag: tag,
                tier: KernelTier::LaneSafe,
                xblock: 128,
            },
        ),
        (
            "fast_math".into(),
            KernelSel {
                impl_tag: tag,
                tier: KernelTier::FastMath,
                xblock: 0,
            },
        ),
        (
            "fast_math b128".into(),
            KernelSel {
                impl_tag: tag,
                tier: KernelTier::FastMath,
                xblock: 128,
            },
        ),
    ];

    let mut reference: Option<Vec<u64>> = None;
    for (label, sel) in &sels {
        let mut out = vec![0.0f64; len];
        // warm-up + correctness probe
        {
            let mut sp = SpaceMut {
                data: &mut out,
                origin: &origin,
                extents: &extents,
            };
            let ins = [KernelInput::Grid(Space {
                data: &input,
                origin: &origin,
                extents: &extents,
            })];
            execute_stage_sel(*sel, &kernel, &region, &mut sp, &ins, &[0.0]);
        }
        let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => {
                if sel.tier != KernelTier::FastMath {
                    assert_eq!(&bits, r, "{label} diverged bitwise");
                }
            }
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut sp = SpaceMut {
                data: &mut out,
                origin: &origin,
                extents: &extents,
            };
            let ins = [KernelInput::Grid(Space {
                data: &input,
                origin: &origin,
                extents: &extents,
            })];
            execute_stage_sel(*sel, &kernel, &region, &mut sp, &ins, &[0.0]);
            best = best.min(t0.elapsed().as_nanos() as f64 / points);
        }
        println!("{label:<16} best {best:8.3} ns/point");
    }
}
