//! Criterion wrapper for Figure 9 (2-D speedups): one cycle of each
//! implementation on the smoke class for every 2-D benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::experiments::benchmarks;
use gmg_bench::runners::{make_runner, ImplKind};
use gmg_multigrid::config::SizeClass;
use gmg_multigrid::solver::setup_poisson;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_2d");
    g.sample_size(10);
    for cfg in benchmarks(2, SizeClass::Smoke) {
        let (v0, f, _) = setup_poisson(&cfg);
        for kind in ImplKind::all() {
            let mut runner = make_runner(&cfg, kind, 1);
            let mut v = v0.clone();
            g.bench_function(BenchmarkId::new(cfg.tag(), kind.label()), |b| {
                b.iter(|| runner.cycle(&mut v, &f));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
