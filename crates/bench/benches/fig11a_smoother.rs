//! Criterion wrapper for Figure 11a: smoother-only, overlapped vs diamond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::experiments::smoother_pipeline;
use gmg_bench::runners::harness_tiles;
use gmg_ir::ParamBindings;
use gmg_multigrid::config::SizeClass;
use gmg_runtime::Engine;
use polymg::{PipelineOptions, Variant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11a_smoother");
    g.sample_size(10);
    let n = SizeClass::Smoke.n(3);
    let e = (n + 2) as usize;
    let len = e * e * e;
    for steps in [4usize, 10] {
        let p = smoother_pipeline(3, n, steps, 6.0 / 7.0);
        for (label, variant) in [
            ("untiled", Variant::Naive),
            ("overlapped", Variant::OptPlus),
            ("diamond", Variant::DtileOptPlus),
        ] {
            let mut opts = PipelineOptions::for_variant(variant, 3);
            opts.tile_sizes = harness_tiles(3);
            let plan = polymg::compile(&p, &ParamBindings::new(), opts).unwrap();
            let mut engine = Engine::new(plan);
            let vin = vec![0.1; len];
            let fin = vec![0.2; len];
            let mut out = vec![0.0; len];
            g.bench_function(BenchmarkId::new(format!("steps{steps}"), label), |b| {
                b.iter(|| {
                    engine
                        .run(&[("V", &vin), ("F", &fin)], vec![("out", &mut out)])
                        .unwrap()
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
