//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * grouping limit (how much fusion),
//! * overlap threshold (how much redundant work the grouper tolerates),
//! * scratchpad class quantum (the ±threshold of §3.2.1),
//! * coefficient factoring in the lowering,
//! * dead-code elimination (run a 10-0-0 cycle whose dead stages DCE prunes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::runners::harness_tiles;
use gmg_ir::ParamBindings;
use gmg_multigrid::config::{CycleType, MgConfig, SizeClass, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::{setup_poisson, CycleRunner, DslRunner};
use polymg::{PipelineOptions, Variant};

fn cfg_2d() -> MgConfig {
    MgConfig::new(2, SizeClass::Smoke.n(2), CycleType::V, SmoothSteps::s444())
}

fn bench_group_limit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_group_limit");
    g.sample_size(10);
    let cfg = cfg_2d();
    let pipeline = build_cycle_pipeline(&cfg);
    let (v0, f, _) = setup_poisson(&cfg);
    for gl in [1usize, 3, 6, 11] {
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = harness_tiles(2);
        opts.group_limit = gl;
        let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
        let mut runner = DslRunner::from_plan(plan, &cfg);
        let mut v = v0.clone();
        g.bench_function(BenchmarkId::from_parameter(gl), |b| {
            b.iter(|| runner.cycle(&mut v, &f));
        });
    }
    g.finish();
}

fn bench_overlap_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_overlap_threshold");
    g.sample_size(10);
    let cfg = cfg_2d();
    let pipeline = build_cycle_pipeline(&cfg);
    let (v0, f, _) = setup_poisson(&cfg);
    for thr in [1.05f64, 1.5, 2.0, 4.0] {
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = harness_tiles(2);
        opts.overlap_threshold = thr;
        let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
        let mut runner = DslRunner::from_plan(plan, &cfg);
        let mut v = v0.clone();
        g.bench_function(BenchmarkId::from_parameter(thr), |b| {
            b.iter(|| runner.cycle(&mut v, &f));
        });
    }
    g.finish();
}

fn bench_scratch_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scratch_quantum");
    g.sample_size(10);
    let cfg = cfg_2d();
    let pipeline = build_cycle_pipeline(&cfg);
    let (v0, f, _) = setup_poisson(&cfg);
    for q in [1i64, 8, 32] {
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = harness_tiles(2);
        opts.scratch_quantum = q;
        let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
        let buffers = plan.total_scratch_buffers();
        let mut runner = DslRunner::from_plan(plan, &cfg);
        let mut v = v0.clone();
        g.bench_function(
            BenchmarkId::from_parameter(format!("q{q}_bufs{buffers}")),
            |b| {
                b.iter(|| runner.cycle(&mut v, &f));
            },
        );
    }
    g.finish();
}

fn bench_coeff_factoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coeff_factoring");
    g.sample_size(10);
    // NAS-style 27-point operators are where factoring matters
    let n = SizeClass::Smoke.n(3);
    let e = (n + 2) as usize;
    let mut v = vec![0.0; e * e * e];
    gmg_nas::init_charges(&mut v, n, 10, 99);
    for on in [false, true] {
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 3);
        opts.tile_sizes = harness_tiles(3);
        opts.coeff_factoring = on;
        let mut dsl = gmg_nas::dsl::NasDsl::new(n, 4, opts, "x").unwrap();
        let mut u = vec![0.0; e * e * e];
        g.bench_function(BenchmarkId::from_parameter(on), |b| {
            b.iter(|| dsl.cycle(&mut u, &v));
        });
    }
    g.finish();
}

fn bench_dce(c: &mut Criterion) {
    // 10-0-0's dead defect/restrict at level 1 are pruned by DCE; the bench
    // documents what executing a cycle costs with the pruned plan (there is
    // no "DCE off" mode — this is the regression anchor for the pass).
    let mut g = c.benchmark_group("ablation_dce_1000_cycle");
    g.sample_size(10);
    let cfg = MgConfig::new(2, SizeClass::Smoke.n(2), CycleType::V, SmoothSteps::s1000());
    let pipeline = build_cycle_pipeline(&cfg);
    let (v0, f, _) = setup_poisson(&cfg);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = harness_tiles(2);
    let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
    let live: usize = plan.groups.iter().map(|g| g.stages.len()).sum();
    let total = plan.graph.num_compute_stages();
    let mut runner = DslRunner::from_plan(plan, &cfg);
    let mut v = v0.clone();
    g.bench_function(
        BenchmarkId::from_parameter(format!("live{live}_of{total}")),
        |b| {
            b.iter(|| runner.cycle(&mut v, &f));
        },
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_group_limit,
    bench_overlap_threshold,
    bench_scratch_quantum,
    bench_coeff_factoring,
    bench_dce
);
criterion_main!(benches);
