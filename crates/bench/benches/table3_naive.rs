//! Criterion wrapper for Table 3's baseline column: polymg-naive cycle time
//! for every benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::experiments::benchmarks;
use gmg_bench::runners::{make_runner, ImplKind};
use gmg_multigrid::config::SizeClass;
use gmg_multigrid::solver::setup_poisson;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_naive");
    g.sample_size(10);
    for ndims in [2usize, 3] {
        for cfg in benchmarks(ndims, SizeClass::Smoke) {
            let (v0, f, _) = setup_poisson(&cfg);
            let mut runner = make_runner(&cfg, ImplKind::PolymgNaive, 1);
            let mut v = v0.clone();
            g.bench_function(BenchmarkId::new("naive", cfg.tag()), |b| {
                b.iter(|| runner.cycle(&mut v, &f));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
