//! Criterion wrapper for Figure 11b: storage-optimization ablation on
//! V-10-0-0.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::runners::harness_tiles;
use gmg_ir::ParamBindings;
use gmg_multigrid::config::{CycleType, MgConfig, SizeClass, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::{setup_poisson, CycleRunner, DslRunner};
use polymg::{PipelineOptions, Variant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11b_storage");
    g.sample_size(10);
    for ndims in [2usize, 3] {
        let cfg = MgConfig::new(
            ndims,
            SizeClass::Smoke.n(ndims),
            CycleType::V,
            SmoothSteps::s1000(),
        );
        let pipeline = build_cycle_pipeline(&cfg);
        let (v0, f, _) = setup_poisson(&cfg);
        let levels: [(&str, bool, bool, bool); 4] = [
            ("base", false, false, false),
            ("intra", true, false, false),
            ("intra+pool", true, true, false),
            ("intra+pool+inter", true, true, true),
        ];
        for (label, intra, pool, inter) in levels {
            let mut opts = PipelineOptions::for_variant(Variant::Opt, ndims);
            opts.tile_sizes = harness_tiles(ndims);
            opts.intra_group_reuse = intra;
            opts.pooled_allocation = pool;
            opts.inter_group_reuse = inter;
            let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts).unwrap();
            let mut runner = DslRunner::from_plan(plan, &cfg);
            let mut v = v0.clone();
            g.bench_function(BenchmarkId::new(format!("{ndims}D"), label), |b| {
                b.iter(|| runner.cycle(&mut v, &f));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
