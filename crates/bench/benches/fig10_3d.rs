//! Criterion wrapper for Figure 10 (3-D speedups + NAS MG).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_bench::experiments::benchmarks;
use gmg_bench::runners::{harness_tiles, make_runner, ImplKind};
use gmg_multigrid::config::SizeClass;
use gmg_multigrid::solver::{setup_poisson, CycleRunner};
use gmg_nas::dsl::NasDsl;
use gmg_nas::reference::NasReference;
use polymg::{PipelineOptions, Variant};

fn bench_poisson(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_3d");
    g.sample_size(10);
    for cfg in benchmarks(3, SizeClass::Smoke) {
        let (v0, f, _) = setup_poisson(&cfg);
        for kind in ImplKind::all() {
            let mut runner = make_runner(&cfg, kind, 1);
            let mut v = v0.clone();
            g.bench_function(BenchmarkId::new(cfg.tag(), kind.label()), |b| {
                b.iter(|| runner.cycle(&mut v, &f));
            });
        }
    }
    g.finish();
}

fn bench_nas(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10e_nas");
    g.sample_size(10);
    let n = SizeClass::Smoke.n(3);
    let e = (n + 2) as usize;
    let mut v = vec![0.0; e * e * e];
    gmg_nas::init_charges(&mut v, n, 10, 314159);

    let mut nref = NasReference::new(n, 4);
    nref.set_v(&v);
    g.bench_function("NAS-reference", |b| b.iter(|| nref.iteration()));

    for variant in [Variant::Naive, Variant::OptPlus] {
        let mut opts = PipelineOptions::for_variant(variant, 3);
        opts.tile_sizes = harness_tiles(3);
        let mut dsl = NasDsl::new(n, 4, opts, variant.label()).unwrap();
        let mut u = vec![0.0; e * e * e];
        g.bench_function(BenchmarkId::new("NAS", variant.label()), |b| {
            b.iter(|| dsl.cycle(&mut u, &v));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_poisson, bench_nas);
criterion_main!(benches);
