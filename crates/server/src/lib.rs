//! # gmg-server — a multi-tenant solve service over compiled plans
//!
//! The serving layer of the reproduction: a std-only TCP service built
//! around an event-driven core. Shard-per-core readiness loops (epoll via
//! the in-tree `shim-epoll` crate) own their connections outright:
//! nonblocking accept, per-connection ring buffers with incremental
//! zero-copy frame decode of the length-prefixed binary protocol
//! ([`protocol`]), and sequence-ordered response flushing. Connections are
//! pinned to [`server::shard_for_tenant`] of their tenant, so warm
//! per-shape sessions ([`session`]) — a shared `Arc<CompiledPipeline>` out
//! of the global plan cache plus leased engines whose persistent worker
//! pools and `BufferPool`s survive between requests — stay shard-local
//! across reconnects, with no cross-shard lock on the steady-state path.
//!
//! Admission control ([`server`]) is per shard and per QoS class:
//! latency-sensitive single solves and batch work wait in separate
//! capacity-limited queues with typed `QueueFull` rejection, drained by a
//! weighted round-robin that bounds how long a batch flood can starve
//! interactive traffic. Per-tenant in-flight caps and graceful drain on
//! shutdown ride on top.
//!
//! [`loadgen`] is the in-crate client: it drives concurrent connections of
//! mixed 2-D/3-D problems and verifies every response *bitwise* against a
//! direct in-process engine run — the engine's bitwise determinism turns
//! end-to-end serving correctness into an exact equality check. Its idle
//! churn mode holds thousands of mostly-idle connections (with reconnect
//! churn) against the same server to exercise the readiness loop.
//!
//! Everything is std: no async runtime, no serialization framework, no new
//! dependencies. See DESIGN.md §13–§15 for the architecture discussion.

pub mod cli;
pub mod loadgen;
pub mod protocol;
mod ring;
pub mod server;
pub mod session;
mod shard;
pub mod tuner;

pub use loadgen::{
    default_mix, retry_backoff_ms, scenario_mix, LoadgenOptions, LoadgenReport, MixItem,
};
pub use protocol::{
    BatchSolveRequest, BatchSolveResponse, ErrorCode, Frame, FrameError, SolveRequest,
    SolveResponse,
};
pub use server::{shard_for_tenant, start, QosClass, ServerConfig, ServerHandle};
pub use session::SessionManager;
pub use tuner::TunerConfig;
