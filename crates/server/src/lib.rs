//! # gmg-server — a multi-tenant solve service over compiled plans
//!
//! The serving layer of the reproduction: a std-only TCP service that
//! accepts multigrid solve requests over a length-prefixed binary protocol
//! ([`protocol`]), executes them on warm per-shape sessions ([`session`]) —
//! a shared `Arc<CompiledPipeline>` out of the global plan cache plus
//! leased engines whose persistent worker pools and `BufferPool`s survive
//! between requests — under bounded admission control ([`server`]): a
//! capacity-limited queue with typed `QueueFull` rejection, per-tenant
//! in-flight caps, and graceful drain on shutdown.
//!
//! [`loadgen`] is the in-crate client: it drives concurrent connections of
//! mixed 2-D/3-D problems and verifies every response *bitwise* against a
//! direct in-process engine run — the engine's bitwise determinism turns
//! end-to-end serving correctness into an exact equality check.
//!
//! Everything is std: no async runtime, no serialization framework, no new
//! dependencies. See DESIGN.md §13 for the architecture discussion.

pub mod cli;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;

pub use loadgen::{default_mix, retry_backoff_ms, LoadgenOptions, LoadgenReport, MixItem};
pub use protocol::{
    BatchSolveRequest, BatchSolveResponse, ErrorCode, Frame, FrameError, SolveRequest,
    SolveResponse,
};
pub use server::{start, ServerConfig, ServerHandle};
pub use session::SessionManager;
