//! Warm solve sessions keyed on the plan-cache fingerprint.
//!
//! A *session* is everything reusable about one compilation request: the
//! shared [`CompiledPipeline`] (an `Arc` out of the global plan cache) plus
//! a pool of idle [`DslRunner`]s — each holding an `Engine` whose persistent
//! worker pool and `BufferPool` stay warm between requests. Repeat requests
//! for the same shape therefore skip both compilation *and* allocation: the
//! first request pays the full cost, the steady state is pure execution.
//!
//! The key is [`polymg::cache::fingerprint`] over (pipeline, bindings,
//! options) — exactly the plan cache's notion of identity — so two requests
//! share a session iff they would share a compiled plan. Tuned
//! configurations (satellite: `--tuned FILE`) are applied *before* the key
//! is computed, so a tuned and an untuned request for the same shape are
//! correctly distinct sessions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gmg_ir::ParamBindings;
use gmg_multigrid::config::MgConfig;
use gmg_multigrid::scenario::{build_scenario_pipeline, scenario_config, ScenarioSpec};
use gmg_multigrid::solver::DslRunner;
use polymg::{cache, ChaosOptions, CompiledPipeline, PipelineOptions, Scenario, TunedStore, Variant};

struct Session {
    plan: Arc<CompiledPipeline>,
    /// Warm runners not currently leased. Bounded by `max_idle`; a release
    /// beyond the bound drops the runner (its pools with it).
    idle: Vec<DslRunner>,
}

/// Shared session registry. All methods are `&self`; internal locking keeps
/// the registry consistent under concurrent workers.
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Session>>,
    /// Tuned-config store, shared across shards (and with the online tuner,
    /// which inserts winners at runtime — a lookup sees them immediately,
    /// and because options feed the session key, a winner simply routes the
    /// next acquire to a fresh session compiled with the tuned schedule).
    tuned: Option<Arc<Mutex<TunedStore>>>,
    chaos: Option<ChaosOptions>,
    /// Worker threads per engine (the runtime's own parallelism, distinct
    /// from the server's solve workers).
    engine_threads: usize,
    /// Idle runners retained per session.
    max_idle: usize,
    /// Kernel-tier knobs applied to every session's options (`--no-simd` /
    /// `--fast-math`). Part of the session key via the plan fingerprint.
    simd: bool,
    fast_math: bool,
    pub session_hits: AtomicU64,
    pub session_misses: AtomicU64,
    pub engines_created: AtomicU64,
    pub tuned_applied: AtomicU64,
}

/// A leased runner. Return it with [`SessionManager::release`] so the next
/// request for the same shape reuses its warm pools.
pub struct Lease {
    pub key: u64,
    pub runner: DslRunner,
    /// True when this acquire created the session (compile path).
    pub created_session: bool,
    /// Structural pipeline fingerprint (pre-options) — the tuned store's
    /// key; the online tuner buckets live observations by it.
    pub plan_fp: u64,
}

impl SessionManager {
    pub fn new(
        tuned: Option<TunedStore>,
        chaos: Option<ChaosOptions>,
        engine_threads: usize,
        max_idle: usize,
    ) -> SessionManager {
        SessionManager::with_kernel_opts(tuned, chaos, engine_threads, max_idle, true, false)
    }

    /// [`new`](SessionManager::new) with explicit kernel-tier knobs
    /// (`simd`, `fast_math`).
    pub fn with_kernel_opts(
        tuned: Option<TunedStore>,
        chaos: Option<ChaosOptions>,
        engine_threads: usize,
        max_idle: usize,
        simd: bool,
        fast_math: bool,
    ) -> SessionManager {
        SessionManager::with_shared_store(
            tuned.map(|t| Arc::new(Mutex::new(t))),
            chaos,
            engine_threads,
            max_idle,
            simd,
            fast_math,
        )
    }

    /// Full constructor over a *shared* tuned store: every shard (and the
    /// online tuner) holds the same `Arc`, so a winner recorded anywhere is
    /// visible to every subsequent [`acquire`](SessionManager::acquire).
    pub fn with_shared_store(
        tuned: Option<Arc<Mutex<TunedStore>>>,
        chaos: Option<ChaosOptions>,
        engine_threads: usize,
        max_idle: usize,
        simd: bool,
        fast_math: bool,
    ) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            tuned,
            chaos,
            engine_threads: engine_threads.max(1),
            max_idle: max_idle.max(1),
            simd,
            fast_math,
            session_hits: AtomicU64::new(0),
            session_misses: AtomicU64::new(0),
            engines_created: AtomicU64::new(0),
            tuned_applied: AtomicU64::new(0),
        }
    }

    /// The pipeline options a request resolves to: the variant preset, the
    /// server's engine thread count, and — when a tuned entry matches the
    /// pipeline fingerprint — the persisted tile/group configuration.
    fn resolve_options(&self, cfg: &MgConfig, variant: Variant, pfp: u64) -> (PipelineOptions, bool) {
        let mut opts = PipelineOptions::for_variant(variant, cfg.ndims);
        opts.threads = self.engine_threads;
        opts.simd = self.simd;
        opts.fast_math = self.fast_math;
        if let Some(store) = &self.tuned {
            let entry = store.lock().unwrap().lookup(pfp, cfg.ndims).cloned();
            if let Some(entry) = entry {
                // the tuned tier is honored (the metric was measured there),
                // but a session that opted into fast-math never downgrades:
                // its clients verify against a fast-math reference
                opts = entry.config.apply(&opts);
                if self.fast_math {
                    opts.simd = true;
                    opts.fast_math = true;
                }
                return (opts, true);
            }
        }
        (opts, false)
    }

    /// Lease a warm runner for the constant-coefficient default scenario.
    pub fn acquire(&self, cfg: &MgConfig, variant: Variant) -> Result<Lease, Vec<String>> {
        self.acquire_scenario(cfg, variant, ScenarioSpec::new(Scenario::Constant), None)
    }

    /// Lease a warm runner for a scenario, creating the session (compiling
    /// through the global plan cache) on first sight. The session key is
    /// the plan fingerprint of the *scenario* pipeline with the
    /// mixed-precision opt-in folded into the options, so distinct
    /// scenarios and precision tiers never share engines. The coefficient
    /// grid is (re)bound on every acquire — warm runners carry no stale
    /// `A` from a previous request.
    pub fn acquire_scenario(
        &self,
        cfg: &MgConfig,
        variant: Variant,
        spec: ScenarioSpec,
        coeff: Option<&[f64]>,
    ) -> Result<Lease, Vec<String>> {
        // The protocol layer already validated decoded requests; in-process
        // callers go through the same gate so an invalid spec surfaces as a
        // compile-style error, never a panic.
        if let Err(e) = spec.scenario.validate(spec.mixed, coeff.is_some()) {
            return Err(vec![e.to_string()]);
        }
        let cfg = scenario_config(cfg, spec.scenario);
        let pipeline = build_scenario_pipeline(&cfg, spec.scenario);
        let bindings = ParamBindings::new();
        let plan_fp = cache::pipeline_fingerprint(&pipeline, &bindings);
        let (mut opts, tuned) = self.resolve_options(&cfg, variant, plan_fp);
        opts.mixed_precision = spec.mixed;
        let key = cache::fingerprint(&pipeline, &bindings, &opts);

        // Decide hit/miss, count it, and pop an idle runner under ONE lock
        // hold. Splitting these (check, count, pop as separate acquisitions)
        // is a TOCTOU: a hit could be counted for a session that no longer
        // exists, and two threads racing the same first-touch could each see
        // "exists" after only one counted the miss — breaking the
        // `hits + misses == acquires` accounting the trace publishes.
        let found = {
            let mut sessions = self.sessions.lock().unwrap();
            match sessions.get_mut(&key) {
                Some(s) => {
                    self.session_hits.fetch_add(1, Ordering::Relaxed);
                    Some((Arc::clone(&s.plan), s.idle.pop()))
                }
                None => {
                    self.session_misses.fetch_add(1, Ordering::Relaxed);
                    if tuned {
                        self.tuned_applied.fetch_add(1, Ordering::Relaxed);
                    }
                    None
                }
            }
        };

        let created = found.is_none();
        let (plan, runner) = match found {
            Some((plan, runner)) => (plan, runner),
            None => {
                // Compile outside the sessions lock; the plan cache's
                // single-flight slot already serialises concurrent misses
                // on the same key without serialising different keys.
                let plan = polymg::compile_cached(&pipeline, &bindings, opts)?;
                let mut sessions = self.sessions.lock().unwrap();
                let session = sessions.entry(key).or_insert_with(|| Session {
                    plan: Arc::clone(&plan),
                    idle: Vec::new(),
                });
                // Two concurrent first-touches both count a miss (each saw
                // the empty registry under the lock); the loser adopts the
                // winner's session here.
                (Arc::clone(&session.plan), session.idle.pop())
            }
        };

        let mut runner = match runner {
            Some(r) => r,
            None => {
                self.engines_created.fetch_add(1, Ordering::Relaxed);
                let mut r = DslRunner::from_plan(Arc::clone(&plan), &cfg);
                r.engine_mut().set_chaos(self.chaos);
                r
            }
        };
        if let Some(a) = coeff {
            // rebind on every acquire (a warm runner may hold a previous
            // request's grid); Ainv is derived from the same wire grid so
            // client-side references recompute it bitwise-identically
            runner.bind_extra("Ainv", gmg_multigrid::scenario::reciprocal_field(a));
            runner.bind_extra("A", a.to_vec());
        }
        Ok(Lease {
            key,
            runner,
            created_session: created,
            plan_fp,
        })
    }

    /// Return a leased runner to its session's idle pool. Runners surviving
    /// a typed `ExecError` stay usable (the engine recovers its pools), so
    /// errors do not forfeit the warm state.
    pub fn release(&self, lease: Lease) {
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(s) = sessions.get_mut(&lease.key) {
            if s.idle.len() < self.max_idle {
                s.idle.push(lease.runner);
            }
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_multigrid::config::{CycleType, SmoothSteps};
    use gmg_multigrid::solver::setup_poisson;

    fn cfg2d() -> MgConfig {
        MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444())
    }

    #[test]
    fn acquire_release_reuses_warm_runner() {
        let mgr = SessionManager::new(None, None, 1, 4);
        let cfg = cfg2d();
        let lease = mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        assert!(lease.created_session);
        mgr.release(lease);
        let lease2 = mgr.acquire(&cfg, Variant::OptPlus).expect("hit");
        assert!(!lease2.created_session);
        assert_eq!(mgr.engines_created.load(Ordering::Relaxed), 1);
        assert_eq!(mgr.session_hits.load(Ordering::Relaxed), 1);
        assert_eq!(mgr.session_misses.load(Ordering::Relaxed), 1);
        mgr.release(lease2);
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn distinct_variants_get_distinct_sessions() {
        let mgr = SessionManager::new(None, None, 1, 4);
        let cfg = cfg2d();
        let a = mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        let b = mgr.acquire(&cfg, Variant::Naive).expect("compile");
        assert_ne!(a.key, b.key);
        mgr.release(a);
        mgr.release(b);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn concurrent_acquires_count_exactly() {
        // hits + misses must equal acquires EXACTLY, even when many threads
        // race first-touch and warm paths across several shapes — the
        // single-lock decide-and-count in `acquire` is what guarantees it.
        let mgr = Arc::new(SessionManager::new(None, None, 1, 4));
        let shapes = [
            (cfg2d(), Variant::OptPlus),
            (cfg2d(), Variant::Opt),
            (
                MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444()),
                Variant::OptPlus,
            ),
        ];
        let threads = 8;
        let per_thread = 12;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mgr = Arc::clone(&mgr);
                let shapes = shapes.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let (cfg, variant) = &shapes[(t + i) % shapes.len()];
                        let lease = mgr.acquire(cfg, *variant).expect("acquire");
                        if i % 2 == 0 {
                            mgr.release(lease);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hits = mgr.session_hits.load(Ordering::Relaxed);
        let misses = mgr.session_misses.load(Ordering::Relaxed);
        assert_eq!(
            hits + misses,
            (threads * per_thread) as u64,
            "hits ({hits}) + misses ({misses}) must equal acquires exactly"
        );
        assert!(misses >= shapes.len() as u64, "each shape misses at least once");
        assert_eq!(mgr.len(), shapes.len());
    }

    #[test]
    fn kernel_tier_knobs_split_sessions() {
        // fast_math (and simd) participate in the plan fingerprint, so a
        // fast-math server and a default server must not share sessions.
        let default_mgr = SessionManager::new(None, None, 1, 4);
        let fm_mgr = SessionManager::with_kernel_opts(None, None, 1, 4, true, true);
        let nosimd_mgr = SessionManager::with_kernel_opts(None, None, 1, 4, false, false);
        let cfg = cfg2d();
        let a = default_mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        let b = fm_mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        let c = nosimd_mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
        assert_ne!(b.key, c.key);
    }

    #[test]
    fn scenario_specs_split_sessions() {
        use polymg::Scenario;
        let mgr = SessionManager::new(None, None, 1, 4);
        let cfg = cfg2d();
        let constant = mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        let mixed = mgr
            .acquire_scenario(
                &cfg,
                Variant::OptPlus,
                ScenarioSpec {
                    scenario: Scenario::Constant,
                    mixed: true,
                },
                None,
            )
            .expect("compile");
        let a = gmg_multigrid::scenario::coeff_field(&cfg);
        let varcoef = mgr
            .acquire_scenario(
                &cfg,
                Variant::OptPlus,
                ScenarioSpec::new(Scenario::VarCoef),
                Some(&a),
            )
            .expect("compile");
        let rbgs = mgr
            .acquire_scenario(
                &cfg,
                Variant::OptPlus,
                ScenarioSpec::new(Scenario::Rbgs),
                None,
            )
            .expect("compile");
        let keys = [constant.key, mixed.key, varcoef.key, rbgs.key];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "sessions {i} and {j} must not share a key");
            }
        }
        for l in [constant, mixed, varcoef, rbgs] {
            mgr.release(l);
        }
        assert_eq!(mgr.len(), 4);
        // repeat scenario acquire is a warm hit on its own session
        let again = mgr
            .acquire_scenario(
                &cfg,
                Variant::OptPlus,
                ScenarioSpec::new(Scenario::VarCoef),
                Some(&a),
            )
            .expect("hit");
        assert!(!again.created_session);
        mgr.release(again);
    }

    #[test]
    fn scenario_acquire_rejects_invalid_specs() {
        use polymg::Scenario;
        let mgr = SessionManager::new(None, None, 1, 4);
        let cfg = cfg2d();
        // varcoef without a grid never reaches the compiler
        let errs = mgr
            .acquire_scenario(
                &cfg,
                Variant::OptPlus,
                ScenarioSpec::new(Scenario::VarCoef),
                None,
            )
            .err()
            .expect("must reject");
        assert!(errs[0].contains("coefficient grid"));
        assert_eq!(mgr.len(), 0);
    }

    #[test]
    fn leased_runner_actually_solves() {
        let mgr = SessionManager::new(None, None, 1, 4);
        let cfg = cfg2d();
        let mut lease = mgr.acquire(&cfg, Variant::OptPlus).expect("compile");
        let (mut v, f, _) = setup_poisson(&cfg);
        lease.runner.cycle_with_stats(&mut v, &f).expect("cycle");
        assert!(v.iter().all(|x| x.is_finite()));
        mgr.release(lease);
    }
}
