//! The per-shard readiness loop: nonblocking accept, ring-buffer frame
//! decode, connection ownership, and ordered response flushing.
//!
//! Each shard runs one event loop thread around a level-triggered epoll
//! set (via the in-tree `shim-epoll` crate) holding three kinds of fds:
//!
//! * an eventfd **waker** (token 0) — how workers and other shards
//!   interrupt a blocked `epoll_wait` (solve completions, adoptions,
//!   shutdown); no drain-time self-connection anywhere,
//! * the **listener** (token 1, shard 0 only) — accepted connections are
//!   dealt round-robin across shards, since the owning tenant is unknown
//!   until the first solve payload arrives,
//! * **connections** (tokens ≥ 2, monotonic, never reused) — each with a
//!   compacting receive ring ([`RingBuf`]) and a sequence-ordered outbox.
//!
//! Frame decode is incremental: [`protocol::frame_boundary`] finds frame
//! edges in whatever bytes have arrived, oversized declarations poison the
//! connection before any allocation, and solve payloads decode straight
//! out of the ring slice — the wire bytes are copied exactly once, into
//! the `f64` grids the engine consumes.
//!
//! Responses carry the per-connection sequence number assigned at decode,
//! so pipelined requests are answered strictly in request order even when
//! their solves finish out of order on different workers.
//!
//! A connection *migrates* at most once: when its first solve names a
//! tenant whose [`shard_for_tenant`] home is another shard, the whole
//! connection (socket, ring residue, decoded-but-unadmitted job) is handed
//! over through the target's inbox, and every later request from that
//! connection is admitted, solved, and answered entirely shard-locally.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shim_epoll::{Event, Interest};

use crate::protocol::{self, BatchSolveRequest, ErrorCode, SolveRequest};
use crate::ring::RingBuf;
use crate::server::{shard_for_tenant, JobOp, Shard, Shared};

const TOK_WAKER: u64 = 0;
const TOK_LISTENER: u64 = 1;
const TOK_FIRST_CONN: u64 = 2;

/// Outbox pull target per flush round: enough to keep `write` syscalls
/// large, small enough to bound per-connection buffering.
const WBUF_TARGET: usize = 1 << 20;

/// How long a drained server keeps trying to flush stragglers before
/// force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One connection owned by a shard's event loop.
pub(crate) struct Conn {
    stream: TcpStream,
    ring: RingBuf,
    /// Sequence number assigned to the next decoded request.
    next_seq: u64,
    /// Sequence number of the next response to transmit.
    send_seq: u64,
    /// Finished response frames waiting for their turn (keyed by seq, so
    /// out-of-order completions park here until the gap fills).
    ready: BTreeMap<u64, Vec<u8>>,
    /// In-progress wire buffer (`wpos..` is unsent).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Home shard once the first solve named a tenant; `None` until then.
    home: Option<usize>,
    /// Framing is poisoned (or drain is closing us): flush what is owed,
    /// accept nothing more, then hang up.
    close_after_flush: bool,
    /// SHUTDOWN echoes owed once the server drains, at their request seq.
    parked_acks: Vec<(u64, Vec<u8>)>,
    /// Interest currently registered with the poller.
    reg: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            ring: RingBuf::new(),
            next_seq: 0,
            send_seq: 0,
            ready: BTreeMap::new(),
            wbuf: Vec::new(),
            wpos: 0,
            home: None,
            close_after_flush: false,
            parked_acks: Vec::new(),
            reg: Interest::READABLE,
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn enqueue(&mut self, seq: u64, frame: Vec<u8>) {
        self.ready.insert(seq, frame);
    }

    /// Pull due response frames (in seq order, no gaps) into the wire
    /// buffer, up to the pull target.
    fn pump(&mut self) {
        while self.wbuf.len() < WBUF_TARGET {
            match self.ready.remove(&self.send_seq) {
                Some(frame) => {
                    if self.wbuf.is_empty() && self.wpos == 0 {
                        self.wbuf = frame;
                    } else {
                        self.wbuf.extend_from_slice(&frame);
                    }
                    self.send_seq += 1;
                }
                None => break,
            }
        }
    }

    /// Write as much owed data as the socket accepts right now.
    /// `Ok(())` means either fully flushed or the socket would block;
    /// `Err` means the connection is dead.
    fn try_flush(&mut self) -> std::io::Result<()> {
        loop {
            if self.wpos == self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
                self.pump();
                if self.wbuf.is_empty() {
                    return Ok(());
                }
            }
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn has_pending_writes(&self) -> bool {
        self.wpos < self.wbuf.len() || self.ready.contains_key(&self.send_seq)
    }
}

/// A solve decoded on one shard but owed admission on another (it rides
/// along with its connection during migration).
pub(crate) struct PendingJob {
    pub reqs: Vec<SolveRequest>,
    pub op: JobOp,
    pub seq: u64,
}

/// Cross-thread messages into a shard's event loop.
pub(crate) enum ShardMsg {
    /// Take ownership of a connection: from the acceptor (round-robin
    /// deal, `migrated == false`) or from another shard that resolved the
    /// connection's tenant home here (`migrated == true`, possibly with a
    /// decoded job still owed admission and with undecoded ring residue).
    Adopt {
        conn: Box<Conn>,
        pending: Option<PendingJob>,
        migrated: bool,
    },
    /// A worker finished the request `(conn, seq)`; the encoded response
    /// frame is ready to enter that connection's ordered outbox.
    Complete { conn: u64, seq: u64, frame: Vec<u8> },
}

/// What the caller must do with a connection after driving it.
enum Directive {
    Keep,
    Close { truncated: bool },
    Migrate { target: usize, pending: PendingJob },
}

enum After {
    Keep,
    Drop,
}

/// Flush, then reconcile poller interest with what the connection still
/// needs; `Drop` when it is dead or done.
fn settle(shard: &Shard, token: u64, conn: &mut Conn) -> After {
    if conn.try_flush().is_err() {
        return After::Drop;
    }
    if conn.close_after_flush && !conn.has_pending_writes() {
        return After::Drop;
    }
    let want = Interest {
        readable: !conn.close_after_flush,
        writable: conn.has_pending_writes(),
    };
    if want != conn.reg {
        if shard
            .poller
            .modify(conn.stream.as_raw_fd(), token, want)
            .is_err()
        {
            return After::Drop;
        }
        conn.reg = want;
    }
    After::Keep
}

fn close_conn(
    sh: &Shared,
    shard: &Shard,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    truncated: bool,
) {
    if let Some(conn) = conns.remove(&token) {
        if truncated {
            // The peer vanished mid-frame: count it and attempt (best
            // effort, the peer is usually gone) a typed goodbye.
            sh.count_protocol_error();
            let payload =
                protocol::encode_error(ErrorCode::BadFrame, "frame truncated by peer disconnect");
            let _ = (&conn.stream).write(&protocol::frame_bytes(protocol::OP_ERROR, &payload));
        }
        let _ = shard.poller.remove(conn.stream.as_raw_fd());
        // dropping the Conn closes the socket
    }
}

/// Register a connection with this shard's poller and map. Returns the
/// token, or `None` if registration failed (the connection is dropped).
fn register(
    shard: &Shard,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    mut conn: Conn,
) -> Option<u64> {
    let token = *next_token;
    *next_token += 1;
    if shard
        .poller
        .add(conn.stream.as_raw_fd(), token, Interest::READABLE)
        .is_err()
    {
        return None;
    }
    conn.reg = Interest::READABLE;
    shard.counters.accepted.fetch_add(1, Ordering::Relaxed);
    conns.insert(token, conn);
    Some(token)
}

/// Act on a directive produced by driving or flushing a connection.
fn apply(
    sh: &Arc<Shared>,
    shard_id: usize,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    d: Directive,
) {
    let shard = &sh.shards[shard_id];
    match d {
        Directive::Keep => {
            if let Some(conn) = conns.get_mut(&token) {
                if let After::Drop = settle(shard, token, conn) {
                    close_conn(sh, shard, conns, token, false);
                }
            }
        }
        Directive::Close { truncated } => close_conn(sh, shard, conns, token, truncated),
        Directive::Migrate { target, pending } => {
            if let Some(conn) = conns.remove(&token) {
                let _ = shard.poller.remove(conn.stream.as_raw_fd());
                sh.shards[target].send(ShardMsg::Adopt {
                    conn: Box::new(conn),
                    pending: Some(pending),
                    migrated: true,
                });
            }
        }
    }
}

/// Route a decoded solve: resolve the connection's home shard on first
/// contact (possibly migrating the whole connection), otherwise admit it
/// here. Admission rejections become typed error frames at the request's
/// seq — the connection stays open.
fn route(
    sh: &Shared,
    shard_id: usize,
    token: u64,
    conn: &mut Conn,
    seq: u64,
    reqs: Vec<SolveRequest>,
    op: JobOp,
) -> Option<Directive> {
    if conn.home.is_none() {
        let target = shard_for_tenant(reqs[0].tenant, sh.shards.len());
        conn.home = Some(target);
        if target != shard_id {
            return Some(Directive::Migrate {
                target,
                pending: PendingJob { reqs, op, seq },
            });
        }
    }
    if let Err((code, msg)) = sh.admit(shard_id, token, seq, reqs, op) {
        let payload = protocol::encode_error(code, &msg);
        conn.enqueue(seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
    }
    None
}

/// A request decoded to owned data, so the ring slice borrow can end
/// before the handler needs the connection mutably.
enum Msg {
    Ping(Vec<u8>),
    Stats,
    Shutdown(Vec<u8>),
    /// A single solve with its arrival opcode ([`JobOp::Solve`] for legacy
    /// frames, [`JobOp::SolveScenario`] for extended ones).
    Solve(Result<SolveRequest, String>, JobOp),
    Batch(Result<BatchSolveRequest, String>),
    Unknown(u8),
}

/// Decode and handle every complete frame in the ring. `None` means "keep
/// the connection and carry on"; `Some` is a close or migration demand.
fn parse_available(
    sh: &Shared,
    shard_id: usize,
    token: u64,
    conn: &mut Conn,
) -> Option<Directive> {
    let shard = &sh.shards[shard_id];
    loop {
        if conn.close_after_flush {
            return None;
        }
        let (opcode, total) = match protocol::frame_boundary(conn.ring.available()) {
            Ok(None) => return None,
            Ok(Some(x)) => x,
            Err(len) => {
                // Poison: we can no longer find frame boundaries. Answer
                // once (ordered behind anything already owed), then hang up
                // after the flush.
                sh.count_protocol_error();
                let seq = conn.alloc_seq();
                let msg = format!(
                    "declared payload of {len} bytes exceeds {}",
                    protocol::MAX_FRAME
                );
                let payload = protocol::encode_error(ErrorCode::BadFrame, &msg);
                conn.enqueue(seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
                conn.close_after_flush = true;
                return None;
            }
        };
        if conn.ring.available().len() < total {
            // Partial frame: pre-size the ring so the rest lands
            // contiguously, then wait for more bytes.
            conn.ring.ensure_capacity(total);
            return None;
        }
        shard.counters.frames.fetch_add(1, Ordering::Relaxed);
        let msg = {
            let payload = &conn.ring.available()[5..total];
            match opcode {
                protocol::OP_PING => Msg::Ping(payload.to_vec()),
                protocol::OP_STATS => Msg::Stats,
                protocol::OP_SHUTDOWN => Msg::Shutdown(payload.to_vec()),
                protocol::OP_SOLVE => Msg::Solve(SolveRequest::decode(payload), JobOp::Solve),
                protocol::OP_SOLVE_SCENARIO => {
                    Msg::Solve(SolveRequest::decode_scenario(payload), JobOp::SolveScenario)
                }
                protocol::OP_SOLVE_BATCH => Msg::Batch(BatchSolveRequest::decode(payload)),
                other => Msg::Unknown(other),
            }
        };
        conn.ring.consume(total);
        let seq = conn.alloc_seq();
        match msg {
            Msg::Ping(echo) => {
                conn.enqueue(seq, protocol::frame_bytes(protocol::OP_PONG, &echo));
            }
            Msg::Stats => {
                conn.enqueue(
                    seq,
                    protocol::frame_bytes(protocol::OP_STATS_OK, sh.stats_text().as_bytes()),
                );
            }
            Msg::Shutdown(echo) => {
                sh.begin_shutdown();
                if sh.drained.load(Ordering::SeqCst) {
                    conn.enqueue(seq, protocol::frame_bytes(protocol::OP_SHUTDOWN_ACK, &echo));
                    conn.close_after_flush = true;
                } else {
                    // Owed only once the drain completes; the drained sweep
                    // releases it at this seq so it stays ordered behind
                    // responses to earlier pipelined requests.
                    conn.parked_acks.push((seq, echo));
                }
            }
            Msg::Unknown(op) => {
                sh.count_protocol_error();
                let payload =
                    protocol::encode_error(ErrorCode::UnknownOpcode, &format!("opcode {op:#04x}"));
                conn.enqueue(seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
            }
            Msg::Solve(Err(e), _) => {
                sh.count_protocol_error();
                let payload = protocol::encode_error(ErrorCode::BadRequest, &e);
                conn.enqueue(seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
            }
            Msg::Batch(Err(e)) => {
                sh.count_protocol_error();
                let payload = protocol::encode_error(ErrorCode::BadRequest, &e);
                conn.enqueue(seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
            }
            Msg::Solve(Ok(req), op) => {
                if let Some(d) = route(sh, shard_id, token, conn, seq, vec![req], op) {
                    return Some(d);
                }
            }
            Msg::Batch(Ok(batch)) => {
                if let Some(d) = route(sh, shard_id, token, conn, seq, batch.reqs, JobOp::Batch) {
                    return Some(d);
                }
            }
        }
    }
}

/// Read-and-parse pump for one connection. With `fill == false` only the
/// bytes already in the ring are parsed (adoption replay; the socket's
/// own backlog re-arms via level-triggered epoll).
fn drive_conn(
    sh: &Shared,
    shard_id: usize,
    token: u64,
    conn: &mut Conn,
    fill: bool,
) -> Directive {
    loop {
        if let Some(d) = parse_available(sh, shard_id, token, conn) {
            return d;
        }
        if !fill || conn.close_after_flush {
            return Directive::Keep;
        }
        match conn.ring.fill_from(&mut conn.stream) {
            // EOF mid-frame is a protocol violation; EOF at a frame
            // boundary is a clean close.
            Ok(0) => {
                return Directive::Close {
                    truncated: !conn.ring.is_empty(),
                }
            }
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Directive::Keep,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Directive::Close { truncated: false },
        }
    }
}

/// Drain every accepted-but-unassigned connection off the listener and
/// deal it to a shard round-robin.
fn accept_ready(
    sh: &Arc<Shared>,
    shard_id: usize,
    listener: &Option<TcpListener>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    rr_next: &mut usize,
) {
    let Some(l) = listener else { return };
    let shard = &sh.shards[shard_id];
    loop {
        match l.accept() {
            Ok((stream, _)) => {
                if sh.shutting_down.load(Ordering::SeqCst) {
                    continue; // dropped: the peer sees a reset, as it would racing the old accept-loop exit
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let nshards = sh.shards.len();
                let target = *rr_next % nshards;
                *rr_next += 1;
                let conn = Conn::new(stream);
                if target == shard_id {
                    register(shard, conns, next_token, conn);
                } else {
                    sh.shards[target].send(ShardMsg::Adopt {
                        conn: Box::new(conn),
                        pending: None,
                        migrated: false,
                    });
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Apply every message in the shard's inbox: adoptions register (and
/// replay any ring residue), completions enter their connection's ordered
/// outbox and flush opportunistically.
fn drain_inbox(
    sh: &Arc<Shared>,
    shard_id: usize,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    let shard = &sh.shards[shard_id];
    for msg in shard.take_inbox() {
        match msg {
            ShardMsg::Adopt {
                conn,
                pending,
                migrated,
            } => {
                let Some(token) = register(shard, conns, next_token, *conn) else {
                    continue;
                };
                if migrated {
                    shard.counters.adopted.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(p) = pending {
                    if let Err((code, msg)) = sh.admit(shard_id, token, p.seq, p.reqs, p.op) {
                        let payload = protocol::encode_error(code, &msg);
                        let conn = conns.get_mut(&token).expect("just registered");
                        conn.enqueue(p.seq, protocol::frame_bytes(protocol::OP_ERROR, &payload));
                    }
                }
                let d = {
                    let conn = conns.get_mut(&token).expect("just registered");
                    drive_conn(sh, shard_id, token, conn, false)
                };
                apply(sh, shard_id, conns, token, d);
            }
            ShardMsg::Complete { conn: token, seq, frame } => {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.enqueue(seq, frame);
                    if let After::Drop = settle(shard, token, conn) {
                        close_conn(sh, shard, conns, token, false);
                    }
                }
                // else: the connection died before its solve finished; the
                // result is dropped, exactly like the old dead-reply-channel
                // path.
            }
        }
    }
}

/// The shard's event loop (one thread per shard). Owns the poller, every
/// connection assigned to this shard, and (shard 0) the listener.
pub(crate) fn event_loop(sh: Arc<Shared>, shard_id: usize, listener: Option<TcpListener>) {
    let shard = &sh.shards[shard_id];
    shard
        .poller
        .add(shard.waker.fd(), TOK_WAKER, Interest::READABLE)
        .expect("register shard waker");
    let mut listener = listener;
    if let Some(l) = &listener {
        shard
            .poller
            .add(l.as_raw_fd(), TOK_LISTENER, Interest::READABLE)
            .expect("register listener");
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = TOK_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    let mut rr_next: usize = 0;
    let mut grace: Option<Instant> = None;

    loop {
        // Block indefinitely in steady state; once drained, poll on a short
        // tick so straggling flushes and the grace deadline make progress.
        let timeout = if sh.drained.load(Ordering::SeqCst) {
            Some(Duration::from_millis(25))
        } else {
            None
        };
        if shard.poller.wait(&mut events, timeout).is_err() {
            break;
        }
        shard.counters.wakeups.fetch_add(1, Ordering::Relaxed);

        for &ev in &events {
            match ev.token {
                TOK_WAKER => shard.waker.drain(),
                TOK_LISTENER => {
                    accept_ready(&sh, shard_id, &listener, &mut conns, &mut next_token, &mut rr_next)
                }
                token => {
                    let d = {
                        let Some(conn) = conns.get_mut(&token) else {
                            continue;
                        };
                        if ev.writable && conn.try_flush().is_err() {
                            Directive::Close { truncated: false }
                        } else if ev.readable {
                            drive_conn(&sh, shard_id, token, conn, true)
                        } else {
                            Directive::Keep
                        }
                    };
                    apply(&sh, shard_id, &mut conns, token, d);
                }
            }
        }

        drain_inbox(&sh, shard_id, &mut conns, &mut next_token);

        if sh.shutting_down.load(Ordering::SeqCst) {
            if let Some(l) = listener.take() {
                // Stop accepting the moment shutdown begins; backlogged
                // connections are reset, matching the old accept-loop exit.
                let _ = shard.poller.remove(l.as_raw_fd());
            }
        }

        if sh.drained.load(Ordering::SeqCst) {
            // Completions posted just before `drained` became visible may
            // still sit in the inbox — apply them before closing out.
            drain_inbox(&sh, shard_id, &mut conns, &mut next_token);
            let deadline = *grace.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).expect("token just listed");
                for (seq, echo) in std::mem::take(&mut conn.parked_acks) {
                    conn.enqueue(
                        seq,
                        protocol::frame_bytes(protocol::OP_SHUTDOWN_ACK, &echo),
                    );
                }
                conn.close_after_flush = true;
                if let After::Drop = settle(shard, token, conn) {
                    close_conn(&sh, shard, &mut conns, token, false);
                }
            }
            if conns.is_empty() || Instant::now() >= deadline {
                break;
            }
        }
    }
}
