//! `polymg-cli serve` / `polymg-cli loadgen` entry points.
//!
//! ```text
//! polymg-cli serve   [--addr H:P | --port N] [--port-file PATH]
//!                    [--shards N] [--workers N] [--qos-weight N]
//!                    [--queue-cap N] [--tenant-cap N]
//!                    [--engine-threads N] [--tuned FILE]
//!                    [--tune-online] [--tune-budget N] [--tune-seed N]
//!                    [--coalesce-window-ms N] [--max-batch N]
//!                    [--fast-math] [--no-simd]
//!                    [--chaos-seed N] [--chaos-rate R] [--profile OUT.json]
//!
//! polymg-cli loadgen [--addr H:P | --port N | --port-file PATH]
//!                    [--connections N] [--requests N] [--tenants N]
//!                    [--retries N] [--batch N] [--idle N]
//!                    [--scenario NAME[,NAME…]] [--mixed-precision]
//!                    [--fast-math] [--no-simd]
//!                    [--no-shutdown] [-o OUT.json]
//!
//! polymg-cli stats   [--addr H:P | --port N | --port-file PATH]
//!                    [--shutdown]
//! ```
//!
//! `--tune-online` starts the background evolutionary tuner (DESIGN.md
//! §17): trials run only on idle capacity, winners land in the `--tuned`
//! FILE (which then need not exist yet — it is created on the first
//! winner). `--tune-budget` caps trials per pipeline fingerprint (0 = the
//! rank default, 25% of the §3.2.4 sweep); `--tune-seed` fixes the search
//! decision stream. `stats` prints the live `key value` counter text (one
//! OP_STATS round-trip; `--shutdown` drains the server afterwards) — the
//! ci gate polls it to wait for tuner trials without killing the server.
//!
//! `--fast-math` / `--no-simd` select the server's kernel tier (see
//! `DESIGN.md` §16). Loadgen takes the same flags because its verification
//! is bitwise: pass to loadgen exactly what the server was started with so
//! the in-process reference solves run the same tier.
//!
//! `--scenario NAME` (repeatable, or comma-separated: `varcoef`, `fmg`,
//! `rbgs`, `chebyshev`, `constant`) appends scenario requests to the load
//! mix — these ride the extended `SOLVE_SCENARIO` frame, carrying the
//! coefficient grid over the wire for `varcoef`. `--mixed-precision` adds
//! a constant-coefficient item that opts into the f32 smoothing tier (see
//! DESIGN.md §18). Both are verified bitwise like every other response.
//!
//! `serve` blocks until a client sends the drain-and-stop frame (which
//! `loadgen` does by default when the run ends), then writes the profile
//! JSON — request spans, queue-wait spans, server counters, plan-cache
//! counters — if `--profile` was given. `loadgen` exits non-zero unless the
//! run was clean: every response bitwise-verified or a typed error frame.

use std::path::Path;

use gmg_trace::Trace;
use polymg::{ChaosOptions, Scenario, TunedStore};

use crate::loadgen::{self, LoadgenOptions};
use crate::server::{self, summarize, ServerConfig};
use crate::tuner::TunerConfig;

fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Resolve `--addr`/`--port`/`--port-file` style arguments to `host:port`.
fn resolve_addr(
    addr: Option<String>,
    port: Option<u16>,
    port_file: Option<&str>,
) -> Result<String, String> {
    if let Some(a) = addr {
        return Ok(a);
    }
    if let Some(p) = port {
        return Ok(format!("127.0.0.1:{p}"));
    }
    if let Some(pf) = port_file {
        let text = std::fs::read_to_string(pf)
            .map_err(|e| format!("reading port file {pf} failed: {e}"))?;
        let port: u16 = text
            .trim()
            .parse()
            .map_err(|_| format!("port file {pf} does not contain a port"))?;
        return Ok(format!("127.0.0.1:{port}"));
    }
    Err("no server address: pass --addr, --port or --port-file".to_string())
}

/// `polymg-cli serve …` — returns the process exit code.
pub fn serve_main(args: &[String]) -> i32 {
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_rate = 0.01f64;
    let mut tuned_path: Option<String> = None;
    let mut tune_online = false;
    let mut tuner_cfg = TunerConfig::default();

    let mut i = 0;
    while i < args.len() {
        let r: Result<(), String> = (|| {
            match args[i].as_str() {
                "--addr" => cfg.addr = flag_value(args, &mut i, "--addr")?.to_string(),
                "--port" => {
                    let p: u16 = flag_value(args, &mut i, "--port")?
                        .parse()
                        .map_err(|_| "--port needs a number".to_string())?;
                    cfg.addr = format!("127.0.0.1:{p}");
                }
                "--port-file" => {
                    port_file = Some(flag_value(args, &mut i, "--port-file")?.to_string())
                }
                "--shards" => {
                    cfg.shards = flag_value(args, &mut i, "--shards")?
                        .parse()
                        .map_err(|_| "--shards needs a number".to_string())?
                }
                "--workers" => {
                    cfg.workers = flag_value(args, &mut i, "--workers")?
                        .parse()
                        .map_err(|_| "--workers needs a number".to_string())?
                }
                "--qos-weight" => {
                    cfg.qos_weight = flag_value(args, &mut i, "--qos-weight")?
                        .parse()
                        .map_err(|_| "--qos-weight needs a number".to_string())?
                }
                "--queue-cap" => {
                    cfg.queue_capacity = flag_value(args, &mut i, "--queue-cap")?
                        .parse()
                        .map_err(|_| "--queue-cap needs a number".to_string())?
                }
                "--tenant-cap" => {
                    cfg.tenant_cap = flag_value(args, &mut i, "--tenant-cap")?
                        .parse()
                        .map_err(|_| "--tenant-cap needs a number".to_string())?
                }
                "--engine-threads" => {
                    cfg.engine_threads = flag_value(args, &mut i, "--engine-threads")?
                        .parse()
                        .map_err(|_| "--engine-threads needs a number".to_string())?
                }
                "--coalesce-window-ms" => {
                    // 0 is meaningful: opportunistic drain with no waiting.
                    let ms: u64 = flag_value(args, &mut i, "--coalesce-window-ms")?
                        .parse()
                        .map_err(|_| "--coalesce-window-ms needs a number".to_string())?;
                    cfg.coalesce_window = Some(std::time::Duration::from_millis(ms));
                }
                "--max-batch" => {
                    cfg.max_batch = flag_value(args, &mut i, "--max-batch")?
                        .parse()
                        .map_err(|_| "--max-batch needs a number".to_string())?
                }
                "--tuned" => {
                    // Loading is deferred past the flag loop: with
                    // --tune-online a missing file is fine (the tuner
                    // creates it), without it is still an error.
                    tuned_path = Some(flag_value(args, &mut i, "--tuned")?.to_string());
                }
                "--tune-online" => tune_online = true,
                "--tune-budget" => {
                    tuner_cfg.budget = flag_value(args, &mut i, "--tune-budget")?
                        .parse()
                        .map_err(|_| "--tune-budget needs a number".to_string())?
                }
                "--tune-seed" => {
                    tuner_cfg.seed = flag_value(args, &mut i, "--tune-seed")?
                        .parse()
                        .map_err(|_| "--tune-seed needs a number".to_string())?
                }
                "--fast-math" => cfg.fast_math = true,
                "--no-simd" => cfg.simd = false,
                "--chaos-seed" => {
                    chaos_seed = Some(
                        flag_value(args, &mut i, "--chaos-seed")?
                            .parse()
                            .map_err(|_| "--chaos-seed needs a number".to_string())?,
                    )
                }
                "--chaos-rate" => {
                    chaos_rate = flag_value(args, &mut i, "--chaos-rate")?
                        .parse()
                        .map_err(|_| "--chaos-rate needs a number".to_string())?
                }
                "--profile" => profile = Some(flag_value(args, &mut i, "--profile")?.to_string()),
                other => return Err(format!("unknown flag '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("serve: {e}");
            return 2;
        }
        i += 1;
    }
    cfg.chaos = chaos_seed.map(|s| ChaosOptions::new(s, chaos_rate));
    if let Some(path) = &tuned_path {
        if Path::new(path).exists() {
            match TunedStore::load(Path::new(path)) {
                Ok(store) => cfg.tuned = Some(store),
                Err(e) => {
                    eprintln!("serve: loading {path} failed: {e}");
                    return 2;
                }
            }
        } else if !tune_online {
            eprintln!("serve: loading {path} failed: no such file (use --tune-online to grow one)");
            return 2;
        }
    }
    if tune_online {
        tuner_cfg.store_path = tuned_path.as_ref().map(std::path::PathBuf::from);
        cfg.tuner = Some(tuner_cfg);
    }
    if profile.is_some() {
        let t = Trace::enabled();
        t.set_meta("tool", "gmg-server");
        cfg.trace = t;
    }

    let trace = cfg.trace.clone();
    let handle = match server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return 1;
        }
    };
    eprintln!("gmg-server listening on {}", handle.addr());
    if let Some(pf) = port_file {
        // Written after bind so a waiting client never reads a stale port.
        if let Err(e) = std::fs::write(&pf, format!("{}\n", handle.addr().port())) {
            eprintln!("serve: writing port file failed: {e}");
            return 1;
        }
    }

    let snap = handle.join();
    let _ = summarize(&snap, &mut std::io::stderr());
    if let Some(path) = profile {
        match trace.report() {
            Some(rep) => {
                if let Err(e) = std::fs::write(&path, rep.to_json()) {
                    eprintln!("serve: writing profile failed: {e}");
                    return 1;
                }
                eprintln!("wrote profile {path}");
            }
            None => eprintln!("gmg-trace built without `capture`; {path} not written"),
        }
    }
    0
}

/// `polymg-cli loadgen …` — returns the process exit code.
pub fn loadgen_main(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut port_file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut mixed = false;
    let mut opts = LoadgenOptions {
        // The CLI client drains the server when its run completes; tests
        // driving a shared in-process server opt out instead.
        shutdown: true,
        ..LoadgenOptions::default()
    };

    let mut i = 0;
    while i < args.len() {
        let r: Result<(), String> = (|| {
            match args[i].as_str() {
                "--addr" => addr = Some(flag_value(args, &mut i, "--addr")?.to_string()),
                "--port" => {
                    port = Some(
                        flag_value(args, &mut i, "--port")?
                            .parse()
                            .map_err(|_| "--port needs a number".to_string())?,
                    )
                }
                "--port-file" => {
                    port_file = Some(flag_value(args, &mut i, "--port-file")?.to_string())
                }
                "--connections" => {
                    opts.connections = flag_value(args, &mut i, "--connections")?
                        .parse()
                        .map_err(|_| "--connections needs a number".to_string())?
                }
                "--requests" => {
                    opts.requests_per_conn = flag_value(args, &mut i, "--requests")?
                        .parse()
                        .map_err(|_| "--requests needs a number".to_string())?
                }
                "--tenants" => {
                    opts.tenants = flag_value(args, &mut i, "--tenants")?
                        .parse()
                        .map_err(|_| "--tenants needs a number".to_string())?
                }
                "--retries" => {
                    opts.retries = flag_value(args, &mut i, "--retries")?
                        .parse()
                        .map_err(|_| "--retries needs a number".to_string())?
                }
                "--batch" => {
                    opts.batch = flag_value(args, &mut i, "--batch")?
                        .parse()
                        .map_err(|_| "--batch needs a number".to_string())?
                }
                "--idle" => {
                    opts.idle = flag_value(args, &mut i, "--idle")?
                        .parse()
                        .map_err(|_| "--idle needs a number".to_string())?
                }
                "--backoff-seed" => {
                    opts.backoff_seed = flag_value(args, &mut i, "--backoff-seed")?
                        .parse()
                        .map_err(|_| "--backoff-seed needs a number".to_string())?
                }
                "--scenario" => {
                    for name in flag_value(args, &mut i, "--scenario")?.split(',') {
                        scenarios.push(Scenario::parse(name.trim()).map_err(|e| e.to_string())?);
                    }
                }
                "--mixed-precision" => mixed = true,
                "--fast-math" => opts.fast_math = true,
                "--no-simd" => opts.simd = false,
                "--no-shutdown" => opts.shutdown = false,
                "--shutdown" => opts.shutdown = true,
                "-o" => out = Some(flag_value(args, &mut i, "-o")?.to_string()),
                other => return Err(format!("unknown flag '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("loadgen: {e}");
            return 2;
        }
        i += 1;
    }
    opts.addr = match resolve_addr(addr, port, port_file.as_deref()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    if !scenarios.is_empty() || mixed {
        opts.mix.extend(loadgen::scenario_mix(&scenarios, mixed));
    }

    let report = match loadgen::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 1;
        }
    };
    eprintln!("{}", report.summary());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("loadgen: writing {path} failed: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }
    if report.is_clean() {
        0
    } else {
        eprintln!("loadgen: run was NOT clean");
        1
    }
}

/// `polymg-cli stats …` — one OP_STATS round-trip, printing the server's
/// live `key value` counter text to stdout (scripts grep it; the ci gate
/// polls it to wait for online-tuner trials). `--shutdown` additionally
/// drains and stops the server before returning.
pub fn stats_main(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut port_file: Option<String> = None;
    let mut shutdown = false;

    let mut i = 0;
    while i < args.len() {
        let r: Result<(), String> = (|| {
            match args[i].as_str() {
                "--addr" => addr = Some(flag_value(args, &mut i, "--addr")?.to_string()),
                "--port" => {
                    port = Some(
                        flag_value(args, &mut i, "--port")?
                            .parse()
                            .map_err(|_| "--port needs a number".to_string())?,
                    )
                }
                "--port-file" => {
                    port_file = Some(flag_value(args, &mut i, "--port-file")?.to_string())
                }
                "--shutdown" => shutdown = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("stats: {e}");
            return 2;
        }
        i += 1;
    }
    let addr = match resolve_addr(addr, port, port_file.as_deref()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stats: {e}");
            return 2;
        }
    };
    let run = || -> Result<(), String> {
        let mut s = std::net::TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        crate::protocol::write_frame(&mut s, crate::protocol::OP_STATS, b"")
            .map_err(|e| format!("send: {e}"))?;
        let frame = crate::protocol::read_frame(&mut s).map_err(|e| format!("recv: {e:?}"))?;
        if frame.opcode != crate::protocol::OP_STATS_OK {
            return Err(format!("unexpected response opcode {:#04x}", frame.opcode));
        }
        print!("{}", String::from_utf8_lossy(&frame.payload));
        if shutdown {
            crate::protocol::write_frame(&mut s, crate::protocol::OP_SHUTDOWN, b"")
                .map_err(|e| format!("send shutdown: {e}"))?;
            let _ = crate::protocol::read_frame(&mut s); // ack after drain
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("stats: {e}");
            1
        }
    }
}
