//! Online evolutionary autotuning on idle worker capacity.
//!
//! A dedicated `gmg-server-tuner` thread closes the §3.2.4 loop in
//! production: workers sample every successful solve into a per-pipeline-
//! fingerprint mailbox, the tuner opens a seeded [`EvoSearch`] per
//! fingerprint, and measures candidate schedules on its own throwaway
//! engines — *never* on a live session, and only when the server is
//! completely idle (no queued and no in-flight solves). Winners are
//! inserted into the shared [`TunedStore`]: because tuned options feed the
//! session key, the very next acquire of that shape compiles a fresh
//! session with the winning schedule, and `--tuned FILE` persists it for
//! the next process.
//!
//! Safety properties (asserted by `tests/online_tuning.rs` and the ci.sh
//! gate):
//!
//! - **Idle-capacity only.** A trial starts only when every shard's QoS
//!   queues are empty and `inflight == 0`; otherwise the tuner backs off
//!   (`deferred_busy`). `trial_queue_peak` records the queue depth observed
//!   at each trial start and must stay 0. Trials never touch tenant
//!   budgets or admission queues.
//! - **Bitwise-unchanged for clients.** Candidates vary tile sizes,
//!   grouping limit and the smoother time band — schedule-only knobs — and
//!   the scalar/lane-safe kernel tiers, which are bitwise-identical. The
//!   reassociating fast-math tier enters the space only when the server
//!   itself runs `--fast-math` (its clients already verify against a
//!   fast-math reference).
//! - **Fault isolation.** A trial that hits a typed `ExecError` (chaos
//!   faults included) is retried once, then discarded from the search
//!   (`discarded_faulted`); it never panics, and a post-trial pool check
//!   (`live_bytes == 0`) counts leaks into `leaked_trials`.
//! - **Determinism.** Search decisions derive from `--tune-seed` mixed
//!   with the pipeline fingerprint; only the measured metrics are
//!   nondeterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gmg_multigrid::config::MgConfig;
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::{setup_poisson, DslRunner};
use gmg_trace::{Trace, TunerSnapshot};
use polymg::autotune::search::{EvoSearch, SearchParams};
use polymg::autotune::{TuneConfig, TuneSource, TunedEntry, TunedStore};
use polymg::{ChaosOptions, PipelineOptions, Variant};

use crate::server::Shared;

/// Online-tuner construction options (`--tune-online` and friends).
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Trial budget per pipeline fingerprint. 0 means the rank default:
    /// 25% of the §3.2.4 sweep (20 trials in 2-D, 33 in 3-D).
    pub budget: usize,
    /// Seed of the search decision stream (mixed with each fingerprint).
    pub seed: u64,
    /// Where to persist winners (usually the `--tuned` path). `None` keeps
    /// the store in memory only.
    pub store_path: Option<PathBuf>,
    /// Cycles per trial measurement.
    pub trial_iters: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            budget: 0,
            seed: 0x5eed_0901,
            store_path: None,
            trial_iters: 2,
        }
    }
}

/// One live solve sampled by a worker: enough to rebuild the pipeline and
/// judge candidate schedules against the deployed default.
pub(crate) struct Observation {
    pub pfp: u64,
    pub cfg: MgConfig,
    pub variant: Variant,
}

/// Shared tuner state: the observation mailbox workers post into, the
/// winner store, and the witness counters the trace publishes.
pub struct Tuner {
    pub(crate) config: TunerConfig,
    pub(crate) store: Arc<Mutex<TunedStore>>,
    /// Engine knobs trials inherit from the server.
    engine_threads: usize,
    chaos: Option<ChaosOptions>,
    allow_fast_math: bool,
    inbox: Mutex<Vec<Observation>>,
    trials: AtomicU64,
    discarded_faulted: AtomicU64,
    pub(crate) deferred_busy: AtomicU64,
    winners: AtomicU64,
    fingerprints: AtomicU64,
    observed: AtomicU64,
    trial_queue_peak: AtomicU64,
    leaked_trials: AtomicU64,
}

impl Tuner {
    pub(crate) fn new(
        config: TunerConfig,
        store: Arc<Mutex<TunedStore>>,
        engine_threads: usize,
        chaos: Option<ChaosOptions>,
        allow_fast_math: bool,
    ) -> Tuner {
        Tuner {
            config,
            store,
            engine_threads: engine_threads.max(1),
            chaos,
            allow_fast_math,
            inbox: Mutex::new(Vec::new()),
            trials: AtomicU64::new(0),
            discarded_faulted: AtomicU64::new(0),
            deferred_busy: AtomicU64::new(0),
            winners: AtomicU64::new(0),
            fingerprints: AtomicU64::new(0),
            observed: AtomicU64::new(0),
            trial_queue_peak: AtomicU64::new(0),
            leaked_trials: AtomicU64::new(0),
        }
    }

    /// Worker side: sample one successful solve (cheap — a push under a
    /// short lock; the tuner thread does everything else).
    pub(crate) fn observe(&self, obs: Observation) {
        self.observed.fetch_add(1, Ordering::Relaxed);
        self.inbox.lock().unwrap().push(obs);
    }

    fn take_inbox(&self) -> Vec<Observation> {
        std::mem::take(&mut *self.inbox.lock().unwrap())
    }

    pub fn snapshot(&self) -> TunerSnapshot {
        TunerSnapshot {
            trials: self.trials.load(Ordering::Relaxed),
            discarded_faulted: self.discarded_faulted.load(Ordering::Relaxed),
            deferred_busy: self.deferred_busy.load(Ordering::Relaxed),
            winners: self.winners.load(Ordering::Relaxed),
            fingerprints: self.fingerprints.load(Ordering::Relaxed),
            observed: self.observed.load(Ordering::Relaxed),
            trial_queue_peak: self.trial_queue_peak.load(Ordering::Relaxed),
            leaked_trials: self.leaked_trials.load(Ordering::Relaxed),
        }
    }

    fn persist(&self) {
        if let Some(path) = &self.config.store_path {
            let _ = self.store.lock().unwrap().save(path);
        }
    }
}

/// Per-fingerprint search state.
struct TuningState {
    cfg: MgConfig,
    variant: Variant,
    search: EvoSearch,
    seed: u64,
    /// Candidates already retried once after a fault (second fault ⇒
    /// permanent discard).
    retried: BTreeSet<String>,
    done: bool,
}

/// splitmix64 finalizer: derive a per-fingerprint search seed from the
/// operator-chosen `--tune-seed`.
fn mix_seed(seed: u64, pfp: u64) -> u64 {
    let mut z = seed ^ pfp.rotate_left(17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// All shards idle: nothing queued, nothing executing. The gate a trial
/// must pass to start.
fn server_idle(sh: &Shared) -> bool {
    sh.inflight_now() == 0 && sh.shards.iter().all(|s| s.queues.lock().unwrap().len() == 0)
}

fn total_queued(sh: &Shared) -> u64 {
    sh.shards
        .iter()
        .map(|s| s.queues.lock().unwrap().len() as u64)
        .sum()
}

/// One measured trial on a throwaway engine: compile the candidate
/// schedule (uncached — trial plans must not churn the global LRU plan
/// cache), run `iters` cycles on a synthetic Poisson problem, and return
/// the per-cycle metric in nanoseconds, preferring the engine's per-op
/// spans over wall time. `Err` carries the typed failure text.
fn run_trial(
    cfg: &MgConfig,
    variant: Variant,
    cand: &TuneConfig,
    threads: usize,
    chaos: Option<ChaosOptions>,
    iters: usize,
) -> Result<(f64, u64), String> {
    let pipeline = build_cycle_pipeline(cfg);
    let mut opts = cand.apply(&PipelineOptions::for_variant(variant, cfg.ndims));
    opts.threads = threads;
    opts.chaos = chaos;
    let plan = polymg::compile(&pipeline, &gmg_ir::ParamBindings::new(), opts)
        .map_err(|errs| format!("compile: {}", errs.join("; ")))?;
    let mut runner = DslRunner::from_plan(plan, cfg);
    runner.engine_mut().set_chaos(chaos);
    let trace = Trace::enabled();
    runner.engine_mut().set_trace(trace.clone());
    let (mut v, f, _) = setup_poisson(cfg);
    let iters = iters.max(1);
    let t0 = Instant::now();
    for i in 0..iters {
        if let Err(e) = runner.cycle_with_stats(&mut v, &f) {
            let live = runner.engine_mut().pool_stats().live_bytes as u64;
            return Err(format!("cycle {i}: {e} (live_bytes {live})"));
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    // Per-op spans (the engine attributes time to each schedule op) are the
    // preferred metric: immune to setup noise around the cycle loop. Fall
    // back to wall time if span capture is compiled out.
    let metric = match trace.report() {
        Some(r) if !r.ops.is_empty() => {
            r.ops.iter().map(|o| o.ns as f64).sum::<f64>() / iters as f64
        }
        _ => wall_ns / iters as f64,
    };
    let live = runner.engine_mut().pool_stats().live_bytes as u64;
    Ok((metric, live))
}

/// The tuner thread body. Exits (persisting the store) as soon as the
/// server begins shutting down.
pub(crate) fn tuner_loop(sh: Arc<Shared>) {
    let Some(tuner) = sh.tuner_handle() else {
        return;
    };
    let mut states: BTreeMap<u64, TuningState> = BTreeMap::new();
    while !sh.is_shutting_down() {
        for obs in tuner.take_inbox() {
            if states.contains_key(&obs.pfp) {
                continue;
            }
            let seed = mix_seed(tuner.config.seed, obs.pfp);
            let Ok(mut params) = SearchParams::for_rank(obs.cfg.ndims) else {
                continue;
            };
            params = params.with_seed(seed).with_fast_math(tuner.allow_fast_math);
            if tuner.config.budget > 0 {
                params = params.with_budget(tuner.config.budget);
            }
            let Ok(search) = EvoSearch::new(obs.cfg.ndims, params) else {
                continue;
            };
            states.insert(
                obs.pfp,
                TuningState {
                    cfg: obs.cfg,
                    variant: obs.variant,
                    search,
                    seed,
                    retried: BTreeSet::new(),
                    done: false,
                },
            );
            tuner.fingerprints.fetch_add(1, Ordering::Relaxed);
        }

        let Some((&pfp, st)) = states.iter_mut().find(|(_, s)| !s.done) else {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };

        // Idle-capacity gate: no trial while anything is queued or in
        // flight. Back off briefly and re-check (shutdown included).
        if !server_idle(&sh) {
            tuner.deferred_busy.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }

        let Some(cand) = st.search.next_candidate() else {
            finish(&tuner, pfp, st);
            continue;
        };
        tuner
            .trial_queue_peak
            .fetch_max(total_queued(&sh), Ordering::Relaxed);
        match run_trial(
            &st.cfg,
            st.variant,
            &cand,
            tuner.engine_threads,
            tuner.chaos,
            tuner.config.trial_iters,
        ) {
            Ok((metric_ns, live_bytes)) => {
                if live_bytes != 0 {
                    tuner.leaked_trials.fetch_add(1, Ordering::Relaxed);
                }
                tuner.trials.fetch_add(1, Ordering::Relaxed);
                st.search.report(&cand, metric_ns);
            }
            Err(_e) => {
                // Typed failure (chaos fault, compile rejection): the
                // sample is discarded — one retry in case the fault was
                // transient, then the configuration is dropped for good.
                tuner.discarded_faulted.fetch_add(1, Ordering::Relaxed);
                if st.retried.insert(format!("{cand:?}")) {
                    st.search.requeue(&cand);
                } else {
                    st.search.discard(&cand);
                }
            }
        }
        if st.search.finished() {
            finish(&tuner, pfp, st);
        }
    }
    tuner.persist();
}

/// Close out one fingerprint's search: record its winner (the trajectory
/// minimum — gen-0 measures the deployed default first, so the winner is
/// never slower than default under the trial metric) and persist.
fn finish(tuner: &Tuner, pfp: u64, st: &mut TuningState) {
    st.done = true;
    let Some(best) = st.search.best() else {
        return; // every trial faulted — nothing trustworthy to record
    };
    tuner.store.lock().unwrap().record_entry(TunedEntry {
        fingerprint: pfp,
        ndims: st.cfg.ndims,
        config: best.config,
        metric: best.metric * 1e-9,
        source: TuneSource::Online,
        evals: st.search.evals() as u64,
        seed: st.seed,
    });
    tuner.winners.fetch_add(1, Ordering::Relaxed);
    tuner.persist();
}
