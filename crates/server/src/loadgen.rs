//! Load-generating client with end-to-end bitwise verification.
//!
//! For every item in the request mix the generator first computes the
//! *expected* answer with a direct in-process [`DslRunner`] — the same
//! compiled-plan path the server uses, no network involved. It then drives
//! N concurrent connections of mixed 2-D/3-D shapes and cycle types against
//! the server and compares every `SOLVE_OK` response against the expected
//! grid with `f64::to_bits` equality. Because the engine is
//! bitwise-deterministic (regardless of thread count, tiling, or pooled
//! storage), *any* discrepancy — one ULP anywhere in the grid — is a
//! serving bug, not noise.
//!
//! With `batch >= 2` the mix also carries `SOLVE_BATCH` frames: each mix
//! item gets `batch` RHS-perturbed variants, every one independently
//! reference-solved, and the batched response is verified per grid. Batch
//! frames alternate with same-shape singles so a coalescing server sees
//! mergeable traffic. Counters are *grid*-granular (`requests`, `ok`,
//! `verify_failures`, `dropped`, `exec_error_grids` all count grids);
//! `exec_error_frames` and `batch_frames` count protocol frames.
//!
//! Typed error frames are part of the contract, not failures: `QueueFull`
//! and `TenantLimit` are retried with capped exponential backoff
//! ([`retry_backoff_ms`]), `ExecFailed` (chaos faults) is counted and
//! accepted. Anything else unexpected fails the run. Two latency
//! distributions are kept apart: *service* latency spans one
//! request/response exchange on the wire, *end-to-end* latency spans the
//! whole logical request including backpressure retries and backoff sleeps.
//! Conflating them (the old single `latency_ns`) let retry sleeps masquerade
//! as server time and inflated the published p99.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::scenario::{coeff_field, scenario_runner, ScenarioSpec};
use gmg_multigrid::solver::setup_poisson;
use polymg::{PipelineOptions, Scenario, Variant};

use crate::protocol::{self, BatchSolveRequest, ErrorCode, SolveRequest};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Backoff (milliseconds) before retry number `attempt` (0-based) of a
/// backpressured request: exponential from 2 ms doubling to a 64 ms cap,
/// plus seeded jitter of up to half the base so concurrent clients
/// desynchronise instead of thundering back in lockstep.
///
/// The jitter is strictly smaller than the doubling gap, so below the cap
/// the schedule is monotone for any seed: max(attempt) = 1.5·base <
/// 2·base = min(attempt+1). The old schedule `(1 + attempt % 8) * 2`
/// applied `%` before `+` (precedence bug) and cycled 2–16 ms forever —
/// retry 100 slept *less* than retry 7.
pub fn retry_backoff_ms(attempt: usize, seed: u64) -> u64 {
    let base = 2u64 << attempt.min(5) as u64;
    let jitter = splitmix64(seed ^ (attempt as u64).wrapping_mul(0x9e37)) % (base / 2).max(1);
    base + jitter
}

/// One entry of the request mix.
#[derive(Clone)]
pub struct MixItem {
    pub cfg: MgConfig,
    pub variant: Variant,
    /// Multigrid cycles per request.
    pub iters: u16,
    /// Problem scenario (anything but [`Scenario::Constant`] — or a
    /// mixed-precision opt-in — rides the extended `SOLVE_SCENARIO` frame).
    pub scenario: Scenario,
    /// Request the mixed-precision (f32) smoothing tier.
    pub mixed: bool,
}

impl MixItem {
    /// A constant-coefficient item (the legacy `SOLVE` shape).
    pub fn new(cfg: MgConfig, variant: Variant, iters: u16) -> MixItem {
        MixItem {
            cfg,
            variant,
            iters,
            scenario: Scenario::Constant,
            mixed: false,
        }
    }

    /// Switch the item to a scenario (`varcoef` items generate and ship the
    /// canonical [`coeff_field`] grid).
    pub fn with_scenario(mut self, scenario: Scenario) -> MixItem {
        self.scenario = scenario;
        self
    }

    /// Opt into mixed-precision smoothing.
    pub fn with_mixed(mut self) -> MixItem {
        self.mixed = true;
        self
    }

    /// Does this item need the extended `SOLVE_SCENARIO` frame?
    fn scenario_frame(&self) -> bool {
        self.scenario != Scenario::Constant || self.mixed
    }
}

/// The default mix: small 2-D and 3-D problems, V and W cycles, two
/// variants — enough shape diversity to exercise several sessions while
/// staying fast enough for CI.
pub fn default_mix() -> Vec<MixItem> {
    let mut v3 = MgConfig::new(3, 15, CycleType::V, SmoothSteps::s444());
    v3.levels = 3;
    let mut w3 = MgConfig::new(3, 15, CycleType::W, SmoothSteps::s1000());
    w3.levels = 3;
    vec![
        MixItem::new(
            MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444()),
            Variant::OptPlus,
            2,
        ),
        MixItem::new(
            MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()),
            Variant::Opt,
            2,
        ),
        MixItem::new(v3, Variant::OptPlus, 2),
        MixItem::new(w3, Variant::OptPlus, 1),
    ]
}

/// One mix item per requested scenario label, all on the same small 2-D
/// shape so scenario runs stay CI-fast. `constant` maps to the plain
/// legacy item; every other label (and `mixed == true`) produces extended
/// `SOLVE_SCENARIO` traffic.
pub fn scenario_mix(scenarios: &[Scenario], mixed: bool) -> Vec<MixItem> {
    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let mut mix: Vec<MixItem> = scenarios
        .iter()
        .map(|&sc| MixItem::new(cfg.clone(), Variant::OptPlus, 2).with_scenario(sc))
        .collect();
    if mixed {
        mix.push(MixItem::new(cfg, Variant::OptPlus, 2).with_mixed());
    }
    mix
}

/// Loadgen options.
pub struct LoadgenOptions {
    pub addr: String,
    pub connections: usize,
    pub requests_per_conn: usize,
    /// Tenant ids cycle over `0..tenants`.
    pub tenants: u32,
    /// Max retries for `QueueFull`/`TenantLimit` before counting a drop.
    pub retries: usize,
    /// Send a drain-and-stop frame once the load completes.
    pub shutdown: bool,
    /// Grids per `SOLVE_BATCH` frame; `0` or `1` disables batch frames.
    /// When enabled, every other request on a connection is a batch frame,
    /// the rest stay same-shape singles.
    pub batch: usize,
    /// Mostly-idle connections held open for the whole hot phase (`0`
    /// disables). Each is verified live with a `PING` at setup, and a
    /// churn thread keeps closing and reopening them round-robin while the
    /// solve load runs — the readiness-loop stress case: thousands of
    /// registered-but-quiet fds plus continuous accept traffic, none of
    /// which may cost a hot-path thread or widen solve tail latency.
    pub idle: usize,
    /// Seed for backoff jitter (mixed with the connection index).
    pub backoff_seed: u64,
    /// Kernel-tier knobs the *server under test* was started with. The
    /// reference solves mirror them: verification is bitwise, so the
    /// reference must run the exact same tier (`--fast-math` changes
    /// numerics; a default-tier reference would flag every response).
    pub simd: bool,
    pub fast_math: bool,
    pub mix: Vec<MixItem>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: String::new(),
            connections: 4,
            requests_per_conn: 8,
            tenants: 2,
            retries: 200,
            shutdown: false,
            batch: 0,
            idle: 0,
            backoff_seed: 0x676d675f6c67,
            simd: true,
            fast_math: false,
            mix: default_mix(),
        }
    }
}

/// Aggregated outcome of one loadgen run. `requests`, `ok`,
/// `verify_failures`, `dropped` and `exec_error_grids` count *grids* (a
/// batch frame of B grids contributes B); `exec_error_frames` and
/// `batch_frames` count protocol frames. For every run,
/// `ok + verify_failures + exec_error_grids + dropped + unexpected ==
/// requests`.
#[derive(Debug, Default)]
pub struct LoadgenReport {
    pub requests: u64,
    pub ok: u64,
    /// `SOLVE_OK`/`SOLVE_BATCH_OK` grids not bitwise-identical to the
    /// in-process reference. Must be zero for a healthy server.
    pub verify_failures: u64,
    /// Typed `ExecFailed` frames (injected chaos faults surface here).
    pub exec_error_frames: u64,
    /// Grids lost to `ExecFailed` frames (== frames for singles; a failed
    /// batch frame loses all its grids to the one error frame).
    pub exec_error_grids: u64,
    /// `SOLVE_BATCH` frames sent (not counting backpressure resends).
    pub batch_frames: u64,
    /// Grids dropped after exhausting backpressure retries.
    pub dropped: u64,
    /// Total backpressure retries performed.
    pub retries: u64,
    /// Responses that were neither solve-ok nor an accepted typed error.
    pub unexpected: u64,
    pub elapsed: Duration,
    /// Per-exchange service latency (write → response read) of verified
    /// frames, nanoseconds. Excludes retry sleeps by construction.
    pub service_ns: Vec<u64>,
    /// End-to-end latency of verified logical requests, including
    /// backpressure retries and backoff sleeps, nanoseconds.
    pub e2e_ns: Vec<u64>,
    /// Idle connections held open through the hot phase (0 = disabled).
    pub idle_conns: u64,
    /// Churn reconnects performed while the hot phase ran.
    pub idle_reconnects: u64,
    /// Connection-setup throughput of the churn thread (reconnects per
    /// second of churn wall time).
    pub setup_per_sec: f64,
    /// Connection-setup latency samples (TCP connect + PING round trip),
    /// nanoseconds — initial fill and churn reconnects together.
    pub setup_ns: Vec<u64>,
    /// Server counters fetched over `STATS` after the run.
    pub server_stats: Vec<(String, u64)>,
}

fn percentile(xs: &[u64], pct: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut xs = xs.to_vec();
    xs.sort_unstable();
    let rank = ((pct / 100.0) * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

fn latency_json(xs: &[u64]) -> String {
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        percentile(xs, 50.0),
        percentile(xs, 95.0),
        percentile(xs, 99.0),
        xs.iter().copied().max().unwrap_or(0)
    )
}

impl LoadgenReport {
    /// The run is clean when every response was bitwise-correct or a typed,
    /// accepted error.
    pub fn is_clean(&self) -> bool {
        self.verify_failures == 0 && self.unexpected == 0 && self.ok + self.exec_error_frames > 0
    }

    /// Service-latency percentile (the distribution that reflects the
    /// server, not client-side backoff sleeps).
    pub fn percentile_ns(&self, pct: f64) -> u64 {
        percentile(&self.service_ns, pct)
    }

    /// End-to-end latency percentile, retries and sleeps included.
    pub fn e2e_percentile_ns(&self, pct: f64) -> u64 {
        percentile(&self.e2e_ns, pct)
    }

    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"ok\": {},\n", self.ok));
        s.push_str(&format!(
            "  \"verify_failures\": {},\n",
            self.verify_failures
        ));
        s.push_str(&format!(
            "  \"exec_error_frames\": {},\n",
            self.exec_error_frames
        ));
        s.push_str(&format!(
            "  \"exec_error_grids\": {},\n",
            self.exec_error_grids
        ));
        s.push_str(&format!("  \"batch_frames\": {},\n", self.batch_frames));
        s.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!("  \"unexpected\": {},\n", self.unexpected));
        s.push_str(&format!(
            "  \"elapsed_seconds\": {},\n",
            self.elapsed.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"throughput_rps\": {},\n",
            self.throughput_rps()
        ));
        s.push_str(&format!(
            "  \"service_latency_ns\": {},\n",
            latency_json(&self.service_ns)
        ));
        s.push_str(&format!(
            "  \"e2e_latency_ns\": {},\n",
            latency_json(&self.e2e_ns)
        ));
        if self.idle_conns > 0 {
            s.push_str(&format!(
                "  \"idle\": {{\"connections\": {}, \"reconnects\": {}, \
                 \"setup_per_sec\": {}, \"setup_latency_ns\": {}}},\n",
                self.idle_conns,
                self.idle_reconnects,
                self.setup_per_sec,
                latency_json(&self.setup_ns)
            ));
        }
        s.push_str("  \"server\": {");
        for (i, (k, v)) in self.server_stats.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("}\n}\n");
        s
    }

    pub fn summary(&self) -> String {
        let mut s = format!(
            "loadgen: {} grids, {} ok ({} verify failures, {} exec-error frames / {} grids, \
             {} dropped, {} unexpected), {} batch frames, {} retries, {:.2} grids/s, \
             service p50 {:.2} ms / p95 {:.2} ms / p99 {:.2} ms, \
             e2e p50 {:.2} ms / p99 {:.2} ms",
            self.requests,
            self.ok,
            self.verify_failures,
            self.exec_error_frames,
            self.exec_error_grids,
            self.dropped,
            self.unexpected,
            self.batch_frames,
            self.retries,
            self.throughput_rps(),
            self.percentile_ns(50.0) as f64 * 1e-6,
            self.percentile_ns(95.0) as f64 * 1e-6,
            self.percentile_ns(99.0) as f64 * 1e-6,
            self.e2e_percentile_ns(50.0) as f64 * 1e-6,
            self.e2e_percentile_ns(99.0) as f64 * 1e-6,
        );
        if self.idle_conns > 0 {
            s.push_str(&format!(
                ", idle {} conns / {} reconnects ({:.1} setups/s, setup p99 {:.2} ms)",
                self.idle_conns,
                self.idle_reconnects,
                self.setup_per_sec,
                percentile(&self.setup_ns, 99.0) as f64 * 1e-6,
            ));
        }
        s
    }
}

/// One RHS-perturbed variant of a mix item, with its own reference answer.
struct BatchGrid {
    v0: Vec<f64>,
    f: Vec<f64>,
    bits: Vec<u64>,
}

/// The precomputed ground truth for one mix item.
struct Expected {
    item: MixItem,
    v0: Vec<f64>,
    f: Vec<f64>,
    bits: Vec<u64>,
    /// Coefficient grid shipped with every request of a `varcoef` item
    /// (empty otherwise).
    coeff: Vec<f64>,
    /// `batch` perturbed variants (empty when batch frames are disabled,
    /// and always for scenario items — `SOLVE_BATCH` is legacy-only).
    batch: Vec<BatchGrid>,
}

/// Run each mix item locally (through the same plan cache and engine the
/// server uses) to establish the bitwise-exact expected answer.
fn compute_expected(
    mix: &[MixItem],
    batch: usize,
    simd: bool,
    fast_math: bool,
) -> Result<Vec<Expected>, String> {
    mix.iter()
        .enumerate()
        .map(|(mi, item)| {
            let (v0, f, _) = setup_poisson(&item.cfg);
            let mut opts = PipelineOptions::for_variant(item.variant, item.cfg.ndims);
            opts.simd = simd;
            opts.fast_math = fast_math;
            let coeff = if item.scenario.needs_coeff() {
                coeff_field(&item.cfg)
            } else {
                Vec::new()
            };
            let spec = ScenarioSpec {
                scenario: item.scenario,
                mixed: item.mixed,
            };
            let mut runner = scenario_runner(
                &item.cfg,
                spec,
                opts,
                "loadgen-ref",
                (!coeff.is_empty()).then(|| coeff.clone()),
            )
            .map_err(|e| format!("reference compile failed: {e}"))?;
            let mut solve = |v0: &[f64], f: &[f64]| -> Result<Vec<u64>, String> {
                let mut v = v0.to_vec();
                for _ in 0..item.iters {
                    runner
                        .cycle_with_stats(&mut v, f)
                        .map_err(|e| format!("reference cycle failed: {e}"))?;
                }
                Ok(v.iter().map(|x| x.to_bits()).collect())
            };
            let bits = solve(&v0, &f)?;
            let mut grids = Vec::new();
            if batch >= 2 && !item.scenario_frame() {
                for b in 0..batch {
                    // distinct RHS per grid; both sides see identical bytes,
                    // so the perturbation itself needs no ghost-ring care
                    let mut fb = f.clone();
                    for (i, x) in fb.iter_mut().enumerate() {
                        let r = splitmix64((mi as u64) << 48 | (b as u64) << 32 | i as u64);
                        *x += (r % 1000) as f64 * 1e-6;
                    }
                    let bits = solve(&v0, &fb)?;
                    grids.push(BatchGrid {
                        v0: v0.clone(),
                        f: fb,
                        bits,
                    });
                }
            }
            Ok(Expected {
                item: item.clone(),
                v0,
                f,
                bits,
                coeff,
                batch: grids,
            })
        })
        .collect()
}

#[derive(Default)]
struct SharedCounts {
    requests: AtomicU64,
    ok: AtomicU64,
    verify_failures: AtomicU64,
    exec_error_frames: AtomicU64,
    exec_error_grids: AtomicU64,
    batch_frames: AtomicU64,
    dropped: AtomicU64,
    retries: AtomicU64,
    unexpected: AtomicU64,
}

/// Per-connection knobs (the subset of [`LoadgenOptions`] a client thread
/// needs).
#[derive(Clone)]
struct ConnOptions {
    addr: String,
    requests_per_conn: usize,
    tenants: u32,
    retries: usize,
    batch: usize,
    backoff_seed: u64,
}

/// Latency samples a connection thread collects.
#[derive(Default)]
struct Lats {
    service_ns: Vec<u64>,
    e2e_ns: Vec<u64>,
}

/// Send one frame (retrying through backpressure) and verify the response
/// against `grids` (one entry per expected grid, `(len, bits)` pairs come
/// from the caller via a closure over the decoded response).
#[allow(clippy::too_many_arguments)]
fn exchange(
    stream: &mut TcpStream,
    opcode: u8,
    payload: &[u8],
    ngrids: u64,
    verify: impl Fn(&protocol::Frame, &SharedCounts),
    o: &ConnOptions,
    seed: u64,
    counts: &SharedCounts,
    lats: &mut Lats,
) -> Result<(), String> {
    let req_t0 = Instant::now();
    let mut attempt = 0usize;
    loop {
        let t0 = Instant::now();
        protocol::write_frame(stream, opcode, payload).map_err(|e| format!("send failed: {e}"))?;
        let frame =
            protocol::read_frame(stream).map_err(|e| format!("response read failed: {e}"))?;
        let service = t0.elapsed().as_nanos() as u64;
        match frame.opcode {
            protocol::OP_SOLVE_OK | protocol::OP_SOLVE_BATCH_OK | protocol::OP_SOLVE_SCENARIO_OK => {
                verify(&frame, counts);
                lats.service_ns.push(service);
                lats.e2e_ns.push(req_t0.elapsed().as_nanos() as u64);
                return Ok(());
            }
            protocol::OP_ERROR => match protocol::decode_error(&frame.payload) {
                Some((ErrorCode::QueueFull, _)) | Some((ErrorCode::TenantLimit, _)) => {
                    if attempt >= o.retries {
                        counts.dropped.fetch_add(ngrids, Ordering::Relaxed);
                        return Ok(());
                    }
                    counts.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(retry_backoff_ms(attempt, seed)));
                    attempt += 1;
                }
                Some((ErrorCode::ExecFailed, _)) => {
                    counts.exec_error_frames.fetch_add(1, Ordering::Relaxed);
                    counts.exec_error_grids.fetch_add(ngrids, Ordering::Relaxed);
                    return Ok(());
                }
                _ => {
                    counts.unexpected.fetch_add(ngrids, Ordering::Relaxed);
                    return Ok(());
                }
            },
            _ => {
                counts.unexpected.fetch_add(ngrids, Ordering::Relaxed);
                return Ok(());
            }
        }
    }
}

fn verify_grid(got: &[f64], want_bits: &[u64]) -> bool {
    got.len() == want_bits.len()
        && got
            .iter()
            .zip(want_bits.iter())
            .all(|(x, &b)| x.to_bits() == b)
}

/// Open one idle connection and verify it live with a `PING` round trip.
/// Returns the stream and the setup latency (connect + ping) in ns.
fn open_idle(addr: &str) -> Result<(TcpStream, u64), String> {
    let t0 = Instant::now();
    let mut s =
        TcpStream::connect(addr).map_err(|e| format!("idle connect {addr} failed: {e}"))?;
    protocol::write_frame(&mut s, protocol::OP_PING, b"idle")
        .map_err(|e| format!("idle ping failed: {e}"))?;
    let f = protocol::read_frame(&mut s).map_err(|e| format!("idle pong read failed: {e}"))?;
    if f.opcode != protocol::OP_PONG {
        return Err(format!("idle ping answered with opcode {:#04x}", f.opcode));
    }
    Ok((s, t0.elapsed().as_nanos() as u64))
}

/// What the churn thread hands back when the hot phase ends.
struct ChurnOutcome {
    setups_ns: Vec<u64>,
    reconnects: u64,
    churn_secs: f64,
}

/// Close and reopen connections of `pool` round-robin until told to stop,
/// paced at roughly one reconnect per millisecond. The pacing keeps churn
/// a background property — setup latency is measured *under* the solve
/// load, not competing with it for the whole host — while still cycling
/// hundreds of connections per second through the readiness loops.
fn churn_idle(
    addr: &str,
    mut pool: Vec<TcpStream>,
    stop: &AtomicBool,
) -> ChurnOutcome {
    let mut setups_ns = Vec::new();
    let mut reconnects = 0u64;
    let t0 = Instant::now();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) && !pool.is_empty() {
        let idx = i % pool.len();
        i += 1;
        match open_idle(addr) {
            Ok((s, ns)) => {
                // the replaced stream drops here: a clean frame-boundary EOF
                pool[idx] = s;
                setups_ns.push(ns);
                reconnects += 1;
            }
            Err(_) => break, // server draining or refusing; end the churn
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    ChurnOutcome {
        setups_ns,
        reconnects,
        churn_secs: t0.elapsed().as_secs_f64(),
    }
}

/// One client connection's request loop.
fn drive_connection(
    conn_idx: usize,
    opts: &ConnOptions,
    expected: &[Expected],
    counts: &SharedCounts,
    lats: &mut Lats,
) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect {} failed: {e}", opts.addr))?;
    let tenant = conn_idx as u32 % opts.tenants.max(1);
    let seed = opts.backoff_seed ^ splitmix64(conn_idx as u64);
    for r in 0..opts.requests_per_conn {
        let exp = &expected[(conn_idx + r) % expected.len()];
        let batched = opts.batch >= 2 && !exp.batch.is_empty() && r % 2 == 1;
        if batched {
            let reqs: Vec<SolveRequest> = exp
                .batch
                .iter()
                .map(|g| {
                    SolveRequest::from_config(
                        &exp.item.cfg,
                        exp.item.variant,
                        tenant,
                        exp.item.iters,
                        g.v0.clone(),
                        g.f.clone(),
                    )
                })
                .collect();
            let ngrids = reqs.len() as u64;
            let payload = BatchSolveRequest { reqs }.encode();
            counts.requests.fetch_add(ngrids, Ordering::Relaxed);
            counts.batch_frames.fetch_add(1, Ordering::Relaxed);
            exchange(
                &mut stream,
                protocol::OP_SOLVE_BATCH,
                &payload,
                ngrids,
                |frame, counts| match protocol::BatchSolveResponse::decode(&frame.payload) {
                    Ok(resp) if resp.vs.len() == exp.batch.len() => {
                        for (got, g) in resp.vs.iter().zip(exp.batch.iter()) {
                            if verify_grid(got, &g.bits) {
                                counts.ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                counts.verify_failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    _ => {
                        counts.unexpected.fetch_add(ngrids, Ordering::Relaxed);
                    }
                },
                opts,
                seed ^ r as u64,
                counts,
                lats,
            )?;
        } else {
            let mut req = SolveRequest::from_config(
                &exp.item.cfg,
                exp.item.variant,
                tenant,
                exp.item.iters,
                exp.v0.clone(),
                exp.f.clone(),
            );
            req.scenario = exp.item.scenario.wire_id();
            req.mixed = exp.item.mixed;
            req.coeff = exp.coeff.clone();
            let (opcode, payload) = if req.needs_scenario_frame() {
                (protocol::OP_SOLVE_SCENARIO, req.encode_scenario())
            } else {
                (protocol::OP_SOLVE, req.encode())
            };
            counts.requests.fetch_add(1, Ordering::Relaxed);
            exchange(
                &mut stream,
                opcode,
                &payload,
                1,
                |frame, counts| match protocol::SolveResponse::decode(&frame.payload) {
                    Ok(resp) if verify_grid(&resp.v, &exp.bits) => {
                        counts.ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        counts.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                },
                opts,
                seed ^ r as u64,
                counts,
                lats,
            )?;
        }
    }
    Ok(())
}

/// Drive the configured load against `opts.addr` and verify every response.
pub fn run(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let expected = Arc::new(compute_expected(
        &opts.mix,
        opts.batch,
        opts.simd,
        opts.fast_math,
    )?);
    let counts = Arc::new(SharedCounts::default());

    // Idle fleet: fill before the hot phase starts (setup cost must not
    // leak into hot-path throughput), then churn it while the load runs.
    let mut setup_ns = Vec::new();
    let idle_stop = Arc::new(AtomicBool::new(false));
    let mut churn_handle = None;
    if opts.idle > 0 {
        let mut pool = Vec::with_capacity(opts.idle);
        for _ in 0..opts.idle {
            let (s, ns) = open_idle(&opts.addr)?;
            pool.push(s);
            setup_ns.push(ns);
        }
        let addr = opts.addr.clone();
        let stop = Arc::clone(&idle_stop);
        churn_handle = Some(std::thread::spawn(move || churn_idle(&addr, pool, &stop)));
    }

    let t0 = Instant::now();

    let conn_opts = ConnOptions {
        addr: opts.addr.clone(),
        requests_per_conn: opts.requests_per_conn,
        tenants: opts.tenants,
        retries: opts.retries,
        batch: opts.batch,
        backoff_seed: opts.backoff_seed,
    };
    let handles: Vec<_> = (0..opts.connections.max(1))
        .map(|c| {
            let expected = Arc::clone(&expected);
            let counts = Arc::clone(&counts);
            let o = conn_opts.clone();
            std::thread::spawn(move || {
                let mut lats = Lats::default();
                let res = drive_connection(c, &o, &expected, &counts, &mut lats);
                (res, lats)
            })
        })
        .collect();

    let mut all = Lats::default();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok((res, lats)) => {
                all.service_ns.extend(lats.service_ns);
                all.e2e_ns.extend(lats.e2e_ns);
                if let Err(e) = res {
                    first_err.get_or_insert(e);
                }
            }
            Err(_) => {
                first_err.get_or_insert("connection thread panicked".to_string());
            }
        }
    }
    let elapsed = t0.elapsed();

    // Stop the churn and fold its samples in (the idle pool closes with
    // the churn thread, before any shutdown request goes out).
    let mut idle_reconnects = 0u64;
    let mut setup_per_sec = 0.0f64;
    idle_stop.store(true, Ordering::Relaxed);
    if let Some(h) = churn_handle {
        if let Ok(outcome) = h.join() {
            setup_ns.extend(outcome.setups_ns);
            idle_reconnects = outcome.reconnects;
            if outcome.churn_secs > 0.0 {
                setup_per_sec = outcome.reconnects as f64 / outcome.churn_secs;
            }
        } else {
            first_err.get_or_insert("idle churn thread panicked".to_string());
        }
    }

    // Control connection: fetch counters, optionally drain the server.
    let mut server_stats = Vec::new();
    if let Ok(mut ctrl) = TcpStream::connect(&opts.addr) {
        if protocol::write_frame(&mut ctrl, protocol::OP_STATS, b"").is_ok() {
            if let Ok(f) = protocol::read_frame(&mut ctrl) {
                if f.opcode == protocol::OP_STATS_OK {
                    server_stats = protocol::decode_stats(&f.payload);
                }
            }
        }
        if opts.shutdown && protocol::write_frame(&mut ctrl, protocol::OP_SHUTDOWN, b"").is_ok() {
            match protocol::read_frame(&mut ctrl) {
                Ok(f) if f.opcode == protocol::OP_SHUTDOWN_ACK => {}
                other => {
                    first_err
                        .get_or_insert(format!("server did not acknowledge shutdown: {other:?}"));
                }
            }
        }
    } else if opts.shutdown {
        first_err.get_or_insert("control connection failed".to_string());
    }

    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(LoadgenReport {
        requests: counts.requests.load(Ordering::Relaxed),
        ok: counts.ok.load(Ordering::Relaxed),
        verify_failures: counts.verify_failures.load(Ordering::Relaxed),
        exec_error_frames: counts.exec_error_frames.load(Ordering::Relaxed),
        exec_error_grids: counts.exec_error_grids.load(Ordering::Relaxed),
        batch_frames: counts.batch_frames.load(Ordering::Relaxed),
        dropped: counts.dropped.load(Ordering::Relaxed),
        retries: counts.retries.load(Ordering::Relaxed),
        unexpected: counts.unexpected.load(Ordering::Relaxed),
        elapsed,
        service_ns: all.service_ns,
        e2e_ns: all.e2e_ns,
        idle_conns: opts.idle as u64,
        idle_reconnects,
        setup_per_sec,
        setup_ns,
        server_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_up_to_the_cap() {
        // The schedule doubles 2→64 ms; jitter (< base/2) never exceeds the
        // doubling gap, so each retry below the cap waits at least as long
        // as the one before it — for ANY seed. The old `(1 + a % 8) * 2`
        // schedule violated this at attempt 8 (wrapped back to 4 ms).
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x676d675f6c67] {
            let xs: Vec<u64> = (0..16).map(|a| retry_backoff_ms(a, seed)).collect();
            for a in 0..5 {
                assert!(
                    xs[a + 1] >= xs[a],
                    "seed {seed:#x}: backoff({}) = {} < backoff({a}) = {}",
                    a + 1,
                    xs[a + 1],
                    xs[a]
                );
            }
            assert_eq!(xs[0], 2, "first retry is the 2 ms floor (zero jitter)");
            for (a, &x) in xs.iter().enumerate() {
                assert!((2..96).contains(&x), "attempt {a}: {x} ms outside [2, 96)");
            }
            for &x in &xs[5..] {
                assert!(x >= 64, "capped attempts stay at the 64 ms base");
            }
        }
    }

    #[test]
    fn backoff_jitter_varies_with_seed() {
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|s| retry_backoff_ms(8, s)).collect();
        assert!(
            spread.len() > 8,
            "64 seeds produced only {} distinct capped backoffs",
            spread.len()
        );
    }

    #[test]
    fn percentile_ranks_are_stable() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&xs, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
