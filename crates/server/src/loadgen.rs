//! Load-generating client with end-to-end bitwise verification.
//!
//! For every item in the request mix the generator first computes the
//! *expected* answer with a direct in-process [`DslRunner`] — the same
//! compiled-plan path the server uses, no network involved. It then drives
//! N concurrent connections of mixed 2-D/3-D shapes and cycle types against
//! the server and compares every `SOLVE_OK` response against the expected
//! grid with `f64::to_bits` equality. Because the engine is
//! bitwise-deterministic (regardless of thread count, tiling, or pooled
//! storage), *any* discrepancy — one ULP anywhere in the grid — is a
//! serving bug, not noise.
//!
//! Typed error frames are part of the contract, not failures: `QueueFull`
//! and `TenantLimit` are retried with backoff (and counted), `ExecFailed`
//! (chaos faults) is counted and accepted. Anything else unexpected fails
//! the run. Latency is recorded per successful request; the report renders
//! throughput and p50/p95/p99 as JSON for `BENCH_pr5.json`.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, DslRunner};
use polymg::{PipelineOptions, Variant};

use crate::protocol::{self, ErrorCode, SolveRequest};

/// One entry of the request mix.
#[derive(Clone)]
pub struct MixItem {
    pub cfg: MgConfig,
    pub variant: Variant,
    /// Multigrid cycles per request.
    pub iters: u16,
}

/// The default mix: small 2-D and 3-D problems, V and W cycles, two
/// variants — enough shape diversity to exercise several sessions while
/// staying fast enough for CI.
pub fn default_mix() -> Vec<MixItem> {
    let mut v3 = MgConfig::new(3, 15, CycleType::V, SmoothSteps::s444());
    v3.levels = 3;
    let mut w3 = MgConfig::new(3, 15, CycleType::W, SmoothSteps::s1000());
    w3.levels = 3;
    vec![
        MixItem {
            cfg: MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444()),
            variant: Variant::OptPlus,
            iters: 2,
        },
        MixItem {
            cfg: MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()),
            variant: Variant::Opt,
            iters: 2,
        },
        MixItem {
            cfg: v3,
            variant: Variant::OptPlus,
            iters: 2,
        },
        MixItem {
            cfg: w3,
            variant: Variant::OptPlus,
            iters: 1,
        },
    ]
}

/// Loadgen options.
pub struct LoadgenOptions {
    pub addr: String,
    pub connections: usize,
    pub requests_per_conn: usize,
    /// Tenant ids cycle over `0..tenants`.
    pub tenants: u32,
    /// Max retries for `QueueFull`/`TenantLimit` before counting a drop.
    pub retries: usize,
    /// Send a drain-and-stop frame once the load completes.
    pub shutdown: bool,
    pub mix: Vec<MixItem>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: String::new(),
            connections: 4,
            requests_per_conn: 8,
            tenants: 2,
            retries: 200,
            shutdown: false,
            mix: default_mix(),
        }
    }
}

/// Aggregated outcome of one loadgen run.
#[derive(Debug, Default)]
pub struct LoadgenReport {
    pub requests: u64,
    pub ok: u64,
    /// `SOLVE_OK` responses whose grid was not bitwise-identical to the
    /// in-process reference. Must be zero for a healthy server.
    pub verify_failures: u64,
    /// Typed `ExecFailed` frames (injected chaos faults surface here).
    pub exec_error_frames: u64,
    /// Requests dropped after exhausting backpressure retries.
    pub dropped: u64,
    /// Total backpressure retries performed.
    pub retries: u64,
    /// Responses that were neither `SOLVE_OK` nor an accepted typed error.
    pub unexpected: u64,
    pub elapsed: Duration,
    /// Per-request latency (successful solves only), nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Server counters fetched over `STATS` after the run.
    pub server_stats: Vec<(String, u64)>,
}

impl LoadgenReport {
    /// The run is clean when every response was bitwise-correct or a typed,
    /// accepted error.
    pub fn is_clean(&self) -> bool {
        self.verify_failures == 0 && self.unexpected == 0 && self.ok + self.exec_error_frames > 0
    }

    pub fn percentile_ns(&self, pct: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let mut xs = self.latencies_ns.clone();
        xs.sort_unstable();
        let rank = ((pct / 100.0) * xs.len() as f64).ceil() as usize;
        xs[rank.clamp(1, xs.len()) - 1]
    }

    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"ok\": {},\n", self.ok));
        s.push_str(&format!(
            "  \"verify_failures\": {},\n",
            self.verify_failures
        ));
        s.push_str(&format!(
            "  \"exec_error_frames\": {},\n",
            self.exec_error_frames
        ));
        s.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!("  \"unexpected\": {},\n", self.unexpected));
        s.push_str(&format!(
            "  \"elapsed_seconds\": {},\n",
            self.elapsed.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"throughput_rps\": {},\n",
            self.throughput_rps()
        ));
        s.push_str(&format!(
            "  \"latency_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
            self.percentile_ns(50.0),
            self.percentile_ns(95.0),
            self.percentile_ns(99.0),
            self.latencies_ns.iter().copied().max().unwrap_or(0)
        ));
        s.push_str("  \"server\": {");
        for (i, (k, v)) in self.server_stats.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("}\n}\n");
        s
    }

    pub fn summary(&self) -> String {
        format!(
            "loadgen: {} requests, {} ok ({} verify failures, {} exec-error frames, \
             {} dropped, {} unexpected), {} retries, {:.2} req/s, \
             p50 {:.2} ms / p95 {:.2} ms / p99 {:.2} ms",
            self.requests,
            self.ok,
            self.verify_failures,
            self.exec_error_frames,
            self.dropped,
            self.unexpected,
            self.retries,
            self.throughput_rps(),
            self.percentile_ns(50.0) as f64 * 1e-6,
            self.percentile_ns(95.0) as f64 * 1e-6,
            self.percentile_ns(99.0) as f64 * 1e-6,
        )
    }
}

/// The precomputed ground truth for one mix item.
struct Expected {
    item: MixItem,
    v0: Vec<f64>,
    f: Vec<f64>,
    bits: Vec<u64>,
}

/// Run each mix item locally (through the same plan cache and engine the
/// server uses) to establish the bitwise-exact expected answer.
fn compute_expected(mix: &[MixItem]) -> Result<Vec<Expected>, String> {
    mix.iter()
        .map(|item| {
            let (v0, f, _) = setup_poisson(&item.cfg);
            let opts = PipelineOptions::for_variant(item.variant, item.cfg.ndims);
            let mut runner = DslRunner::new(&item.cfg, opts, "loadgen-ref")
                .map_err(|e| format!("reference compile failed: {}", e.join("; ")))?;
            let mut v = v0.clone();
            for _ in 0..item.iters {
                runner
                    .cycle_with_stats(&mut v, &f)
                    .map_err(|e| format!("reference cycle failed: {e}"))?;
            }
            Ok(Expected {
                item: item.clone(),
                v0,
                f,
                bits: v.iter().map(|x| x.to_bits()).collect(),
            })
        })
        .collect()
}

#[derive(Default)]
struct SharedCounts {
    requests: AtomicU64,
    ok: AtomicU64,
    verify_failures: AtomicU64,
    exec_error_frames: AtomicU64,
    dropped: AtomicU64,
    retries: AtomicU64,
    unexpected: AtomicU64,
}

/// Per-connection knobs (the subset of [`LoadgenOptions`] a client thread
/// needs).
#[derive(Clone)]
struct ConnOptions {
    addr: String,
    requests_per_conn: usize,
    tenants: u32,
    retries: usize,
}

/// One client connection's request loop.
fn drive_connection(
    conn_idx: usize,
    opts: &ConnOptions,
    expected: &[Expected],
    counts: &SharedCounts,
    latencies: &mut Vec<u64>,
) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("connect {} failed: {e}", opts.addr))?;
    let tenant = conn_idx as u32 % opts.tenants.max(1);
    for r in 0..opts.requests_per_conn {
        let exp = &expected[(conn_idx + r) % expected.len()];
        let req = SolveRequest::from_config(
            &exp.item.cfg,
            exp.item.variant,
            tenant,
            exp.item.iters,
            exp.v0.clone(),
            exp.f.clone(),
        );
        let payload = req.encode();
        counts.requests.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0usize;
        loop {
            let t0 = Instant::now();
            protocol::write_frame(&mut stream, protocol::OP_SOLVE, &payload)
                .map_err(|e| format!("send failed: {e}"))?;
            let frame = protocol::read_frame(&mut stream)
                .map_err(|e| format!("response read failed: {e}"))?;
            match frame.opcode {
                protocol::OP_SOLVE_OK => {
                    let resp = protocol::SolveResponse::decode(&frame.payload)
                        .map_err(|e| format!("response decode failed: {e}"))?;
                    let same = resp.v.len() == exp.bits.len()
                        && resp
                            .v
                            .iter()
                            .zip(exp.bits.iter())
                            .all(|(x, &b)| x.to_bits() == b);
                    if same {
                        counts.ok.fetch_add(1, Ordering::Relaxed);
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    } else {
                        counts.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                protocol::OP_ERROR => match protocol::decode_error(&frame.payload) {
                    Some((ErrorCode::QueueFull, _)) | Some((ErrorCode::TenantLimit, _)) => {
                        attempt += 1;
                        if attempt > opts.retries {
                            counts.dropped.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        counts.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis((1 + attempt as u64 % 8) * 2));
                    }
                    Some((ErrorCode::ExecFailed, _)) => {
                        counts.exec_error_frames.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    _ => {
                        counts.unexpected.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                },
                _ => {
                    counts.unexpected.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Drive the configured load against `opts.addr` and verify every response.
pub fn run(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let expected = Arc::new(compute_expected(&opts.mix)?);
    let counts = Arc::new(SharedCounts::default());
    let t0 = Instant::now();

    let conn_opts = ConnOptions {
        addr: opts.addr.clone(),
        requests_per_conn: opts.requests_per_conn,
        tenants: opts.tenants,
        retries: opts.retries,
    };
    let handles: Vec<_> = (0..opts.connections.max(1))
        .map(|c| {
            let expected = Arc::clone(&expected);
            let counts = Arc::clone(&counts);
            let o = conn_opts.clone();
            std::thread::spawn(move || {
                let mut lats = Vec::new();
                let res = drive_connection(c, &o, &expected, &counts, &mut lats);
                (res, lats)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok((Ok(()), lats)) => latencies.extend(lats),
            Ok((Err(e), lats)) => {
                latencies.extend(lats);
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert("connection thread panicked".to_string());
            }
        }
    }
    let elapsed = t0.elapsed();

    // Control connection: fetch counters, optionally drain the server.
    let mut server_stats = Vec::new();
    if let Ok(mut ctrl) = TcpStream::connect(&opts.addr) {
        if protocol::write_frame(&mut ctrl, protocol::OP_STATS, b"").is_ok() {
            if let Ok(f) = protocol::read_frame(&mut ctrl) {
                if f.opcode == protocol::OP_STATS_OK {
                    server_stats = protocol::decode_stats(&f.payload);
                }
            }
        }
        if opts.shutdown && protocol::write_frame(&mut ctrl, protocol::OP_SHUTDOWN, b"").is_ok() {
            match protocol::read_frame(&mut ctrl) {
                Ok(f) if f.opcode == protocol::OP_SHUTDOWN_ACK => {}
                other => {
                    first_err
                        .get_or_insert(format!("server did not acknowledge shutdown: {other:?}"));
                }
            }
        }
    } else if opts.shutdown {
        first_err.get_or_insert("control connection failed".to_string());
    }

    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(LoadgenReport {
        requests: counts.requests.load(Ordering::Relaxed),
        ok: counts.ok.load(Ordering::Relaxed),
        verify_failures: counts.verify_failures.load(Ordering::Relaxed),
        exec_error_frames: counts.exec_error_frames.load(Ordering::Relaxed),
        dropped: counts.dropped.load(Ordering::Relaxed),
        retries: counts.retries.load(Ordering::Relaxed),
        unexpected: counts.unexpected.load(Ordering::Relaxed),
        elapsed,
        latencies_ns: latencies,
        server_stats,
    })
}
