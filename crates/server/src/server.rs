//! The solve service: accept loop, bounded admission queue, solve workers,
//! per-tenant caps, and graceful drain.
//!
//! Threading model (all std):
//!
//! ```text
//! accept thread ──spawns──▶ connection threads (one per client)
//!                                │  read frame, admit, enqueue Job
//!                                ▼
//!                    bounded queue (Mutex<VecDeque> + Condvar)
//!                                │
//!                 solve workers ─┴─▶ SessionManager lease → cycles →
//!                                    reply over the job's channel
//! ```
//!
//! Connection threads are thin: they parse frames, enforce admission
//! (queue capacity, per-tenant in-flight cap, shutdown), and block on the
//! reply channel — requests on one connection are answered in order.
//! Workers do all solving through [`SessionManager`] leases, so engines and
//! their pools stay warm across requests.
//!
//! Rejections are *responses*, not failures: `QueueFull`, `TenantLimit` and
//! `ShuttingDown` error frames leave the connection open (the 429 shape).
//! A typed `ExecError` — including injected chaos faults — becomes an
//! `ExecFailed` error frame; it never kills the connection, the worker, or
//! the server. Only an unreadable *frame* closes a connection.
//!
//! Shutdown ([`OP_SHUTDOWN`] or [`ServerHandle::begin_shutdown`]) flips the
//! drain flag: new solves are rejected, queued and in-flight solves finish,
//! workers exit once the queue is dry, and the accept loop is unblocked by
//! a self-connection. [`ServerHandle::join`] then publishes the final
//! counters into the trace sink.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gmg_trace::{batch_hist_bucket, ServerSnapshot, Trace, BATCH_HIST_BUCKETS};
use polymg::{ChaosOptions, TunedStore};

use crate::protocol::{
    self, BatchSolveRequest, BatchSolveResponse, ErrorCode, Frame, FrameError, SolveRequest,
    SolveResponse,
};
use crate::session::SessionManager;

/// Server construction options.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Solve worker threads.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects with `QueueFull`.
    pub queue_capacity: usize,
    /// Maximum in-flight solves per tenant; beyond it, `TenantLimit`.
    pub tenant_cap: usize,
    /// Engine worker threads per leased runner.
    pub engine_threads: usize,
    /// Deterministic fault injection armed on every engine.
    pub chaos: Option<ChaosOptions>,
    /// Persisted autotuned configurations, applied at session creation.
    pub tuned: Option<TunedStore>,
    /// Trace sink for request spans and final counters.
    pub trace: Trace,
    /// Artificial per-solve service delay (tests use it to hold the queue
    /// at a known depth; never set on a production path).
    pub service_delay: Option<Duration>,
    /// Admission coalescing window. `None` (the default) disables
    /// coalescing entirely: every queued request runs as its own engine
    /// pass. `Some(ZERO)` merges only what is already queued when a worker
    /// picks up a request; `Some(d)` additionally lets the worker wait up
    /// to `d` for more same-shape requests to arrive. The window is also
    /// the fairness bound: no request is delayed by coalescing for more
    /// than `d` beyond its natural queue residency.
    pub coalesce_window: Option<Duration>,
    /// Maximum right-hand sides per coalesced engine pass (a single
    /// `SOLVE_BATCH` frame may still carry up to [`protocol::MAX_BATCH`]).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            tenant_cap: 4,
            engine_threads: 1,
            chaos: None,
            tuned: None,
            trace: Trace::disabled(),
            service_delay: None,
            coalesce_window: None,
            max_batch: 16,
        }
    }
}

#[derive(Default)]
struct Counters {
    /// Grids admitted (a batch frame of N counts N).
    requests: AtomicU64,
    /// Grids answered inside a result frame.
    ok: AtomicU64,
    /// Typed exec-error frames sent (one per job, whatever its size).
    exec_errors: AtomicU64,
    protocol_errors: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_tenant: AtomicU64,
    rejected_shutdown: AtomicU64,
    queue_max_depth: AtomicU64,
    /// Engine passes that swept ≥ 2 right-hand sides.
    batches: AtomicU64,
    /// Queued jobs merged into another job's engine pass.
    coalesced: AtomicU64,
    /// Engine-pass RHS-count histogram (see [`batch_hist_bucket`]).
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

impl Counters {
    fn bump_depth(&self, depth: u64) {
        self.queue_max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one engine pass of `total_rhs` grids merged from `njobs`
    /// queued jobs.
    fn record_pass(&self, total_rhs: usize, njobs: usize) {
        if total_rhs >= 2 {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        if njobs > 1 {
            self.coalesced.fetch_add((njobs - 1) as u64, Ordering::Relaxed);
        }
        self.batch_hist[batch_hist_bucket(total_rhs)].fetch_add(1, Ordering::Relaxed);
    }
}

/// One admitted job travelling from a connection thread to a worker: a
/// single solve (`batched == false`, one request) or a client batch
/// (`batched == true`, shape-homogeneous by decode). Either way it is
/// answered with exactly one frame.
struct Job {
    reqs: Vec<SolveRequest>,
    /// Whether the reply must be a [`BatchSolveResponse`] frame.
    batched: bool,
    /// Plan-shape hash for coalescing candidate lookup (verified by
    /// [`SolveRequest::same_plan_shape`] before any merge).
    key: u64,
    reply: mpsc::Sender<Frame>,
    enqueued: Instant,
}

impl Job {
    fn rhs(&self) -> usize {
        self.reqs.len()
    }
}

/// FNV-1a over the plan-shape fields (everything
/// [`SolveRequest::same_plan_shape`] compares; tenant excluded).
fn shape_key(req: &SolveRequest) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(req.ndims as u64);
    eat(req.cycle as u64);
    eat(req.variant as u64);
    eat(req.pre as u64);
    eat(req.coarse as u64);
    eat(req.post as u64);
    eat(req.iters as u64);
    eat(req.n as u64);
    eat(req.levels as u64);
    h
}

struct Shared {
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    tenant_cap: usize,
    tenants: Mutex<HashMap<u32, usize>>,
    /// Admitted solves not yet answered (queued + executing).
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    sessions: SessionManager,
    counters: Counters,
    trace: Trace,
    service_delay: Option<Duration>,
    coalesce_window: Option<Duration>,
    max_batch: usize,
    /// Streams of live connections, so `join` can close them out.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            requests: self.counters.requests.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            exec_errors: self.counters.exec_errors.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            rejected_queue_full: self.counters.rejected_queue_full.load(Ordering::Relaxed),
            rejected_tenant: self.counters.rejected_tenant.load(Ordering::Relaxed),
            rejected_shutdown: self.counters.rejected_shutdown.load(Ordering::Relaxed),
            session_hits: self.sessions.session_hits.load(Ordering::Relaxed),
            session_misses: self.sessions.session_misses.load(Ordering::Relaxed),
            engines_created: self.sessions.engines_created.load(Ordering::Relaxed),
            queue_max_depth: self.counters.queue_max_depth.load(Ordering::Relaxed),
            tuned_applied: self.sessions.tuned_applied.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| {
                self.counters.batch_hist[i].load(Ordering::Relaxed)
            }),
        }
    }

    fn stats_text(&self) -> String {
        let s = self.snapshot();
        let mut t = String::new();
        for (k, v) in [
            ("requests", s.requests),
            ("ok", s.ok),
            ("exec_errors", s.exec_errors),
            ("protocol_errors", s.protocol_errors),
            ("rejected_queue_full", s.rejected_queue_full),
            ("rejected_tenant", s.rejected_tenant),
            ("rejected_shutdown", s.rejected_shutdown),
            ("session_hits", s.session_hits),
            ("session_misses", s.session_misses),
            ("engines_created", s.engines_created),
            ("queue_max_depth", s.queue_max_depth),
            ("tuned_applied", s.tuned_applied),
            ("batches", s.batches),
            ("coalesced", s.coalesced),
            ("sessions", self.sessions.len() as u64),
        ] {
            t.push_str(&format!("{k} {v}\n"));
        }
        t
    }

    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake workers parked on an empty queue so they observe the flag,
        // and unblock the accept loop with a throwaway self-connection.
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until every admitted solve has been answered.
    fn wait_drained(&self) {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.is_empty() && self.inflight.load(Ordering::SeqCst) == 0 {
                return;
            }
            let (guard, _) = self
                .queue_cv
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap();
            q = guard;
        }
    }

    /// Worker side: run one engine pass over every grid of `jobs` (all
    /// plan-shape-equal — a single job, or several coalesced by the window)
    /// and answer each job with exactly one frame.
    fn process_batch(&self, jobs: Vec<Job>) {
        let total_rhs: usize = jobs.iter().map(Job::rhs).sum();
        self.counters.record_pass(total_rhs, jobs.len());
        for job in &jobs {
            let wait_ns = job.enqueued.elapsed().as_nanos() as u64;
            self.trace
                .record_span("admission-queue", "server", wait_ns, 0, 0);
        }
        if let Some(d) = self.service_delay {
            std::thread::sleep(d);
        }
        let t0 = Instant::now();
        let req0 = &jobs[0].reqs[0];
        let tag = format!("{}[{}]", req0.config().tag(), req0.variant_enum().label());
        match self.solve_batch(&jobs) {
            Ok(mut vs) => {
                let elapsed_ns = t0.elapsed().as_nanos() as u64;
                // Hand grids back in request order, draining front to back.
                for job in &jobs {
                    let rest = vs.split_off(job.rhs());
                    let grids = std::mem::replace(&mut vs, rest);
                    self.counters.ok.fetch_add(job.rhs() as u64, Ordering::Relaxed);
                    let frame = if job.batched {
                        Frame {
                            opcode: protocol::OP_SOLVE_BATCH_OK,
                            payload: BatchSolveResponse {
                                elapsed_ns,
                                vs: grids,
                            }
                            .encode(),
                        }
                    } else {
                        let v = grids.into_iter().next().expect("one grid per single job");
                        Frame {
                            opcode: protocol::OP_SOLVE_OK,
                            payload: SolveResponse { elapsed_ns, v }.encode(),
                        }
                    };
                    // A dead reply channel means the connection already went
                    // away; the solve result is simply dropped.
                    let _ = job.reply.send(frame);
                }
            }
            Err((code, msg)) => {
                // One typed error frame per job: a mid-batch fault fails
                // every grid of the pass, but each job still gets exactly
                // one answer on its own channel.
                for job in &jobs {
                    if code == ErrorCode::ExecFailed {
                        self.counters.exec_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = job.reply.send(Frame {
                        opcode: protocol::OP_ERROR,
                        payload: protocol::encode_error(code, &msg),
                    });
                }
            }
        }
        let cells: u64 = jobs
            .iter()
            .flat_map(|j| j.reqs.iter())
            .map(|r| r.v.len() as u64 * r.iters as u64)
            .sum();
        self.trace
            .record_span(&tag, "request", t0.elapsed().as_nanos() as u64, 0, cells);
        for job in &jobs {
            self.retire(job.reqs[0].tenant);
        }
    }

    /// One lease, one batched engine pass per cycle, every grid of every
    /// job swept together. Grids come back flattened in job order.
    fn solve_batch(&self, jobs: &[Job]) -> Result<Vec<Vec<f64>>, (ErrorCode, String)> {
        let req0 = &jobs[0].reqs[0];
        let cfg = req0.config();
        let mut lease = self
            .sessions
            .acquire(&cfg, req0.variant_enum())
            .map_err(|errs| (ErrorCode::CompileFailed, errs.join("; ")))?;
        let mut vs: Vec<Vec<f64>> = jobs
            .iter()
            .flat_map(|j| j.reqs.iter())
            .map(|r| r.v.clone())
            .collect();
        let fs: Vec<&[f64]> = jobs
            .iter()
            .flat_map(|j| j.reqs.iter())
            .map(|r| r.f.as_slice())
            .collect();
        for i in 0..req0.iters {
            if let Err(e) = lease.runner.cycle_batch_with_stats(&mut vs, &fs) {
                // Typed errors leave the engine usable; keep the warm state.
                self.sessions.release(lease);
                return Err((ErrorCode::ExecFailed, format!("cycle {i}: {e}")));
            }
        }
        self.sessions.release(lease);
        Ok(vs)
    }

    /// Release one unit of tenant budget and wake drain/depth waiters.
    fn retire(&self, tenant: u32) {
        {
            let mut t = self.tenants.lock().unwrap();
            if let Some(c) = t.get_mut(&tenant) {
                *c -= 1;
                if *c == 0 {
                    t.remove(&tenant);
                }
            }
        }
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Admission for one decoded job (a single solve or a client batch,
    /// which occupies one queue slot and one unit of tenant budget). On
    /// success the job is queued and the caller must await the reply
    /// channel.
    fn admit(
        &self,
        reqs: Vec<SolveRequest>,
        batched: bool,
    ) -> Result<mpsc::Receiver<Frame>, (ErrorCode, String)> {
        let tenant = reqs[0].tenant;
        if self.shutting_down.load(Ordering::SeqCst) {
            self.counters
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err((ErrorCode::ShuttingDown, "server is draining".to_string()));
        }
        {
            let mut t = self.tenants.lock().unwrap();
            let c = t.entry(tenant).or_insert(0);
            if *c >= self.tenant_cap {
                drop(t);
                self.counters
                    .rejected_tenant
                    .fetch_add(1, Ordering::Relaxed);
                return Err((
                    ErrorCode::TenantLimit,
                    format!(
                        "tenant {} already has {} solves in flight",
                        tenant, self.tenant_cap
                    ),
                ));
            }
            *c += 1;
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().unwrap();
            if q.len() >= self.queue_capacity {
                drop(q);
                self.counters
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                self.retire_tenant_only(tenant);
                return Err((
                    ErrorCode::QueueFull,
                    format!("admission queue at capacity {}", self.queue_capacity),
                ));
            }
            self.counters
                .requests
                .fetch_add(reqs.len() as u64, Ordering::Relaxed);
            self.inflight.fetch_add(1, Ordering::SeqCst);
            q.push_back(Job {
                key: shape_key(&reqs[0]),
                reqs,
                batched,
                reply: tx,
                enqueued: Instant::now(),
            });
            self.counters.bump_depth(q.len() as u64);
        }
        self.queue_cv.notify_one();
        Ok(rx)
    }

    fn retire_tenant_only(&self, tenant: u32) {
        let mut t = self.tenants.lock().unwrap();
        if let Some(c) = t.get_mut(&tenant) {
            *c -= 1;
            if *c == 0 {
                t.remove(&tenant);
            }
        }
    }
}

/// Pull queued jobs whose plan shape equals `jobs[0]`'s into `jobs`, up to
/// `max_batch` total grids. The hash key is a fast filter; the field-level
/// [`SolveRequest::same_plan_shape`] check guards against collisions.
fn drain_same_shape(q: &mut VecDeque<Job>, jobs: &mut Vec<Job>, max_batch: usize) {
    let mut total: usize = jobs.iter().map(Job::rhs).sum();
    let mut i = 0;
    while i < q.len() && total < max_batch {
        let candidate = &q[i];
        if candidate.key == jobs[0].key
            && candidate.reqs[0].same_plan_shape(&jobs[0].reqs[0])
            && total + candidate.rhs() <= max_batch
        {
            let job = q.remove(i).expect("index checked");
            total += job.rhs();
            jobs.push(job);
        } else {
            i += 1;
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    loop {
        let jobs = {
            let mut q = sh.queue.lock().unwrap();
            let first = loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if sh.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = sh.queue_cv.wait(q).unwrap();
            };
            let mut jobs = vec![first];
            if let Some(window) = sh.coalesce_window {
                // Coalesce same-shape queued jobs into this pass: merge
                // whatever is already queued, then (window > 0) keep the
                // pass open until the deadline or the batch is full. The
                // deadline bounds the added latency — no request waits more
                // than `window` beyond its natural queue residency.
                let deadline = Instant::now() + window;
                loop {
                    drain_same_shape(&mut q, &mut jobs, sh.max_batch);
                    let total: usize = jobs.iter().map(Job::rhs).sum();
                    if total >= sh.max_batch || sh.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) =
                        sh.queue_cv.wait_timeout(q, deadline - now).unwrap();
                    q = guard;
                    if timeout.timed_out() {
                        drain_same_shape(&mut q, &mut jobs, sh.max_batch);
                        break;
                    }
                }
            }
            jobs
        };
        sh.process_batch(jobs);
    }
}

/// Admit a decoded job and block on its reply (the per-connection
/// request/response discipline).
fn solve_reply(sh: &Shared, reqs: Vec<SolveRequest>, batched: bool) -> Frame {
    match sh.admit(reqs, batched) {
        Err((code, msg)) => Frame {
            opcode: protocol::OP_ERROR,
            payload: protocol::encode_error(code, &msg),
        },
        Ok(rx) => rx.recv().unwrap_or(Frame {
            opcode: protocol::OP_ERROR,
            payload: protocol::encode_error(ErrorCode::Internal, "worker dropped the request"),
        }),
    }
}

/// Serve one connection until it closes, fails, or shutdown completes.
fn conn_loop(sh: Arc<Shared>, mut stream: TcpStream) {
    loop {
        let frame = match protocol::read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            Err(e @ (FrameError::Truncated(_) | FrameError::Oversized(_))) => {
                // Framing is broken: we can no longer find frame boundaries
                // on this connection. Answer once, then hang up.
                sh.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = protocol::write_frame(
                    &mut stream,
                    protocol::OP_ERROR,
                    &protocol::encode_error(ErrorCode::BadFrame, &e.to_string()),
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let ok = match frame.opcode {
            protocol::OP_PING => {
                protocol::write_frame(&mut stream, protocol::OP_PONG, &frame.payload).is_ok()
            }
            protocol::OP_STATS => protocol::write_frame(
                &mut stream,
                protocol::OP_STATS_OK,
                sh.stats_text().as_bytes(),
            )
            .is_ok(),
            protocol::OP_SHUTDOWN => {
                // Deregister this connection before flipping the drain flag:
                // `join` force-closes every registered stream once workers
                // exit, which otherwise races the ACK write below. The order
                // is safe — `join` only reaches that close after the accept
                // thread exits, which `begin_shutdown`'s self-connect causes.
                if let Ok(peer) = stream.peer_addr() {
                    sh.conns
                        .lock()
                        .unwrap()
                        .retain(|c| c.peer_addr().map(|p| p != peer).unwrap_or(true));
                }
                sh.begin_shutdown();
                sh.wait_drained();
                let _ =
                    protocol::write_frame(&mut stream, protocol::OP_SHUTDOWN_ACK, &frame.payload);
                return;
            }
            protocol::OP_SOLVE => {
                let reply = match SolveRequest::decode(&frame.payload) {
                    Err(msg) => {
                        sh.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Frame {
                            opcode: protocol::OP_ERROR,
                            payload: protocol::encode_error(ErrorCode::BadRequest, &msg),
                        }
                    }
                    Ok(req) => solve_reply(&sh, vec![req], false),
                };
                protocol::write_frame(&mut stream, reply.opcode, &reply.payload).is_ok()
            }
            protocol::OP_SOLVE_BATCH => {
                let reply = match BatchSolveRequest::decode(&frame.payload) {
                    Err(msg) => {
                        sh.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Frame {
                            opcode: protocol::OP_ERROR,
                            payload: protocol::encode_error(ErrorCode::BadRequest, &msg),
                        }
                    }
                    Ok(batch) => solve_reply(&sh, batch.reqs, true),
                };
                protocol::write_frame(&mut stream, reply.opcode, &reply.payload).is_ok()
            }
            other => {
                sh.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                protocol::write_frame(
                    &mut stream,
                    protocol::OP_ERROR,
                    &protocol::encode_error(
                        ErrorCode::UnknownOpcode,
                        &format!("opcode {other:#04x}"),
                    ),
                )
                .is_ok()
            }
        };
        if !ok {
            return;
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::begin_shutdown`] (or send an [`protocol::OP_SHUTDOWN`]
/// frame) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.shared.snapshot()
    }

    /// Flip the drain flag (the in-process equivalent of an
    /// [`protocol::OP_SHUTDOWN`] frame, or of SIGTERM in a supervisor).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the drain to complete, stop every thread, close remaining
    /// connections, publish final counters into the trace, and return them.
    pub fn join(mut self) -> ServerSnapshot {
        // If nobody initiated shutdown, this blocks until someone does —
        // that is the serve-forever mode of the CLI.
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.shared.wait_drained();
        self.shared.queue_cv.notify_all();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Connection threads may still be parked in read_frame; closing the
        // sockets turns that into a clean EOF and they exit.
        for c in self.shared.conns.lock().unwrap().drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        let snap = self.shared.snapshot();
        self.shared.trace.record_server(&snap);
        let cache = polymg::PlanCache::global();
        let (hits, misses) = cache.counters();
        self.shared
            .trace
            .record_plan_cache(hits, misses, cache.evictions());
        snap
    }
}

/// Bind and start the service.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        addr,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_capacity: config.queue_capacity.max(1),
        tenant_cap: config.tenant_cap.max(1),
        tenants: Mutex::new(HashMap::new()),
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        sessions: SessionManager::new(config.tuned, config.chaos, config.engine_threads, workers),
        counters: Counters::default(),
        trace: config.trace,
        service_delay: config.service_delay,
        coalesce_window: config.coalesce_window,
        max_batch: config.max_batch.max(1),
        conns: Mutex::new(Vec::new()),
    });

    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gmg-server-worker-{i}"))
                .spawn(move || worker_loop(sh))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("gmg-server-accept".to_string())
        .spawn(move || {
            for res in listener.incoming() {
                if accept_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match res {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if let Ok(clone) = stream.try_clone() {
                    accept_shared.conns.lock().unwrap().push(clone);
                }
                let sh = Arc::clone(&accept_shared);
                let _ = std::thread::Builder::new()
                    .name("gmg-server-conn".to_string())
                    .spawn(move || conn_loop(sh, stream));
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers: worker_handles,
    })
}

/// Render a one-line human summary of a snapshot (CLI shutdown banner).
pub fn summarize(s: &ServerSnapshot, out: &mut impl Write) -> std::io::Result<()> {
    writeln!(
        out,
        "gmg-server: {} requests ({} ok, {} exec errors), rejected {} queue-full / {} tenant / {} shutdown, \
         sessions {} hits / {} misses ({} engines), peak queue depth {}, tuned applied {}, \
         {} batched passes ({} coalesced)",
        s.requests,
        s.ok,
        s.exec_errors,
        s.rejected_queue_full,
        s.rejected_tenant,
        s.rejected_shutdown,
        s.session_hits,
        s.session_misses,
        s.engines_created,
        s.queue_max_depth,
        s.tuned_applied,
        s.batches,
        s.coalesced
    )
}
