//! The solve service: an event-driven core of shard-per-core readiness
//! loops feeding per-shard QoS admission queues and solve workers.
//!
//! Threading model (all std; the epoll surface comes from the in-tree
//! `shim-epoll` crate):
//!
//! ```text
//!            ┌─ shard 0 event loop ── epoll(listener, waker, conns)
//!            │     │ nonblocking accept → round-robin to a shard
//!            │     │ ring-buffer frame decode → admit → QoS queues
//! N shards ──┤     ▼
//!            │  per-shard {latency, batch} queues (Mutex + Condvar)
//!            │     │ weighted dequeue (latency gets `qos_weight`
//!            │     ▼  pops per batch pop when both classes wait)
//!            └─ shard workers ──▶ shard SessionManager lease → cycles →
//!                                 Complete message → shard waker →
//!                                 event loop flushes in request order
//! ```
//!
//! Every shard owns its listener share, connections, admission queues,
//! tenant budgets, and `SessionManager` outright — there is no cross-shard
//! lock on the steady-state path. Connections land on a shard round-robin
//! at accept (the tenant is unknown until the first solve payload) and
//! migrate once to `shard_for_tenant(tenant)` when the first solve frame
//! names one, so a tenant's warm engines stay shard-local across
//! reconnects.
//!
//! Rejections are *responses*, not failures: `QueueFull`, `TenantLimit` and
//! `ShuttingDown` error frames leave the connection open (the 429 shape),
//! and `QueueFull` is per-QoS-class — a batch flood fills the batch queue
//! without consuming latency-class admission slots. A typed `ExecError` —
//! including injected chaos faults — becomes an `ExecFailed` error frame;
//! it never kills the connection, the worker, or the server. Only an
//! unreadable *frame* closes a connection.
//!
//! Shutdown ([`OP_SHUTDOWN`] or [`ServerHandle::begin_shutdown`]) flips the
//! drain flag and wakes every shard through its eventfd waker (no
//! self-connection): new solves are rejected, queued and in-flight solves
//! finish, a drain watcher marks the server drained once the last solve
//! retires, and the event loops then release parked shutdown ACKs, flush,
//! and close every connection. [`ServerHandle::join`] publishes the final
//! global and per-shard counters into the trace sink.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gmg_trace::{
    batch_hist_bucket, ServerSnapshot, ShardSnapshot, Trace, BATCH_HIST_BUCKETS, SCENARIO_KINDS,
    SCENARIO_LABELS,
};
use gmg_multigrid::scenario::ScenarioSpec;
use polymg::{ChaosOptions, Scenario, TunedStore};
use shim_epoll::{Poller, Waker};

use crate::protocol::{self, ErrorCode, SolveRequest};
use crate::session::SessionManager;
use crate::shard::ShardMsg;
use crate::tuner::{Observation, Tuner, TunerConfig};

/// Server construction options.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Event-loop shards. Each shard owns its connections, admission
    /// queues, tenant budgets, session manager, and `workers` solve
    /// threads; connections are pinned to `shard_for_tenant` of their
    /// tenant so warm engines stay shard-local.
    pub shards: usize,
    /// Solve worker threads *per shard*.
    pub workers: usize,
    /// Per-class admission queue capacity (each shard has one latency and
    /// one batch queue); a full class queue rejects with `QueueFull`.
    pub queue_capacity: usize,
    /// Maximum in-flight solves per tenant; beyond it, `TenantLimit`.
    pub tenant_cap: usize,
    /// Weighted round-robin credit for the latency class: when both QoS
    /// queues are nonempty, `qos_weight` latency jobs are dequeued for
    /// every batch job (work-conserving — an empty peer class never idles
    /// a worker).
    pub qos_weight: u32,
    /// Engine worker threads per leased runner.
    pub engine_threads: usize,
    /// Deterministic fault injection armed on every engine.
    pub chaos: Option<ChaosOptions>,
    /// Persisted autotuned configurations, applied at session creation.
    pub tuned: Option<TunedStore>,
    /// Online evolutionary autotuning (`--tune-online`): background search
    /// trials on idle worker capacity, winners recorded into the shared
    /// tuned store (and persisted to its path). `None` disables the tuner.
    pub tuner: Option<TunerConfig>,
    /// Enable the vectorized kernel tier (`--no-simd` clears it). Part of
    /// every session's plan fingerprint.
    pub simd: bool,
    /// Enable the reassociating fast-math kernel tier (`--fast-math`).
    /// Changes numerics, so it splits sessions and the plan cache.
    pub fast_math: bool,
    /// Trace sink for request spans and final counters.
    pub trace: Trace,
    /// Artificial per-solve service delay (tests use it to hold the queue
    /// at a known depth; never set on a production path).
    pub service_delay: Option<Duration>,
    /// Admission coalescing window. `None` (the default) disables
    /// coalescing entirely: every queued request runs as its own engine
    /// pass. `Some(ZERO)` merges only what is already queued when a worker
    /// picks up a request; `Some(d)` additionally lets the worker wait up
    /// to `d` for more same-shape requests to arrive. The window is also
    /// the fairness bound: no request is delayed by coalescing for more
    /// than `d` beyond its natural queue residency. Coalescing never
    /// crosses QoS classes.
    pub coalesce_window: Option<Duration>,
    /// Maximum right-hand sides per coalesced engine pass (a single
    /// `SOLVE_BATCH` frame may still carry up to [`protocol::MAX_BATCH`]).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            workers: 2,
            queue_capacity: 16,
            tenant_cap: 4,
            qos_weight: 4,
            engine_threads: 1,
            chaos: None,
            tuned: None,
            tuner: None,
            simd: true,
            fast_math: false,
            trace: Trace::disabled(),
            service_delay: None,
            coalesce_window: None,
            max_batch: 16,
        }
    }
}

/// Stable shard assignment for a tenant: a splitmix64 finalizer over the
/// tenant id, so the mapping survives reconnects and server restarts (the
/// point of shard-local warm sessions).
pub fn shard_for_tenant(tenant: u32, nshards: usize) -> usize {
    if nshards <= 1 {
        return 0;
    }
    let mut z = (tenant as u64).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z % nshards as u64) as usize
}

/// Admission QoS class of a job, derived from its opcode: interactive
/// single solves are latency-sensitive, client batches are throughput
/// work that may wait behind them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QosClass {
    /// Single `OP_SOLVE` requests.
    Latency,
    /// `OP_SOLVE_BATCH` requests.
    Batch,
}

impl QosClass {
    /// Lowercase label used in error messages and stats.
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Latency => "latency",
            QosClass::Batch => "batch",
        }
    }
}

#[derive(Default)]
struct Counters {
    /// Grids admitted (a batch frame of N counts N).
    requests: AtomicU64,
    /// Grids answered inside a result frame.
    ok: AtomicU64,
    /// Typed exec-error frames sent (one per job, whatever its size).
    exec_errors: AtomicU64,
    protocol_errors: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_tenant: AtomicU64,
    rejected_shutdown: AtomicU64,
    queue_max_depth: AtomicU64,
    /// Engine passes that swept ≥ 2 right-hand sides.
    batches: AtomicU64,
    /// Queued jobs merged into another job's engine pass.
    coalesced: AtomicU64,
    /// Engine-pass RHS-count histogram (see [`batch_hist_bucket`]).
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    /// Grids solved per scenario (indexed by [`Scenario::wire_id`]).
    scenario_solves: [AtomicU64; SCENARIO_KINDS],
    /// Grids solved with mixed-precision smoothing chains.
    mixed_solves: AtomicU64,
}

impl Counters {
    fn bump_depth(&self, depth: u64) {
        self.queue_max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one engine pass of `total_rhs` grids merged from `njobs`
    /// queued jobs.
    fn record_pass(&self, total_rhs: usize, njobs: usize) {
        if total_rhs >= 2 {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        if njobs > 1 {
            self.coalesced.fetch_add((njobs - 1) as u64, Ordering::Relaxed);
        }
        self.batch_hist[batch_hist_bucket(total_rhs)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-shard event-core counters (lock-free; snapshotted into
/// [`ShardSnapshot`] at join).
#[derive(Default)]
pub(crate) struct ShardCounters {
    pub accepted: AtomicU64,
    pub adopted: AtomicU64,
    pub frames: AtomicU64,
    pub wakeups: AtomicU64,
    pub dequeued_latency: AtomicU64,
    pub dequeued_batch: AtomicU64,
    pub queue_max_depth: AtomicU64,
}

/// Which request opcode a job arrived under — it decides the reply frame
/// ([`protocol::OP_SOLVE_OK`] / [`protocol::OP_SOLVE_SCENARIO_OK`] /
/// [`protocol::OP_SOLVE_BATCH_OK`]) and the admission QoS class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JobOp {
    /// Single legacy [`protocol::OP_SOLVE`].
    Solve,
    /// Single extended [`protocol::OP_SOLVE_SCENARIO`] (scenario id,
    /// precision tier, optional coefficient grid).
    SolveScenario,
    /// Client [`protocol::OP_SOLVE_BATCH`].
    Batch,
}

/// One admitted job travelling from a shard's readiness loop to one of its
/// workers: a single solve (one request) or a client batch
/// (shape-homogeneous by decode). Either way it is answered with exactly
/// one frame, routed back to `(shard, conn, seq)`.
pub(crate) struct Job {
    pub reqs: Vec<SolveRequest>,
    /// Arrival opcode (reply framing + QoS class).
    pub op: JobOp,
    /// Plan-shape hash for coalescing candidate lookup (verified by
    /// [`SolveRequest::same_plan_shape`] before any merge).
    pub key: u64,
    /// Shard owning the requesting connection (reply routing).
    pub shard: usize,
    /// Connection token on that shard.
    pub conn: u64,
    /// Per-connection response sequence number (responses are transmitted
    /// strictly in request order even under pipelining).
    pub seq: u64,
    pub enqueued: Instant,
}

impl Job {
    fn rhs(&self) -> usize {
        self.reqs.len()
    }

    fn class(&self) -> QosClass {
        match self.op {
            JobOp::Batch => QosClass::Batch,
            JobOp::Solve | JobOp::SolveScenario => QosClass::Latency,
        }
    }
}

/// FNV-1a over the plan-shape fields (everything
/// [`SolveRequest::same_plan_shape`] compares; tenant excluded).
fn shape_key(req: &SolveRequest) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(req.ndims as u64);
    eat(req.cycle as u64);
    eat(req.variant as u64);
    eat(req.pre as u64);
    eat(req.coarse as u64);
    eat(req.post as u64);
    eat(req.iters as u64);
    eat(req.n as u64);
    eat(req.levels as u64);
    eat(req.scenario as u64);
    eat(req.mixed as u64);
    for &c in &req.coeff {
        eat(c.to_bits());
    }
    h
}

/// The two admission queues of one shard plus the weighted-round-robin
/// credit that arbitrates between them.
pub(crate) struct QosQueues {
    latency: VecDeque<Job>,
    batch: VecDeque<Job>,
    /// Remaining latency pops before the next batch pop (only consulted
    /// when both queues are nonempty).
    credit: u32,
}

impl QosQueues {
    fn new(weight: u32) -> QosQueues {
        QosQueues {
            latency: VecDeque::new(),
            batch: VecDeque::new(),
            credit: weight,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.latency.len() + self.batch.len()
    }

    fn class_len(&self, class: QosClass) -> usize {
        match class {
            QosClass::Latency => self.latency.len(),
            QosClass::Batch => self.batch.len(),
        }
    }

    pub(crate) fn deque_mut(&mut self, class: QosClass) -> &mut VecDeque<Job> {
        match class {
            QosClass::Latency => &mut self.latency,
            QosClass::Batch => &mut self.batch,
        }
    }

    /// Work-conserving weighted dequeue: with both classes waiting, serve
    /// `weight` latency jobs per batch job; with one class waiting, serve
    /// it unconditionally (and refill the credit on a batch pop so a later
    /// contention round starts with a full latency budget).
    fn pop_weighted(&mut self, weight: u32) -> Option<Job> {
        match (self.latency.is_empty(), self.batch.is_empty()) {
            (true, true) => None,
            (false, true) => self.latency.pop_front(),
            (true, false) => {
                self.credit = weight;
                self.batch.pop_front()
            }
            (false, false) => {
                if self.credit > 0 {
                    self.credit -= 1;
                    self.latency.pop_front()
                } else {
                    self.credit = weight;
                    self.batch.pop_front()
                }
            }
        }
    }
}

/// Everything one shard owns: its readiness loop's poller and waker, the
/// message inbox other threads reach it through, its QoS queues, tenant
/// budgets, and warm sessions.
pub(crate) struct Shard {
    pub poller: Poller,
    pub waker: Waker,
    /// Cross-thread mailbox (connection adoptions, solve completions);
    /// drained by the shard's event loop after each wakeup.
    inbox: Mutex<Vec<ShardMsg>>,
    pub queues: Mutex<QosQueues>,
    pub queue_cv: Condvar,
    tenants: Mutex<HashMap<u32, usize>>,
    pub sessions: SessionManager,
    pub counters: ShardCounters,
}

impl Shard {
    /// Post a message to this shard and wake its event loop.
    pub(crate) fn send(&self, msg: ShardMsg) {
        self.inbox.lock().unwrap().push(msg);
        self.waker.wake();
    }

    pub(crate) fn take_inbox(&self) -> Vec<ShardMsg> {
        std::mem::take(&mut *self.inbox.lock().unwrap())
    }
}

pub(crate) struct Shared {
    pub addr: SocketAddr,
    pub queue_capacity: usize,
    pub tenant_cap: usize,
    pub qos_weight: u32,
    pub max_batch: usize,
    pub service_delay: Option<Duration>,
    pub coalesce_window: Option<Duration>,
    pub shutting_down: AtomicBool,
    /// Set by the drain watcher once every admitted solve has retired;
    /// event loops then flush and close out.
    pub drained: AtomicBool,
    /// Admitted solves not yet answered (queued + executing).
    inflight: AtomicUsize,
    drain_mx: Mutex<()>,
    drain_cv: Condvar,
    counters: Counters,
    trace: Trace,
    pub shards: Vec<Shard>,
    /// Online tuner (counters + observation mailbox + winner store);
    /// `None` unless the server runs with `--tune-online`.
    pub(crate) tuner: Option<Arc<Tuner>>,
}

impl Shared {
    pub(crate) fn count_protocol_error(&self) {
        self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Admitted solves not yet answered (the tuner's idle gate reads this).
    pub(crate) fn inflight_now(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    pub(crate) fn tuner_handle(&self) -> Option<Arc<Tuner>> {
        self.tuner.clone()
    }

    fn snapshot(&self) -> ServerSnapshot {
        let sum = |f: &dyn Fn(&Shard) -> u64| -> u64 { self.shards.iter().map(f).sum() };
        ServerSnapshot {
            requests: self.counters.requests.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            exec_errors: self.counters.exec_errors.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            rejected_queue_full: self.counters.rejected_queue_full.load(Ordering::Relaxed),
            rejected_tenant: self.counters.rejected_tenant.load(Ordering::Relaxed),
            rejected_shutdown: self.counters.rejected_shutdown.load(Ordering::Relaxed),
            session_hits: sum(&|s| s.sessions.session_hits.load(Ordering::Relaxed)),
            session_misses: sum(&|s| s.sessions.session_misses.load(Ordering::Relaxed)),
            engines_created: sum(&|s| s.sessions.engines_created.load(Ordering::Relaxed)),
            queue_max_depth: self.counters.queue_max_depth.load(Ordering::Relaxed),
            tuned_applied: sum(&|s| s.sessions.tuned_applied.load(Ordering::Relaxed)),
            batches: self.counters.batches.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| {
                self.counters.batch_hist[i].load(Ordering::Relaxed)
            }),
            scenario_solves: std::array::from_fn(|i| {
                self.counters.scenario_solves[i].load(Ordering::Relaxed)
            }),
            mixed_solves: self.counters.mixed_solves.load(Ordering::Relaxed),
        }
    }

    fn shard_snapshot(&self, i: usize) -> ShardSnapshot {
        let sh = &self.shards[i];
        ShardSnapshot {
            shard: i as u64,
            accepted: sh.counters.accepted.load(Ordering::Relaxed),
            adopted: sh.counters.adopted.load(Ordering::Relaxed),
            frames: sh.counters.frames.load(Ordering::Relaxed),
            wakeups: sh.counters.wakeups.load(Ordering::Relaxed),
            dequeued_latency: sh.counters.dequeued_latency.load(Ordering::Relaxed),
            dequeued_batch: sh.counters.dequeued_batch.load(Ordering::Relaxed),
            session_hits: sh.sessions.session_hits.load(Ordering::Relaxed),
            session_misses: sh.sessions.session_misses.load(Ordering::Relaxed),
            engines_created: sh.sessions.engines_created.load(Ordering::Relaxed),
            queue_max_depth: sh.counters.queue_max_depth.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn stats_text(&self) -> String {
        let s = self.snapshot();
        let sessions: u64 = self.shards.iter().map(|sh| sh.sessions.len() as u64).sum();
        let mut t = String::new();
        for (k, v) in [
            ("requests", s.requests),
            ("ok", s.ok),
            ("exec_errors", s.exec_errors),
            ("protocol_errors", s.protocol_errors),
            ("rejected_queue_full", s.rejected_queue_full),
            ("rejected_tenant", s.rejected_tenant),
            ("rejected_shutdown", s.rejected_shutdown),
            ("session_hits", s.session_hits),
            ("session_misses", s.session_misses),
            ("engines_created", s.engines_created),
            ("queue_max_depth", s.queue_max_depth),
            ("tuned_applied", s.tuned_applied),
            ("batches", s.batches),
            ("coalesced", s.coalesced),
            ("sessions", sessions),
            ("shards", self.shards.len() as u64),
            ("mixed_solves", s.mixed_solves),
        ] {
            t.push_str(&format!("{k} {v}\n"));
        }
        for (label, v) in SCENARIO_LABELS.iter().zip(s.scenario_solves) {
            t.push_str(&format!("scenario_{label} {v}\n"));
        }
        if let Some(tuner) = &self.tuner {
            let ts = tuner.snapshot();
            let entries = tuner.store.lock().unwrap().len() as u64;
            for (k, v) in [
                ("tuner_trials", ts.trials),
                ("tuner_discarded_faulted", ts.discarded_faulted),
                ("tuner_deferred_busy", ts.deferred_busy),
                ("tuner_winners", ts.winners),
                ("tuner_fingerprints", ts.fingerprints),
                ("tuner_observed", ts.observed),
                ("tuner_trial_queue_peak", ts.trial_queue_peak),
                ("tuner_leaked_trials", ts.leaked_trials),
                ("tuner_store_entries", entries),
            ] {
                t.push_str(&format!("{k} {v}\n"));
            }
        }
        t
    }

    /// Flip the drain flag and wake everything that needs to observe it:
    /// the drain watcher, parked workers, and every shard's event loop
    /// (which closes the listener). No self-connection — the eventfd waker
    /// interrupts a blocked `epoll_wait` directly.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let _g = self.drain_mx.lock().unwrap();
            self.drain_cv.notify_all();
        }
        for shard in &self.shards {
            shard.queue_cv.notify_all();
            shard.waker.wake();
        }
    }

    /// Route a finished response frame back to the connection that asked
    /// for it (crossing from a worker thread into the owning shard's event
    /// loop). If the connection died meanwhile, the frame is dropped there.
    fn complete(&self, shard: usize, conn: u64, seq: u64, opcode: u8, payload: &[u8]) {
        self.shards[shard].send(ShardMsg::Complete {
            conn,
            seq,
            frame: protocol::frame_bytes(opcode, payload),
        });
    }

    /// Worker side: run one engine pass over every grid of `jobs` (all
    /// plan-shape-equal — a single job, or several coalesced by the window)
    /// and answer each job with exactly one frame.
    fn process_batch(&self, shard_id: usize, mut jobs: Vec<Job>) {
        let total_rhs: usize = jobs.iter().map(Job::rhs).sum();
        self.counters.record_pass(total_rhs, jobs.len());
        for job in &jobs {
            let wait_ns = job.enqueued.elapsed().as_nanos() as u64;
            self.trace
                .record_span("admission-queue", "server", wait_ns, 0, 0);
        }
        if let Some(d) = self.service_delay {
            std::thread::sleep(d);
        }
        let t0 = Instant::now();
        let req0 = &jobs[0].reqs[0];
        let tag = format!("{}[{}]", req0.config().tag(), req0.variant_enum().label());
        match self.solve_batch(shard_id, &mut jobs) {
            Ok(mut vs) => {
                let elapsed_ns = t0.elapsed().as_nanos() as u64;
                // Hand grids back in request order, draining front to back.
                for job in &jobs {
                    let rest = vs.split_off(job.rhs());
                    let grids = std::mem::replace(&mut vs, rest);
                    self.counters.ok.fetch_add(job.rhs() as u64, Ordering::Relaxed);
                    let req = &job.reqs[0];
                    self.counters.scenario_solves[req.scenario as usize]
                        .fetch_add(job.rhs() as u64, Ordering::Relaxed);
                    if req.mixed {
                        self.counters
                            .mixed_solves
                            .fetch_add(job.rhs() as u64, Ordering::Relaxed);
                    }
                    match job.op {
                        JobOp::Batch => {
                            let payload = protocol::BatchSolveResponse {
                                elapsed_ns,
                                vs: grids,
                            }
                            .encode();
                            self.complete(
                                job.shard,
                                job.conn,
                                job.seq,
                                protocol::OP_SOLVE_BATCH_OK,
                                &payload,
                            );
                        }
                        JobOp::Solve | JobOp::SolveScenario => {
                            let v = grids.into_iter().next().expect("one grid per single job");
                            let payload = protocol::SolveResponse { elapsed_ns, v }.encode();
                            let opcode = if job.op == JobOp::SolveScenario {
                                protocol::OP_SOLVE_SCENARIO_OK
                            } else {
                                protocol::OP_SOLVE_OK
                            };
                            self.complete(job.shard, job.conn, job.seq, opcode, &payload);
                        }
                    }
                }
            }
            Err((code, msg)) => {
                // One typed error frame per job: a mid-batch fault fails
                // every grid of the pass, but each job still gets exactly
                // one answer on its own connection.
                for job in &jobs {
                    if code == ErrorCode::ExecFailed {
                        self.counters.exec_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let payload = protocol::encode_error(code, &msg);
                    self.complete(job.shard, job.conn, job.seq, protocol::OP_ERROR, &payload);
                }
            }
        }
        let cells: u64 = jobs
            .iter()
            .flat_map(|j| j.reqs.iter())
            .map(|r| r.f.len() as u64 * r.iters as u64)
            .sum();
        self.trace
            .record_span(&tag, "request", t0.elapsed().as_nanos() as u64, 0, cells);
        // Retire strictly after every completion is posted: the drain
        // watcher may observe inflight == 0 the instant the last retire
        // lands, and the event loops must then find the completions already
        // in their inboxes.
        for job in &jobs {
            self.retire(job.shard, job.reqs[0].tenant);
        }
    }

    /// One lease from the executing shard's session manager, one batched
    /// engine pass per cycle, every grid of every job swept together.
    /// Grids come back flattened in job order. The request `v` vectors are
    /// *taken* (not cloned) as the initial guesses — the wire payload was
    /// already the only copy, so the whole path from socket to engine is
    /// one decode copy.
    fn solve_batch(
        &self,
        shard_id: usize,
        jobs: &mut [Job],
    ) -> Result<Vec<Vec<f64>>, (ErrorCode, String)> {
        let (cfg, variant, iters, spec, coeff) = {
            let req0 = &jobs[0].reqs[0];
            let spec = ScenarioSpec {
                scenario: Scenario::from_wire_id(req0.scenario)
                    .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?,
                mixed: req0.mixed,
            };
            let coeff = (!req0.coeff.is_empty()).then(|| req0.coeff.clone());
            (req0.config(), req0.variant_enum(), req0.iters, spec, coeff)
        };
        let sessions = &self.shards[shard_id].sessions;
        let mut lease = sessions
            .acquire_scenario(&cfg, variant, spec, coeff.as_deref())
            .map_err(|errs| (ErrorCode::CompileFailed, errs.join("; ")))?;
        let mut vs: Vec<Vec<f64>> = jobs
            .iter_mut()
            .flat_map(|j| j.reqs.iter_mut())
            .map(|r| std::mem::take(&mut r.v))
            .collect();
        let fs: Vec<&[f64]> = jobs
            .iter()
            .flat_map(|j| j.reqs.iter())
            .map(|r| r.f.as_slice())
            .collect();
        for i in 0..iters {
            if let Err(e) = lease.runner.cycle_batch_with_stats(&mut vs, &fs) {
                // Typed errors leave the engine usable; keep the warm state.
                sessions.release(lease);
                return Err((ErrorCode::ExecFailed, format!("cycle {i}: {e}")));
            }
        }
        // Sample the successful solve for the online tuner (cheap push; the
        // tuner thread opens/advances the per-fingerprint search).
        if let Some(tuner) = &self.tuner {
            tuner.observe(Observation {
                pfp: lease.plan_fp,
                cfg: cfg.clone(),
                variant,
            });
        }
        sessions.release(lease);
        Ok(vs)
    }

    /// Release one unit of tenant budget and wake the drain watcher.
    fn retire(&self, shard_id: usize, tenant: u32) {
        {
            let mut t = self.shards[shard_id].tenants.lock().unwrap();
            if let Some(c) = t.get_mut(&tenant) {
                *c -= 1;
                if *c == 0 {
                    t.remove(&tenant);
                }
            }
        }
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        if self.shutting_down.load(Ordering::SeqCst) {
            let _g = self.drain_mx.lock().unwrap();
            self.drain_cv.notify_all();
        }
    }

    /// Admission for one decoded job (a single solve or a client batch,
    /// which occupies one queue slot and one unit of tenant budget) into
    /// `shard_id`'s queues. On success the job is queued; the response
    /// will arrive at `(conn, seq)` via a [`ShardMsg::Complete`].
    pub(crate) fn admit(
        &self,
        shard_id: usize,
        conn: u64,
        seq: u64,
        reqs: Vec<SolveRequest>,
        op: JobOp,
    ) -> Result<(), (ErrorCode, String)> {
        let shard = &self.shards[shard_id];
        let tenant = reqs[0].tenant;
        if self.shutting_down.load(Ordering::SeqCst) {
            self.counters
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err((ErrorCode::ShuttingDown, "server is draining".to_string()));
        }
        {
            let mut t = shard.tenants.lock().unwrap();
            let c = t.entry(tenant).or_insert(0);
            if *c >= self.tenant_cap {
                drop(t);
                self.counters
                    .rejected_tenant
                    .fetch_add(1, Ordering::Relaxed);
                return Err((
                    ErrorCode::TenantLimit,
                    format!(
                        "tenant {} already has {} solves in flight",
                        tenant, self.tenant_cap
                    ),
                ));
            }
            *c += 1;
        }
        let class = match op {
            JobOp::Batch => QosClass::Batch,
            JobOp::Solve | JobOp::SolveScenario => QosClass::Latency,
        };
        {
            let mut q = shard.queues.lock().unwrap();
            if q.class_len(class) >= self.queue_capacity {
                drop(q);
                self.counters
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                self.retire_tenant_only(shard_id, tenant);
                return Err((
                    ErrorCode::QueueFull,
                    format!(
                        "{} admission queue at capacity {}",
                        class.label(),
                        self.queue_capacity
                    ),
                ));
            }
            self.counters
                .requests
                .fetch_add(reqs.len() as u64, Ordering::Relaxed);
            self.inflight.fetch_add(1, Ordering::SeqCst);
            q.deque_mut(class).push_back(Job {
                key: shape_key(&reqs[0]),
                reqs,
                op,
                shard: shard_id,
                conn,
                seq,
                enqueued: Instant::now(),
            });
            let depth = q.len() as u64;
            self.counters.bump_depth(depth);
            shard.counters.queue_max_depth.fetch_max(depth, Ordering::Relaxed);
        }
        shard.queue_cv.notify_one();
        Ok(())
    }

    fn retire_tenant_only(&self, shard_id: usize, tenant: u32) {
        let mut t = self.shards[shard_id].tenants.lock().unwrap();
        if let Some(c) = t.get_mut(&tenant) {
            *c -= 1;
            if *c == 0 {
                t.remove(&tenant);
            }
        }
    }
}

/// Pull queued jobs whose plan shape equals `jobs[0]`'s into `jobs`, up to
/// `max_batch` total grids. The hash key is a fast filter; the field-level
/// [`SolveRequest::same_plan_shape`] check guards against collisions.
fn drain_same_shape(q: &mut VecDeque<Job>, jobs: &mut Vec<Job>, max_batch: usize) {
    let mut total: usize = jobs.iter().map(Job::rhs).sum();
    let mut i = 0;
    while i < q.len() && total < max_batch {
        let candidate = &q[i];
        if candidate.key == jobs[0].key
            && candidate.reqs[0].same_plan_shape(&jobs[0].reqs[0])
            && total + candidate.rhs() <= max_batch
        {
            let job = q.remove(i).expect("index checked");
            total += job.rhs();
            jobs.push(job);
        } else {
            i += 1;
        }
    }
}

fn worker_loop(sh: Arc<Shared>, shard_id: usize) {
    let shard = &sh.shards[shard_id];
    loop {
        let jobs = {
            let mut q = shard.queues.lock().unwrap();
            let first = loop {
                if let Some(j) = q.pop_weighted(sh.qos_weight) {
                    break j;
                }
                if sh.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = shard.queue_cv.wait(q).unwrap();
            };
            let class = first.class();
            let mut jobs = vec![first];
            if let Some(window) = sh.coalesce_window {
                // Coalesce same-shape queued jobs of the same QoS class
                // into this pass: merge whatever is already queued, then
                // (window > 0) keep the pass open until the deadline or the
                // batch is full. The deadline bounds the added latency — no
                // request waits more than `window` beyond its natural queue
                // residency.
                let deadline = Instant::now() + window;
                loop {
                    drain_same_shape(q.deque_mut(class), &mut jobs, sh.max_batch);
                    let total: usize = jobs.iter().map(Job::rhs).sum();
                    if total >= sh.max_batch || sh.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) =
                        shard.queue_cv.wait_timeout(q, deadline - now).unwrap();
                    q = guard;
                    if timeout.timed_out() {
                        drain_same_shape(q.deque_mut(class), &mut jobs, sh.max_batch);
                        break;
                    }
                }
            }
            jobs
        };
        let n = jobs.len() as u64;
        match jobs[0].class() {
            QosClass::Latency => shard.counters.dequeued_latency.fetch_add(n, Ordering::Relaxed),
            QosClass::Batch => shard.counters.dequeued_batch.fetch_add(n, Ordering::Relaxed),
        };
        sh.process_batch(shard_id, jobs);
    }
}

/// Waits out the drain: once shutdown begins, watches `inflight` fall to
/// zero, then publishes `drained` and wakes every shard so the event loops
/// release parked shutdown ACKs and close out.
fn drain_watcher(sh: Arc<Shared>) {
    {
        let mut g = sh.drain_mx.lock().unwrap();
        while !sh.shutting_down.load(Ordering::SeqCst) {
            g = sh.drain_cv.wait(g).unwrap();
        }
        while sh.inflight.load(Ordering::SeqCst) != 0 {
            let (guard, _) = sh
                .drain_cv
                .wait_timeout(g, Duration::from_millis(10))
                .unwrap();
            g = guard;
        }
    }
    sh.drained.store(true, Ordering::SeqCst);
    {
        let _g = sh.drain_mx.lock().unwrap();
        sh.drain_cv.notify_all();
    }
    for shard in &sh.shards {
        shard.queue_cv.notify_all();
        shard.waker.wake();
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::begin_shutdown`] (or send an [`protocol::OP_SHUTDOWN`]
/// frame) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.shared.snapshot()
    }

    /// Current per-shard event-core counters, one entry per shard.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        (0..self.shared.shards.len())
            .map(|i| self.shared.shard_snapshot(i))
            .collect()
    }

    /// Current online-tuner counters (`None` unless `--tune-online`).
    pub fn tuner_snapshot(&self) -> Option<gmg_trace::TunerSnapshot> {
        self.shared.tuner.as_ref().map(|t| t.snapshot())
    }

    /// A copy of the shared tuned store as the tuner has grown it so far
    /// (`None` when the server has no store at all).
    pub fn tuned_store(&self) -> Option<TunedStore> {
        self.shared
            .tuner
            .as_ref()
            .map(|t| t.store.lock().unwrap().clone())
    }

    /// Flip the drain flag (the in-process equivalent of an
    /// [`protocol::OP_SHUTDOWN`] frame, or of SIGTERM in a supervisor).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the drain to complete, stop every thread, publish final
    /// counters into the trace, and return them.
    pub fn join(mut self) -> ServerSnapshot {
        // If nobody initiated shutdown, this blocks until someone does —
        // that is the serve-forever mode of the CLI.
        {
            let mut g = self.shared.drain_mx.lock().unwrap();
            while !self.shared.shutting_down.load(Ordering::SeqCst) {
                g = self.shared.drain_cv.wait(g).unwrap();
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let snap = self.shared.snapshot();
        self.shared.trace.record_server(&snap);
        let shards: Vec<ShardSnapshot> = (0..self.shared.shards.len())
            .map(|i| self.shared.shard_snapshot(i))
            .collect();
        self.shared.trace.record_shards(&shards);
        if let Some(tuner) = &self.shared.tuner {
            self.shared.trace.record_tuner(&tuner.snapshot());
        }
        let cache = polymg::PlanCache::global();
        let (hits, misses) = cache.counters();
        self.shared
            .trace
            .record_plan_cache(hits, misses, cache.evictions());
        snap
    }
}

/// Bind and start the service.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let nshards = config.shards.max(1);
    // One tuned store shared by every shard's session manager AND the
    // online tuner, so a winner recorded anywhere applies to the next
    // acquire on any shard. `--tune-online` without a seed store starts
    // from an empty one.
    let tuned_store: Option<Arc<Mutex<TunedStore>>> = match (&config.tuned, &config.tuner) {
        (Some(t), _) => Some(Arc::new(Mutex::new(t.clone()))),
        (None, Some(_)) => Some(Arc::new(Mutex::new(TunedStore::new()))),
        (None, None) => None,
    };
    let tuner = config.tuner.clone().map(|tc| {
        Arc::new(Tuner::new(
            tc,
            Arc::clone(tuned_store.as_ref().expect("store exists when tuning")),
            config.engine_threads,
            config.chaos,
            config.fast_math,
        ))
    });
    let mut shards = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        shards.push(Shard {
            poller: Poller::new()?,
            waker: Waker::new()?,
            inbox: Mutex::new(Vec::new()),
            queues: Mutex::new(QosQueues::new(config.qos_weight.max(1))),
            queue_cv: Condvar::new(),
            tenants: Mutex::new(HashMap::new()),
            sessions: SessionManager::with_shared_store(
                tuned_store.clone(),
                config.chaos,
                config.engine_threads,
                workers,
                config.simd,
                config.fast_math,
            ),
            counters: ShardCounters::default(),
        });
    }
    let shared = Arc::new(Shared {
        addr,
        queue_capacity: config.queue_capacity.max(1),
        tenant_cap: config.tenant_cap.max(1),
        qos_weight: config.qos_weight.max(1),
        max_batch: config.max_batch.max(1),
        service_delay: config.service_delay,
        coalesce_window: config.coalesce_window,
        shutting_down: AtomicBool::new(false),
        drained: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        drain_mx: Mutex::new(()),
        drain_cv: Condvar::new(),
        counters: Counters::default(),
        trace: config.trace,
        shards,
        tuner,
    });

    let mut threads = Vec::with_capacity(nshards * (workers + 1) + 1);
    let mut listener = Some(listener);
    for id in 0..nshards {
        let sh = Arc::clone(&shared);
        let l = if id == 0 { listener.take() } else { None };
        threads.push(
            std::thread::Builder::new()
                .name(format!("gmg-server-shard-{id}"))
                .spawn(move || crate::shard::event_loop(sh, id, l))
                .expect("spawn shard event loop"),
        );
        for w in 0..workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gmg-server-worker-{id}-{w}"))
                    .spawn(move || worker_loop(sh, id))
                    .expect("spawn worker"),
            );
        }
    }
    let sh = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("gmg-server-drain".to_string())
            .spawn(move || drain_watcher(sh))
            .expect("spawn drain watcher"),
    );
    if shared.tuner.is_some() {
        let sh = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gmg-server-tuner".to_string())
                .spawn(move || crate::tuner::tuner_loop(sh))
                .expect("spawn tuner"),
        );
    }

    Ok(ServerHandle { shared, threads })
}

/// Render a one-line human summary of a snapshot (CLI shutdown banner).
pub fn summarize(s: &ServerSnapshot, out: &mut impl Write) -> std::io::Result<()> {
    writeln!(
        out,
        "gmg-server: {} requests ({} ok, {} exec errors), rejected {} queue-full / {} tenant / {} shutdown, \
         sessions {} hits / {} misses ({} engines), peak queue depth {}, tuned applied {}, \
         {} batched passes ({} coalesced)",
        s.requests,
        s.ok,
        s.exec_errors,
        s.rejected_queue_full,
        s.rejected_tenant,
        s.rejected_shutdown,
        s.session_hits,
        s.session_misses,
        s.engines_created,
        s.queue_max_depth,
        s.tuned_applied,
        s.batches,
        s.coalesced
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_tenant_is_stable_and_in_range() {
        for nshards in [1usize, 2, 3, 8] {
            for tenant in 0..64u32 {
                let s = shard_for_tenant(tenant, nshards);
                assert!(s < nshards);
                assert_eq!(s, shard_for_tenant(tenant, nshards), "must be deterministic");
            }
        }
        // single shard degenerates to 0 for every tenant
        assert!(
            (0..100u32).all(|t| shard_for_tenant(t, 1) == 0),
            "nshards=1 must pin everything to shard 0"
        );
        // a handful of tenants spread over >1 shard (not all colliding)
        let spread: std::collections::HashSet<usize> =
            (0..32u32).map(|t| shard_for_tenant(t, 4)).collect();
        assert!(spread.len() > 1, "hash must actually distribute tenants");
    }

    #[test]
    fn weighted_dequeue_interleaves_and_stays_work_conserving() {
        fn job(batched: bool, tag: u64) -> Job {
            Job {
                reqs: Vec::new(),
                op: if batched { JobOp::Batch } else { JobOp::Solve },
                key: tag,
                shard: 0,
                conn: 0,
                seq: tag,
                enqueued: Instant::now(),
            }
        }
        let weight = 2;
        let mut q = QosQueues::new(weight);
        for i in 0..6 {
            q.deque_mut(QosClass::Latency).push_back(job(false, i));
        }
        for i in 0..6 {
            q.deque_mut(QosClass::Batch).push_back(job(true, 100 + i));
        }
        // contention: weight latency pops, then one batch pop, repeating
        let order: Vec<bool> = std::iter::from_fn(|| q.pop_weighted(weight))
            .map(|j| j.op == JobOp::Batch)
            .collect();
        assert_eq!(order.len(), 12);
        assert_eq!(
            &order[..9],
            &[false, false, true, false, false, true, false, false, true],
            "2:1 weighted interleave while both classes wait"
        );
        // after latency empties, remaining batch jobs run back to back
        assert!(order[9..].iter().all(|&b| b), "work-conserving tail");

        // batch alone never starves with an empty latency queue
        let mut q = QosQueues::new(weight);
        q.deque_mut(QosClass::Batch).push_back(job(true, 0));
        assert!(q.pop_weighted(weight).is_some());
    }
}
