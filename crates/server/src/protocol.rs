//! Wire protocol for the solve service.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [u32 payload_len LE] [u8 opcode] [payload bytes …]
//! ```
//!
//! `payload_len` counts only the payload (not the opcode byte), and is
//! bounded by [`MAX_FRAME`] so a corrupt or hostile header cannot make the
//! server allocate gigabytes. Multi-byte integers are little-endian
//! throughout; grids travel as raw `f64` bit patterns, which is what makes
//! the end-to-end bitwise verification in `loadgen` meaningful.
//!
//! Request opcodes are `0x0_`, responses `0x8_`; [`OP_ERROR`] is the single
//! typed-failure response (`[u16 code][utf8 message]`). A malformed *frame*
//! (truncated header, oversized length) poisons the connection and it is
//! closed after an error frame is attempted; a malformed *payload* inside a
//! well-formed frame only fails that request — the connection stays usable.

use std::io::{Read, Write};

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use polymg::{Scenario, Variant};

/// Hard bound on a frame payload (64 MiB — a 2047² 2-D grid pair with
/// headroom). Anything larger is rejected before allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Request: run a solve (payload = [`SolveRequest`]).
pub const OP_SOLVE: u8 = 0x01;
/// Request: liveness probe; payload is echoed back.
pub const OP_PING: u8 = 0x02;
/// Request: server counters as `key value` lines.
pub const OP_STATS: u8 = 0x03;
/// Request: drain in-flight solves, then acknowledge and stop.
pub const OP_SHUTDOWN: u8 = 0x04;
/// Request: run N same-shape solves in one batched engine pass (payload =
/// [`BatchSolveRequest`]). Answered by [`OP_SOLVE_BATCH_OK`] with all N
/// results, or by one [`OP_ERROR`] frame for the whole batch.
pub const OP_SOLVE_BATCH: u8 = 0x05;
/// Request: run a scenario solve (payload = [`SolveRequest`] in the
/// extended encoding produced by [`SolveRequest::encode_scenario`]). Adds a
/// scenario id, a mixed-precision flag and an optional coefficient grid to
/// the plain SOLVE shape. Answered by [`OP_SOLVE_SCENARIO_OK`].
pub const OP_SOLVE_SCENARIO: u8 = 0x06;

/// Response to [`OP_SOLVE`] (payload = [`SolveResponse`]).
pub const OP_SOLVE_OK: u8 = 0x81;
/// Response to [`OP_PING`].
pub const OP_PONG: u8 = 0x82;
/// Response to [`OP_STATS`].
pub const OP_STATS_OK: u8 = 0x83;
/// Response to [`OP_SHUTDOWN`], sent once the server is drained.
pub const OP_SHUTDOWN_ACK: u8 = 0x84;
/// Response to [`OP_SOLVE_BATCH`] (payload = [`BatchSolveResponse`]).
pub const OP_SOLVE_BATCH_OK: u8 = 0x85;
/// Response to [`OP_SOLVE_SCENARIO`] (payload = [`SolveResponse`]).
pub const OP_SOLVE_SCENARIO_OK: u8 = 0x86;
/// Typed failure: `[u16 code][utf8 message]`.
pub const OP_ERROR: u8 = 0xEE;

/// Hard bound on the RHS count of one [`OP_SOLVE_BATCH`] frame. A batch of
/// 64 finest 2-D grids already saturates [`MAX_FRAME`]; anything above is a
/// hostile or buggy client.
pub const MAX_BATCH: usize = 64;

/// Typed reasons a request can fail without killing the connection or the
/// server. The `u16` values are the wire encoding and must stay stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was unreadable (truncated, oversized). The
    /// connection is closed after this is sent.
    BadFrame = 1,
    /// The payload of a well-formed SOLVE frame failed to decode/validate.
    BadRequest = 2,
    /// The admission queue is at capacity — back off and retry.
    QueueFull = 3,
    /// The tenant already has its maximum number of solves in flight.
    TenantLimit = 4,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown = 5,
    /// Plan compilation failed for the requested configuration.
    CompileFailed = 6,
    /// The solve started but surfaced a typed `ExecError` (including
    /// injected chaos faults).
    ExecFailed = 7,
    /// The request frame's opcode is not part of the protocol.
    UnknownOpcode = 8,
    /// Server-side invariant failure (reply channel died, …).
    Internal = 9,
}

impl ErrorCode {
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::QueueFull,
            4 => ErrorCode::TenantLimit,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::CompileFailed,
            7 => ErrorCode::ExecFailed,
            8 => ErrorCode::UnknownOpcode,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }

    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::TenantLimit => "tenant-limit",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::CompileFailed => "compile-failed",
            ErrorCode::ExecFailed => "exec-failed",
            ErrorCode::UnknownOpcode => "unknown-opcode",
            ErrorCode::Internal => "internal",
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug)]
pub struct Frame {
    pub opcode: u8,
    pub payload: Vec<u8>,
}

/// Why [`read_frame`] could not produce a frame. `Closed` is the clean
/// case (EOF exactly at a frame boundary); everything else is a protocol
/// violation or transport failure.
#[derive(Debug)]
pub enum FrameError {
    /// Peer closed the connection between frames.
    Closed,
    /// Peer disconnected mid-frame (inside the header or payload).
    Truncated(&'static str),
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized(u32),
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated(at) => write!(f, "frame truncated in {at}"),
            FrameError::Oversized(len) => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_FRAME}")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Read until `buf` is full. Distinguishes EOF-before-any-byte (`Ok(false)`
/// when `allow_clean_eof`) from EOF mid-buffer (`Truncated`).
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
    allow_clean_eof: bool,
) -> Result<bool, FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && allow_clean_eof {
                    return Ok(false);
                }
                return Err(FrameError::Truncated(what));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. Blocks until a full frame arrives or the peer fails.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut head = [0u8; 5];
    if !read_full(r, &mut head, "header", true)? {
        return Err(FrameError::Closed);
    }
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let opcode = head[4];
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, "payload", false)?;
    Ok(Frame { opcode, payload })
}

/// Encode one frame (header + payload) into a single buffer.
pub fn frame_bytes(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(opcode);
    buf.extend_from_slice(payload);
    buf
}

/// Write one frame (single buffered write so a frame is never interleaved).
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&frame_bytes(opcode, payload))?;
    w.flush()
}

/// Incremental frame boundary check against a receive buffer.
///
/// * `Ok(None)` — not enough bytes yet to know (header incomplete).
/// * `Ok(Some((opcode, total)))` — a frame starts at `buf[0]` and spans
///   `total` bytes (`5 + payload_len`); the payload may still be partial
///   (`buf.len() < total`), but the caller now knows how much to wait for.
/// * `Err(len)` — the header declares a payload larger than [`MAX_FRAME`];
///   the connection must be poisoned without allocating.
pub fn frame_boundary(buf: &[u8]) -> Result<Option<(u8, usize)>, u32> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME {
        return Err(len);
    }
    Ok(Some((buf[4], 5 + len as usize)))
}

/// Encode an [`OP_ERROR`] payload.
pub fn encode_error(code: ErrorCode, msg: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + msg.len());
    p.extend_from_slice(&(code as u16).to_le_bytes());
    p.extend_from_slice(msg.as_bytes());
    p
}

/// Decode an [`OP_ERROR`] payload.
pub fn decode_error(payload: &[u8]) -> Option<(ErrorCode, String)> {
    if payload.len() < 2 {
        return None;
    }
    let code = ErrorCode::from_u16(u16::from_le_bytes([payload[0], payload[1]]))?;
    Some((code, String::from_utf8_lossy(&payload[2..]).into_owned()))
}

/// Little-endian cursor over a payload; every accessor is bounds-checked so
/// a short payload yields a typed decode error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload too short: need {n} bytes for {what} at offset {}",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>, String> {
        let b = self.take(n * 8, what)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// A solve request: one multigrid configuration plus the initial guess `v`
/// and right-hand side `f` (ghost layers included, finest level).
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// Tenant id for per-tenant admission control.
    pub tenant: u32,
    /// 2 or 3.
    pub ndims: u8,
    /// 0 = V, 1 = W, 2 = F.
    pub cycle: u8,
    /// 0 = naive, 1 = opt, 2 = opt+, 3 = dtile-opt+.
    pub variant: u8,
    pub pre: u8,
    pub coarse: u8,
    pub post: u8,
    /// Cycles to run (each full multigrid cycle updates `v` in place).
    pub iters: u16,
    /// Finest interior size per dimension; must be `2^k − 1`.
    pub n: u32,
    /// Multigrid levels; 0 selects the default (4, clamped to fit `n`).
    pub levels: u32,
    /// Scenario wire id ([`Scenario::wire_id`]); plain SOLVE frames are
    /// always 0 (constant-coefficient).
    pub scenario: u8,
    /// Run the smoothing chains on the mixed-precision (f32) tier.
    pub mixed: bool,
    pub v: Vec<f64>,
    pub f: Vec<f64>,
    /// Variable-coefficient grid ("A", finest level, ghost ring included).
    /// Empty means none; only the `varcoef` scenario carries one.
    pub coeff: Vec<f64>,
}

impl SolveRequest {
    /// Shared header+grid bytes of both encodings (everything except the
    /// scenario extension fields).
    fn encode_common(&self, p: &mut Vec<u8>) {
        p.extend_from_slice(&self.tenant.to_le_bytes());
        p.push(self.ndims);
        p.push(self.cycle);
        p.push(self.variant);
        p.push(self.pre);
        p.push(self.coarse);
        p.push(self.post);
        p.extend_from_slice(&self.iters.to_le_bytes());
        p.extend_from_slice(&self.n.to_le_bytes());
        p.extend_from_slice(&self.levels.to_le_bytes());
        p.extend_from_slice(&(self.v.len() as u32).to_le_bytes());
        for &x in &self.v {
            p.extend_from_slice(&x.to_le_bytes());
        }
        for &x in &self.f {
            p.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Legacy [`OP_SOLVE`] encoding. Scenario fields are not carried; the
    /// request must be the constant-coefficient default (`scenario == 0`,
    /// `mixed == false`, no coefficient grid).
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(
            self.scenario == 0 && !self.mixed && self.coeff.is_empty(),
            "scenario requests must use encode_scenario"
        );
        let mut p = Vec::with_capacity(24 + 16 * self.v.len());
        self.encode_common(&mut p);
        p
    }

    /// [`OP_SOLVE_SCENARIO`] encoding: the legacy layout followed by
    /// `[u8 scenario][u8 mixed][u32 coeff_elems][coeff f64s]`.
    pub fn encode_scenario(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(30 + 16 * self.v.len() + 8 * self.coeff.len());
        self.encode_common(&mut p);
        p.push(self.scenario);
        p.push(self.mixed as u8);
        p.extend_from_slice(&(self.coeff.len() as u32).to_le_bytes());
        for &x in &self.coeff {
            p.extend_from_slice(&x.to_le_bytes());
        }
        p
    }

    /// Decode and fully validate a legacy [`OP_SOLVE`] payload. The checks
    /// mirror `MgConfig::new`'s assertions so a hostile payload can never
    /// panic the server.
    pub fn decode(payload: &[u8]) -> Result<SolveRequest, String> {
        SolveRequest::decode_impl(payload, false)
    }

    /// Decode and fully validate an [`OP_SOLVE_SCENARIO`] payload,
    /// including the scenario/mixed/coefficient extension and the
    /// scenario's own validation matrix.
    pub fn decode_scenario(payload: &[u8]) -> Result<SolveRequest, String> {
        SolveRequest::decode_impl(payload, true)
    }

    fn decode_impl(payload: &[u8], scenario_frame: bool) -> Result<SolveRequest, String> {
        let mut c = Cursor::new(payload);
        let tenant = c.u32("tenant")?;
        let ndims = c.u8("ndims")?;
        let cycle = c.u8("cycle")?;
        let variant = c.u8("variant")?;
        let pre = c.u8("pre")?;
        let coarse = c.u8("coarse")?;
        let post = c.u8("post")?;
        let iters = c.u16("iters")?;
        let n = c.u32("n")?;
        let levels = c.u32("levels")?;
        let elems = c.u32("elems")? as usize;

        if ndims != 2 && ndims != 3 {
            return Err(format!("ndims must be 2 or 3, got {ndims}"));
        }
        if cycle > 2 {
            return Err(format!("cycle must be 0 (V), 1 (W) or 2 (F), got {cycle}"));
        }
        if variant > 3 {
            return Err(format!("variant must be 0..=3, got {variant}"));
        }
        if iters == 0 || iters > 64 {
            return Err(format!("iters must be in 1..=64, got {iters}"));
        }
        if !(3..=8191).contains(&n) || !(n + 1).is_power_of_two() {
            return Err(format!("n must be 2^k - 1 in 3..=8191, got {n}"));
        }
        let levels = if levels == 0 {
            // default 4, clamped to the deepest hierarchy n supports
            4u32.min((n + 1).trailing_zeros().max(1))
        } else {
            levels
        };
        if !(1..=16).contains(&levels) {
            return Err(format!("levels must be in 1..=16, got {levels}"));
        }
        // same bound MgConfig::n_at asserts: coarsest (n+1) >> (levels-1)
        // must keep at least one interior point
        if (n + 1) >> (levels - 1) < 2 {
            return Err(format!("{levels} levels is too deep for n = {n}"));
        }
        if pre as usize + coarse as usize + post as usize == 0 {
            return Err("at least one smoothing step is required".to_string());
        }
        let e = n as usize + 2;
        let expect = e.pow(ndims as u32);
        if elems != expect {
            return Err(format!(
                "grid length {elems} does not match (n+2)^ndims = {expect}"
            ));
        }
        let v = c.f64_vec(elems, "v")?;
        let f = c.f64_vec(elems, "f")?;
        let (scenario, mixed, coeff) = if scenario_frame {
            let scenario = c.u8("scenario")?;
            let mixed = match c.u8("mixed")? {
                0 => false,
                1 => true,
                b => return Err(format!("mixed flag must be 0 or 1, got {b}")),
            };
            let coeff_elems = c.u32("coeff_elems")? as usize;
            if coeff_elems != 0 && coeff_elems != expect {
                return Err(format!(
                    "coefficient grid length {coeff_elems} does not match (n+2)^ndims = {expect}"
                ));
            }
            let coeff = c.f64_vec(coeff_elems, "coeff")?;
            let sc = Scenario::from_wire_id(scenario).map_err(|e| e.to_string())?;
            sc.validate(mixed, !coeff.is_empty())
                .map_err(|e| e.to_string())?;
            (scenario, mixed, coeff)
        } else {
            (0, false, Vec::new())
        };
        c.done()?;
        Ok(SolveRequest {
            tenant,
            ndims,
            cycle,
            variant,
            pre,
            coarse,
            post,
            iters,
            n,
            levels,
            scenario,
            mixed,
            v,
            f,
            coeff,
        })
    }

    /// The multigrid configuration this request describes. Only valid after
    /// [`SolveRequest::decode`]'s checks (construction asserts otherwise).
    pub fn config(&self) -> MgConfig {
        let cycle = match self.cycle {
            0 => CycleType::V,
            1 => CycleType::W,
            _ => CycleType::F,
        };
        let steps = SmoothSteps {
            pre: self.pre as usize,
            coarse: self.coarse as usize,
            post: self.post as usize,
        };
        let mut cfg = MgConfig::new(self.ndims as usize, self.n as i64, cycle, steps);
        cfg.levels = self.levels;
        cfg
    }

    pub fn variant_enum(&self) -> Variant {
        match self.variant {
            0 => Variant::Naive,
            1 => Variant::Opt,
            2 => Variant::OptPlus,
            _ => Variant::DtileOptPlus,
        }
    }

    /// The decoded scenario. Only valid after [`SolveRequest::decode`] /
    /// [`SolveRequest::decode_scenario`] (which reject unknown wire ids).
    pub fn scenario_enum(&self) -> Scenario {
        Scenario::from_wire_id(self.scenario).expect("validated on decode")
    }

    /// Does this request need the extended [`OP_SOLVE_SCENARIO`] frame, or
    /// can it ride the legacy [`OP_SOLVE`] layout?
    pub fn needs_scenario_frame(&self) -> bool {
        self.scenario != 0 || self.mixed || !self.coeff.is_empty()
    }

    /// Build a request from a configuration and grids (client side).
    pub fn from_config(
        cfg: &MgConfig,
        variant: Variant,
        tenant: u32,
        iters: u16,
        v: Vec<f64>,
        f: Vec<f64>,
    ) -> SolveRequest {
        let cycle = match cfg.cycle {
            CycleType::V => 0,
            CycleType::W => 1,
            CycleType::F => 2,
        };
        let variant = match variant {
            Variant::Naive => 0,
            Variant::Opt => 1,
            Variant::OptPlus => 2,
            Variant::DtileOptPlus => 3,
        };
        SolveRequest {
            tenant,
            ndims: cfg.ndims as u8,
            cycle,
            variant,
            pre: cfg.steps.pre as u8,
            coarse: cfg.steps.coarse as u8,
            post: cfg.steps.post as u8,
            iters,
            n: cfg.n as u32,
            levels: cfg.levels,
            scenario: 0,
            mixed: false,
            v,
            f,
            coeff: Vec::new(),
        }
    }
}

impl SolveRequest {
    /// Do two requests compile to the same plan and run the same iteration
    /// count — i.e. can they share one batched engine pass? Tenant is
    /// deliberately excluded: coalescing across tenants is allowed (each
    /// keeps its own admission charge). Scenario, precision tier and the
    /// coefficient grid (bitwise) are included: a batched pass binds one
    /// "A" grid for every lane.
    pub fn same_plan_shape(&self, other: &SolveRequest) -> bool {
        self.ndims == other.ndims
            && self.cycle == other.cycle
            && self.variant == other.variant
            && self.pre == other.pre
            && self.coarse == other.coarse
            && self.post == other.post
            && self.iters == other.iters
            && self.n == other.n
            && self.levels == other.levels
            && self.scenario == other.scenario
            && self.mixed == other.mixed
            && self.coeff.len() == other.coeff.len()
            && self
                .coeff
                .iter()
                .zip(&other.coeff)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// N same-shape solves in one frame: `[u16 count]` then per request
/// `[u32 len][SolveRequest bytes]`. All embedded requests must agree on
/// plan shape (they run as one batched engine pass) and tenant (the frame
/// is admitted as one unit of the sender's quota).
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSolveRequest {
    pub reqs: Vec<SolveRequest>,
}

impl BatchSolveRequest {
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&(self.reqs.len() as u16).to_le_bytes());
        for req in &self.reqs {
            let bytes = req.encode();
            p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            p.extend_from_slice(&bytes);
        }
        p
    }

    /// Decode and fully validate: every embedded request passes
    /// [`SolveRequest::decode`]'s checks, the count matches the payload,
    /// and the batch is shape- and tenant-homogeneous.
    pub fn decode(payload: &[u8]) -> Result<BatchSolveRequest, String> {
        let mut c = Cursor::new(payload);
        let count = c.u16("batch count")? as usize;
        if count == 0 {
            return Err("batch count must be at least 1".to_string());
        }
        if count > MAX_BATCH {
            return Err(format!("batch count {count} exceeds maximum {MAX_BATCH}"));
        }
        let mut reqs = Vec::with_capacity(count);
        for i in 0..count {
            let len = c.u32("embedded request length")? as usize;
            let bytes = c.take(len, "embedded request")?;
            let req = SolveRequest::decode(bytes).map_err(|e| format!("batch request {i}: {e}"))?;
            reqs.push(req);
        }
        c.done()?;
        for (i, req) in reqs.iter().enumerate().skip(1) {
            if !req.same_plan_shape(&reqs[0]) {
                return Err(format!(
                    "mixed-shape batch: request {i} differs from request 0"
                ));
            }
            if req.tenant != reqs[0].tenant {
                return Err(format!(
                    "mixed-tenant batch: request {i} has tenant {}, request 0 has {}",
                    req.tenant, reqs[0].tenant
                ));
            }
        }
        Ok(BatchSolveRequest { reqs })
    }
}

/// Response to a batch: every grid solved, in request order.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSolveResponse {
    /// Server-side service time of the whole batched pass.
    pub elapsed_ns: u64,
    pub vs: Vec<Vec<f64>>,
}

impl BatchSolveResponse {
    pub fn encode(&self) -> Vec<u8> {
        let grid: usize = self.vs.first().map(|v| v.len()).unwrap_or(0);
        let mut p = Vec::with_capacity(10 + self.vs.len() * (4 + 8 * grid));
        p.extend_from_slice(&self.elapsed_ns.to_le_bytes());
        p.extend_from_slice(&(self.vs.len() as u16).to_le_bytes());
        for v in &self.vs {
            p.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for &x in v {
                p.extend_from_slice(&x.to_le_bytes());
            }
        }
        p
    }

    pub fn decode(payload: &[u8]) -> Result<BatchSolveResponse, String> {
        let mut c = Cursor::new(payload);
        let elapsed_ns = c.u64("elapsed_ns")?;
        let count = c.u16("batch count")? as usize;
        let mut vs = Vec::with_capacity(count);
        for _ in 0..count {
            let elems = c.u32("elems")? as usize;
            vs.push(c.f64_vec(elems, "v")?);
        }
        c.done()?;
        Ok(BatchSolveResponse { elapsed_ns, vs })
    }
}

/// A successful solve: the updated fine-grid solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveResponse {
    /// Server-side service time (excludes queue wait).
    pub elapsed_ns: u64,
    pub v: Vec<f64>,
}

impl SolveResponse {
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(12 + 8 * self.v.len());
        p.extend_from_slice(&self.elapsed_ns.to_le_bytes());
        p.extend_from_slice(&(self.v.len() as u32).to_le_bytes());
        for &x in &self.v {
            p.extend_from_slice(&x.to_le_bytes());
        }
        p
    }

    pub fn decode(payload: &[u8]) -> Result<SolveResponse, String> {
        let mut c = Cursor::new(payload);
        let elapsed_ns = c.u64("elapsed_ns")?;
        let elems = c.u32("elems")? as usize;
        let v = c.f64_vec(elems, "v")?;
        c.done()?;
        Ok(SolveResponse { elapsed_ns, v })
    }
}

/// Parse an [`OP_STATS_OK`] payload (`key value` lines) into pairs.
pub fn decode_stats(payload: &[u8]) -> Vec<(String, u64)> {
    let text = String::from_utf8_lossy(payload);
    text.lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let k = it.next()?;
            let v = it.next()?.parse().ok()?;
            Some((k.to_string(), v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request() -> SolveRequest {
        let cfg = MgConfig::new(2, 7, CycleType::V, SmoothSteps::s444());
        let len = (7 + 2) * (7 + 2);
        let mut cfg = cfg;
        cfg.levels = 2;
        SolveRequest::from_config(&cfg, Variant::OptPlus, 3, 2, vec![0.5; len], vec![1.5; len])
    }

    #[test]
    fn solve_request_round_trips() {
        let req = small_request();
        let back = SolveRequest::decode(&req.encode()).expect("decode");
        assert_eq!(back, req);
        assert_eq!(back.config().tag(), "V-2D-4-4-4");
    }

    #[test]
    fn solve_response_round_trips() {
        let resp = SolveResponse {
            elapsed_ns: 123_456,
            v: vec![1.0, -2.5, f64::MIN_POSITIVE],
        };
        let back = SolveResponse::decode(&resp.encode()).expect("decode");
        assert_eq!(back, resp);
    }

    #[test]
    fn decode_rejects_malformed_requests() {
        let good = small_request().encode();
        // truncated payload
        assert!(SolveRequest::decode(&good[..10]).is_err());
        // trailing garbage
        let mut long = good.clone();
        long.push(0);
        assert!(SolveRequest::decode(&long).is_err());
        // n not 2^k - 1
        let mut req = small_request();
        req.n = 8;
        assert!(SolveRequest::decode(&req.encode())
            .unwrap_err()
            .contains("2^k"));
        // grid length mismatch
        let mut req = small_request();
        req.v.pop();
        req.f.pop();
        assert!(SolveRequest::decode(&req.encode()).is_err());
        // too many levels for n
        let mut req = small_request();
        req.levels = 5;
        assert!(SolveRequest::decode(&req.encode())
            .unwrap_err()
            .contains("too deep"));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"hello").unwrap();
        write_frame(&mut buf, OP_STATS, b"").unwrap();
        let mut r = &buf[..];
        let f1 = read_frame(&mut r).unwrap();
        assert_eq!((f1.opcode, f1.payload.as_slice()), (OP_PING, &b"hello"[..]));
        let f2 = read_frame(&mut r).unwrap();
        assert_eq!(f2.opcode, OP_STATS);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));

        // header declaring an absurd length is rejected without allocating
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut bad = huge.to_vec();
        bad.push(OP_PING);
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::Oversized(_))
        ));

        // EOF inside the header is Truncated, not Closed
        let partial = [1u8, 0];
        assert!(matches!(
            read_frame(&mut &partial[..]),
            Err(FrameError::Truncated("header"))
        ));
    }

    #[test]
    fn frame_boundary_tracks_partial_frames() {
        let buf = frame_bytes(OP_PING, b"hello");
        // fewer than 5 bytes: undecidable
        assert_eq!(frame_boundary(&buf[..4]), Ok(None));
        // header visible: boundary known even while the payload is partial
        assert_eq!(frame_boundary(&buf[..5]), Ok(Some((OP_PING, 10))));
        assert_eq!(frame_boundary(&buf[..7]), Ok(Some((OP_PING, 10))));
        assert_eq!(frame_boundary(&buf), Ok(Some((OP_PING, 10))));
        // trailing bytes of a following frame do not confuse the boundary
        let mut two = buf.clone();
        two.extend_from_slice(&frame_bytes(OP_STATS, b""));
        assert_eq!(frame_boundary(&two), Ok(Some((OP_PING, 10))));
        assert_eq!(frame_boundary(&two[10..]), Ok(Some((OP_STATS, 5))));
        // oversized declarations are rejected before any allocation
        let mut bad = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bad.push(OP_PING);
        assert_eq!(frame_boundary(&bad), Err(MAX_FRAME + 1));
    }

    #[test]
    fn error_frames_round_trip() {
        let p = encode_error(ErrorCode::QueueFull, "busy");
        let (code, msg) = decode_error(&p).unwrap();
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(msg, "busy");
        assert!(decode_error(&[1]).is_none());
    }

    #[test]
    fn batch_request_round_trips() {
        let mut r0 = small_request();
        let mut r1 = small_request();
        r0.f[5] = 7.25;
        r1.v[3] = -1.5;
        let batch = BatchSolveRequest {
            reqs: vec![r0, r1],
        };
        let back = BatchSolveRequest::decode(&batch.encode()).expect("decode");
        assert_eq!(back, batch);
    }

    #[test]
    fn batch_response_round_trips() {
        let resp = BatchSolveResponse {
            elapsed_ns: 42,
            vs: vec![vec![1.0, 2.0], vec![-0.5, f64::MIN_POSITIVE]],
        };
        let back = BatchSolveResponse::decode(&resp.encode()).expect("decode");
        assert_eq!(back, resp);
    }

    #[test]
    fn batch_decode_rejects_malformed() {
        // zero count
        assert!(BatchSolveRequest::decode(&0u16.to_le_bytes())
            .unwrap_err()
            .contains("at least 1"));
        // oversized count
        let mut p = ((MAX_BATCH + 1) as u16).to_le_bytes().to_vec();
        p.extend_from_slice(&[0; 64]);
        assert!(BatchSolveRequest::decode(&p)
            .unwrap_err()
            .contains("exceeds maximum"));
        // count/payload mismatch: declares 2, carries 1
        let one = small_request().encode();
        let mut p = 2u16.to_le_bytes().to_vec();
        p.extend_from_slice(&(one.len() as u32).to_le_bytes());
        p.extend_from_slice(&one);
        assert!(BatchSolveRequest::decode(&p).is_err());
        // embedded length overruns the payload
        let mut p = 1u16.to_le_bytes().to_vec();
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        p.extend_from_slice(&one[..8]);
        assert!(BatchSolveRequest::decode(&p).is_err());
        // trailing garbage after the last embedded request
        let good = BatchSolveRequest {
            reqs: vec![small_request()],
        }
        .encode();
        let mut p = good.clone();
        p.push(0);
        assert!(BatchSolveRequest::decode(&p)
            .unwrap_err()
            .contains("trailing"));
        // a malformed embedded request names its index
        let mut bad_inner = small_request();
        bad_inner.n = 8;
        let batch = BatchSolveRequest {
            reqs: vec![small_request(), bad_inner],
        };
        assert!(BatchSolveRequest::decode(&batch.encode())
            .unwrap_err()
            .contains("batch request 1"));
        // mixed shapes are rejected
        let mut other = small_request();
        other.iters += 1;
        let batch = BatchSolveRequest {
            reqs: vec![small_request(), other],
        };
        assert!(BatchSolveRequest::decode(&batch.encode())
            .unwrap_err()
            .contains("mixed-shape"));
        // mixed tenants are rejected
        let mut other = small_request();
        other.tenant += 1;
        let batch = BatchSolveRequest {
            reqs: vec![small_request(), other],
        };
        assert!(BatchSolveRequest::decode(&batch.encode())
            .unwrap_err()
            .contains("mixed-tenant"));
    }

    #[test]
    fn same_plan_shape_ignores_tenant_only() {
        let a = small_request();
        let mut b = small_request();
        b.tenant += 9;
        b.v[0] += 1.0;
        assert!(a.same_plan_shape(&b));
        let mut c = small_request();
        c.levels += 1;
        assert!(!a.same_plan_shape(&c));
    }

    #[test]
    fn scenario_request_round_trips() {
        // varcoef with a coefficient grid
        let mut req = small_request();
        req.scenario = Scenario::VarCoef.wire_id();
        req.coeff = (0..req.v.len()).map(|i| 1.0 + 0.01 * i as f64).collect();
        let back = SolveRequest::decode_scenario(&req.encode_scenario()).expect("decode");
        assert_eq!(back, req);
        assert_eq!(back.scenario_enum(), Scenario::VarCoef);
        assert!(back.needs_scenario_frame());

        // mixed-precision constant (no coeff)
        let mut req = small_request();
        req.mixed = true;
        let back = SolveRequest::decode_scenario(&req.encode_scenario()).expect("decode");
        assert_eq!(back, req);

        // every coeff-free scenario rides the frame with an empty grid
        for sc in [Scenario::Constant, Scenario::Fmg, Scenario::Rbgs, Scenario::Chebyshev] {
            let mut req = small_request();
            req.scenario = sc.wire_id();
            let back = SolveRequest::decode_scenario(&req.encode_scenario()).expect("decode");
            assert_eq!(back.scenario_enum(), sc);
        }
    }

    #[test]
    fn scenario_decode_rejects_invalid_shapes() {
        // legacy decode never sees scenario bytes: the extended payload has
        // trailing bytes from its point of view
        let mut req = small_request();
        req.scenario = Scenario::Rbgs.wire_id();
        assert!(SolveRequest::decode(&req.encode_scenario())
            .unwrap_err()
            .contains("trailing"));

        // unknown wire id
        let mut req = small_request();
        req.scenario = 9;
        assert!(SolveRequest::decode_scenario(&req.encode_scenario())
            .unwrap_err()
            .contains("wire id"));

        // varcoef without a coefficient grid
        let mut req = small_request();
        req.scenario = Scenario::VarCoef.wire_id();
        assert!(SolveRequest::decode_scenario(&req.encode_scenario())
            .unwrap_err()
            .contains("coefficient grid"));

        // coeff on a scenario that takes none
        let mut req = small_request();
        req.coeff = vec![1.0; req.v.len()];
        assert!(SolveRequest::decode_scenario(&req.encode_scenario())
            .unwrap_err()
            .contains("takes no coefficient"));

        // mixed precision on a multi-case smoother
        let mut req = small_request();
        req.scenario = Scenario::Chebyshev.wire_id();
        req.mixed = true;
        assert!(SolveRequest::decode_scenario(&req.encode_scenario())
            .unwrap_err()
            .contains("mixed-precision"));

        // coeff grid length must match the solve grids
        let mut req = small_request();
        req.scenario = Scenario::VarCoef.wire_id();
        req.coeff = vec![1.0; 7];
        assert!(SolveRequest::decode_scenario(&req.encode_scenario())
            .unwrap_err()
            .contains("does not match"));

        // mixed flag must be a strict boolean byte
        let mut req = small_request();
        req.mixed = true;
        let mut p = req.encode_scenario();
        let mixed_at = p.len() - 4 - 1; // before [u32 coeff_elems = 0]
        assert_eq!(p[mixed_at], 1);
        p[mixed_at] = 2;
        assert!(SolveRequest::decode_scenario(&p)
            .unwrap_err()
            .contains("mixed flag"));
    }

    #[test]
    fn same_plan_shape_separates_scenarios() {
        let a = small_request();
        // scenario differs
        let mut b = small_request();
        b.scenario = Scenario::Rbgs.wire_id();
        assert!(!a.same_plan_shape(&b));
        // precision tier differs
        let mut b = small_request();
        b.mixed = true;
        assert!(!a.same_plan_shape(&b));
        // same varcoef scenario, different coefficient grid (bitwise)
        let mut c0 = small_request();
        c0.scenario = Scenario::VarCoef.wire_id();
        c0.coeff = vec![1.0; c0.v.len()];
        let mut c1 = c0.clone();
        assert!(c0.same_plan_shape(&c1));
        c1.coeff[0] = 1.5;
        assert!(!c0.same_plan_shape(&c1));
    }

    #[test]
    fn stats_payload_parses() {
        let pairs = decode_stats(b"requests 10\nok 9\nbad-line\nexec_errors 1\n");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], ("requests".to_string(), 10));
    }
}
