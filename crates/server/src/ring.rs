//! Per-connection receive ring: a compacting, contiguous byte buffer that
//! nonblocking reads append to and the incremental frame parser consumes
//! from.
//!
//! "Ring" here is logical, not a power-of-two circular buffer: frames must
//! be decoded from one contiguous slice (the zero-copy `f64` decode reads
//! straight out of it), so instead of wrapping, the buffer compacts —
//! consumed bytes at the front are reclaimed by a `copy_within` only when
//! the tail runs out of space, which for the dominant small-frame traffic
//! never happens (consuming the whole buffer resets the head for free).
//!
//! The buffer starts empty, grows to whatever the largest in-flight frame
//! needs (bounded by `MAX_FRAME` because the parser rejects oversized
//! declarations before asking for capacity), and snaps back after a large
//! frame so thousands of mostly-idle connections do not pin big allocations.

use std::io::{self, Read};

/// Bytes of tail headroom guaranteed before each read.
const MIN_READ: usize = 4096;

/// Retained capacity bound: a buffer that grew past this is released when
/// it empties (idle connections go back to costing nothing).
const RETAIN_MAX: usize = 256 * 1024;

pub(crate) struct RingBuf {
    buf: Vec<u8>,
    head: usize,
    len: usize,
}

impl RingBuf {
    pub fn new() -> RingBuf {
        RingBuf {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The unconsumed bytes, contiguous.
    pub fn available(&self) -> &[u8] {
        &self.buf[self.head..self.head + self.len]
    }

    /// Drop `n` bytes from the front (a parsed frame).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len, "consume past end of buffered data");
        self.head += n;
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
            if self.buf.len() > RETAIN_MAX {
                self.buf = Vec::new();
            }
        }
    }

    fn compact(&mut self) {
        if self.head > 0 {
            self.buf.copy_within(self.head..self.head + self.len, 0);
            self.head = 0;
        }
    }

    /// Guarantee that a frame of `total` bytes can become contiguous
    /// without further compaction (called when a parsed header promises
    /// more payload than is buffered).
    pub fn ensure_capacity(&mut self, total: usize) {
        if self.buf.len() - self.head >= total {
            return;
        }
        self.compact();
        if self.buf.len() < total {
            self.buf.resize(total, 0);
        }
    }

    /// One read into the tail (nonblocking semantics are the reader's).
    /// Returns `Ok(0)` only on EOF — the buffer always has headroom, so a
    /// zero read is never "buffer full".
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        if self.buf.len() - (self.head + self.len) < MIN_READ {
            self.compact();
            if self.buf.len() - self.len < MIN_READ {
                let grown = (self.buf.len() * 2).max(self.len + MIN_READ);
                self.buf.resize(grown, 0);
            }
        }
        let tail = self.head + self.len;
        let n = r.read(&mut self.buf[tail..])?;
        self.len += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_consume_roundtrip_with_compaction() {
        let mut ring = RingBuf::new();
        assert!(ring.is_empty());
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut src = &data[..];
        while ring.fill_from(&mut src).unwrap() > 0 {}
        assert_eq!(ring.available(), &data[..]);

        // consume in odd chunks; remaining view always matches the source
        let mut off = 0usize;
        for chunk in [1usize, 37, 4096, 999] {
            ring.consume(chunk);
            off += chunk;
            assert_eq!(ring.available(), &data[off..]);
        }
        ring.consume(ring.available().len());
        assert!(ring.is_empty());
    }

    #[test]
    fn interleaved_fill_and_consume_keeps_order() {
        let mut ring = RingBuf::new();
        let a = vec![1u8; 3000];
        let b = vec![2u8; 5000];
        let mut src = &a[..];
        while ring.fill_from(&mut src).unwrap() > 0 {}
        ring.consume(2500); // head advances; tail space shrinks
        let mut src = &b[..];
        while ring.fill_from(&mut src).unwrap() > 0 {}
        let avail = ring.available();
        assert_eq!(avail.len(), 500 + 5000);
        assert!(avail[..500].iter().all(|&x| x == 1));
        assert!(avail[500..].iter().all(|&x| x == 2));
    }

    #[test]
    fn ensure_capacity_makes_large_frames_contiguous_and_releases_after() {
        let mut ring = RingBuf::new();
        let big = RETAIN_MAX + 64;
        ring.ensure_capacity(big);
        let payload = vec![7u8; big];
        let mut src = &payload[..];
        while ring.fill_from(&mut src).unwrap() > 0 {}
        assert_eq!(ring.available().len(), big);
        ring.consume(big);
        assert!(ring.is_empty());
        // the oversized buffer was released once drained
        assert_eq!(ring.buf.capacity(), 0);
    }
}
