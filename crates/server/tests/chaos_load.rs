//! Chaos under load: with deterministic fault injection armed on every
//! server engine, each response must be either bitwise-correct or a typed
//! `ExecFailed` error frame. No partial grids, no closed connections, no
//! dead workers — and the server still drains cleanly afterwards.

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_server::loadgen::{self, LoadgenOptions, MixItem};
use gmg_server::{start, ServerConfig};
use polymg::{ChaosOptions, Variant};

#[test]
fn chaos_faults_surface_as_typed_errors_not_corruption() {
    let handle = start(ServerConfig {
        workers: 2,
        // ~40% of cycles fault at this rate — plenty of both outcomes
        chaos: Some(ChaosOptions::new(0xC4A05, 0.03)),
        ..ServerConfig::default()
    })
    .expect("start");

    let mix = vec![
        MixItem::new(MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()), Variant::OptPlus, 1),
        MixItem::new(MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()), Variant::OptPlus, 1),
    ];
    let opts = LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 3,
        requests_per_conn: 8,
        tenants: 3,
        shutdown: true,
        mix,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&opts).expect("loadgen under chaos");

    // The whole point: chaos may fail solves, but it may never corrupt one.
    assert_eq!(
        report.verify_failures,
        0,
        "a response under chaos was wrong but not an error: {}",
        report.summary()
    );
    assert_eq!(report.unexpected, 0, "{}", report.summary());
    // every admitted request was answered one way or the other
    assert_eq!(
        report.ok + report.exec_error_frames + report.dropped,
        report.requests,
        "{}",
        report.summary()
    );
    assert!(report.ok > 0, "nothing succeeded: {}", report.summary());

    let snap = handle.join();
    assert_eq!(snap.exec_errors, report.exec_error_frames);
    assert_eq!(snap.ok, report.ok);
}

#[test]
fn chaos_with_batch_mix_fails_whole_batches_typed() {
    // Batched frames under chaos: a mid-batch fault must fail exactly that
    // batch with ONE typed error frame — every other response stays
    // bitwise-correct, and the grid accounting closes exactly.
    let handle = start(ServerConfig {
        workers: 2,
        chaos: Some(ChaosOptions::new(0xBA7C7A05, 0.02)),
        ..ServerConfig::default()
    })
    .expect("start");

    let mix = vec![MixItem::new(MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()), Variant::OptPlus, 1)];
    let opts = LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 3,
        requests_per_conn: 8,
        tenants: 3,
        shutdown: true,
        batch: 4,
        mix,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&opts).expect("batched loadgen under chaos");

    assert_eq!(report.verify_failures, 0, "{}", report.summary());
    assert_eq!(report.unexpected, 0, "{}", report.summary());
    assert!(report.batch_frames > 0, "{}", report.summary());
    // grid-granular accounting: every grid sent is ok, lost to a typed
    // batch failure, or dropped on backpressure — nothing vanishes
    assert_eq!(
        report.ok + report.exec_error_grids + report.dropped,
        report.requests,
        "{}",
        report.summary()
    );
    assert!(report.ok > 0, "nothing succeeded: {}", report.summary());

    let snap = handle.join();
    // error FRAMES match server-side error count (one per failed job);
    // grids answered match exactly
    assert_eq!(snap.exec_errors, report.exec_error_frames);
    assert_eq!(snap.ok, report.ok);
    assert!(snap.batches > 0, "server saw no batched passes");
    // chaos must not leak pooled slots: a failed batch releases its lease
    // and the next solve on that engine still verifies — implied by
    // verify_failures == 0 with ok > 0 above.
}
