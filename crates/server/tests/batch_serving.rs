//! End-to-end batched serving: `SOLVE_BATCH` frames answered grid-for-grid
//! bitwise-correct, server-side coalescing of same-shape singles into one
//! engine pass, and a clean verifying loadgen run with a batch mix.

use std::net::TcpStream;
use std::time::Duration;

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, DslRunner};
use gmg_server::loadgen::{self, LoadgenOptions, MixItem};
use gmg_server::protocol::{self, BatchSolveRequest, BatchSolveResponse, SolveRequest};
use gmg_server::{start, ServerConfig};
use polymg::{PipelineOptions, Variant};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s
}

/// B perturbed (v0, f) pairs for one shape plus their independently
/// solved single-RHS reference bit patterns.
#[allow(clippy::type_complexity)]
fn perturbed_problems(
    cfg: &MgConfig,
    variant: Variant,
    iters: u16,
    b: usize,
) -> (Vec<(Vec<f64>, Vec<f64>)>, Vec<Vec<u64>>) {
    let (v0, f, _) = setup_poisson(cfg);
    let mut problems = Vec::with_capacity(b);
    let mut refs = Vec::with_capacity(b);
    for k in 0..b {
        let mut fk = f.clone();
        for (i, x) in fk.iter_mut().enumerate() {
            let r = splitmix64((k as u64) << 32 | i as u64);
            *x += (r % 1000) as f64 * 1e-6;
        }
        let opts = PipelineOptions::for_variant(variant, cfg.ndims);
        let mut runner = DslRunner::new(cfg, opts, "batch-ref").expect("reference compile");
        let mut v = v0.clone();
        for _ in 0..iters {
            runner.cycle_with_stats(&mut v, &fk).expect("reference cycle");
        }
        refs.push(v.iter().map(|x| x.to_bits()).collect());
        problems.push((v0.clone(), fk));
    }
    (problems, refs)
}

#[test]
fn solve_batch_answers_every_grid_bitwise() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let (problems, refs) = perturbed_problems(&cfg, Variant::OptPlus, 2, 5);
    let reqs: Vec<SolveRequest> = problems
        .iter()
        .map(|(v0, f)| {
            SolveRequest::from_config(&cfg, Variant::OptPlus, 0, 2, v0.clone(), f.clone())
        })
        .collect();

    let mut s = connect(addr);
    protocol::write_frame(
        &mut s,
        protocol::OP_SOLVE_BATCH,
        &BatchSolveRequest { reqs }.encode(),
    )
    .unwrap();
    let frame = protocol::read_frame(&mut s).expect("batch response");
    assert_eq!(
        frame.opcode,
        protocol::OP_SOLVE_BATCH_OK,
        "expected SOLVE_BATCH_OK, payload: {:?}",
        protocol::decode_error(&frame.payload)
    );
    let resp = BatchSolveResponse::decode(&frame.payload).expect("decode");
    assert_eq!(resp.vs.len(), refs.len());
    for (k, (got, want)) in resp.vs.iter().zip(&refs).enumerate() {
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        assert_eq!(&gb, want, "batched grid {k} diverged from its reference");
    }

    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let f = protocol::read_frame(&mut s).expect("shutdown ack");
    assert_eq!(f.opcode, protocol::OP_SHUTDOWN_ACK);
    let snap = handle.join();
    assert_eq!(snap.requests, 5, "requests counts admitted grids");
    assert_eq!(snap.ok, 5, "ok counts answered grids");
    assert_eq!(snap.batches, 1, "one multi-RHS pass");
    assert_eq!(snap.coalesced, 0, "a single frame coalesces nothing");
    // 5 RHS lands in the 5–8 histogram bucket
    assert_eq!(snap.batch_hist[gmg_trace::batch_hist_bucket(5)], 1);
}

#[test]
fn coalescing_window_merges_same_shape_singles() {
    let handle = start(ServerConfig {
        workers: 1,
        coalesce_window: Some(Duration::from_millis(400)),
        max_batch: 8,
        // the whole burst must be admissible at once for the window to see it
        tenant_cap: 8,
        queue_capacity: 16,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (problems, refs) = perturbed_problems(&cfg, Variant::OptPlus, 1, 6);

    // a burst of same-shape singles from independent connections; the lone
    // worker's coalescing window gathers them into fewer engine passes
    let handles: Vec<_> = problems
        .into_iter()
        .map(|(v0, f)| {
            let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 0, 1, v0, f);
            std::thread::spawn(move || {
                let mut s = connect(addr);
                protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).unwrap();
                let frame = protocol::read_frame(&mut s).expect("solve response");
                assert_eq!(frame.opcode, protocol::OP_SOLVE_OK);
                protocol::SolveResponse::decode(&frame.payload)
                    .expect("decode")
                    .v
            })
        })
        .collect();
    for (k, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("client thread");
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, refs[k], "coalesced single {k} diverged from reference");
    }

    let mut s = connect(addr);
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    protocol::read_frame(&mut s).expect("shutdown ack");
    let snap = handle.join();
    assert_eq!(snap.ok, 6);
    assert!(
        snap.coalesced >= 1,
        "burst of 6 same-shape singles through 1 worker with a 400 ms window \
         coalesced nothing (batches {}, coalesced {})",
        snap.batches,
        snap.coalesced
    );
    assert!(snap.batches >= 1);
}

#[test]
fn loadgen_batch_mix_is_clean_and_exercises_batches() {
    let handle = start(ServerConfig {
        workers: 2,
        coalesce_window: Some(Duration::from_millis(20)),
        ..ServerConfig::default()
    })
    .expect("start");

    let mut w3 = MgConfig::new(3, 15, CycleType::W, SmoothSteps::s1000());
    w3.levels = 3;
    let mix = vec![
        MixItem::new(MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()), Variant::OptPlus, 2),
        MixItem::new(w3, Variant::OptPlus, 1),
    ];
    let opts = LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 4,
        requests_per_conn: 6,
        tenants: 2,
        shutdown: true,
        batch: 3,
        mix,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&opts).expect("batched loadgen");
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(report.verify_failures, 0, "{}", report.summary());
    assert!(report.batch_frames > 0, "{}", report.summary());
    // grid accounting closes exactly
    assert_eq!(
        report.ok + report.exec_error_grids + report.dropped,
        report.requests,
        "{}",
        report.summary()
    );
    // the two latency distributions are populated independently
    assert!(!report.service_ns.is_empty());
    assert_eq!(report.service_ns.len(), report.e2e_ns.len());

    let snap = handle.join();
    assert_eq!(snap.ok, report.ok);
    assert!(snap.batches > 0, "no multi-RHS pass despite batch frames");
    // bucket 0 is single-RHS passes; everything above sums to `batches`
    let multi: u64 = snap.batch_hist[1..].iter().sum();
    assert_eq!(multi, snap.batches, "histogram multi-RHS buckets vs batches");
}
