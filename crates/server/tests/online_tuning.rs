//! Online tuning end-to-end: with `--tune-online` armed, background search
//! trials run strictly on idle capacity while live traffic stays bitwise-
//! verified, winners land in the shared `TunedStore` (and its file), a
//! restarted server applies them, and chaos-faulted trials are discarded
//! as typed errors without leaks — the search still converges.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gmg_ir::ParamBindings;
use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::setup_poisson;
use gmg_server::loadgen::{self, LoadgenOptions, MixItem};
use gmg_server::{protocol, start, ServerConfig, SolveRequest, TunerConfig};
use polymg::autotune::TuneSource;
use polymg::{cache, ChaosOptions, TunedStore, Variant};

fn shape() -> MgConfig {
    MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444())
}

fn shape_fingerprint(cfg: &MgConfig) -> u64 {
    cache::pipeline_fingerprint(&build_cycle_pipeline(cfg), &ParamBindings::new())
}

fn one_shape_mix() -> Vec<MixItem> {
    vec![MixItem::new(shape(), Variant::OptPlus, 1)]
}

fn loadgen_wave(addr: &str) -> loadgen::LoadgenReport {
    let opts = LoadgenOptions {
        addr: addr.to_string(),
        connections: 2,
        requests_per_conn: 3,
        tenants: 2,
        shutdown: false,
        mix: one_shape_mix(),
        ..LoadgenOptions::default()
    };
    loadgen::run(&opts).expect("loadgen wave")
}

/// Poll the tuner counters until `pred` holds (the tuner only runs on idle
/// capacity, so progress happens between and after the load waves).
fn wait_for(
    handle: &gmg_server::ServerHandle,
    what: &str,
    pred: impl Fn(&gmg_trace::TunerSnapshot) -> bool,
) -> gmg_trace::TunerSnapshot {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snap = handle.tuner_snapshot().expect("tuner must be armed");
        if pred(&snap) {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown(handle: gmg_server::ServerHandle) -> gmg_trace::ServerSnapshot {
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let _ = protocol::read_frame(&mut s);
    handle.join()
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("polymg-tuned-{tag}-{}.json", std::process::id()))
}

#[test]
fn online_tuning_records_winner_and_stays_bitwise_clean() {
    let path = temp_store("clean");
    let _ = std::fs::remove_file(&path);
    let handle = start(ServerConfig {
        workers: 2,
        tuner: Some(TunerConfig {
            budget: 6,
            seed: 0x7e57_0901,
            store_path: Some(path.clone()),
            trial_iters: 1,
        }),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr().to_string();

    // First wave seeds the observation mailbox — every response bitwise.
    let report = loadgen_wave(&addr);
    assert!(report.is_clean(), "unclean first wave: {}", report.summary());
    assert_eq!(report.verify_failures, 0);

    // Trials begin once the server goes idle; live traffic during tuning
    // must stay bitwise-verified.
    wait_for(&handle, "first trial", |s| s.trials > 0);
    let report = loadgen_wave(&addr);
    assert!(
        report.is_clean(),
        "unclean wave during tuning: {}",
        report.summary()
    );

    // The search finishes its budget and records exactly one winner for the
    // single fingerprint this mix exercises.
    let snap = wait_for(&handle, "winner", |s| s.winners > 0);
    assert_eq!(snap.fingerprints, 1);
    assert!(snap.observed >= 6, "workers must sample solves: {snap:?}");
    assert!(snap.trials >= 1);
    assert_eq!(
        snap.trial_queue_peak, 0,
        "a trial started while requests were queued: {snap:?}"
    );
    assert_eq!(snap.leaked_trials, 0, "trial leaked pool bytes: {snap:?}");

    // The winner is in the shared store with online provenance, within the
    // budget, and visible to new sessions of the live server...
    let pfp = shape_fingerprint(&shape());
    let store = handle.tuned_store().expect("shared store");
    let entry = store.lookup(pfp, 2).expect("winner for the served shape");
    assert_eq!(entry.source, TuneSource::Online);
    assert!(entry.evals >= 1 && entry.evals <= 6, "evals {}", entry.evals);
    assert!(entry.metric > 0.0, "metric must be a measured time");

    // ...and traffic after convergence still verifies bitwise (tile, group,
    // band and the lane-safe/scalar tiers are schedule-only).
    let report = loadgen_wave(&addr);
    assert!(
        report.is_clean(),
        "unclean wave after convergence: {}",
        report.summary()
    );
    shutdown(handle);

    // The winner was persisted; a restarted server loads and applies it —
    // and the tuned schedule still matches a default-options reference
    // bitwise.
    let loaded = TunedStore::load(&path).expect("persisted store");
    assert!(loaded.lookup(pfp, 2).is_some(), "winner missing from file");
    let handle = start(ServerConfig {
        workers: 1,
        tuned: Some(loaded),
        ..ServerConfig::default()
    })
    .expect("restart");
    let cfg = shape();
    let (v, f, _) = setup_poisson(&cfg);
    let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 0, 1, v.clone(), f.clone());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).unwrap();
    let fr = protocol::read_frame(&mut s).unwrap();
    assert_eq!(fr.opcode, protocol::OP_SOLVE_OK);
    let resp = gmg_server::SolveResponse::decode(&fr.payload).unwrap();
    let mut expect = v;
    let mut reference = gmg_multigrid::solver::DslRunner::new(
        &cfg,
        polymg::PipelineOptions::for_variant(Variant::OptPlus, 2),
        "ref",
    )
    .unwrap();
    reference.cycle_with_stats(&mut expect, &f).unwrap();
    assert_eq!(
        resp.v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "online-tuned schedule changed the solution bitwise"
    );
    let snap = shutdown(handle);
    assert!(
        snap.tuned_applied > 0,
        "restarted server must apply the persisted winner"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_faulted_trials_are_discarded_typed_and_search_still_converges() {
    let path = temp_store("chaos");
    let _ = std::fs::remove_file(&path);
    let handle = start(ServerConfig {
        workers: 2,
        // high enough that several trials fault, low enough that the
        // retry-once-then-discard flow leaves measurable candidates
        chaos: Some(ChaosOptions::new(0x7e57_c4a05, 0.05)),
        tuner: Some(TunerConfig {
            budget: 6,
            seed: 0x7e57_0902,
            store_path: Some(path.clone()),
            trial_iters: 2,
        }),
        ..ServerConfig::default()
    })
    .expect("start");

    // Chaos load: responses may fail typed but never corrupt.
    let report = loadgen_wave(&handle.addr().to_string());
    assert_eq!(report.verify_failures, 0, "{}", report.summary());
    assert_eq!(report.unexpected, 0, "{}", report.summary());

    // The tuner shares the server's chaos engine knobs, so trials fault
    // too; each fault is a typed discard (no panic — the thread would die
    // and the counters freeze), no pool bytes leak, and the search still
    // finishes with a recorded winner.
    let snap = wait_for(&handle, "winner under chaos", |s| s.winners > 0);
    assert!(snap.trials >= 1, "no trial survived chaos: {snap:?}");
    assert!(
        snap.discarded_faulted > 0,
        "chaos at this rate must fault at least one trial: {snap:?}"
    );
    assert_eq!(snap.leaked_trials, 0, "faulted trial leaked: {snap:?}");
    assert_eq!(snap.trial_queue_peak, 0, "{snap:?}");

    let pfp = shape_fingerprint(&shape());
    let store = handle.tuned_store().expect("shared store");
    let entry = store.lookup(pfp, 2).expect("winner despite chaos");
    assert_eq!(entry.source, TuneSource::Online);

    let final_snap = shutdown(handle);
    assert_eq!(final_snap.ok, report.ok);
    let _ = std::fs::remove_file(&path);
}
