//! End-to-end scenario serving (DESIGN.md §18): variable-coefficient,
//! FMG, RB-GS, Chebyshev and mixed-precision requests ride the extended
//! `SOLVE_SCENARIO` frame through a live in-process server, loadgen
//! verifies every response bitwise against an in-process scenario
//! reference, and the server's per-scenario counters account for the run.

use std::net::TcpStream;

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::scenario::{coeff_field, scenario_runner, ScenarioSpec};
use gmg_multigrid::solver::setup_poisson;
use gmg_server::loadgen::{self, scenario_mix, LoadgenOptions};
use gmg_server::protocol::{self, ErrorCode};
use gmg_server::{start, ServerConfig, SolveRequest, SolveResponse};
use polymg::{PipelineOptions, Scenario, Variant};

#[test]
fn scenario_loadgen_verifies_bitwise_end_to_end() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start");
    // One item per non-constant scenario plus a mixed-precision constant
    // item: 5 shapes. Two connections x 10 requests cycle the whole mix
    // twice each, so every scenario is also a warm-session *hit* at least
    // once.
    let mix = scenario_mix(
        &[
            Scenario::VarCoef,
            Scenario::Fmg,
            Scenario::Rbgs,
            Scenario::Chebyshev,
        ],
        true,
    );
    assert_eq!(mix.len(), 5);
    let opts = LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 2,
        requests_per_conn: 10,
        tenants: 2,
        shutdown: true,
        mix,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&opts).expect("loadgen run");
    assert!(report.is_clean(), "unclean run: {}", report.summary());
    assert_eq!(report.verify_failures, 0);
    assert_eq!(report.ok, 20, "all 20 scenario requests must verify bitwise");

    let snap = handle.join();
    assert_eq!(snap.ok, 20);
    // Wire-id order: constant, varcoef, fmg, rbgs, chebyshev.
    assert!(snap.scenario_solves[0] > 0, "mixed rides a constant scenario");
    for (i, label) in ["varcoef", "fmg", "rbgs", "chebyshev"].iter().enumerate() {
        assert!(
            snap.scenario_solves[i + 1] > 0,
            "scenario {label} never served: {:?}",
            snap.scenario_solves
        );
    }
    assert!(snap.mixed_solves > 0, "mixed-precision solves must be counted");
    assert_eq!(snap.session_hits + snap.session_misses, 20);
    assert!(
        snap.session_hits >= 5,
        "second pass over the mix must reuse warm scenario sessions, got {} hits",
        snap.session_hits
    );
}

#[test]
fn varcoef_request_round_trips_the_coefficient_grid() {
    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let (v, f, _) = setup_poisson(&cfg);
    let coeff = coeff_field(&cfg);

    let mut req = SolveRequest::from_config(&cfg, Variant::OptPlus, 3, 2, v.clone(), f.clone());
    req.scenario = Scenario::VarCoef.wire_id();
    req.coeff = coeff.clone();

    let mut s = TcpStream::connect(handle.addr()).unwrap();
    protocol::write_frame(&mut s, protocol::OP_SOLVE_SCENARIO, &req.encode_scenario()).unwrap();
    let fr = protocol::read_frame(&mut s).unwrap();
    assert_eq!(fr.opcode, protocol::OP_SOLVE_SCENARIO_OK, "scenario ok frame");
    let resp = SolveResponse::decode(&fr.payload).unwrap();

    // Bitwise against the in-process variable-coefficient reference.
    let mut runner = scenario_runner(
        &cfg,
        ScenarioSpec::new(Scenario::VarCoef),
        PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims),
        "ref",
        Some(coeff),
    )
    .unwrap();
    let mut expect = v;
    for _ in 0..2 {
        runner.cycle_with_stats(&mut expect, &f).unwrap();
    }
    assert_eq!(
        resp.v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "served varcoef solve differs bitwise from the local reference"
    );

    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let _ = protocol::read_frame(&mut s);
    let snap = handle.join();
    assert_eq!(snap.scenario_solves[Scenario::VarCoef.wire_id() as usize], 1);
}

#[test]
fn invalid_scenario_frames_reject_typed() {
    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (v, f, _) = setup_poisson(&cfg);
    let mut s = TcpStream::connect(handle.addr()).unwrap();

    // varcoef without its coefficient grid: decode-time typed rejection.
    let mut req = SolveRequest::from_config(&cfg, Variant::OptPlus, 3, 1, v.clone(), f.clone());
    req.scenario = Scenario::VarCoef.wire_id();
    protocol::write_frame(&mut s, protocol::OP_SOLVE_SCENARIO, &req.encode_scenario()).unwrap();
    let fr = protocol::read_frame(&mut s).unwrap();
    assert_eq!(fr.opcode, protocol::OP_ERROR);
    let (code, msg) = protocol::decode_error(&fr.payload).unwrap();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(msg.contains("coefficient grid"), "unexpected message: {msg}");

    // mixed precision on a scenario that does not support it.
    let mut req = SolveRequest::from_config(&cfg, Variant::OptPlus, 3, 1, v, f);
    req.scenario = Scenario::Chebyshev.wire_id();
    req.mixed = true;
    protocol::write_frame(&mut s, protocol::OP_SOLVE_SCENARIO, &req.encode_scenario()).unwrap();
    let fr = protocol::read_frame(&mut s).unwrap();
    assert_eq!(fr.opcode, protocol::OP_ERROR);
    let (code, msg) = protocol::decode_error(&fr.payload).unwrap();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(msg.contains("mixed-precision"), "unexpected message: {msg}");

    // the connection stays usable after both rejections
    protocol::write_frame(&mut s, protocol::OP_PING, b"x").unwrap();
    assert_eq!(protocol::read_frame(&mut s).unwrap().opcode, protocol::OP_PONG);

    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let _ = protocol::read_frame(&mut s);
    handle.join();
}
