//! Event-core behavior: tenant→shard pinning with warm-session reuse
//! across reconnect churn, weighted QoS keeping latency traffic
//! responsive under a batch flood, and strict in-order response
//! delivery for pipelined frames.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::{setup_poisson, DslRunner};
use gmg_server::protocol::{self, BatchSolveRequest, SolveRequest, SolveResponse};
use gmg_server::{shard_for_tenant, start, ServerConfig};
use polymg::{PipelineOptions, Variant};

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s
}

/// Independently solved reference bit pattern for `(cfg, variant, iters)`
/// applied to the canonical Poisson setup.
fn reference_bits(cfg: &MgConfig, variant: Variant, iters: u16) -> (Vec<f64>, Vec<f64>, Vec<u64>) {
    let (v0, f, _) = setup_poisson(cfg);
    let opts = PipelineOptions::for_variant(variant, cfg.ndims);
    let mut runner = DslRunner::new(cfg, opts, "shard-qos-ref").expect("reference compile");
    let mut v = v0.clone();
    for _ in 0..iters {
        runner.cycle_with_stats(&mut v, &f).expect("reference cycle");
    }
    let bits = v.iter().map(|x| x.to_bits()).collect();
    (v0, f, bits)
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut s = connect(addr);
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let f = protocol::read_frame(&mut s).expect("shutdown ack");
    assert_eq!(f.opcode, protocol::OP_SHUTDOWN_ACK);
}

/// Reconnecting clients of one tenant always land on `shard_for_tenant`,
/// and the warm session survives the churn: after the first miss every
/// solve is a session hit, and the other shard sees no session traffic.
#[test]
fn tenant_pinning_and_warm_sessions_survive_reconnect_churn() {
    const TENANT: u32 = 7;
    const ROUNDS: usize = 8;
    let handle = start(ServerConfig {
        shards: 2,
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (v0, f, want) = reference_bits(&cfg, Variant::OptPlus, 1);
    let req = SolveRequest::from_config(&cfg, Variant::OptPlus, TENANT, 1, v0, f);

    // Sequential reconnects: each connection sends exactly one solve and
    // closes, so nothing but the tenant hash can keep the session warm.
    for round in 0..ROUNDS {
        let mut s = connect(addr);
        protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).unwrap();
        let frame = protocol::read_frame(&mut s).expect("solve response");
        assert_eq!(
            frame.opcode,
            protocol::OP_SOLVE_OK,
            "round {round}: {:?}",
            protocol::decode_error(&frame.payload)
        );
        let got = SolveResponse::decode(&frame.payload).expect("decode").v;
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, want, "round {round} diverged from reference");
    }

    let snaps = handle.shard_snapshots();
    assert_eq!(snaps.len(), 2);
    let home = shard_for_tenant(TENANT, 2);
    assert_eq!(home, shard_for_tenant(TENANT, 2), "hash must be stable");
    let away = 1 - home;
    assert_eq!(
        snaps[home].session_hits + snaps[home].session_misses,
        ROUNDS as u64,
        "every solve for tenant {TENANT} must run on shard {home}"
    );
    assert_eq!(
        snaps[away].session_hits + snaps[away].session_misses,
        0,
        "shard {away} must see no session traffic for tenant {TENANT}"
    );
    assert!(
        snaps[home].session_hits >= (ROUNDS - 1) as u64,
        "reconnect churn must reuse the warm session (hits {}, misses {})",
        snaps[home].session_hits,
        snaps[home].session_misses
    );
    // Round-robin accept deals roughly half the connections to the wrong
    // shard; their first solve migrates them home.
    assert!(
        snaps[home].adopted >= 1,
        "expected at least one adoption onto the home shard, snaps: {snaps:?}"
    );
    assert!(snaps[home].frames >= 1, "home shard decoded no frames");

    shutdown(addr);
    let snap = handle.join();
    assert_eq!(snap.ok, ROUNDS as u64);
    assert_eq!(snap.session_hits, snaps[home].session_hits);
}

/// A single-worker shard under a pipelined `SOLVE_BATCH` flood keeps
/// latency-class singles responsive: with weight-4 round-robin a probe
/// waits for at most a couple of batch passes, never the whole backlog.
#[test]
fn latency_class_stays_responsive_under_batch_flood() {
    const FLOOD_JOBS: usize = 12;
    const PROBES: usize = 6;
    let delay = Duration::from_millis(25);
    let handle = start(ServerConfig {
        shards: 1,
        workers: 1,
        qos_weight: 4,
        tenant_cap: 16,
        queue_capacity: 32,
        service_delay: Some(delay),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (v0, f, want) = reference_bits(&cfg, Variant::OptPlus, 1);
    let batch_req = BatchSolveRequest {
        reqs: vec![
            SolveRequest::from_config(&cfg, Variant::OptPlus, 1, 1, v0.clone(), f.clone()),
            SolveRequest::from_config(&cfg, Variant::OptPlus, 1, 1, v0.clone(), f.clone()),
        ],
    }
    .encode();
    let probe_req = SolveRequest::from_config(&cfg, Variant::OptPlus, 2, 1, v0, f);

    // Flood: pipeline the whole backlog in one burst, then read replies.
    let flood = std::thread::spawn(move || {
        let mut s = connect(addr);
        let mut burst = Vec::new();
        for _ in 0..FLOOD_JOBS {
            burst.extend_from_slice(&protocol::frame_bytes(
                protocol::OP_SOLVE_BATCH,
                &batch_req,
            ));
        }
        s.write_all(&burst).unwrap();
        let t0 = Instant::now();
        for k in 0..FLOOD_JOBS {
            let frame = protocol::read_frame(&mut s).expect("batch response");
            assert_eq!(
                frame.opcode,
                protocol::OP_SOLVE_BATCH_OK,
                "flood frame {k}: {:?}",
                protocol::decode_error(&frame.payload)
            );
        }
        t0.elapsed()
    });

    // Give the event loop a moment to decode and enqueue the backlog, so
    // the first probe genuinely arrives behind a full batch queue.
    std::thread::sleep(Duration::from_millis(40));
    let mut worst = Duration::ZERO;
    let mut s = connect(addr);
    for k in 0..PROBES {
        let t0 = Instant::now();
        protocol::write_frame(&mut s, protocol::OP_SOLVE, &probe_req.encode()).unwrap();
        let frame = protocol::read_frame(&mut s).expect("probe response");
        let rtt = t0.elapsed();
        assert_eq!(
            frame.opcode,
            protocol::OP_SOLVE_OK,
            "probe {k}: {:?}",
            protocol::decode_error(&frame.payload)
        );
        let got = SolveResponse::decode(&frame.payload).expect("decode").v;
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, want, "probe {k} diverged from reference");
        worst = worst.max(rtt);
    }

    let flood_elapsed = flood.join().expect("flood thread");
    // The lone worker must serialize the flood: 12 passes of >= 25 ms.
    assert!(
        flood_elapsed >= delay * FLOOD_JOBS as u32,
        "flood finished in {flood_elapsed:?}; the probes never contended"
    );
    // FIFO would park the first probe behind the whole 300 ms backlog;
    // weighted dequeue bounds it to a couple of service delays.
    assert!(
        worst < Duration::from_millis(200),
        "latency-class probe starved: worst rtt {worst:?}"
    );

    let snaps = handle.shard_snapshots();
    assert_eq!(snaps[0].dequeued_batch, FLOOD_JOBS as u64);
    assert_eq!(snaps[0].dequeued_latency, PROBES as u64);

    shutdown(addr);
    let snap = handle.join();
    assert_eq!(snap.ok, (2 * FLOOD_JOBS + PROBES) as u64);
    assert_eq!(snap.rejected_queue_full, 0);
    assert_eq!(snap.rejected_tenant, 0);
}

/// Pipelined frames on one connection are answered strictly in request
/// order even when a slow solve sits between instant pings.
#[test]
fn pipelined_responses_arrive_in_request_order() {
    let handle = start(ServerConfig {
        shards: 2,
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (v0, f, want) = reference_bits(&cfg, Variant::OptPlus, 1);
    let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 3, 1, v0, f);

    let mut s = connect(addr);
    let mut burst = Vec::new();
    burst.extend_from_slice(&protocol::frame_bytes(protocol::OP_PING, b"one"));
    burst.extend_from_slice(&protocol::frame_bytes(protocol::OP_PING, b"two"));
    burst.extend_from_slice(&protocol::frame_bytes(protocol::OP_SOLVE, &req.encode()));
    burst.extend_from_slice(&protocol::frame_bytes(protocol::OP_PING, b"three"));
    s.write_all(&burst).unwrap();

    for payload in [b"one".as_slice(), b"two".as_slice()] {
        let frame = protocol::read_frame(&mut s).expect("pong");
        assert_eq!(frame.opcode, protocol::OP_PONG);
        assert_eq!(frame.payload, payload);
    }
    let frame = protocol::read_frame(&mut s).expect("solve response");
    assert_eq!(
        frame.opcode,
        protocol::OP_SOLVE_OK,
        "{:?}",
        protocol::decode_error(&frame.payload)
    );
    let got = SolveResponse::decode(&frame.payload).expect("decode").v;
    let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
    assert_eq!(gb, want, "pipelined solve diverged from reference");
    // The trailing ping was decoded before the solve completed, but its
    // pong must not overtake the solve response.
    let frame = protocol::read_frame(&mut s).expect("pong");
    assert_eq!(frame.opcode, protocol::OP_PONG);
    assert_eq!(frame.payload, b"three");

    shutdown(addr);
    let snap = handle.join();
    assert_eq!(snap.ok, 1);
}
