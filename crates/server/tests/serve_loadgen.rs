//! End-to-end serving tests: loadgen's bitwise verification against a live
//! in-process server, warm-session reuse, admission-control rejections, and
//! tuned-config application at session creation.

use std::net::TcpStream;
use std::time::Duration;

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::solver::setup_poisson;
use gmg_server::loadgen::{self, LoadgenOptions, MixItem};
use gmg_server::protocol::{self, ErrorCode};
use gmg_server::{start, ServerConfig, SolveRequest};
use polymg::Variant;

fn small_mix() -> Vec<MixItem> {
    let mut v3 = MgConfig::new(3, 15, CycleType::V, SmoothSteps::s444());
    v3.levels = 3;
    vec![
        MixItem::new(MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()), Variant::OptPlus, 2),
        MixItem::new(MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()), Variant::Opt, 1),
        MixItem::new(v3, Variant::OptPlus, 1),
    ]
}

#[test]
fn loadgen_verifies_bitwise_end_to_end() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start");
    let opts = LoadgenOptions {
        addr: handle.addr().to_string(),
        connections: 3,
        requests_per_conn: 4,
        tenants: 2,
        shutdown: true,
        mix: small_mix(),
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&opts).expect("loadgen run");
    assert!(report.is_clean(), "unclean run: {}", report.summary());
    assert_eq!(report.verify_failures, 0);
    assert_eq!(report.ok, 12, "all 12 requests must verify bitwise");
    assert!(!report.server_stats.is_empty(), "STATS must round-trip");

    let snap = handle.join();
    assert_eq!(snap.ok, 12);
    // 3 distinct shapes, 12 requests: the warm-session path must dominate.
    // Concurrent first-touches of one shape may each count a miss (both
    // observe the empty registry), so the miss count is a small range.
    assert_eq!(snap.session_hits + snap.session_misses, 12);
    assert!(
        (3..=6).contains(&snap.session_misses),
        "expected 3..=6 session misses, got {}",
        snap.session_misses
    );
    // engines are bounded by concurrency, not request count
    assert!(
        snap.engines_created <= 2 * 3,
        "engines_created {} exceeds workers x shapes",
        snap.engines_created
    );
}

#[test]
fn queue_full_and_tenant_caps_reject_typed() {
    // One slow worker (50 ms service delay), queue of one, tenant cap one:
    // with three simultaneous requests, at least one sees QueueFull or
    // TenantLimit, and a retrying client still finishes clean.
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        tenant_cap: 1,
        service_delay: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cfg = MgConfig::new(2, 15, CycleType::V, SmoothSteps::s444());
    let (v, f, _) = setup_poisson(&cfg);
    let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 7, 1, v, f);
    let payload = req.encode();

    // Prime the session so the held queue slot is not a compile.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        protocol::write_frame(&mut s, protocol::OP_SOLVE, &payload).unwrap();
        let fr = protocol::read_frame(&mut s).unwrap();
        assert_eq!(fr.opcode, protocol::OP_SOLVE_OK);
    }

    // Three connections, same tenant, fired together: one executes, the
    // rest hit the tenant cap (in-flight > 1 for tenant 7) — and with the
    // cap lifted to the queue, QueueFull. Either typed rejection is valid;
    // what is *not* valid is a hang, a panic, or an untyped close.
    let mut streams: Vec<TcpStream> = (0..3)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s
        })
        .collect();
    for s in &mut streams {
        protocol::write_frame(s, protocol::OP_SOLVE, &payload).unwrap();
    }
    let mut oks = 0;
    let mut rejects = 0;
    for s in &mut streams {
        let fr = protocol::read_frame(s).expect("typed response, not a hang");
        match fr.opcode {
            protocol::OP_SOLVE_OK => oks += 1,
            protocol::OP_ERROR => {
                let (code, _) = protocol::decode_error(&fr.payload).unwrap();
                assert!(
                    matches!(code, ErrorCode::QueueFull | ErrorCode::TenantLimit),
                    "unexpected rejection {code:?}"
                );
                rejects += 1;
            }
            other => panic!("unexpected opcode {other:#04x}"),
        }
    }
    assert!(oks >= 1, "at least one request must execute");
    assert!(rejects >= 1, "at least one request must be rejected");

    let snap = handle.snapshot();
    assert!(snap.rejected_queue_full + snap.rejected_tenant >= 1);
    assert!(snap.queue_max_depth >= 1);

    // rejected connections remain usable
    for s in &mut streams {
        protocol::write_frame(s, protocol::OP_PING, b"x").unwrap();
        assert_eq!(protocol::read_frame(s).unwrap().opcode, protocol::OP_PONG);
    }

    let mut s = TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    assert_eq!(
        protocol::read_frame(&mut s).unwrap().opcode,
        protocol::OP_SHUTDOWN_ACK
    );
    handle.join();
}

#[test]
fn tuned_store_applies_at_session_creation() {
    use gmg_ir::ParamBindings;
    use gmg_multigrid::cycles::build_cycle_pipeline;
    use polymg::{cache, TuneConfig, TunedStore};

    let cfg = MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444());
    let pipeline = build_cycle_pipeline(&cfg);
    let pfp = cache::pipeline_fingerprint(&pipeline, &ParamBindings::new());
    let mut store = TunedStore::default();
    store.record(
        pfp,
        2,
        TuneConfig::new(vec![16, 64], 6),
        1.0,
    );

    let handle = start(ServerConfig {
        workers: 1,
        tuned: Some(store),
        ..ServerConfig::default()
    })
    .expect("start");

    let (v, f, _) = setup_poisson(&cfg);
    let req = SolveRequest::from_config(&cfg, Variant::OptPlus, 0, 1, v.clone(), f.clone());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).unwrap();
    let fr = protocol::read_frame(&mut s).unwrap();
    assert_eq!(fr.opcode, protocol::OP_SOLVE_OK);

    // Tuned tiling must not change the answer (bitwise) — verify against a
    // local run with the *default* options.
    let resp = gmg_server::SolveResponse::decode(&fr.payload).unwrap();
    let mut expect = v;
    let mut runner = gmg_multigrid::solver::DslRunner::new(
        &cfg,
        polymg::PipelineOptions::for_variant(Variant::OptPlus, 2),
        "ref",
    )
    .unwrap();
    runner.cycle_with_stats(&mut expect, &f).unwrap();
    assert_eq!(
        resp.v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "tuned tiling changed the solution bitwise"
    );

    let snap = handle.snapshot();
    assert_eq!(snap.tuned_applied, 1, "tuned config must be applied once");

    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let _ = protocol::read_frame(&mut s);
    handle.join();
}
