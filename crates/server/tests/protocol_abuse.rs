//! Protocol-abuse tests: malformed frames must produce typed errors or a
//! clean close — never a panic, a hung accept loop, or a wedged server.
//! One server instance survives the whole gauntlet and still drains
//! gracefully at the end.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use gmg_server::protocol::{self, ErrorCode};
use gmg_server::{start, ServerConfig};

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s
}

/// The liveness probe: a PING round-trip proves the accept loop and a
/// fresh connection thread still work.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut s = connect(addr);
    protocol::write_frame(&mut s, protocol::OP_PING, b"alive?").unwrap();
    let f = protocol::read_frame(&mut s).expect("pong");
    assert_eq!(f.opcode, protocol::OP_PONG);
    assert_eq!(f.payload, b"alive?");
}

#[test]
fn malformed_frames_never_kill_the_server() {
    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // 1. truncated header: two bytes, then disconnect
    {
        let mut s = connect(addr);
        s.write_all(&[0x05, 0x00]).unwrap();
    }
    assert_alive(addr);

    // 2. oversized declared length → typed BadFrame error, then close
    {
        let mut s = connect(addr);
        s.write_all(&(protocol::MAX_FRAME + 1).to_le_bytes())
            .unwrap();
        s.write_all(&[protocol::OP_PING]).unwrap();
        let f = protocol::read_frame(&mut s).expect("error frame");
        assert_eq!(f.opcode, protocol::OP_ERROR);
        let (code, msg) = protocol::decode_error(&f.payload).unwrap();
        assert_eq!(code, ErrorCode::BadFrame);
        assert!(msg.contains("exceeds"), "got: {msg}");
        // the connection is then closed from the server side
        assert!(matches!(
            protocol::read_frame(&mut s),
            Err(protocol::FrameError::Closed) | Err(protocol::FrameError::Io(_))
        ));
    }
    assert_alive(addr);

    // 3. mid-frame disconnect: header promises 100 payload bytes, send 10
    {
        let mut s = connect(addr);
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[protocol::OP_SOLVE]).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
    }
    assert_alive(addr);

    // 4. unknown opcode → typed error, connection STAYS usable
    {
        let mut s = connect(addr);
        protocol::write_frame(&mut s, 0x7f, b"???").unwrap();
        let f = protocol::read_frame(&mut s).expect("error frame");
        assert_eq!(f.opcode, protocol::OP_ERROR);
        let (code, _) = protocol::decode_error(&f.payload).unwrap();
        assert_eq!(code, ErrorCode::UnknownOpcode);
        protocol::write_frame(&mut s, protocol::OP_PING, b"still-here").unwrap();
        let f = protocol::read_frame(&mut s).expect("pong after error");
        assert_eq!(f.opcode, protocol::OP_PONG);
    }

    // 5. well-formed frame, garbage SOLVE payload → BadRequest, conn usable
    {
        let mut s = connect(addr);
        protocol::write_frame(&mut s, protocol::OP_SOLVE, &[1, 2, 3, 4]).unwrap();
        let f = protocol::read_frame(&mut s).expect("error frame");
        assert_eq!(f.opcode, protocol::OP_ERROR);
        let (code, _) = protocol::decode_error(&f.payload).unwrap();
        assert_eq!(code, ErrorCode::BadRequest);
        assert_alive(addr);
    }

    // 6. SOLVE with a structurally invalid config (n not 2^k − 1)
    {
        use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
        let cfg = MgConfig::new(2, 7, CycleType::V, SmoothSteps::s444());
        let len = 9 * 9;
        let mut req = gmg_server::SolveRequest::from_config(
            &cfg,
            polymg::Variant::OptPlus,
            0,
            1,
            vec![0.0; len],
            vec![0.0; len],
        );
        req.n = 10; // not 2^k − 1
        let mut s = connect(addr);
        protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).unwrap();
        let f = protocol::read_frame(&mut s).expect("error frame");
        let (code, msg) = protocol::decode_error(&f.payload).unwrap();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(msg.contains("2^k"), "got: {msg}");
    }

    // 7. SOLVE_BATCH abuse: every malformed batch gets a typed BadRequest
    // on a connection that stays usable, and none is ever admitted.
    {
        use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
        use gmg_server::{BatchSolveRequest, SolveRequest};

        let mk = |n: i64| {
            let cfg = MgConfig::new(2, n, CycleType::V, SmoothSteps::s444());
            let len = ((n + 2) * (n + 2)) as usize;
            SolveRequest::from_config(
                &cfg,
                polymg::Variant::OptPlus,
                0,
                1,
                vec![0.0; len],
                vec![0.0; len],
            )
        };

        // (a) zero-count batch
        let mut payloads: Vec<(&str, Vec<u8>)> = vec![("zero-count", 0u16.to_le_bytes().to_vec())];
        // (b) count says 2, payload carries 1 request
        let mut short = BatchSolveRequest {
            reqs: vec![mk(15)],
        }
        .encode();
        short[0..2].copy_from_slice(&2u16.to_le_bytes());
        payloads.push(("count/payload mismatch", short));
        // (c) count above MAX_BATCH
        let mut oversized = ((protocol::MAX_BATCH + 1) as u16).to_le_bytes().to_vec();
        oversized.extend_from_slice(&[0u8; 16]);
        payloads.push(("oversized count", oversized));
        // (d) mixed shapes in one batch
        payloads.push((
            "mixed-shape",
            BatchSolveRequest {
                reqs: vec![mk(15), mk(31)],
            }
            .encode(),
        ));
        // (e) trailing garbage after the last request
        let mut trailing = BatchSolveRequest {
            reqs: vec![mk(15)],
        }
        .encode();
        trailing.extend_from_slice(b"junk");
        payloads.push(("trailing garbage", trailing));

        for (what, payload) in payloads {
            let mut s = connect(addr);
            protocol::write_frame(&mut s, protocol::OP_SOLVE_BATCH, &payload).unwrap();
            let f = protocol::read_frame(&mut s).expect("error frame");
            assert_eq!(f.opcode, protocol::OP_ERROR, "{what}: expected OP_ERROR");
            let (code, msg) = protocol::decode_error(&f.payload).unwrap();
            assert_eq!(code, ErrorCode::BadRequest, "{what}: got {code:?}: {msg}");
            // connection survives the typed rejection
            protocol::write_frame(&mut s, protocol::OP_PING, b"post-batch").unwrap();
            let f = protocol::read_frame(&mut s).expect("pong after batch error");
            assert_eq!(f.opcode, protocol::OP_PONG, "{what}: conn wedged");
        }
    }

    let snap = handle.snapshot();
    assert!(
        snap.protocol_errors >= 9,
        "expected protocol errors recorded, got {}",
        snap.protocol_errors
    );
    assert_eq!(snap.requests, 0, "nothing malformed may be admitted");
    assert_eq!(snap.batches, 0, "no malformed batch may count as a pass");

    // graceful drain still works after the gauntlet
    let mut s = connect(addr);
    protocol::write_frame(&mut s, protocol::OP_SHUTDOWN, b"").unwrap();
    let f = protocol::read_frame(&mut s).expect("shutdown ack");
    assert_eq!(f.opcode, protocol::OP_SHUTDOWN_ACK);
    handle.join();
}

#[test]
fn shutdown_rejects_new_solves_and_acks_drain() {
    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();
    handle.begin_shutdown();

    // a SOLVE racing the drain gets the typed ShuttingDown rejection
    // (connections accepted before the accept loop exits still answer)
    let cfg = gmg_multigrid::config::MgConfig::new(
        2,
        7,
        gmg_multigrid::config::CycleType::V,
        gmg_multigrid::config::SmoothSteps::s444(),
    );
    let mut cfg = cfg;
    cfg.levels = 2;
    let len = 9 * 9;
    let req = gmg_server::SolveRequest::from_config(
        &cfg,
        polymg::Variant::OptPlus,
        0,
        1,
        vec![0.0; len],
        vec![0.0; len],
    );
    if let Ok(mut s) = TcpStream::connect(addr) {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        if protocol::write_frame(&mut s, protocol::OP_SOLVE, &req.encode()).is_ok() {
            if let Ok(f) = protocol::read_frame(&mut s) {
                assert_eq!(f.opcode, protocol::OP_ERROR);
                let (code, _) = protocol::decode_error(&f.payload).unwrap();
                assert_eq!(code, ErrorCode::ShuttingDown);
            }
        }
    }
    let snap = handle.join();
    assert_eq!(snap.ok, 0);
}
