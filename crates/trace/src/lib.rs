//! `gmg-trace` — pipeline-wide tracing and metrics for the PolyMG stack.
//!
//! Every layer of the execution path reports into one [`Trace`] handle:
//!
//! * `gmg-runtime::exec` records per-stage / per-tile timing spans through
//!   interned [`StageHandle`]s (lock-free atomic adds on the hot path);
//! * `gmg-runtime::kernel` counts which dispatch class fired for each
//!   kernel case (specialized unit-stride unroll vs. coefficient-factored
//!   vs. generic tap loop vs. strided vs. interpreter) via the global
//!   [`dispatch`] histogram;
//! * `gmg-runtime::pool` / `arena` feed allocator reuse statistics;
//! * `gmg-dist::halo` feeds communication volumes;
//! * `gmg-multigrid::solver` emits one [`CycleEvent`] (time + residual)
//!   per multigrid cycle.
//!
//! The default backend is [`AtomicSink`]: plain relaxed atomics, safe to
//! hammer from every worker thread. A [`NoopSink`] exists for plumbing
//! tests, and compiling with `--no-default-features` (dropping the
//! `capture` feature) turns every record path into a compile-time no-op.
//!
//! [`Report::to_json`] renders the collected data as the structured JSON
//! emitted by `reproduce --profile` / `polymg-cli --profile` (schema in
//! DESIGN.md §Observability).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod dispatch;
mod json;

// ---------------------------------------------------------------------------
// Snapshot types shared across crates
// ---------------------------------------------------------------------------

/// Allocator counters, either absolute (as kept by `BufferPool`) or as a
/// delta between two observations (as ingested by [`Trace::record_pool`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub allocated_bytes: u64,
    /// Peak concurrently-live bytes; merged with `max`, never summed.
    pub peak_live_bytes: u64,
}

impl PoolSnapshot {
    /// Counter-wise difference `self - earlier` (saturating), keeping the
    /// later peak. Used to ingest monotonic pool counters incrementally.
    pub fn delta_since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            peak_live_bytes: self.peak_live_bytes,
        }
    }
}

/// Work-stealing pool counters, as a delta between two observations of the
/// pool's monotonic counters (`rayon::PoolCounters`) — except `workers`,
/// which is the pool's total spawned-worker count and is merged with `max`
/// (a persistent pool spawns its workers once; the value staying flat across
/// runs *is* the signal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadsSnapshot {
    /// Worker threads ever spawned by the pool (max-merged).
    pub workers: u64,
    /// Parallel regions executed.
    pub regions: u64,
    /// Work items executed.
    pub items: u64,
    /// Chunk steals between workers.
    pub steals: u64,
    /// Worker park events (idle waits).
    pub parks: u64,
}

/// Halo-exchange communication counters (mirrors `gmg-dist`'s `CommStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    pub messages: u64,
    pub doubles: u64,
    pub collectives: u64,
}

/// One multigrid cycle: wall time and the residual norm after the cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleEvent {
    pub index: u64,
    pub ns: u64,
    pub residual: f64,
}

/// Fault-injection counters for one chaos site (`polymg::chaos` sites are
/// identified by their stable label, e.g. `"pool_alloc"`, `"halo_drop"`,
/// so this crate stays free of a `polymg` dependency).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSiteSnapshot {
    /// Stable site label (`FaultSite::label()`).
    pub site: String,
    /// Times the site was consulted.
    pub armed: u64,
    /// Times the site fired a fault.
    pub fired: u64,
    /// Times a fired fault was recovered from.
    pub recovered: u64,
}

/// Delta of chaos counters between two observations, merged per site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    pub sites: Vec<ChaosSiteSnapshot>,
}

impl ChaosSnapshot {
    pub fn total_armed(&self) -> u64 {
        self.sites.iter().map(|s| s.armed).sum()
    }

    pub fn total_fired(&self) -> u64 {
        self.sites.iter().map(|s| s.fired).sum()
    }

    pub fn total_recovered(&self) -> u64 {
        self.sites.iter().map(|s| s.recovered).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.sites
            .iter()
            .all(|s| s.armed == 0 && s.fired == 0 && s.recovered == 0)
    }
}

// ---------------------------------------------------------------------------
// Sink trait + implementations
// ---------------------------------------------------------------------------

/// Plan-cache hit/miss/eviction counters (a snapshot of `polymg::cache`
/// state; the trace stores the last published snapshot, it does not
/// accumulate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    /// Plans dropped by the cache's LRU capacity bound.
    pub evictions: u64,
}

/// Solve-service counters (a snapshot of `gmg-server` state: last published
/// values win, mirroring [`PlanCacheSnapshot`] semantics). All-zero until a
/// server publishes, in which case the `server` block is omitted from the
/// JSON report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Solve requests admitted (whether they later succeeded or failed).
    pub requests: u64,
    /// Solve requests answered with a result frame.
    pub ok: u64,
    /// Solve requests answered with a typed execution-error frame.
    pub exec_errors: u64,
    /// Frames rejected at the protocol layer (malformed, oversized, …).
    pub protocol_errors: u64,
    /// Solves rejected because the admission queue was full (the 429 path).
    pub rejected_queue_full: u64,
    /// Solves rejected by the per-tenant in-flight cap.
    pub rejected_tenant: u64,
    /// Solves rejected because the server was draining for shutdown.
    pub rejected_shutdown: u64,
    /// Requests that found a warm session (plan + engine reuse).
    pub session_hits: u64,
    /// Requests that created a new session.
    pub session_misses: u64,
    /// Engines ever constructed across all sessions.
    pub engines_created: u64,
    /// High-water mark of the admission queue depth.
    pub queue_max_depth: u64,
    /// Sessions whose options were warm-started from a tuned-config store.
    pub tuned_applied: u64,
    /// Engine passes that swept two or more right-hand sides.
    pub batches: u64,
    /// Queued requests merged into another request's engine pass by the
    /// admission coalescing window.
    pub coalesced: u64,
    /// Engine-pass size histogram: RHS count bucketed as
    /// 1 / 2 / 3–4 / 5–8 / 9–16 / 17–32 / 33+.
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Grids solved per scenario, indexed by the scenario wire id
    /// (see [`SCENARIO_LABELS`]).
    pub scenario_solves: [u64; SCENARIO_KINDS],
    /// Grids solved with mixed-precision (f32) smoothing chains.
    pub mixed_solves: u64,
}

/// Number of scenario families the server counts
/// ([`ServerSnapshot::scenario_solves`]).
pub const SCENARIO_KINDS: usize = 5;

/// Stats/JSON labels of [`ServerSnapshot::scenario_solves`], in wire-id
/// order (must match `polymg::scenario::Scenario::wire_id`).
pub const SCENARIO_LABELS: [&str; SCENARIO_KINDS] =
    ["constant", "varcoef", "fmg", "rbgs", "chebyshev"];

/// Per-shard counters from the event-driven server core (one entry per
/// shard, published alongside the aggregate [`ServerSnapshot`]). Snapshot
/// semantics: the last published vector wins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u64,
    /// Connections first registered on this shard by the acceptor.
    pub accepted: u64,
    /// Connections migrated in from another shard once their tenant hash
    /// resolved here.
    pub adopted: u64,
    /// Complete frames decoded by this shard's readiness loop.
    pub frames: u64,
    /// Readiness-loop iterations (epoll wakeups).
    pub wakeups: u64,
    /// Jobs dequeued from the latency-sensitive admission queue.
    pub dequeued_latency: u64,
    /// Jobs dequeued from the batch admission queue.
    pub dequeued_batch: u64,
    /// Warm-session hits on this shard's `SessionManager`.
    pub session_hits: u64,
    /// Session misses (cold compiles) on this shard.
    pub session_misses: u64,
    /// Engines constructed by this shard's sessions.
    pub engines_created: u64,
    /// High-water mark of this shard's combined admission-queue depth.
    pub queue_max_depth: u64,
}

/// Bucket count of [`ServerSnapshot::batch_hist`].
pub const BATCH_HIST_BUCKETS: usize = 7;

/// Histogram bucket index for an engine pass of `rhs` right-hand sides.
pub fn batch_hist_bucket(rhs: usize) -> usize {
    match rhs {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

impl ServerSnapshot {
    pub fn is_empty(&self) -> bool {
        *self == ServerSnapshot::default()
    }
}

/// Online-tuner counters from `gmg-server` (snapshot semantics, like
/// [`ServerSnapshot`]). All-zero means no tuner ran and the `tuner` block
/// is omitted from the JSON report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TunerSnapshot {
    /// Background trials measured to completion (faulted ones excluded).
    pub trials: u64,
    /// Trials whose engine run faulted (typed error) and whose sample was
    /// discarded from the search.
    pub discarded_faulted: u64,
    /// Times a ready trial was deferred because live work was queued or in
    /// flight (the idle-capacity gate).
    pub deferred_busy: u64,
    /// Winners persisted to the tuned store.
    pub winners: u64,
    /// Distinct pipeline fingerprints the tuner has opened a search for.
    pub fingerprints: u64,
    /// Live per-session solve timings sampled into tuning state.
    pub observed: u64,
    /// High-water mark of the admission-queue depth observed at trial
    /// start. Stays 0 if the idle gate worked: trials only start on idle.
    pub trial_queue_peak: u64,
    /// Trials that left pool bytes live after release (leak detector; must
    /// stay 0).
    pub leaked_trials: u64,
}

impl TunerSnapshot {
    pub fn is_empty(&self) -> bool {
        *self == TunerSnapshot::default()
    }
}

/// Backend receiving trace records. All methods must be cheap and callable
/// concurrently from worker threads.
pub trait TraceSink: Send + Sync {
    fn record_span(&self, name: &str, kind: &str, ns: u64, tiles: u64, cells: u64);
    fn record_pool(&self, delta: &PoolSnapshot);
    fn record_arena(&self, created: u64, recycled: u64);
    fn record_arena_workers(&self, per_worker: &[(u64, u64)]);
    fn record_threads(&self, delta: &ThreadsSnapshot);
    fn record_comm(&self, delta: &CommSnapshot);
    fn record_cycle(&self, event: CycleEvent);
    fn record_chaos(&self, delta: &ChaosSnapshot);
}

/// Sink that drops everything; useful to exercise plumbing in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record_span(&self, _: &str, _: &str, _: u64, _: u64, _: u64) {}
    fn record_pool(&self, _: &PoolSnapshot) {}
    fn record_arena(&self, _: u64, _: u64) {}
    fn record_arena_workers(&self, _: &[(u64, u64)]) {}
    fn record_threads(&self, _: &ThreadsSnapshot) {}
    fn record_comm(&self, _: &CommSnapshot) {}
    fn record_cycle(&self, _: CycleEvent) {}
    fn record_chaos(&self, _: &ChaosSnapshot) {}
}

/// Per-stage aggregate. Hot-path updates are relaxed atomic adds through
/// [`StageHandle`]; names are interned once per (name, kind) pair.
#[derive(Debug)]
pub struct StageAgg {
    name: String,
    kind: String,
    ns: AtomicU64,
    invocations: AtomicU64,
    tiles: AtomicU64,
    cells: AtomicU64,
}

/// Per-schedule-op aggregate: one row of the op-level timeline the VM
/// executor records (`ExecProgram` op index + mnemonic).
#[derive(Debug)]
pub struct OpAgg {
    index: u64,
    mnemonic: String,
    ns: AtomicU64,
    invocations: AtomicU64,
}

impl OpAgg {
    fn new(index: u64, mnemonic: &str) -> Self {
        OpAgg {
            index,
            mnemonic: mnemonic.to_string(),
            ns: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
        }
    }

    #[inline]
    fn add(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
        self.invocations.fetch_add(1, Ordering::Relaxed);
    }
}

impl StageAgg {
    fn new(name: &str, kind: &str) -> Self {
        StageAgg {
            name: name.to_string(),
            kind: kind.to_string(),
            ns: AtomicU64::new(0),
            invocations: AtomicU64::new(0),
            tiles: AtomicU64::new(0),
            cells: AtomicU64::new(0),
        }
    }

    #[inline]
    fn add(&self, ns: u64, tiles: u64, cells: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.tiles.fetch_add(tiles, Ordering::Relaxed);
        self.cells.fetch_add(cells, Ordering::Relaxed);
    }
}

/// The default lock-free collector. Locks are only taken when interning a
/// new stage name or appending a cycle event — never per tile.
#[derive(Debug, Default)]
pub struct AtomicSink {
    stages: Mutex<Vec<Arc<StageAgg>>>,
    ops: Mutex<Vec<Arc<OpAgg>>>,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    /// Last-published solve-service counters (snapshot semantics).
    server: Mutex<ServerSnapshot>,
    /// Last-published per-shard counters (snapshot semantics).
    shards: Mutex<Vec<ShardSnapshot>>,
    /// Last-published online-tuner counters (snapshot semantics).
    tuner: Mutex<TunerSnapshot>,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    pool_allocated: AtomicU64,
    pool_peak: AtomicU64,
    arena_created: AtomicU64,
    arena_recycled: AtomicU64,
    /// Per-worker `(created, recycled)` arena counts, summed elementwise.
    arena_workers: Mutex<Vec<(u64, u64)>>,
    threads_workers: AtomicU64,
    threads_regions: AtomicU64,
    threads_items: AtomicU64,
    threads_steals: AtomicU64,
    threads_parks: AtomicU64,
    comm_messages: AtomicU64,
    comm_doubles: AtomicU64,
    comm_collectives: AtomicU64,
    cycles: Mutex<Vec<CycleEvent>>,
    chaos: Mutex<Vec<ChaosSiteSnapshot>>,
    meta: Mutex<Vec<(String, String)>>,
}

impl AtomicSink {
    fn intern(&self, name: &str, kind: &str) -> Arc<StageAgg> {
        let mut stages = self.stages.lock().unwrap();
        if let Some(s) = stages.iter().find(|s| s.name == name && s.kind == kind) {
            return Arc::clone(s);
        }
        let agg = Arc::new(StageAgg::new(name, kind));
        stages.push(Arc::clone(&agg));
        agg
    }

    fn intern_op(&self, index: u64, mnemonic: &str) -> Arc<OpAgg> {
        let mut ops = self.ops.lock().unwrap();
        if let Some(o) = ops
            .iter()
            .find(|o| o.index == index && o.mnemonic == mnemonic)
        {
            return Arc::clone(o);
        }
        let agg = Arc::new(OpAgg::new(index, mnemonic));
        ops.push(Arc::clone(&agg));
        agg
    }
}

impl TraceSink for AtomicSink {
    fn record_span(&self, name: &str, kind: &str, ns: u64, tiles: u64, cells: u64) {
        self.intern(name, kind).add(ns, tiles, cells);
    }

    fn record_pool(&self, delta: &PoolSnapshot) {
        self.pool_hits.fetch_add(delta.hits, Ordering::Relaxed);
        self.pool_misses.fetch_add(delta.misses, Ordering::Relaxed);
        self.pool_allocated
            .fetch_add(delta.allocated_bytes, Ordering::Relaxed);
        self.pool_peak
            .fetch_max(delta.peak_live_bytes, Ordering::Relaxed);
    }

    fn record_arena(&self, created: u64, recycled: u64) {
        self.arena_created.fetch_add(created, Ordering::Relaxed);
        self.arena_recycled.fetch_add(recycled, Ordering::Relaxed);
    }

    fn record_arena_workers(&self, per_worker: &[(u64, u64)]) {
        let mut merged = self.arena_workers.lock().unwrap();
        if merged.len() < per_worker.len() {
            merged.resize(per_worker.len(), (0, 0));
        }
        for (m, w) in merged.iter_mut().zip(per_worker) {
            m.0 += w.0;
            m.1 += w.1;
        }
    }

    fn record_threads(&self, delta: &ThreadsSnapshot) {
        self.threads_workers
            .fetch_max(delta.workers, Ordering::Relaxed);
        self.threads_regions
            .fetch_add(delta.regions, Ordering::Relaxed);
        self.threads_items.fetch_add(delta.items, Ordering::Relaxed);
        self.threads_steals
            .fetch_add(delta.steals, Ordering::Relaxed);
        self.threads_parks.fetch_add(delta.parks, Ordering::Relaxed);
    }

    fn record_comm(&self, delta: &CommSnapshot) {
        self.comm_messages
            .fetch_add(delta.messages, Ordering::Relaxed);
        self.comm_doubles
            .fetch_add(delta.doubles, Ordering::Relaxed);
        self.comm_collectives
            .fetch_add(delta.collectives, Ordering::Relaxed);
    }

    fn record_cycle(&self, event: CycleEvent) {
        self.cycles.lock().unwrap().push(event);
    }

    fn record_chaos(&self, delta: &ChaosSnapshot) {
        let mut merged = self.chaos.lock().unwrap();
        for d in &delta.sites {
            if let Some(m) = merged.iter_mut().find(|m| m.site == d.site) {
                m.armed += d.armed;
                m.fired += d.fired;
                m.recovered += d.recovered;
            } else {
                merged.push(d.clone());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace handle
// ---------------------------------------------------------------------------

/// Cheap-to-clone handle threaded through engine, solver, and harness.
/// A disabled handle (`Trace::disabled()` / `Trace::default()`) reduces
/// every record call to a `None` check.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    sink: Option<Arc<AtomicSink>>,
}

impl Trace {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Trace {
        Trace { sink: None }
    }

    /// A live handle backed by a fresh [`AtomicSink`]. Without the
    /// `capture` feature this still returns a disabled handle.
    pub fn enabled() -> Trace {
        #[cfg(feature = "capture")]
        {
            Trace {
                sink: Some(Arc::new(AtomicSink::default())),
            }
        }
        #[cfg(not(feature = "capture"))]
        {
            Trace { sink: None }
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Intern a stage and return a hot-path handle for it. Call once per
    /// stage at setup time, not per tile.
    pub fn stage(&self, name: &str, kind: &str) -> StageHandle {
        StageHandle {
            agg: self.sink.as_ref().map(|s| s.intern(name, kind)),
        }
    }

    /// Intern a schedule op (by program index + mnemonic) and return a
    /// hot-path handle for its timeline row.
    pub fn op(&self, index: u64, mnemonic: &str) -> OpHandle {
        OpHandle {
            agg: self.sink.as_ref().map(|s| s.intern_op(index, mnemonic)),
        }
    }

    /// Publish the plan-cache hit/miss/eviction counters (a snapshot — the
    /// last published values win; callers pass the global cache's totals).
    pub fn record_plan_cache(&self, hits: u64, misses: u64, evictions: u64) {
        if let Some(s) = &self.sink {
            s.plan_cache_hits.store(hits, Ordering::Relaxed);
            s.plan_cache_misses.store(misses, Ordering::Relaxed);
            s.plan_cache_evictions.store(evictions, Ordering::Relaxed);
        }
    }

    /// Publish solve-service counters (a snapshot — the last published
    /// values win; the server passes its lifetime totals).
    pub fn record_server(&self, snap: &ServerSnapshot) {
        if let Some(s) = &self.sink {
            *s.server.lock().unwrap() = *snap;
        }
    }

    /// Publish per-shard event-core counters (a snapshot — the last
    /// published vector wins; the server passes one entry per shard).
    pub fn record_shards(&self, shards: &[ShardSnapshot]) {
        if let Some(s) = &self.sink {
            *s.shards.lock().unwrap() = shards.to_vec();
        }
    }

    /// Publish online-tuner counters (a snapshot — the last published
    /// values win).
    pub fn record_tuner(&self, snap: &TunerSnapshot) {
        if let Some(s) = &self.sink {
            *s.tuner.lock().unwrap() = *snap;
        }
    }

    /// One-shot span record (setup paths where a handle isn't worth caching).
    pub fn record_span(&self, name: &str, kind: &str, ns: u64, tiles: u64, cells: u64) {
        if let Some(s) = &self.sink {
            s.record_span(name, kind, ns, tiles, cells);
        }
    }

    pub fn record_pool(&self, delta: &PoolSnapshot) {
        if let Some(s) = &self.sink {
            s.record_pool(delta);
        }
    }

    pub fn record_arena(&self, created: u64, recycled: u64) {
        if let Some(s) = &self.sink {
            s.record_arena(created, recycled);
        }
    }

    /// Per-worker `(created, recycled)` arena counts, indexed by worker slot.
    pub fn record_arena_workers(&self, per_worker: &[(u64, u64)]) {
        if let Some(s) = &self.sink {
            s.record_arena_workers(per_worker);
        }
    }

    /// Work-stealing-pool counter deltas (see [`ThreadsSnapshot`]).
    pub fn record_threads(&self, delta: &ThreadsSnapshot) {
        if let Some(s) = &self.sink {
            s.record_threads(delta);
        }
    }

    pub fn record_comm(&self, delta: &CommSnapshot) {
        if let Some(s) = &self.sink {
            s.record_comm(delta);
        }
    }

    pub fn record_cycle(&self, index: u64, ns: u64, residual: f64) {
        if let Some(s) = &self.sink {
            s.record_cycle(CycleEvent {
                index,
                ns,
                residual,
            });
        }
    }

    /// Fault-injection counter deltas, merged per site label.
    pub fn record_chaos(&self, delta: &ChaosSnapshot) {
        if let Some(s) = &self.sink {
            s.record_chaos(delta);
        }
    }

    /// Attach a key/value to the report's `meta` section (last write wins).
    pub fn set_meta(&self, key: &str, value: impl Into<String>) {
        if let Some(s) = &self.sink {
            let mut meta = s.meta.lock().unwrap();
            let value = value.into();
            if let Some(kv) = meta.iter_mut().find(|(k, _)| k == key) {
                kv.1 = value;
            } else {
                meta.push((key.to_string(), value));
            }
        }
    }

    /// Snapshot everything collected so far (plus the process-wide kernel
    /// dispatch histogram). `None` for a disabled handle.
    pub fn report(&self) -> Option<Report> {
        let sink = self.sink.as_ref()?;
        let stages = sink
            .stages
            .lock()
            .unwrap()
            .iter()
            .map(|s| StageReport {
                name: s.name.clone(),
                kind: s.kind.clone(),
                ns: s.ns.load(Ordering::Relaxed),
                invocations: s.invocations.load(Ordering::Relaxed),
                tiles: s.tiles.load(Ordering::Relaxed),
                cells: s.cells.load(Ordering::Relaxed),
            })
            .collect();
        let mut ops: Vec<OpReport> = sink
            .ops
            .lock()
            .unwrap()
            .iter()
            .map(|o| OpReport {
                index: o.index,
                mnemonic: o.mnemonic.clone(),
                ns: o.ns.load(Ordering::Relaxed),
                invocations: o.invocations.load(Ordering::Relaxed),
            })
            .collect();
        ops.sort_by_key(|o| o.index);
        Some(Report {
            meta: sink.meta.lock().unwrap().clone(),
            stages,
            ops,
            plan_cache: PlanCacheSnapshot {
                hits: sink.plan_cache_hits.load(Ordering::Relaxed),
                misses: sink.plan_cache_misses.load(Ordering::Relaxed),
                evictions: sink.plan_cache_evictions.load(Ordering::Relaxed),
            },
            server: *sink.server.lock().unwrap(),
            shards: sink.shards.lock().unwrap().clone(),
            tuner: *sink.tuner.lock().unwrap(),
            dispatch: dispatch::snapshot(),
            kernel_impls: dispatch::impl_snapshot(),
            kernel_tiers: dispatch::tier_snapshot(),
            threads: ThreadsSnapshot {
                workers: sink.threads_workers.load(Ordering::Relaxed),
                regions: sink.threads_regions.load(Ordering::Relaxed),
                items: sink.threads_items.load(Ordering::Relaxed),
                steals: sink.threads_steals.load(Ordering::Relaxed),
                parks: sink.threads_parks.load(Ordering::Relaxed),
            },
            pool: PoolSnapshot {
                hits: sink.pool_hits.load(Ordering::Relaxed),
                misses: sink.pool_misses.load(Ordering::Relaxed),
                allocated_bytes: sink.pool_allocated.load(Ordering::Relaxed),
                peak_live_bytes: sink.pool_peak.load(Ordering::Relaxed),
            },
            arena_created: sink.arena_created.load(Ordering::Relaxed),
            arena_recycled: sink.arena_recycled.load(Ordering::Relaxed),
            arena_workers: sink.arena_workers.lock().unwrap().clone(),
            comm: CommSnapshot {
                messages: sink.comm_messages.load(Ordering::Relaxed),
                doubles: sink.comm_doubles.load(Ordering::Relaxed),
                collectives: sink.comm_collectives.load(Ordering::Relaxed),
            },
            chaos: ChaosSnapshot {
                sites: sink.chaos.lock().unwrap().clone(),
            },
            cycles: sink.cycles.lock().unwrap().clone(),
        })
    }
}

/// Hot-path handle for one stage: three relaxed atomic adds per record,
/// or nothing at all when the owning trace is disabled.
#[derive(Clone, Debug)]
pub struct StageHandle {
    agg: Option<Arc<StageAgg>>,
}

impl StageHandle {
    /// A handle that records nothing.
    pub fn disabled() -> StageHandle {
        StageHandle { agg: None }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.agg.is_some()
    }

    #[inline]
    pub fn record(&self, ns: u64, tiles: u64, cells: u64) {
        if let Some(agg) = &self.agg {
            agg.add(ns, tiles, cells);
        }
    }
}

/// Hot-path handle for one schedule op: two relaxed atomic adds per
/// record, or nothing at all when the owning trace is disabled.
#[derive(Clone, Debug)]
pub struct OpHandle {
    agg: Option<Arc<OpAgg>>,
}

impl OpHandle {
    /// A handle that records nothing.
    pub fn disabled() -> OpHandle {
        OpHandle { agg: None }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.agg.is_some()
    }

    #[inline]
    pub fn record(&self, ns: u64) {
        if let Some(agg) = &self.agg {
            agg.add(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct StageReport {
    pub name: String,
    pub kind: String,
    pub ns: u64,
    pub invocations: u64,
    pub tiles: u64,
    pub cells: u64,
}

/// One row of the op-level timeline: a schedule op's program index,
/// mnemonic, and accumulated time over all interpreter passes.
#[derive(Clone, Debug)]
pub struct OpReport {
    pub index: u64,
    pub mnemonic: String,
    pub ns: u64,
    pub invocations: u64,
}

/// A point-in-time snapshot of one [`Trace`], renderable as JSON.
#[derive(Clone, Debug)]
pub struct Report {
    pub meta: Vec<(String, String)>,
    pub stages: Vec<StageReport>,
    pub ops: Vec<OpReport>,
    pub plan_cache: PlanCacheSnapshot,
    /// Solve-service counters; all-zero (and omitted from the JSON) unless
    /// a `gmg-server` instance published into this trace.
    pub server: ServerSnapshot,
    /// Per-shard event-core counters; empty unless the sharded server
    /// published them.
    pub shards: Vec<ShardSnapshot>,
    /// Online-tuner counters; all-zero (and omitted from the JSON) unless
    /// the server ran with `--tune-online`.
    pub tuner: TunerSnapshot,
    pub dispatch: [u64; dispatch::KINDS],
    /// Per-`KernelImpl` case-execution histogram, indexed like
    /// [`dispatch::IMPL_LABELS`].
    pub kernel_impls: [u64; dispatch::IMPLS],
    /// Per-`KernelTier` case-execution histogram (scalar-unrolled vs
    /// lane-safe vs fast-math), indexed like [`dispatch::TIER_LABELS`].
    /// Shares its total with `kernel_impls`.
    pub kernel_tiers: [u64; dispatch::TIERS],
    /// Work-stealing-pool utilization aggregated over the trace's lifetime.
    pub threads: ThreadsSnapshot,
    pub pool: PoolSnapshot,
    pub arena_created: u64,
    pub arena_recycled: u64,
    /// Per-worker `(created, recycled)` arena counts, indexed by worker slot.
    pub arena_workers: Vec<(u64, u64)>,
    pub comm: CommSnapshot,
    /// Fault-injection counters per chaos site (empty when chaos is off).
    pub chaos: ChaosSnapshot,
    pub cycles: Vec<CycleEvent>,
}

impl Report {
    pub fn to_json(&self) -> String {
        json::report_to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        let h = t.stage("sm", "overlapped");
        h.record(100, 1, 64);
        t.record_cycle(0, 5, 1.0);
        assert!(!t.is_enabled());
        assert!(t.report().is_none());
    }

    #[test]
    fn spans_aggregate_by_name_and_kind() {
        let t = Trace::enabled();
        let h1 = t.stage("sm", "overlapped");
        let h2 = t.stage("sm", "overlapped");
        h1.record(100, 2, 64);
        h2.record(50, 1, 32);
        t.stage("r", "untiled").record(10, 1, 16);
        let r = t.report().unwrap();
        assert_eq!(r.stages.len(), 2);
        let sm = r.stages.iter().find(|s| s.name == "sm").unwrap();
        assert_eq!((sm.ns, sm.invocations, sm.tiles, sm.cells), (150, 2, 3, 96));
    }

    #[test]
    fn pool_deltas_sum_and_peak_maxes() {
        let t = Trace::enabled();
        t.record_pool(&PoolSnapshot {
            hits: 1,
            misses: 2,
            allocated_bytes: 100,
            peak_live_bytes: 80,
        });
        t.record_pool(&PoolSnapshot {
            hits: 3,
            misses: 0,
            allocated_bytes: 0,
            peak_live_bytes: 40,
        });
        let r = t.report().unwrap();
        assert_eq!(r.pool.hits, 4);
        assert_eq!(r.pool.misses, 2);
        assert_eq!(r.pool.allocated_bytes, 100);
        assert_eq!(r.pool.peak_live_bytes, 80);
    }

    #[test]
    fn json_is_structurally_sound() {
        let t = Trace::enabled();
        t.set_meta("source", "unit-test \"quoted\"");
        t.stage("sm", "diamond").record(1_000, 4, 256);
        t.record_cycle(0, 2_000, 0.125);
        t.record_comm(&CommSnapshot {
            messages: 2,
            doubles: 128,
            collectives: 1,
        });
        let s = t.report().unwrap().to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        for key in [
            "\"meta\"",
            "\"stages\"",
            "\"ops\"",
            "\"plan_cache\"",
            "\"dispatch\"",
            "\"kernel_impls\"",
            "\"kernel_tiers\"",
            "\"threads\"",
            "\"pool\"",
            "\"arena\"",
            "\"workers\"",
            "\"comm\"",
            "\"chaos\"",
            "\"cycles\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.contains("\\\"quoted\\\""));
    }

    #[test]
    fn op_timeline_sorts_by_index_and_snapshots_plan_cache() {
        let t = Trace::enabled();
        let late = t.op(3, "run_diamond");
        let early = t.op(0, "pool_alloc");
        late.record(300);
        late.record(200);
        early.record(10);
        t.record_plan_cache(5, 2, 0);
        t.record_plan_cache(7, 2, 1); // snapshot semantics: last publish wins
        let r = t.report().unwrap();
        assert_eq!(r.ops.len(), 2);
        assert_eq!(
            (r.ops[0].index, r.ops[0].mnemonic.as_str()),
            (0, "pool_alloc")
        );
        assert_eq!((r.ops[1].ns, r.ops[1].invocations), (500, 2));
        assert_eq!(
            r.plan_cache,
            PlanCacheSnapshot {
                hits: 7,
                misses: 2,
                evictions: 1
            }
        );
    }

    #[test]
    fn server_snapshot_last_publish_wins_and_renders() {
        let t = Trace::enabled();
        assert!(t.report().unwrap().server.is_empty());
        // empty snapshot → no "server" block in the JSON
        assert!(!t.report().unwrap().to_json().contains("\"server\""));

        t.record_server(&ServerSnapshot {
            requests: 5,
            ok: 4,
            ..Default::default()
        });
        t.record_server(&ServerSnapshot {
            requests: 9,
            ok: 7,
            exec_errors: 1,
            rejected_queue_full: 2,
            session_hits: 6,
            session_misses: 3,
            engines_created: 3,
            queue_max_depth: 4,
            tuned_applied: 1,
            ..Default::default()
        });
        let r = t.report().unwrap();
        assert_eq!(r.server.requests, 9, "snapshot semantics: last wins");
        let s = r.to_json();
        assert!(s.contains("\"server\""));
        assert!(s.contains("\"rejected_queue_full\": 2"));
        assert!(s.contains("\"session_hits\": 6"));
        assert!(s.contains("\"queue_max_depth\": 4"));
        assert!(s.contains("\"evictions\""));
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let s = NoopSink;
        s.record_span("x", "untiled", 1, 1, 1);
        s.record_pool(&PoolSnapshot::default());
        s.record_arena(1, 2);
        s.record_arena_workers(&[(1, 0)]);
        s.record_threads(&ThreadsSnapshot::default());
        s.record_comm(&CommSnapshot::default());
        s.record_cycle(CycleEvent {
            index: 0,
            ns: 1,
            residual: 0.0,
        });
        s.record_chaos(&ChaosSnapshot::default());
    }

    #[test]
    fn chaos_deltas_merge_per_site() {
        let t = Trace::enabled();
        t.record_chaos(&ChaosSnapshot {
            sites: vec![
                ChaosSiteSnapshot {
                    site: "pool_alloc".into(),
                    armed: 4,
                    fired: 2,
                    recovered: 2,
                },
                ChaosSiteSnapshot {
                    site: "halo_drop".into(),
                    armed: 1,
                    fired: 1,
                    recovered: 1,
                },
            ],
        });
        t.record_chaos(&ChaosSnapshot {
            sites: vec![ChaosSiteSnapshot {
                site: "pool_alloc".into(),
                armed: 2,
                fired: 1,
                recovered: 1,
            }],
        });
        let r = t.report().unwrap();
        assert_eq!(r.chaos.sites.len(), 2);
        let pa = r
            .chaos
            .sites
            .iter()
            .find(|s| s.site == "pool_alloc")
            .unwrap();
        assert_eq!((pa.armed, pa.fired, pa.recovered), (6, 3, 3));
        assert_eq!(r.chaos.total_fired(), 4);
        let s = r.to_json();
        assert!(s.contains("\"chaos\""));
        assert!(s.contains("\"pool_alloc\""));
        assert!(s.contains("\"fired\": 4"), "totals line missing in {s}");
    }

    #[test]
    fn threads_workers_max_merge_and_arena_workers_sum() {
        let t = Trace::enabled();
        t.record_threads(&ThreadsSnapshot {
            workers: 3,
            regions: 2,
            items: 10,
            steals: 1,
            parks: 4,
        });
        t.record_threads(&ThreadsSnapshot {
            workers: 3,
            regions: 1,
            items: 5,
            steals: 0,
            parks: 2,
        });
        t.record_arena_workers(&[(2, 0), (1, 3)]);
        t.record_arena_workers(&[(0, 2), (0, 1), (1, 0)]);
        let r = t.report().unwrap();
        // workers is a level (max), the rest accumulate
        assert_eq!(
            r.threads,
            ThreadsSnapshot {
                workers: 3,
                regions: 3,
                items: 15,
                steals: 1,
                parks: 6
            }
        );
        assert_eq!(r.arena_workers, vec![(2, 2), (1, 4), (1, 0)]);
        let s = r.to_json();
        assert!(s.contains("\"workers\": 3"));
    }
}
