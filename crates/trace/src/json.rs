//! Hand-rolled JSON rendering for [`Report`] (no serde in the offline
//! build). Output is deliberately flat and stable so downstream scripts can
//! diff two profiles textually.

use crate::{dispatch, Report};

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn report_to_json(r: &Report) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in r.meta.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        esc(&mut s, k);
        s.push_str(": ");
        esc(&mut s, v);
    }
    if !r.meta.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("},\n  \"stages\": [");
    for (i, st) in r.stages.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"name\": ");
        esc(&mut s, &st.name);
        s.push_str(", \"kind\": ");
        esc(&mut s, &st.kind);
        s.push_str(&format!(
            ", \"seconds\": {}, \"invocations\": {}, \"tiles\": {}, \"cells\": {}}}",
            f64_json(st.ns as f64 * 1e-9),
            st.invocations,
            st.tiles,
            st.cells
        ));
    }
    if !r.stages.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"ops\": [");
    for (i, op) in r.ops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {{\"index\": {}, \"mnemonic\": ", op.index));
        esc(&mut s, &op.mnemonic);
        s.push_str(&format!(
            ", \"seconds\": {}, \"invocations\": {}}}",
            f64_json(op.ns as f64 * 1e-9),
            op.invocations
        ));
    }
    if !r.ops.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n",
        r.plan_cache.hits, r.plan_cache.misses, r.plan_cache.evictions
    ));
    if !r.server.is_empty() {
        let hist = r
            .server
            .batch_hist
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let scenario = r
            .server
            .scenario_solves
            .iter()
            .zip(crate::SCENARIO_LABELS)
            .map(|(v, k)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "  \"server\": {{\"requests\": {}, \"ok\": {}, \"exec_errors\": {}, \
             \"protocol_errors\": {}, \"rejected_queue_full\": {}, \"rejected_tenant\": {}, \
             \"rejected_shutdown\": {}, \"session_hits\": {}, \"session_misses\": {}, \
             \"engines_created\": {}, \"queue_max_depth\": {}, \"tuned_applied\": {}, \
             \"batches\": {}, \"coalesced\": {}, \"batch_hist\": [{}], \
             \"scenario\": {{{scenario}}}, \"mixed_solves\": {}}},\n",
            r.server.requests,
            r.server.ok,
            r.server.exec_errors,
            r.server.protocol_errors,
            r.server.rejected_queue_full,
            r.server.rejected_tenant,
            r.server.rejected_shutdown,
            r.server.session_hits,
            r.server.session_misses,
            r.server.engines_created,
            r.server.queue_max_depth,
            r.server.tuned_applied,
            r.server.batches,
            r.server.coalesced,
            hist,
            r.server.mixed_solves
        ));
    }
    if !r.shards.is_empty() {
        s.push_str("  \"shards\": [");
        for (i, sh) in r.shards.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"shard\": {}, \"accepted\": {}, \"adopted\": {}, \"frames\": {}, \
                 \"wakeups\": {}, \"dequeued_latency\": {}, \"dequeued_batch\": {}, \
                 \"session_hits\": {}, \"session_misses\": {}, \"engines_created\": {}, \
                 \"queue_max_depth\": {}}}",
                sh.shard,
                sh.accepted,
                sh.adopted,
                sh.frames,
                sh.wakeups,
                sh.dequeued_latency,
                sh.dequeued_batch,
                sh.session_hits,
                sh.session_misses,
                sh.engines_created,
                sh.queue_max_depth
            ));
        }
        s.push_str("],\n");
    }
    if !r.tuner.is_empty() {
        s.push_str(&format!(
            "  \"tuner\": {{\"trials\": {}, \"discarded_faulted\": {}, \"deferred_busy\": {}, \
             \"winners\": {}, \"fingerprints\": {}, \"observed\": {}, \
             \"trial_queue_peak\": {}, \"leaked_trials\": {}}},\n",
            r.tuner.trials,
            r.tuner.discarded_faulted,
            r.tuner.deferred_busy,
            r.tuner.winners,
            r.tuner.fingerprints,
            r.tuner.observed,
            r.tuner.trial_queue_peak,
            r.tuner.leaked_trials
        ));
    }
    s.push_str("  \"dispatch\": {");
    for (i, (label, count)) in dispatch::LABELS.iter().zip(r.dispatch.iter()).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{label}\": {count}"));
    }
    s.push_str("},\n  \"kernel_impls\": {");
    for (i, (label, count)) in dispatch::IMPL_LABELS
        .iter()
        .zip(r.kernel_impls.iter())
        .enumerate()
    {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{label}\": {count}"));
    }
    s.push_str("},\n  \"kernel_tiers\": {");
    for (i, (label, count)) in dispatch::TIER_LABELS
        .iter()
        .zip(r.kernel_tiers.iter())
        .enumerate()
    {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{label}\": {count}"));
    }
    s.push_str(&format!(
        "}},\n  \"threads\": {{\"workers\": {}, \"regions\": {}, \"items\": {}, \"steals\": {}, \"parks\": {}}},\n",
        r.threads.workers, r.threads.regions, r.threads.items, r.threads.steals, r.threads.parks
    ));
    s.push_str(&format!(
        "  \"pool\": {{\"hits\": {}, \"misses\": {}, \"allocated_bytes\": {}, \"peak_live_bytes\": {}}},\n",
        r.pool.hits, r.pool.misses, r.pool.allocated_bytes, r.pool.peak_live_bytes
    ));
    s.push_str(&format!(
        "  \"arena\": {{\"created\": {}, \"recycled\": {}, \"workers\": [",
        r.arena_created, r.arena_recycled
    ));
    for (i, (created, recycled)) in r.arena_workers.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"created\": {created}, \"recycled\": {recycled}}}"
        ));
    }
    s.push_str("]},\n");
    s.push_str(&format!(
        "  \"comm\": {{\"messages\": {}, \"doubles\": {}, \"collectives\": {}}},\n",
        r.comm.messages, r.comm.doubles, r.comm.collectives
    ));
    s.push_str(&format!(
        "  \"chaos\": {{\"armed\": {}, \"fired\": {}, \"recovered\": {}, \"sites\": [",
        r.chaos.total_armed(),
        r.chaos.total_fired(),
        r.chaos.total_recovered()
    ));
    for (i, site) in r.chaos.sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"site\": ");
        esc(&mut s, &site.site);
        s.push_str(&format!(
            ", \"armed\": {}, \"fired\": {}, \"recovered\": {}}}",
            site.armed, site.fired, site.recovered
        ));
    }
    if !r.chaos.sites.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]},\n");
    s.push_str("  \"cycles\": [");
    for (i, c) in r.cycles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"index\": {}, \"seconds\": {}, \"residual\": {}}}",
            c.index,
            f64_json(c.ns as f64 * 1e-9),
            f64_json(c.residual)
        ));
    }
    if !r.cycles.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}
