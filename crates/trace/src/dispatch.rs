//! Process-wide kernel-dispatch histogram.
//!
//! `gmg-runtime::kernel` classifies every kernel-case execution into one of
//! five dispatch classes and bumps one relaxed atomic here — once per case
//! execution (i.e. per stage per tile), not per row, so the cost is noise.
//! Global statics (rather than per-`Trace` state) keep the hot path free of
//! any handle indirection; `reset()` lets harness sections scope the counts.

#[cfg(feature = "capture")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Which code path executed a kernel case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Kind {
    /// Unit-stride row kernel with the tap count fully unrolled.
    UnitUnrolled = 0,
    /// Unit-stride kernel factored by coefficient spans (high tap counts).
    UnitFactored = 1,
    /// Unit-stride generic per-tap fallback loop.
    UnitFallback = 2,
    /// Strided row kernel (restriction / interpolation accesses).
    Strided = 3,
    /// Expression-tree interpreter (no linearized form).
    Interpreter = 4,
    /// Variable-coefficient tap loop (taps carry coefficient-grid factors).
    VarCoef = 5,
}

pub const KINDS: usize = 6;

pub const LABELS: [&str; KINDS] = [
    "unit_unrolled",
    "unit_factored",
    "unit_fallback",
    "strided",
    "interpreter",
    "varcoef",
];

#[cfg(feature = "capture")]
static COUNTS: [AtomicU64; KINDS] = [const { AtomicU64::new(0) }; KINDS];

/// Count `n` executions of dispatch class `kind`.
#[inline]
pub fn record(kind: Kind, n: u64) {
    #[cfg(feature = "capture")]
    COUNTS[kind as usize].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "capture"))]
    {
        let _ = (kind, n);
    }
}

/// Current histogram, indexed like [`LABELS`].
pub fn snapshot() -> [u64; KINDS] {
    #[cfg(feature = "capture")]
    {
        let mut out = [0u64; KINDS];
        for (o, c) in out.iter_mut().zip(COUNTS.iter()) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
    #[cfg(not(feature = "capture"))]
    {
        [0u64; KINDS]
    }
}

/// Number of `KernelImpl` families (mirrors `polymg::specialize::KernelImpl`;
/// index 0 is the generic path).
pub const IMPLS: usize = 7;

/// Labels indexed by `KernelImpl::index()`.
pub const IMPL_LABELS: [&str; IMPLS] = [
    "generic",
    "stencil2d5",
    "stencil2d9",
    "stencil3d7",
    "stencil3d27",
    "restrict",
    "interp",
];

#[cfg(feature = "capture")]
static IMPL_COUNTS: [AtomicU64; IMPLS] = [const { AtomicU64::new(0) }; IMPLS];

/// Count `n` case executions dispatched to kernel-impl family
/// `impl_index` (`KernelImpl::index()`).
#[inline]
pub fn record_impl(impl_index: usize, n: u64) {
    #[cfg(feature = "capture")]
    IMPL_COUNTS[impl_index].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "capture"))]
    {
        let _ = (impl_index, n);
    }
}

/// Current per-kernel-impl histogram, indexed like [`IMPL_LABELS`].
pub fn impl_snapshot() -> [u64; IMPLS] {
    #[cfg(feature = "capture")]
    {
        let mut out = [0u64; IMPLS];
        for (o, c) in out.iter_mut().zip(IMPL_COUNTS.iter()) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
    #[cfg(not(feature = "capture"))]
    {
        [0u64; IMPLS]
    }
}

/// Number of implementation tiers (mirrors `polymg::specialize::KernelTier`;
/// index 0 is the scalar tier).
pub const TIERS: usize = 3;

/// Labels indexed by `KernelTier::index()`.
pub const TIER_LABELS: [&str; TIERS] = ["scalar", "lane_safe", "fast_math"];

#[cfg(feature = "capture")]
static TIER_COUNTS: [AtomicU64; TIERS] = [const { AtomicU64::new(0) }; TIERS];

/// Count `n` case executions run at implementation tier `tier_index`
/// (`KernelTier::index()`). Recorded alongside [`record_impl`], so the two
/// histograms share a total.
#[inline]
pub fn record_tier(tier_index: usize, n: u64) {
    #[cfg(feature = "capture")]
    TIER_COUNTS[tier_index].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "capture"))]
    {
        let _ = (tier_index, n);
    }
}

/// Current per-tier histogram, indexed like [`TIER_LABELS`].
pub fn tier_snapshot() -> [u64; TIERS] {
    #[cfg(feature = "capture")]
    {
        let mut out = [0u64; TIERS];
        for (o, c) in out.iter_mut().zip(TIER_COUNTS.iter()) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
    #[cfg(not(feature = "capture"))]
    {
        [0u64; TIERS]
    }
}

/// Zero all histograms (harness sections call this between experiments).
pub fn reset() {
    #[cfg(feature = "capture")]
    {
        for c in COUNTS.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for c in IMPL_COUNTS.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for c in TIER_COUNTS.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}
