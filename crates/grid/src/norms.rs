//! Vector norms over grid interiors, used for convergence checks.
//!
//! Multigrid convergence is judged on the residual norm restricted to the
//! *interior* points (the ghost ring carries boundary data and must not
//! contribute). Both discrete L2 (`sqrt(sum v² / npoints)`, the convention
//! NAS MG and Ghysels & Vanroose use) and max norms are provided.

use crate::{View2, View3};

/// Discrete L2 norm of the interior of a 2-D grid with a 1-deep ghost ring:
/// `sqrt( Σ v(y,x)² / ((ny-2)(nx-2)) )`.
pub fn l2_interior_2d(v: &View2<'_>) -> f64 {
    let (ny, nx) = (v.ny(), v.nx());
    assert!(ny > 2 && nx > 2, "grid too small for an interior");
    let mut sum = 0.0;
    for y in 1..ny - 1 {
        let row = v.row(y);
        for &val in &row[1..nx - 1] {
            sum += val * val;
        }
    }
    (sum / ((ny - 2) as f64 * (nx - 2) as f64)).sqrt()
}

/// Max (infinity) norm of the interior of a 2-D grid.
pub fn max_interior_2d(v: &View2<'_>) -> f64 {
    let (ny, nx) = (v.ny(), v.nx());
    assert!(ny > 2 && nx > 2, "grid too small for an interior");
    let mut m: f64 = 0.0;
    for y in 1..ny - 1 {
        for &val in &v.row(y)[1..nx - 1] {
            m = m.max(val.abs());
        }
    }
    m
}

/// Discrete L2 norm of the interior of a 3-D grid with a 1-deep ghost ring.
pub fn l2_interior_3d(v: &View3<'_>) -> f64 {
    let (nz, ny, nx) = (v.nz(), v.ny(), v.nx());
    assert!(nz > 2 && ny > 2 && nx > 2, "grid too small for an interior");
    let mut sum = 0.0;
    for z in 1..nz - 1 {
        for y in 1..ny - 1 {
            for &val in &v.row(z, y)[1..nx - 1] {
                sum += val * val;
            }
        }
    }
    let n = (nz - 2) as f64 * (ny - 2) as f64 * (nx - 2) as f64;
    (sum / n).sqrt()
}

/// Max (infinity) norm of the interior of a 3-D grid.
pub fn max_interior_3d(v: &View3<'_>) -> f64 {
    let (nz, ny, nx) = (v.nz(), v.ny(), v.nx());
    assert!(nz > 2 && ny > 2 && nx > 2, "grid too small for an interior");
    let mut m: f64 = 0.0;
    for z in 1..nz - 1 {
        for y in 1..ny - 1 {
            for &val in &v.row(z, y)[1..nx - 1] {
                m = m.max(val.abs());
            }
        }
    }
    m
}

/// Max absolute difference between two equally-shaped 2-D grids (all points).
///
/// Used by the equivalence tests that compare optimizer variants against the
/// reference interpreter.
pub fn max_abs_diff_2d(a: &View2<'_>, b: &View2<'_>) -> f64 {
    assert_eq!((a.ny(), a.nx()), (b.ny(), b.nx()), "shape mismatch");
    let mut m: f64 = 0.0;
    for y in 0..a.ny() {
        let (ra, rb) = (a.row(y), b.row(y));
        for x in 0..a.nx() {
            m = m.max((ra[x] - rb[x]).abs());
        }
    }
    m
}

/// Max absolute difference between two equally-shaped 3-D grids (all points).
pub fn max_abs_diff_3d(a: &View3<'_>, b: &View3<'_>) -> f64 {
    assert_eq!(
        (a.nz(), a.ny(), a.nx()),
        (b.nz(), b.ny(), b.nx()),
        "shape mismatch"
    );
    let mut m: f64 = 0.0;
    for z in 0..a.nz() {
        for y in 0..a.ny() {
            let (ra, rb) = (a.row(z, y), b.row(z, y));
            for x in 0..a.nx() {
                m = m.max((ra[x] - rb[x]).abs());
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{View2, View3};

    #[test]
    fn l2_2d_uniform_interior() {
        // 4x4 grid: interior is 2x2; set interior to 3.0 -> l2 = 3.
        let mut buf = vec![0.0; 16];
        for y in 1..3 {
            for x in 1..3 {
                buf[y * 4 + x] = 3.0;
            }
        }
        let v = View2::dense(&buf, 4, 4);
        assert!((l2_interior_2d(&v) - 3.0).abs() < 1e-12);
        assert_eq!(max_interior_2d(&v), 3.0);
    }

    #[test]
    fn ghost_ring_ignored_2d() {
        let mut buf = vec![100.0; 16]; // poison everywhere
        for y in 1..3 {
            for x in 1..3 {
                buf[y * 4 + x] = 1.0;
            }
        }
        let v = View2::dense(&buf, 4, 4);
        assert!((l2_interior_2d(&v) - 1.0).abs() < 1e-12);
        assert_eq!(max_interior_2d(&v), 1.0);
    }

    #[test]
    fn l2_3d_uniform_interior() {
        let mut buf = vec![0.0; 64];
        for z in 1..3 {
            for y in 1..3 {
                for x in 1..3 {
                    buf[z * 16 + y * 4 + x] = 2.0;
                }
            }
        }
        let v = View3::dense(&buf, 4, 4, 4);
        assert!((l2_interior_3d(&v) - 2.0).abs() < 1e-12);
        assert_eq!(max_interior_3d(&v), 2.0);
    }

    #[test]
    fn diff_norms() {
        let a = vec![1.0; 16];
        let mut b = vec![1.0; 16];
        b[5] = 1.5;
        let va = View2::dense(&a, 4, 4);
        let vb = View2::dense(&b, 4, 4);
        assert!((max_abs_diff_2d(&va, &vb) - 0.5).abs() < 1e-15);

        let a3 = vec![0.0; 27];
        let mut b3 = vec![0.0; 27];
        b3[13] = -2.0;
        let va3 = View3::dense(&a3, 3, 3, 3);
        let vb3 = View3::dense(&b3, 3, 3, 3);
        assert!((max_abs_diff_3d(&va3, &vb3) - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_rejects_shape_mismatch() {
        let a = vec![0.0; 16];
        let b = vec![0.0; 9];
        let _ = max_abs_diff_2d(&View2::dense(&a, 4, 4), &View2::dense(&b, 3, 3));
    }
}
