//! Grid initialisation helpers: manufactured solutions and RHS fields for the
//! Poisson problems the paper evaluates, plus deterministic pseudo-random
//! fills for testing.
//!
//! The 2-D/3-D benchmarks solve `∇²u = f` on the unit square/cube with
//! homogeneous Dirichlet boundaries. With the manufactured solution
//! `u(x,y) = sin(πx)·sin(πy)` the RHS is `f = -2π² sin(πx) sin(πy)` (and the
//! 3-D analogue with `-3π²`), which lets tests check convergence against a
//! known answer.

use crate::{View2Mut, View3Mut};
use std::f64::consts::PI;

/// Fill the interior of a 2-D grid (ghost ring untouched) with the
/// manufactured Poisson RHS `f = -2π² sin(πx) sin(πy)` where the grid spans
/// `[0,1]²` including the ghost ring as the boundary.
pub fn poisson_rhs_2d(f: &mut View2Mut<'_>) {
    let (ny, nx) = (f.ny(), f.nx());
    let hy = 1.0 / (ny - 1) as f64;
    let hx = 1.0 / (nx - 1) as f64;
    for y in 1..ny - 1 {
        let sy = (PI * y as f64 * hy).sin();
        for x in 1..nx - 1 {
            let sx = (PI * x as f64 * hx).sin();
            f.set(y, x, -2.0 * PI * PI * sy * sx);
        }
    }
}

/// The exact manufactured solution matching [`poisson_rhs_2d`].
pub fn poisson_exact_2d(u: &mut View2Mut<'_>) {
    let (ny, nx) = (u.ny(), u.nx());
    let hy = 1.0 / (ny - 1) as f64;
    let hx = 1.0 / (nx - 1) as f64;
    for y in 0..ny {
        let sy = (PI * y as f64 * hy).sin();
        for x in 0..nx {
            let sx = (PI * x as f64 * hx).sin();
            u.set(y, x, sy * sx);
        }
    }
}

/// 3-D manufactured Poisson RHS `f = -3π² sin(πx) sin(πy) sin(πz)`.
pub fn poisson_rhs_3d(f: &mut View3Mut<'_>) {
    let (nz, ny, nx) = (f.nz(), f.ny(), f.nx());
    let hz = 1.0 / (nz - 1) as f64;
    let hy = 1.0 / (ny - 1) as f64;
    let hx = 1.0 / (nx - 1) as f64;
    for z in 1..nz - 1 {
        let sz = (PI * z as f64 * hz).sin();
        for y in 1..ny - 1 {
            let sy = (PI * y as f64 * hy).sin();
            for x in 1..nx - 1 {
                let sx = (PI * x as f64 * hx).sin();
                f.set(z, y, x, -3.0 * PI * PI * sz * sy * sx);
            }
        }
    }
}

/// The exact manufactured solution matching [`poisson_rhs_3d`].
pub fn poisson_exact_3d(u: &mut View3Mut<'_>) {
    let (nz, ny, nx) = (u.nz(), u.ny(), u.nx());
    let hz = 1.0 / (nz - 1) as f64;
    let hy = 1.0 / (ny - 1) as f64;
    let hx = 1.0 / (nx - 1) as f64;
    for z in 0..nz {
        let sz = (PI * z as f64 * hz).sin();
        for y in 0..ny {
            let sy = (PI * y as f64 * hy).sin();
            for x in 0..nx {
                let sx = (PI * x as f64 * hx).sin();
                u.set(z, y, x, sz * sy * sx);
            }
        }
    }
}

/// Deterministic pseudo-random interior fill in `[-1, 1]` (splitmix64-based,
/// no external RNG needed in the hot path). Ghost ring left untouched.
///
/// Used by equivalence tests so that every optimizer variant sees identical,
/// non-trivial inputs.
pub fn splitmix_fill_2d(v: &mut View2Mut<'_>, seed: u64) {
    let (ny, nx) = (v.ny(), v.nx());
    for y in 1..ny - 1 {
        for x in 1..nx - 1 {
            let h = splitmix64(seed ^ ((y as u64) << 32) ^ x as u64);
            v.set(y, x, unit_f64(h) * 2.0 - 1.0);
        }
    }
}

/// 3-D analogue of [`splitmix_fill_2d`].
pub fn splitmix_fill_3d(v: &mut View3Mut<'_>, seed: u64) {
    let (nz, ny, nx) = (v.nz(), v.ny(), v.nx());
    for z in 1..nz - 1 {
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                let h = splitmix64(seed ^ ((z as u64) << 42) ^ ((y as u64) << 21) ^ x as u64);
                v.set(z, y, x, unit_f64(h) * 2.0 - 1.0);
            }
        }
    }
}

/// One round of the splitmix64 mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a u64 to `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{l2_interior_2d, max_interior_3d};
    use crate::{View2, View2Mut, View3, View3Mut};

    #[test]
    fn rhs_2d_symmetric_and_negative() {
        let mut buf = vec![0.0; 17 * 17];
        poisson_rhs_2d(&mut View2Mut::dense(&mut buf, 17, 17));
        let v = View2::dense(&buf, 17, 17);
        // peak magnitude at the center
        let center = v.at(8, 8);
        assert!(center < 0.0);
        assert!((center + 2.0 * PI * PI).abs() < 1e-10);
        // symmetric in x and y
        assert!((v.at(3, 5) - v.at(5, 3)).abs() < 1e-12);
        assert!((v.at(3, 5) - v.at(13, 5)).abs() < 1e-12);
        // ghost ring untouched
        assert_eq!(v.at(0, 0), 0.0);
        assert!(l2_interior_2d(&v) > 0.0);
    }

    #[test]
    fn exact_2d_satisfies_discrete_laplacian_approximately() {
        let n = 64usize;
        let mut u = vec![0.0; (n + 1) * (n + 1)];
        let mut f = vec![0.0; (n + 1) * (n + 1)];
        poisson_exact_2d(&mut View2Mut::dense(&mut u, n + 1, n + 1));
        poisson_rhs_2d(&mut View2Mut::dense(&mut f, n + 1, n + 1));
        let uv = View2::dense(&u, n + 1, n + 1);
        let fv = View2::dense(&f, n + 1, n + 1);
        let h = 1.0 / n as f64;
        // Discrete laplacian of exact u should approximate f to O(h^2).
        let mut max_err: f64 = 0.0;
        for y in 1..n {
            for x in 1..n {
                let lap = (uv.at(y - 1, x) + uv.at(y + 1, x) + uv.at(y, x - 1) + uv.at(y, x + 1)
                    - 4.0 * uv.at(y, x))
                    / (h * h);
                max_err = max_err.max((lap - fv.at(y, x)).abs());
            }
        }
        assert!(max_err < 0.05, "discretisation error too large: {max_err}");
    }

    #[test]
    fn exact_3d_zero_on_boundary() {
        let mut u = vec![0.0; 9 * 9 * 9];
        poisson_exact_3d(&mut View3Mut::dense(&mut u, 9, 9, 9));
        let v = View3::dense(&u, 9, 9, 9);
        for y in 0..9 {
            for x in 0..9 {
                assert!(v.at(0, y, x).abs() < 1e-12);
                assert!(v.at(8, y, x).abs() < 1e-12);
            }
        }
        assert!(max_interior_3d(&v) > 0.5);
    }

    #[test]
    fn splitmix_deterministic_and_bounded() {
        let mut a = vec![0.0; 8 * 8];
        let mut b = vec![0.0; 8 * 8];
        splitmix_fill_2d(&mut View2Mut::dense(&mut a, 8, 8), 42);
        splitmix_fill_2d(&mut View2Mut::dense(&mut b, 8, 8), 42);
        assert_eq!(a, b);
        splitmix_fill_2d(&mut View2Mut::dense(&mut b, 8, 8), 43);
        assert_ne!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 1.0));

        let mut c = vec![0.0; 6 * 6 * 6];
        splitmix_fill_3d(&mut View3Mut::dense(&mut c, 6, 6, 6), 7);
        assert!(c.iter().any(|&v| v != 0.0));
        assert!(c.iter().all(|v| v.abs() <= 1.0));
    }
}
