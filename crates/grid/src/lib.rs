//! # gmg-grid — structured-grid substrate
//!
//! This crate provides the low-level data structures every other crate in the
//! PolyMG reproduction builds on: flat `f64` buffers, borrowed 2-D/3-D views
//! with explicit strides and ghost (halo) zones, grid initialisation helpers,
//! and norm computations used for convergence checking.
//!
//! Design notes:
//!
//! * Storage is always a flat `Vec<f64>` (row-major / x-fastest). Views carry
//!   the logical extents and the row/plane strides separately so that the
//!   same machinery serves both full arrays and tile scratchpads (whose
//!   strides are the scratchpad extents, not the grid extents).
//! * Ghost zones are part of the allocation: a "problem size `n`" grid for a
//!   second-order stencil is allocated as `(n + 2)` points per dimension with
//!   the boundary ring holding Dirichlet values (zero for the homogeneous
//!   Poisson problems the paper evaluates).
//! * Nothing here knows about multigrid; this is a pure substrate.

pub mod buffer;
pub mod init;
pub mod norms;
pub mod view2;
pub mod view3;

pub use buffer::Buffer;
pub use view2::{View2, View2Mut};
pub use view3::{View3, View3Mut};

/// Number of spatial dimensions a grid can have in this reproduction.
///
/// The paper evaluates 2-D and 3-D Poisson problems plus the 3-D NAS MG
/// benchmark; the DSL front end is dimension-generic but the runtime only
/// specialises these two ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rank {
    Two,
    Three,
}

impl Rank {
    /// The number of dimensions as a `usize`.
    pub fn ndims(self) -> usize {
        match self {
            Rank::Two => 2,
            Rank::Three => 3,
        }
    }

    /// Build a `Rank` from a dimension count.
    ///
    /// # Panics
    /// Panics if `n` is not 2 or 3.
    pub fn from_ndims(n: usize) -> Rank {
        match n {
            2 => Rank::Two,
            3 => Rank::Three,
            _ => panic!("unsupported rank {n}: only 2-D and 3-D grids are supported"),
        }
    }
}

/// Logical extents of a (sub-)grid, outermost dimension first.
///
/// For a 2-D grid `extents = [ny, nx]`; for 3-D, `[nz, ny, nx]`. Extents
/// include ghost zones when describing allocations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Extents(pub Vec<usize>);

impl Extents {
    /// New extents; `dims` is outermost-first.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() == 2 || dims.len() == 3,
            "only 2-D/3-D extents supported, got {} dims",
            dims.len()
        );
        Extents(dims.to_vec())
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Rank of the extents.
    pub fn rank(&self) -> Rank {
        Rank::from_ndims(self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip() {
        assert_eq!(Rank::from_ndims(2), Rank::Two);
        assert_eq!(Rank::from_ndims(3), Rank::Three);
        assert_eq!(Rank::Two.ndims(), 2);
        assert_eq!(Rank::Three.ndims(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported rank")]
    fn rank_rejects_1d() {
        let _ = Rank::from_ndims(1);
    }

    #[test]
    fn extents_len() {
        assert_eq!(Extents::new(&[4, 5]).len(), 20);
        assert_eq!(Extents::new(&[2, 3, 4]).len(), 24);
        assert!(!Extents::new(&[2, 3]).is_empty());
        assert!(Extents::new(&[0, 3]).is_empty());
    }

    #[test]
    #[should_panic(expected = "only 2-D/3-D")]
    fn extents_reject_4d() {
        let _ = Extents::new(&[1, 2, 3, 4]);
    }
}
