//! Borrowed 2-D views over flat buffers.
//!
//! A view pairs a slice with logical extents `(ny, nx)` and a row stride.
//! For a full array the stride equals `nx`; for a window into a scratchpad it
//! is the scratchpad's allocated row length. Indexing is `(y, x)` with `x`
//! fastest (row-major), matching the generated-code layout in the paper's
//! Figure 8.

/// Immutable 2-D view.
#[derive(Clone, Copy)]
pub struct View2<'a> {
    data: &'a [f64],
    ny: usize,
    nx: usize,
    stride: usize,
}

impl<'a> View2<'a> {
    /// Wrap `data` as an `ny × nx` view with row stride `stride`.
    ///
    /// # Panics
    /// Panics if the view would read out of bounds.
    pub fn new(data: &'a [f64], ny: usize, nx: usize, stride: usize) -> Self {
        assert!(stride >= nx, "row stride {stride} < row length {nx}");
        if ny > 0 {
            assert!(
                (ny - 1) * stride + nx <= data.len(),
                "view {ny}x{nx} (stride {stride}) exceeds buffer of len {}",
                data.len()
            );
        }
        View2 {
            data,
            ny,
            nx,
            stride,
        }
    }

    /// Dense view: stride == nx.
    pub fn dense(data: &'a [f64], ny: usize, nx: usize) -> Self {
        Self::new(data, ny, nx, nx)
    }

    /// Rows in the view.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns in the view.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Row stride of the underlying buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element access (bounds-checked in debug builds).
    #[inline(always)]
    pub fn at(&self, y: usize, x: usize) -> f64 {
        debug_assert!(y < self.ny && x < self.nx);
        self.data[y * self.stride + x]
    }

    /// A whole row as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f64] {
        let start = y * self.stride;
        &self.data[start..start + self.nx]
    }

    /// The raw underlying slice.
    pub fn raw(&self) -> &[f64] {
        self.data
    }
}

/// Mutable 2-D view.
pub struct View2Mut<'a> {
    data: &'a mut [f64],
    ny: usize,
    nx: usize,
    stride: usize,
}

impl<'a> View2Mut<'a> {
    /// Wrap `data` as a mutable `ny × nx` view with row stride `stride`.
    pub fn new(data: &'a mut [f64], ny: usize, nx: usize, stride: usize) -> Self {
        assert!(stride >= nx, "row stride {stride} < row length {nx}");
        if ny > 0 {
            assert!(
                (ny - 1) * stride + nx <= data.len(),
                "view {ny}x{nx} (stride {stride}) exceeds buffer of len {}",
                data.len()
            );
        }
        View2Mut {
            data,
            ny,
            nx,
            stride,
        }
    }

    /// Dense mutable view: stride == nx.
    pub fn dense(data: &'a mut [f64], ny: usize, nx: usize) -> Self {
        Self::new(data, ny, nx, nx)
    }

    /// Rows in the view.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns in the view.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Row stride of the underlying buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Element read.
    #[inline(always)]
    pub fn at(&self, y: usize, x: usize) -> f64 {
        debug_assert!(y < self.ny && x < self.nx);
        self.data[y * self.stride + x]
    }

    /// Element write.
    #[inline(always)]
    pub fn set(&mut self, y: usize, x: usize, v: f64) {
        debug_assert!(y < self.ny && x < self.nx);
        self.data[y * self.stride + x] = v;
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [f64] {
        let start = y * self.stride;
        &mut self.data[start..start + self.nx]
    }

    /// Reborrow as an immutable view.
    pub fn as_view(&self) -> View2<'_> {
        View2 {
            data: self.data,
            ny: self.ny,
            nx: self.nx,
            stride: self.stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let mut buf = vec![0.0; 12];
        {
            let mut v = View2Mut::dense(&mut buf, 3, 4);
            v.set(1, 2, 5.0);
            v.set(2, 3, 7.0);
            assert_eq!(v.at(1, 2), 5.0);
        }
        let v = View2::dense(&buf, 3, 4);
        assert_eq!(v.at(1, 2), 5.0);
        assert_eq!(v.at(2, 3), 7.0);
        assert_eq!(v.row(1), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn strided_window() {
        // 4x5 buffer, take a 2x3 window starting at element (1,1).
        let mut buf = [0.0; 20];
        for (i, v) in buf.iter_mut().enumerate() {
            *v = i as f64;
        }
        let window = View2::new(&buf[6..], 2, 3, 5);
        assert_eq!(window.at(0, 0), 6.0);
        assert_eq!(window.at(0, 2), 8.0);
        assert_eq!(window.at(1, 0), 11.0);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversized_view_panics() {
        let buf = vec![0.0; 10];
        let _ = View2::dense(&buf, 3, 4);
    }

    #[test]
    #[should_panic(expected = "row stride")]
    fn stride_smaller_than_row_panics() {
        let buf = vec![0.0; 10];
        let _ = View2::new(&buf, 2, 4, 3);
    }

    #[test]
    fn mut_as_view() {
        let mut buf = vec![1.0; 6];
        let v = View2Mut::dense(&mut buf, 2, 3);
        let r = v.as_view();
        assert_eq!(r.at(1, 1), 1.0);
    }
}
