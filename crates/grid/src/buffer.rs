//! Flat `f64` buffers backing grids and scratchpads.
//!
//! A [`Buffer`] is deliberately minimal: a length and a `Vec<f64>`. The
//! pooled allocator in `gmg-runtime` hands these out and recycles them; the
//! views in [`crate::view2`]/[`crate::view3`] interpret them with strides.

use crate::Extents;

/// A flat, heap-allocated `f64` buffer.
///
/// Buffers are zero-initialised on creation (matching `calloc` semantics of
/// the generated C code in the paper, and giving deterministic ghost zones).
#[derive(Clone, Debug, PartialEq)]
pub struct Buffer {
    data: Vec<f64>,
}

impl Buffer {
    /// Allocate a zeroed buffer of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        Buffer {
            data: vec![0.0; len],
        }
    }

    /// Allocate a zeroed buffer sized for `extents`.
    pub fn for_extents(extents: &Extents) -> Self {
        Self::zeroed(extents.len())
    }

    /// Length in doubles.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (for memory accounting in the pool / figures).
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Immutable element slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable element slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reset every element to zero (used when the pool recycles a buffer for
    /// a function whose domain does not fully overwrite it, e.g. ghost rings).
    pub fn zero_fill(&mut self) {
        self.data.fill(0.0);
    }

    /// Grow (never shrink) to at least `len` doubles, zeroing new space.
    ///
    /// The pooled allocator uses this when a storage class's size estimate
    /// was refined upward between cycles.
    pub fn ensure_len(&mut self, len: usize) {
        if self.data.len() < len {
            self.data.resize(len, 0.0);
        }
    }
}

impl std::ops::Index<usize> for Buffer {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Buffer {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        let b = Buffer::zeroed(16);
        assert_eq!(b.len(), 16);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(b.byte_len(), 16 * 8);
    }

    #[test]
    fn for_extents_matches_len() {
        let e = Extents::new(&[3, 4, 5]);
        let b = Buffer::for_extents(&e);
        assert_eq!(b.len(), 60);
    }

    #[test]
    fn index_and_fill() {
        let mut b = Buffer::zeroed(4);
        b[2] = 7.5;
        assert_eq!(b[2], 7.5);
        b.zero_fill();
        assert_eq!(b[2], 0.0);
    }

    #[test]
    fn ensure_len_grows_only() {
        let mut b = Buffer::zeroed(4);
        b[3] = 1.0;
        b.ensure_len(2);
        assert_eq!(b.len(), 4);
        b.ensure_len(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b[3], 1.0);
        assert_eq!(b[7], 0.0);
    }

    #[test]
    fn empty_buffer() {
        let b = Buffer::zeroed(0);
        assert!(b.is_empty());
    }
}
