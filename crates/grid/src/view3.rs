//! Borrowed 3-D views over flat buffers.
//!
//! Indexing is `(z, y, x)` with `x` fastest. A view carries a plane stride
//! (elements between consecutive `z` planes) and a row stride (between
//! consecutive `y` rows), so windows into larger allocations — tile
//! scratchpads — use the same type as dense full arrays.

/// Immutable 3-D view.
#[derive(Clone, Copy)]
pub struct View3<'a> {
    data: &'a [f64],
    nz: usize,
    ny: usize,
    nx: usize,
    plane_stride: usize,
    row_stride: usize,
}

impl<'a> View3<'a> {
    /// Wrap `data` as an `nz × ny × nx` view with explicit strides.
    pub fn new(
        data: &'a [f64],
        nz: usize,
        ny: usize,
        nx: usize,
        plane_stride: usize,
        row_stride: usize,
    ) -> Self {
        assert!(row_stride >= nx, "row stride {row_stride} < nx {nx}");
        assert!(
            plane_stride >= ny * row_stride || nz <= 1,
            "plane stride {plane_stride} too small for {ny} rows of stride {row_stride}"
        );
        if nz > 0 && ny > 0 {
            let last = (nz - 1) * plane_stride + (ny - 1) * row_stride + nx;
            assert!(
                last <= data.len(),
                "view {nz}x{ny}x{nx} exceeds buffer of len {}",
                data.len()
            );
        }
        View3 {
            data,
            nz,
            ny,
            nx,
            plane_stride,
            row_stride,
        }
    }

    /// Dense view: strides derived from extents.
    pub fn dense(data: &'a [f64], nz: usize, ny: usize, nx: usize) -> Self {
        Self::new(data, nz, ny, nx, ny * nx, nx)
    }

    /// Planes (z extent).
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Rows (y extent).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns (x extent).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Elements between z-planes.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.plane_stride
    }

    /// Elements between y-rows.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Element access.
    #[inline(always)]
    pub fn at(&self, z: usize, y: usize, x: usize) -> f64 {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        self.data[z * self.plane_stride + y * self.row_stride + x]
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, z: usize, y: usize) -> &[f64] {
        let start = z * self.plane_stride + y * self.row_stride;
        &self.data[start..start + self.nx]
    }

    /// The raw underlying slice.
    pub fn raw(&self) -> &[f64] {
        self.data
    }
}

/// Mutable 3-D view.
pub struct View3Mut<'a> {
    data: &'a mut [f64],
    nz: usize,
    ny: usize,
    nx: usize,
    plane_stride: usize,
    row_stride: usize,
}

impl<'a> View3Mut<'a> {
    /// Wrap `data` as a mutable `nz × ny × nx` view with explicit strides.
    pub fn new(
        data: &'a mut [f64],
        nz: usize,
        ny: usize,
        nx: usize,
        plane_stride: usize,
        row_stride: usize,
    ) -> Self {
        assert!(row_stride >= nx, "row stride {row_stride} < nx {nx}");
        assert!(
            plane_stride >= ny * row_stride || nz <= 1,
            "plane stride {plane_stride} too small for {ny} rows of stride {row_stride}"
        );
        if nz > 0 && ny > 0 {
            let last = (nz - 1) * plane_stride + (ny - 1) * row_stride + nx;
            assert!(
                last <= data.len(),
                "view {nz}x{ny}x{nx} exceeds buffer of len {}",
                data.len()
            );
        }
        View3Mut {
            data,
            nz,
            ny,
            nx,
            plane_stride,
            row_stride,
        }
    }

    /// Dense mutable view.
    pub fn dense(data: &'a mut [f64], nz: usize, ny: usize, nx: usize) -> Self {
        Self::new(data, nz, ny, nx, ny * nx, nx)
    }

    /// Planes (z extent).
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Rows (y extent).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns (x extent).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Element read.
    #[inline(always)]
    pub fn at(&self, z: usize, y: usize, x: usize) -> f64 {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        self.data[z * self.plane_stride + y * self.row_stride + x]
    }

    /// Element write.
    #[inline(always)]
    pub fn set(&mut self, z: usize, y: usize, x: usize, v: f64) {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        self.data[z * self.plane_stride + y * self.row_stride + x] = v;
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, z: usize, y: usize) -> &mut [f64] {
        let start = z * self.plane_stride + y * self.row_stride;
        &mut self.data[start..start + self.nx]
    }

    /// Reborrow as an immutable view.
    pub fn as_view(&self) -> View3<'_> {
        View3 {
            data: self.data,
            nz: self.nz,
            ny: self.ny,
            nx: self.nx,
            plane_stride: self.plane_stride,
            row_stride: self.row_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let mut buf = vec![0.0; 24];
        {
            let mut v = View3Mut::dense(&mut buf, 2, 3, 4);
            v.set(1, 2, 3, 9.0);
            v.set(0, 1, 1, 4.0);
        }
        let v = View3::dense(&buf, 2, 3, 4);
        assert_eq!(v.at(1, 2, 3), 9.0);
        assert_eq!(v.at(0, 1, 1), 4.0);
        assert_eq!(buf[23], 9.0);
        assert_eq!(buf[5], 4.0);
    }

    #[test]
    fn strided_window() {
        // 3x4x5 buffer, take a 2x2x3 window at (1,1,1).
        let buf: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let start = 20 + 5 + 1;
        let w = View3::new(&buf[start..], 2, 2, 3, 20, 5);
        assert_eq!(w.at(0, 0, 0), 26.0);
        assert_eq!(w.at(1, 1, 2), 26.0 + 20.0 + 5.0 + 2.0);
    }

    #[test]
    fn row_slices() {
        let buf: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let v = View3::dense(&buf, 2, 3, 4);
        assert_eq!(v.row(1, 2), &[20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversized_panics() {
        let buf = vec![0.0; 23];
        let _ = View3::dense(&buf, 2, 3, 4);
    }

    #[test]
    fn mut_as_view() {
        let mut buf = vec![2.0; 8];
        let v = View3Mut::dense(&mut buf, 2, 2, 2);
        assert_eq!(v.as_view().at(1, 1, 1), 2.0);
    }
}
