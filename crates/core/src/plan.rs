//! The compiled execution plan — everything `gmg-runtime` needs to run a
//! pipeline, and the Rust analogue of the paper's generated C (Figure 8):
//! group loop structure, tile shapes, scratchpad declarations with reuse,
//! full-array allocations and the pooled alloc/free points.

use crate::options::PipelineOptions;
use gmg_ir::{Expr, LinearForm, ParityPattern, StageGraph, StageId};
use gmg_poly::Ratio;

/// Executable form of one parity case.
#[derive(Clone, Debug)]
pub enum KernelBody {
    /// Flat tap list — executed by the specialised stencil loops.
    Linear(LinearForm),
    /// Fallback: evaluated by the reference interpreter.
    Interpreted(Expr),
}

/// One parity case of a stage kernel.
#[derive(Clone, Debug)]
pub struct KernelCase {
    pub pattern: ParityPattern,
    pub body: KernelBody,
}

/// A lowered stage definition.
#[derive(Clone, Debug)]
pub struct StageKernel {
    pub cases: Vec<KernelCase>,
}

impl StageKernel {
    /// True when every case is linear (specialised execution possible).
    pub fn fully_linear(&self) -> bool {
        self.cases
            .iter()
            .all(|c| matches!(c.body, KernelBody::Linear(_)))
    }
}

/// Execution strategy of one group.
#[derive(Clone, Debug)]
pub enum GroupTiling {
    /// Full-domain sweeps, stage after stage (parallel over rows).
    Untiled,
    /// Overlapped tiling over the reference stage's domain.
    Overlapped {
        /// Index (into `GroupPlan::stages`) of the reference (finest) stage.
        ref_stage_local: usize,
        /// Tile sizes in the reference space, outermost first.
        tile_sizes: Vec<i64>,
        /// Per group-stage, per dimension: stage-space / reference-space
        /// scale.
        scales: Vec<Vec<Ratio>>,
    },
    /// Single-precision execution of a pure smoother chain: the chain's
    /// state converts f64→f32 once, sweeps run on f32 ping-pong buffers,
    /// and the final step converts back into its full array. Carved when
    /// `PipelineOptions::mixed_precision` is set and every step is a
    /// single-case, offset-access linear kernel without coefficient
    /// factors.
    MixedChain,
    /// Diamond/split time tiling of a pure smoother chain (every stage is
    /// one step of the same `TStencil`).
    Diamond {
        /// Outer-dimension base tile width.
        tile_w: i64,
        /// Time-band height.
        band_h: usize,
        /// Stencil radius of one step.
        radius: i64,
    },
}

/// Scratchpad buffer bound for one group: the per-dimension maximum extents
/// over all tiles of the stages mapped to this buffer (compile-time constant
/// for a fixed tile size, exactly as in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScratchBufferSpec {
    /// Max extents outermost-first.
    pub extents: Vec<i64>,
    /// Total capacity in elements (product of extents).
    pub capacity: usize,
}

/// One fused group of the plan.
#[derive(Clone, Debug)]
pub struct GroupPlan {
    /// Stages in schedule order (topological within the group).
    pub stages: Vec<StageId>,
    /// Parallel to `stages`: does the stage's value escape the group? A
    /// live-out writes the owned sub-region of its full array.
    pub live_out: Vec<bool>,
    /// Parallel to `stages`: scratchpad buffer index for stages consumed
    /// *inside* the group (their tile-overlap region is computed into the
    /// scratchpad; a stage can be both live-out and scratch-resident, in
    /// which case its owned region is copied from scratch to the array).
    pub scratch_slot: Vec<Option<usize>>,
    /// Scratchpad buffers of this group (per worker thread at runtime).
    pub scratch_buffers: Vec<ScratchBufferSpec>,
    pub tiling: GroupTiling,
}

/// A full-array allocation.
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Allocation extents *including* the ghost ring, outermost first.
    pub extents: Vec<i64>,
    /// Ghost-ring fill value.
    pub boundary: f64,
    /// True for pipeline inputs/outputs — user-provided, never pooled or
    /// reused (§3.2.2: "program input and output arrays are not considered
    /// to be available to serve as reuse buffers").
    pub external: bool,
    /// Human-readable tag for reports (first stage mapped here).
    pub tag: String,
}

/// Full-array storage assignment and pooled alloc/free schedule.
#[derive(Clone, Debug)]
pub struct StoragePlan {
    /// Per stage: the full array holding its value (`Some` for inputs and
    /// live-outs, `None` for scratchpad-resident stages).
    pub array_of_stage: Vec<Option<usize>>,
    /// Array table.
    pub arrays: Vec<ArraySpec>,
    /// Arrays to (pool-)allocate immediately before executing group `i`.
    pub alloc_before_group: Vec<Vec<usize>>,
    /// Arrays to release immediately after executing group `i` (their last
    /// reader has finished) — the generated `pool_deallocate` calls.
    pub free_after_group: Vec<Vec<usize>>,
}

impl StoragePlan {
    /// Total bytes of non-external full arrays (the intermediate-storage
    /// footprint the paper's inter-group reuse minimises).
    pub fn intermediate_bytes(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| !a.external)
            .map(|a| a.extents.iter().product::<i64>() as usize * std::mem::size_of::<f64>())
            .sum()
    }

    /// Number of distinct non-external arrays.
    pub fn num_intermediate_arrays(&self) -> usize {
        self.arrays.iter().filter(|a| !a.external).count()
    }
}

/// The complete compiled pipeline.
#[derive(Clone, Debug)]
pub struct CompiledPipeline {
    pub graph: StageGraph,
    /// Per stage (None for inputs).
    pub kernels: Vec<Option<StageKernel>>,
    /// Groups in execution (topological) order.
    pub groups: Vec<GroupPlan>,
    pub storage: StoragePlan,
    pub options: PipelineOptions,
}

impl CompiledPipeline {
    /// Peak per-thread scratchpad bytes across groups.
    pub fn peak_scratch_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.scratch_buffers
                    .iter()
                    .map(|b| b.capacity * std::mem::size_of::<f64>())
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Count of scratch buffers summed over groups (Figure 7's coloring
    /// quality metric: lower = more reuse).
    pub fn total_scratch_buffers(&self) -> usize {
        self.groups.iter().map(|g| g.scratch_buffers.len()).sum()
    }
}
