//! Minimal JSON reader for the offline build (no serde): a strict
//! recursive-descent parser into a [`JsonValue`] tree, used by the
//! tuned-configuration store ([`crate::autotune::TunedStore`]) and any
//! other artifact round-trips. Writing stays hand-rolled at the call sites
//! (as `gmg-trace` already does for profiles); this module only reads.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key/value pairs in document order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (rejects fractional or out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; find the char at this byte).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escape a string into a JSON string literal (shared by the writers).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}, "f": "u\u00e9"}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("f").unwrap().as_str(), Some("ué"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"a\": 01x}",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn integer_views_reject_fractions() {
        let v = parse("{\"x\": 1.5, \"y\": 7, \"z\": -2}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("y").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("z").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("z").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\n\"quote\"\\slash\ttab";
        let doc = format!("{{\"k\": {}}}", escape(s));
        assert_eq!(parse(&doc).unwrap().get("k").unwrap().as_str(), Some(s));
    }
}
