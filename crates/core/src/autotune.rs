//! Auto-tuning (§3.2.4): enumerate tile-size × grouping-limit
//! configurations and pick the fastest, using a caller-supplied evaluator
//! (the runtime executes each configuration; this module only owns the
//! search space and bookkeeping).
//!
//! The paper's space: 2-D outer tile 8:64, inner 64:512, powers of two;
//! 3-D outer two dims 8:32, inner 64:256; five grouping limits. That yields
//! 80 configurations for 2-D and 135 for 3-D — reproduced exactly by
//! [`search_space`].

use crate::options::PipelineOptions;

/// One auto-tuning configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneConfig {
    pub tile_sizes: Vec<i64>,
    pub group_limit: usize,
}

impl TuneConfig {
    /// Apply this configuration onto a base option set.
    pub fn apply(&self, base: &PipelineOptions) -> PipelineOptions {
        let mut o = base.clone();
        o.tile_sizes = self.tile_sizes.clone();
        o.group_limit = self.group_limit;
        o
    }
}

/// The grouping limits swept ("five different values of grouping limit").
pub const GROUP_LIMITS: [usize; 5] = [2, 4, 6, 8, 11];

/// The paper's §3.2.4 search space for the given rank.
pub fn search_space(ndims: usize) -> Vec<TuneConfig> {
    let mut out = Vec::new();
    match ndims {
        2 => {
            for &gl in &GROUP_LIMITS {
                let mut outer = 8i64;
                while outer <= 64 {
                    let mut inner = 64i64;
                    while inner <= 512 {
                        out.push(TuneConfig {
                            tile_sizes: vec![outer, inner],
                            group_limit: gl,
                        });
                        inner *= 2;
                    }
                    outer *= 2;
                }
            }
        }
        3 => {
            for &gl in &GROUP_LIMITS {
                let mut o1 = 8i64;
                while o1 <= 32 {
                    let mut o2 = 8i64;
                    while o2 <= 32 {
                        let mut inner = 64i64;
                        while inner <= 256 {
                            out.push(TuneConfig {
                                tile_sizes: vec![o1, o2, inner],
                                group_limit: gl,
                            });
                            inner *= 2;
                        }
                        o2 *= 2;
                    }
                    o1 *= 2;
                }
            }
        }
        _ => panic!("unsupported rank {ndims}"),
    }
    out
}

/// Result of one evaluated configuration.
#[derive(Clone, Debug)]
pub struct TuneSample {
    pub config: TuneConfig,
    /// Execution time in seconds (or whatever metric the evaluator reports;
    /// lower is better).
    pub metric: f64,
}

/// Run the tuner: evaluate every configuration (optionally subsampled by
/// `stride` for quick runs) and return all samples plus the best index.
pub fn tune(
    ndims: usize,
    stride: usize,
    mut eval: impl FnMut(&TuneConfig) -> f64,
) -> (Vec<TuneSample>, usize) {
    assert!(stride >= 1);
    let space = search_space(ndims);
    let mut samples = Vec::new();
    for cfg in space.into_iter().step_by(stride) {
        let metric = eval(&cfg);
        samples.push(TuneSample {
            config: cfg,
            metric,
        });
    }
    let best = samples
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.metric.total_cmp(&b.1.metric))
        .map(|(i, _)| i)
        .expect("empty tuning space");
    (samples, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{PipelineOptions, Variant};

    #[test]
    fn space_sizes_match_paper() {
        // 2-D: outer {8,16,32,64} × inner {64..512} (4) × 5 limits = 80
        assert_eq!(search_space(2).len(), 80);
        // 3-D: {8,16,32}² × inner {64,128,256} × 5 = 135
        assert_eq!(search_space(3).len(), 135);
    }

    #[test]
    fn apply_overrides_options() {
        let base = PipelineOptions::for_variant(Variant::OptPlus, 2);
        let cfg = TuneConfig {
            tile_sizes: vec![16, 128],
            group_limit: 4,
        };
        let o = cfg.apply(&base);
        assert_eq!(o.tile_sizes, vec![16, 128]);
        assert_eq!(o.group_limit, 4);
        assert!(o.intra_group_reuse); // rest preserved
    }

    #[test]
    fn tune_finds_minimum() {
        // metric: distance of the tile area from 32*128
        let (samples, best) = tune(2, 1, |c| {
            ((c.tile_sizes[0] * c.tile_sizes[1]) as f64 - (32.0 * 128.0)).abs()
        });
        assert_eq!(samples.len(), 80);
        let b = &samples[best];
        assert_eq!(b.config.tile_sizes[0] * b.config.tile_sizes[1], 32 * 128);
    }

    #[test]
    fn stride_subsamples() {
        let (samples, _) = tune(3, 10, |_| 1.0);
        assert_eq!(samples.len(), 14);
    }
}
