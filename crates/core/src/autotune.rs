//! Auto-tuning (§3.2.4): enumerate tile-size × grouping-limit
//! configurations and pick the fastest, using a caller-supplied evaluator
//! (the runtime executes each configuration; this module only owns the
//! search space and bookkeeping).
//!
//! The paper's space: 2-D outer tile 8:64, inner 64:512, powers of two;
//! 3-D outer two dims 8:32, inner 64:256; five grouping limits. That yields
//! 80 configurations for 2-D and 135 for 3-D — reproduced exactly by
//! [`search_space`].

use crate::jsonio::{self, JsonValue};
use crate::options::PipelineOptions;

/// One auto-tuning configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneConfig {
    pub tile_sizes: Vec<i64>,
    pub group_limit: usize,
}

impl TuneConfig {
    /// Apply this configuration onto a base option set.
    pub fn apply(&self, base: &PipelineOptions) -> PipelineOptions {
        let mut o = base.clone();
        o.tile_sizes = self.tile_sizes.clone();
        o.group_limit = self.group_limit;
        o
    }
}

/// The grouping limits swept ("five different values of grouping limit").
pub const GROUP_LIMITS: [usize; 5] = [2, 4, 6, 8, 11];

/// The paper's §3.2.4 search space for the given rank.
pub fn search_space(ndims: usize) -> Vec<TuneConfig> {
    let mut out = Vec::new();
    match ndims {
        2 => {
            for &gl in &GROUP_LIMITS {
                let mut outer = 8i64;
                while outer <= 64 {
                    let mut inner = 64i64;
                    while inner <= 512 {
                        out.push(TuneConfig {
                            tile_sizes: vec![outer, inner],
                            group_limit: gl,
                        });
                        inner *= 2;
                    }
                    outer *= 2;
                }
            }
        }
        3 => {
            for &gl in &GROUP_LIMITS {
                let mut o1 = 8i64;
                while o1 <= 32 {
                    let mut o2 = 8i64;
                    while o2 <= 32 {
                        let mut inner = 64i64;
                        while inner <= 256 {
                            out.push(TuneConfig {
                                tile_sizes: vec![o1, o2, inner],
                                group_limit: gl,
                            });
                            inner *= 2;
                        }
                        o2 *= 2;
                    }
                    o1 *= 2;
                }
            }
        }
        _ => panic!("unsupported rank {ndims}"),
    }
    out
}

/// Result of one evaluated configuration.
#[derive(Clone, Debug)]
pub struct TuneSample {
    pub config: TuneConfig,
    /// Execution time in seconds (or whatever metric the evaluator reports;
    /// lower is better).
    pub metric: f64,
}

/// Run the tuner: evaluate every configuration (optionally subsampled by
/// `stride` for quick runs) and return all samples plus the best index.
pub fn tune(
    ndims: usize,
    stride: usize,
    mut eval: impl FnMut(&TuneConfig) -> f64,
) -> (Vec<TuneSample>, usize) {
    assert!(stride >= 1);
    let space = search_space(ndims);
    let mut samples = Vec::new();
    for cfg in space.into_iter().step_by(stride) {
        let metric = eval(&cfg);
        samples.push(TuneSample {
            config: cfg,
            metric,
        });
    }
    let best = samples
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.metric.total_cmp(&b.1.metric))
        .map(|(i, _)| i)
        .expect("empty tuning space");
    (samples, best)
}

/// One persisted tuning result: the winning [`TuneConfig`] for a pipeline
/// structure (keyed by [`crate::cache::pipeline_fingerprint`] + rank) and
/// the metric it achieved.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedEntry {
    /// Structural fingerprint of the pipeline + bindings the sweep ran on.
    pub fingerprint: u64,
    /// Spatial rank (2 or 3) — fingerprints are rank-specific already, but
    /// keeping it explicit makes the stored file self-describing.
    pub ndims: usize,
    pub config: TuneConfig,
    /// The metric the winning configuration achieved (seconds; informative
    /// only, not used by lookups).
    pub metric: f64,
    /// Whether the sweep ran (and the stored metric was achieved) with the
    /// reassociating fast-math kernel tier. Round-trips through the JSON
    /// store so a serving deployment warm-starts with the same tier the
    /// tuner measured; absent in pre-tier store files (defaults to false).
    pub fast_math: bool,
}

/// JSON-persisted store of autotuning winners, so a solve server can
/// warm-start sessions with tuned tile sizes instead of the §3.2.4
/// defaults. One entry per `(fingerprint, ndims)` key; re-recording a key
/// replaces it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TunedStore {
    entries: Vec<TunedEntry>,
}

impl TunedStore {
    pub fn new() -> TunedStore {
        TunedStore::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[TunedEntry] {
        &self.entries
    }

    /// Insert or replace the tuned configuration for one pipeline key
    /// (measured at the default bitwise tiers; see [`record_fast_math`]).
    ///
    /// [`record_fast_math`]: TunedStore::record_fast_math
    pub fn record(&mut self, fingerprint: u64, ndims: usize, config: TuneConfig, metric: f64) {
        self.record_fast_math(fingerprint, ndims, config, metric, false);
    }

    /// [`record`](TunedStore::record) with an explicit fast-math marker.
    pub fn record_fast_math(
        &mut self,
        fingerprint: u64,
        ndims: usize,
        config: TuneConfig,
        metric: f64,
        fast_math: bool,
    ) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fingerprint && e.ndims == ndims)
        {
            e.config = config;
            e.metric = metric;
            e.fast_math = fast_math;
        } else {
            self.entries.push(TunedEntry {
                fingerprint,
                ndims,
                config,
                metric,
                fast_math,
            });
        }
    }

    /// The stored winner for a pipeline key, if any.
    pub fn lookup(&self, fingerprint: u64, ndims: usize) -> Option<&TunedEntry> {
        self.entries
            .iter()
            .find(|e| e.fingerprint == fingerprint && e.ndims == ndims)
    }

    /// Render as JSON. Fingerprints are hex strings: a u64 does not survive
    /// a round-trip through an f64 JSON number.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"tuned\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let tiles = e
                .config
                .tile_sizes
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "\n    {{\"fingerprint\": \"{:016x}\", \"ndims\": {}, \"tile_sizes\": [{}], \
                 \"group_limit\": {}, \"metric\": {}, \"fast_math\": {}}}",
                e.fingerprint,
                e.ndims,
                tiles,
                e.config.group_limit,
                if e.metric.is_finite() {
                    format!("{}", e.metric)
                } else {
                    "null".to_string()
                },
                e.fast_math,
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a store previously written by [`TunedStore::to_json`].
    pub fn from_json(text: &str) -> Result<TunedStore, String> {
        let doc = jsonio::parse(text)?;
        let list = doc
            .get("tuned")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'tuned' array")?;
        let mut store = TunedStore::new();
        for (i, item) in list.iter().enumerate() {
            let fail = |what: &str| format!("tuned[{i}]: {what}");
            let fp_text = item
                .get("fingerprint")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("missing fingerprint"))?;
            let fingerprint = u64::from_str_radix(fp_text, 16)
                .map_err(|_| fail("fingerprint is not a hex u64"))?;
            let ndims = item
                .get("ndims")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| fail("missing ndims"))? as usize;
            if ndims != 2 && ndims != 3 {
                return Err(fail("ndims must be 2 or 3"));
            }
            let tile_sizes: Vec<i64> = item
                .get("tile_sizes")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| fail("missing tile_sizes"))?
                .iter()
                .map(|t| t.as_i64().filter(|&v| v > 0))
                .collect::<Option<_>>()
                .ok_or_else(|| fail("tile_sizes must be positive integers"))?;
            if tile_sizes.len() < ndims {
                return Err(fail("fewer tile sizes than dimensions"));
            }
            let group_limit =
                item.get("group_limit")
                    .and_then(JsonValue::as_u64)
                    .filter(|&g| g >= 1)
                    .ok_or_else(|| fail("missing or zero group_limit"))? as usize;
            let metric = item
                .get("metric")
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::NAN);
            // absent in store files written before the tier split
            let fast_math = item
                .get("fast_math")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            store.record_fast_math(
                fingerprint,
                ndims,
                TuneConfig {
                    tile_sizes,
                    group_limit,
                },
                metric,
                fast_math,
            );
        }
        Ok(store)
    }

    /// Write the store to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a store from a file (missing file or bad JSON are both errors).
    pub fn load(path: &std::path::Path) -> Result<TunedStore, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        TunedStore::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{PipelineOptions, Variant};

    #[test]
    fn space_sizes_match_paper() {
        // 2-D: outer {8,16,32,64} × inner {64..512} (4) × 5 limits = 80
        assert_eq!(search_space(2).len(), 80);
        // 3-D: {8,16,32}² × inner {64,128,256} × 5 = 135
        assert_eq!(search_space(3).len(), 135);
    }

    #[test]
    fn apply_overrides_options() {
        let base = PipelineOptions::for_variant(Variant::OptPlus, 2);
        let cfg = TuneConfig {
            tile_sizes: vec![16, 128],
            group_limit: 4,
        };
        let o = cfg.apply(&base);
        assert_eq!(o.tile_sizes, vec![16, 128]);
        assert_eq!(o.group_limit, 4);
        assert!(o.intra_group_reuse); // rest preserved
    }

    #[test]
    fn tune_finds_minimum() {
        // metric: distance of the tile area from 32*128
        let (samples, best) = tune(2, 1, |c| {
            ((c.tile_sizes[0] * c.tile_sizes[1]) as f64 - (32.0 * 128.0)).abs()
        });
        assert_eq!(samples.len(), 80);
        let b = &samples[best];
        assert_eq!(b.config.tile_sizes[0] * b.config.tile_sizes[1], 32 * 128);
    }

    #[test]
    fn stride_subsamples() {
        let (samples, _) = tune(3, 10, |_| 1.0);
        assert_eq!(samples.len(), 14);
    }

    #[test]
    fn tuned_store_round_trips() {
        let mut store = TunedStore::new();
        store.record(
            0xdead_beef_0123_4567,
            2,
            TuneConfig {
                tile_sizes: vec![16, 256],
                group_limit: 4,
            },
            0.0125,
        );
        store.record_fast_math(
            u64::MAX, // extremes must survive the hex round-trip
            3,
            TuneConfig {
                tile_sizes: vec![8, 16, 128],
                group_limit: 11,
            },
            3.5e-3,
            true,
        );
        // replacement: re-recording a key overwrites, not duplicates
        store.record(
            0xdead_beef_0123_4567,
            2,
            TuneConfig {
                tile_sizes: vec![32, 512],
                group_limit: 6,
            },
            0.011,
        );
        assert_eq!(store.len(), 2);

        let back = TunedStore::from_json(&store.to_json()).unwrap();
        assert_eq!(back, store);
        let e = back.lookup(0xdead_beef_0123_4567, 2).unwrap();
        assert_eq!(e.config.tile_sizes, vec![32, 512]);
        assert_eq!(e.config.group_limit, 6);
        assert!(!e.fast_math);
        assert!(back.lookup(u64::MAX, 3).unwrap().fast_math);
        assert!(back.lookup(0xdead_beef_0123_4567, 3).is_none());
        assert!(back.lookup(1, 2).is_none());

        // pre-tier store files carry no fast_math key: defaults to false
        let legacy = "{\"tuned\": [{\"fingerprint\": \"2a\", \"ndims\": 2, \
                      \"tile_sizes\": [8, 64], \"group_limit\": 2, \"metric\": 1.0}]}";
        let old = TunedStore::from_json(legacy).unwrap();
        assert!(!old.lookup(0x2a, 2).unwrap().fast_math);
    }

    #[test]
    fn tuned_store_rejects_malformed_input() {
        for bad in [
            "",
            "{}",
            "{\"tuned\": [{}]}",
            "{\"tuned\": [{\"fingerprint\": \"xyz\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 4, \"tile_sizes\": [8, 64, 64, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 3, \"tile_sizes\": [8, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, -64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 0}]}",
        ] {
            assert!(TunedStore::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tuned_store_file_round_trip() {
        let mut store = TunedStore::new();
        store.record(
            42,
            2,
            TuneConfig {
                tile_sizes: vec![8, 128],
                group_limit: 2,
            },
            1.0,
        );
        let path = std::env::temp_dir().join("gmg_tuned_store_test.json");
        store.save(&path).unwrap();
        let back = TunedStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, store);
        assert!(TunedStore::load(std::path::Path::new("/nonexistent/tuned.json")).is_err());
    }
}
