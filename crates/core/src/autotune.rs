//! Auto-tuning (§3.2.4): enumerate tile-size × grouping-limit
//! configurations and pick the fastest, using a caller-supplied evaluator
//! (the runtime executes each configuration; this module only owns the
//! search space and bookkeeping).
//!
//! The paper's space: 2-D outer tile 8:64, inner 64:512, powers of two;
//! 3-D outer two dims 8:32, inner 64:256; five grouping limits. That yields
//! 80 configurations for 2-D and 135 for 3-D — reproduced exactly by
//! [`search_space`].
//!
//! [`search`] replaces the exhaustive sweep with a seeded evolutionary
//! search over the same space *extended* with the smoother time-band height
//! and the kernel tier — see that module for the operators and the
//! determinism contract.

use crate::jsonio::{self, JsonValue};
use crate::options::PipelineOptions;
use crate::specialize::KernelTier;

pub mod search;

/// Typed failure of the tuning space / sweep entry points. A serving
/// process drives these from request parameters, so an unsupported rank
/// must be a value, not a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuneError {
    /// Only 2-D and 3-D pipelines have a defined search space.
    UnsupportedRank(usize),
    /// `tune` was called with a stride of zero.
    ZeroStride,
    /// The (strided) space produced no samples to pick a winner from.
    EmptySpace,
    /// A smoother-sequence point outside the tunable range (zero-length
    /// chains, or chains too long for any grouping limit to fuse).
    UnsupportedSmoother(SmootherSeq),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::UnsupportedRank(n) => write!(f, "unsupported rank {n} (need 2 or 3)"),
            TuneError::ZeroStride => write!(f, "tuning stride must be >= 1"),
            TuneError::EmptySpace => write!(f, "tuning space is empty"),
            TuneError::UnsupportedSmoother(s) => {
                write!(f, "unsupported smoother sequence '{}'", s.label())
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// One auto-tuning configuration.
///
/// `tile_sizes`, `group_limit` and `smooth_band` are *schedule-only* knobs:
/// they change execution order and storage, never the computed values, so a
/// tuned plan stays bitwise-identical to the default one. `tier` selects
/// the specialized-kernel lowering; [`KernelTier::Scalar`] and
/// [`KernelTier::LaneSafe`] are bitwise with the generic interpreter, while
/// [`KernelTier::FastMath`] reassociates and is only legal where the caller
/// already opted into fast-math numerics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneConfig {
    pub tile_sizes: Vec<i64>,
    pub group_limit: usize,
    /// Smoother steps fused per diamond/split time band
    /// ([`PipelineOptions::dtile_band`]) — the Schmitt-et-al.-style
    /// "smoother steps" axis, expressed as the schedule-only band height.
    pub smooth_band: usize,
    /// Specialized-kernel tier the configuration was tuned at.
    pub tier: KernelTier,
}

impl TuneConfig {
    /// A configuration with the pre-search defaults for the new axes
    /// (band 4, lane-safe tier — exactly what [`PipelineOptions`] presets
    /// carry), matching the paper's original two-axis sweep entries.
    pub fn new(tile_sizes: Vec<i64>, group_limit: usize) -> TuneConfig {
        TuneConfig {
            tile_sizes,
            group_limit,
            smooth_band: 4,
            tier: KernelTier::LaneSafe,
        }
    }

    /// Apply this configuration onto a base option set.
    pub fn apply(&self, base: &PipelineOptions) -> PipelineOptions {
        let mut o = base.clone();
        o.tile_sizes = self.tile_sizes.clone();
        o.group_limit = self.group_limit;
        o.dtile_band = self.smooth_band;
        match self.tier {
            KernelTier::Scalar => {
                o.simd = false;
                o.fast_math = false;
            }
            KernelTier::LaneSafe => {
                o.simd = true;
                o.fast_math = false;
            }
            KernelTier::FastMath => {
                o.simd = true;
                o.fast_math = true;
            }
        }
        o
    }
}

/// One point on the smoother-sequence tuning axis: which relaxation the
/// cycle's pre/post chains use and how many steps each chain runs. Unlike
/// the schedule-only knobs of [`TuneConfig`], this axis changes the
/// *pipeline structure* (and the computed values), so it is applied by the
/// `gmg-multigrid` builders — the compiler only enumerates and validates
/// the points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmootherSeq {
    /// Weighted-Jacobi chain of `steps` sweeps (the paper's smoother).
    Jacobi { steps: usize },
    /// Red-black Gauss–Seidel: `steps` full (red + black) sweeps.
    Rbgs { steps: usize },
    /// Chebyshev polynomial chain of the given degree.
    Chebyshev { degree: usize },
}

/// Longest smoother chain the lattice admits: beyond this no grouping
/// limit in [`GROUP_LIMITS`] can fuse the chain, so every longer point
/// degenerates to the shortest one's schedule with extra sweeps.
pub const MAX_SMOOTHER_LEN: usize = 16;

impl SmootherSeq {
    /// Compact display label (`jacobi4`, `rbgs2`, `cheb6`).
    pub fn label(self) -> String {
        match self {
            SmootherSeq::Jacobi { steps } => format!("jacobi{steps}"),
            SmootherSeq::Rbgs { steps } => format!("rbgs{steps}"),
            SmootherSeq::Chebyshev { degree } => format!("cheb{degree}"),
        }
    }

    /// Number of pipeline stages one pre- or post-smoothing chain emits
    /// (RB-GS steps are two half-sweep stages each).
    pub fn chain_stages(self) -> usize {
        match self {
            SmootherSeq::Jacobi { steps } => steps,
            SmootherSeq::Rbgs { steps } => 2 * steps,
            SmootherSeq::Chebyshev { degree } => degree,
        }
    }

    /// Check the point is tunable: nonzero length, chain no longer than
    /// [`MAX_SMOOTHER_LEN`]. A serving process drives this from request
    /// parameters, so bad points are values, not panics.
    pub fn validate(self) -> Result<(), TuneError> {
        let n = self.chain_stages();
        if n == 0 || n > MAX_SMOOTHER_LEN {
            return Err(TuneError::UnsupportedSmoother(self));
        }
        Ok(())
    }

    /// The default smoother-sequence lattice: the paper's Jacobi counts
    /// plus short RB-GS and Chebyshev chains of comparable cost.
    pub fn lattice() -> Vec<SmootherSeq> {
        vec![
            SmootherSeq::Jacobi { steps: 2 },
            SmootherSeq::Jacobi { steps: 4 },
            SmootherSeq::Rbgs { steps: 1 },
            SmootherSeq::Rbgs { steps: 2 },
            SmootherSeq::Chebyshev { degree: 4 },
            SmootherSeq::Chebyshev { degree: 6 },
        ]
    }
}

/// The §3.2.4 schedule space crossed with a smoother-sequence axis: every
/// `(TuneConfig, SmootherSeq)` pair, with each sequence validated up
/// front. An unsupported sequence (or rank) fails the whole enumeration
/// with a typed error rather than panicking mid-sweep.
pub fn search_space_with_smoothers(
    ndims: usize,
    seqs: &[SmootherSeq],
) -> Result<Vec<(TuneConfig, SmootherSeq)>, TuneError> {
    for s in seqs {
        s.validate()?;
    }
    let base = search_space(ndims)?;
    let mut out = Vec::with_capacity(base.len() * seqs.len());
    for cfg in &base {
        for &s in seqs {
            out.push((cfg.clone(), s));
        }
    }
    Ok(out)
}

/// The grouping limits swept ("five different values of grouping limit").
pub const GROUP_LIMITS: [usize; 5] = [2, 4, 6, 8, 11];

/// The paper's §3.2.4 search space for the given rank (band and tier held
/// at their defaults; [`search`] explores those axes).
pub fn search_space(ndims: usize) -> Result<Vec<TuneConfig>, TuneError> {
    let mut out = Vec::new();
    match ndims {
        2 => {
            for &gl in &GROUP_LIMITS {
                let mut outer = 8i64;
                while outer <= 64 {
                    let mut inner = 64i64;
                    while inner <= 512 {
                        out.push(TuneConfig::new(vec![outer, inner], gl));
                        inner *= 2;
                    }
                    outer *= 2;
                }
            }
        }
        3 => {
            for &gl in &GROUP_LIMITS {
                let mut o1 = 8i64;
                while o1 <= 32 {
                    let mut o2 = 8i64;
                    while o2 <= 32 {
                        let mut inner = 64i64;
                        while inner <= 256 {
                            out.push(TuneConfig::new(vec![o1, o2, inner], gl));
                            inner *= 2;
                        }
                        o2 *= 2;
                    }
                    o1 *= 2;
                }
            }
        }
        other => return Err(TuneError::UnsupportedRank(other)),
    }
    Ok(out)
}

/// Result of one evaluated configuration.
#[derive(Clone, Debug)]
pub struct TuneSample {
    pub config: TuneConfig,
    /// Execution time in seconds (or whatever metric the evaluator reports;
    /// lower is better).
    pub metric: f64,
}

/// Run the exhaustive tuner: evaluate every configuration (optionally
/// subsampled by `stride` for quick runs) and return all samples plus the
/// index of the best *sample* (an index into the returned vector, not into
/// the unstrided space).
pub fn tune(
    ndims: usize,
    stride: usize,
    mut eval: impl FnMut(&TuneConfig) -> f64,
) -> Result<(Vec<TuneSample>, usize), TuneError> {
    if stride == 0 {
        return Err(TuneError::ZeroStride);
    }
    let space = search_space(ndims)?;
    let mut samples = Vec::new();
    for cfg in space.into_iter().step_by(stride) {
        let metric = eval(&cfg);
        samples.push(TuneSample {
            config: cfg,
            metric,
        });
    }
    let best = samples
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.metric.total_cmp(&b.1.metric))
        .map(|(i, _)| i)
        .ok_or(TuneError::EmptySpace)?;
    Ok((samples, best))
}

/// How a stored winner was found (provenance; see `DESIGN.md` §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneSource {
    /// The §3.2.4 exhaustive grid sweep.
    Sweep,
    /// The offline evolutionary [`search`].
    Search,
    /// The server's online tuner (idle-capacity background trials).
    Online,
}

impl TuneSource {
    pub fn label(self) -> &'static str {
        match self {
            TuneSource::Sweep => "sweep",
            TuneSource::Search => "search",
            TuneSource::Online => "online",
        }
    }

    fn parse(s: &str) -> Option<TuneSource> {
        match s {
            "sweep" => Some(TuneSource::Sweep),
            "search" => Some(TuneSource::Search),
            "online" => Some(TuneSource::Online),
            _ => None,
        }
    }
}

/// One persisted tuning result: the winning [`TuneConfig`] for a pipeline
/// structure (keyed by [`crate::cache::pipeline_fingerprint`] + rank), the
/// metric it achieved, and where it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedEntry {
    /// Structural fingerprint of the pipeline + bindings the sweep ran on.
    pub fingerprint: u64,
    /// Spatial rank (2 or 3) — fingerprints are rank-specific already, but
    /// keeping it explicit makes the stored file self-describing.
    pub ndims: usize,
    pub config: TuneConfig,
    /// The metric the winning configuration achieved (seconds; informative
    /// only, not used by lookups).
    pub metric: f64,
    /// Provenance: sweep, offline search, or the server's online tuner.
    pub source: TuneSource,
    /// Configurations evaluated before this winner was picked (0 for
    /// legacy sweep entries that predate provenance).
    pub evals: u64,
    /// Seed of the search that found it (0 for sweeps).
    pub seed: u64,
}

impl TunedEntry {
    /// Whether the stored metric was achieved at the reassociating
    /// fast-math tier (which changes numerics — a server only honors it for
    /// sessions that already opted in).
    pub fn fast_math(&self) -> bool {
        self.config.tier == KernelTier::FastMath
    }
}

/// JSON-persisted store of autotuning winners, so a solve server can
/// warm-start sessions with tuned tile sizes instead of the §3.2.4
/// defaults. One entry per `(fingerprint, ndims)` key; re-recording a key
/// replaces it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TunedStore {
    entries: Vec<TunedEntry>,
}

impl TunedStore {
    pub fn new() -> TunedStore {
        TunedStore::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[TunedEntry] {
        &self.entries
    }

    /// Insert or replace the tuned configuration for one pipeline key
    /// (measured at the default bitwise tiers; see [`record_fast_math`]).
    ///
    /// [`record_fast_math`]: TunedStore::record_fast_math
    pub fn record(&mut self, fingerprint: u64, ndims: usize, config: TuneConfig, metric: f64) {
        self.record_fast_math(fingerprint, ndims, config, metric, false);
    }

    /// [`record`](TunedStore::record) with an explicit fast-math marker:
    /// forces the stored tier to [`KernelTier::FastMath`] (the sweep ran
    /// there) or clamps a fast-math tier back to lane-safe.
    pub fn record_fast_math(
        &mut self,
        fingerprint: u64,
        ndims: usize,
        mut config: TuneConfig,
        metric: f64,
        fast_math: bool,
    ) {
        config.tier = match (fast_math, config.tier) {
            (true, _) => KernelTier::FastMath,
            (false, KernelTier::FastMath) => KernelTier::LaneSafe,
            (false, t) => t,
        };
        self.record_entry(TunedEntry {
            fingerprint,
            ndims,
            config,
            metric,
            source: TuneSource::Sweep,
            evals: 0,
            seed: 0,
        });
    }

    /// Insert or replace a winner with full provenance (the search and the
    /// server's online tuner record through this).
    pub fn record_entry(&mut self, entry: TunedEntry) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == entry.fingerprint && e.ndims == entry.ndims)
        {
            *e = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// The stored winner for a pipeline key, if any.
    pub fn lookup(&self, fingerprint: u64, ndims: usize) -> Option<&TunedEntry> {
        self.entries
            .iter()
            .find(|e| e.fingerprint == fingerprint && e.ndims == ndims)
    }

    /// Render as JSON. Fingerprints are hex strings: a u64 does not survive
    /// a round-trip through an f64 JSON number (seeds likewise).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"tuned\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let tiles = e
                .config
                .tile_sizes
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "\n    {{\"fingerprint\": \"{:016x}\", \"ndims\": {}, \"tile_sizes\": [{}], \
                 \"group_limit\": {}, \"smooth_band\": {}, \"tier\": \"{}\", \"metric\": {}, \
                 \"fast_math\": {}, \"source\": \"{}\", \"evals\": {}, \"seed\": \"{:016x}\"}}",
                e.fingerprint,
                e.ndims,
                tiles,
                e.config.group_limit,
                e.config.smooth_band,
                e.config.tier.label(),
                if e.metric.is_finite() {
                    format!("{}", e.metric)
                } else {
                    "null".to_string()
                },
                e.fast_math(),
                e.source.label(),
                e.evals,
                e.seed,
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse a store previously written by [`TunedStore::to_json`] (or by a
    /// pre-provenance release: the new keys all have legacy defaults).
    pub fn from_json(text: &str) -> Result<TunedStore, String> {
        let doc = jsonio::parse(text)?;
        let list = doc
            .get("tuned")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'tuned' array")?;
        let mut store = TunedStore::new();
        for (i, item) in list.iter().enumerate() {
            let fail = |what: &str| format!("tuned[{i}]: {what}");
            let fp_text = item
                .get("fingerprint")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("missing fingerprint"))?;
            let fingerprint = u64::from_str_radix(fp_text, 16)
                .map_err(|_| fail("fingerprint is not a hex u64"))?;
            let ndims = item
                .get("ndims")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| fail("missing ndims"))? as usize;
            if ndims != 2 && ndims != 3 {
                return Err(fail("ndims must be 2 or 3"));
            }
            let tile_sizes: Vec<i64> = item
                .get("tile_sizes")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| fail("missing tile_sizes"))?
                .iter()
                .map(|t| t.as_i64().filter(|&v| v > 0))
                .collect::<Option<_>>()
                .ok_or_else(|| fail("tile_sizes must be positive integers"))?;
            if tile_sizes.len() < ndims {
                return Err(fail("fewer tile sizes than dimensions"));
            }
            let group_limit =
                item.get("group_limit")
                    .and_then(JsonValue::as_u64)
                    .filter(|&g| g >= 1)
                    .ok_or_else(|| fail("missing or zero group_limit"))? as usize;
            // absent before the search-axis extension: defaults to the
            // PipelineOptions preset band
            let smooth_band = match item.get("smooth_band") {
                None => 4,
                Some(v) => v
                    .as_u64()
                    .filter(|&b| b >= 1)
                    .ok_or_else(|| fail("smooth_band must be a positive integer"))?
                    as usize,
            };
            let metric = item
                .get("metric")
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::NAN);
            // absent in store files written before the tier split
            let fast_math = item
                .get("fast_math")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            let tier = match item.get("tier") {
                None => {
                    if fast_math {
                        KernelTier::FastMath
                    } else {
                        KernelTier::LaneSafe
                    }
                }
                Some(v) => {
                    let label = v.as_str().ok_or_else(|| fail("tier must be a string"))?;
                    KernelTier::ALL
                        .into_iter()
                        .find(|t| t.label() == label)
                        .ok_or_else(|| fail("unknown kernel tier"))?
                }
            };
            let source = match item.get("source") {
                None => TuneSource::Sweep,
                Some(v) => v
                    .as_str()
                    .and_then(TuneSource::parse)
                    .ok_or_else(|| fail("unknown tuning source"))?,
            };
            let evals = item.get("evals").and_then(JsonValue::as_u64).unwrap_or(0);
            let seed = match item.get("seed") {
                None => 0,
                Some(v) => {
                    let text = v.as_str().ok_or_else(|| fail("seed must be a hex string"))?;
                    u64::from_str_radix(text, 16)
                        .map_err(|_| fail("seed is not a hex u64"))?
                }
            };
            store.record_entry(TunedEntry {
                fingerprint,
                ndims,
                config: TuneConfig {
                    tile_sizes,
                    group_limit,
                    smooth_band,
                    tier,
                },
                metric,
                source,
                evals,
                seed,
            });
        }
        Ok(store)
    }

    /// Write the store to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read a store from a file (missing file or bad JSON are both errors).
    pub fn load(path: &std::path::Path) -> Result<TunedStore, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        TunedStore::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{PipelineOptions, Variant};

    #[test]
    fn space_sizes_match_paper() {
        // 2-D: outer {8,16,32,64} × inner {64..512} (4) × 5 limits = 80
        assert_eq!(search_space(2).unwrap().len(), 80);
        // 3-D: {8,16,32}² × inner {64,128,256} × 5 = 135
        assert_eq!(search_space(3).unwrap().len(), 135);
    }

    #[test]
    fn unsupported_rank_is_a_typed_error_not_a_panic() {
        for bad in [0usize, 1, 4, 7] {
            assert_eq!(search_space(bad), Err(TuneError::UnsupportedRank(bad)));
            assert_eq!(
                tune(bad, 1, |_| 1.0).unwrap_err(),
                TuneError::UnsupportedRank(bad)
            );
        }
        assert_eq!(tune(2, 0, |_| 1.0).unwrap_err(), TuneError::ZeroStride);
        // errors render (a server embeds them in error frames)
        assert!(TuneError::UnsupportedRank(4).to_string().contains("rank 4"));
    }

    #[test]
    fn smoother_axis_extends_the_space() {
        let lattice = SmootherSeq::lattice();
        assert_eq!(lattice.len(), 6);
        // full cross product: 80 × 6 and 135 × 6
        assert_eq!(
            search_space_with_smoothers(2, &lattice).unwrap().len(),
            80 * 6
        );
        assert_eq!(
            search_space_with_smoothers(3, &lattice).unwrap().len(),
            135 * 6
        );
        // labels are stable (stored/parsed by servers)
        assert_eq!(SmootherSeq::Jacobi { steps: 4 }.label(), "jacobi4");
        assert_eq!(SmootherSeq::Rbgs { steps: 2 }.label(), "rbgs2");
        assert_eq!(SmootherSeq::Chebyshev { degree: 6 }.label(), "cheb6");
        // RB-GS emits two half-sweep stages per step
        assert_eq!(SmootherSeq::Rbgs { steps: 2 }.chain_stages(), 4);
    }

    #[test]
    fn unsupported_smoothers_are_typed_errors_not_panics() {
        for bad in [
            SmootherSeq::Jacobi { steps: 0 },
            SmootherSeq::Rbgs { steps: 0 },
            SmootherSeq::Chebyshev { degree: 0 },
            SmootherSeq::Jacobi { steps: 17 },
            SmootherSeq::Rbgs { steps: 9 }, // 18 half-sweep stages
            SmootherSeq::Chebyshev { degree: 99 },
        ] {
            assert_eq!(bad.validate(), Err(TuneError::UnsupportedSmoother(bad)));
            assert_eq!(
                search_space_with_smoothers(2, &[bad]).unwrap_err(),
                TuneError::UnsupportedSmoother(bad)
            );
        }
        // rank errors still surface through the extended entry point
        assert_eq!(
            search_space_with_smoothers(4, &SmootherSeq::lattice()).unwrap_err(),
            TuneError::UnsupportedRank(4)
        );
        assert!(TuneError::UnsupportedSmoother(SmootherSeq::Chebyshev { degree: 0 })
            .to_string()
            .contains("cheb0"));
    }

    #[test]
    fn apply_overrides_options() {
        let base = PipelineOptions::for_variant(Variant::OptPlus, 2);
        let cfg = TuneConfig {
            tile_sizes: vec![16, 128],
            group_limit: 4,
            smooth_band: 2,
            tier: KernelTier::Scalar,
        };
        let o = cfg.apply(&base);
        assert_eq!(o.tile_sizes, vec![16, 128]);
        assert_eq!(o.group_limit, 4);
        assert_eq!(o.dtile_band, 2);
        assert!(!o.simd && !o.fast_math);
        assert!(o.intra_group_reuse); // rest preserved

        // tier mapping covers all three levels
        let fm = TuneConfig {
            tier: KernelTier::FastMath,
            ..cfg.clone()
        }
        .apply(&base);
        assert!(fm.simd && fm.fast_math);
        let ls = TuneConfig::new(vec![16, 128], 4).apply(&base);
        assert!(ls.simd && !ls.fast_math);
        assert_eq!(ls.dtile_band, 4, "TuneConfig::new keeps the preset band");
    }

    #[test]
    fn tune_finds_minimum() {
        // metric: distance of the tile area from 32*128
        let (samples, best) = tune(2, 1, |c| {
            ((c.tile_sizes[0] * c.tile_sizes[1]) as f64 - (32.0 * 128.0)).abs()
        })
        .unwrap();
        assert_eq!(samples.len(), 80);
        let b = &samples[best];
        assert_eq!(b.config.tile_sizes[0] * b.config.tile_sizes[1], 32 * 128);
    }

    #[test]
    fn stride_subsamples() {
        let (samples, _) = tune(3, 10, |_| 1.0).unwrap();
        assert_eq!(samples.len(), 14);
    }

    #[test]
    fn stride_best_indexes_the_samples_not_the_space() {
        // stride 7 over the 80-point 2-D space → samples at space indices
        // 0, 7, …, 77 (12 samples). Make the 9th *sample* the minimum and
        // check the returned index is 9 (the position in the strided sample
        // vector), carrying the config from space index 63.
        let mut k = 0u32;
        let (samples, best) = tune(2, 7, |_| {
            let m = (f64::from(k) - 9.0).abs();
            k += 1;
            m
        })
        .unwrap();
        assert_eq!(samples.len(), 12);
        assert_eq!(best, 9);
        let space = search_space(2).unwrap();
        assert_eq!(samples[best].config, space[63]);
        // and the winner really is the minimum over what was sampled
        assert!(samples
            .iter()
            .all(|s| samples[best].metric <= s.metric));
    }

    #[test]
    fn tuned_store_round_trips() {
        let mut store = TunedStore::new();
        store.record(
            0xdead_beef_0123_4567,
            2,
            TuneConfig::new(vec![16, 256], 4),
            0.0125,
        );
        store.record_fast_math(
            u64::MAX, // extremes must survive the hex round-trip
            3,
            TuneConfig::new(vec![8, 16, 128], 11),
            3.5e-3,
            true,
        );
        // replacement: re-recording a key overwrites, not duplicates
        store.record(
            0xdead_beef_0123_4567,
            2,
            TuneConfig::new(vec![32, 512], 6),
            0.011,
        );
        // full-provenance entry with non-default band/tier
        store.record_entry(TunedEntry {
            fingerprint: 7,
            ndims: 2,
            config: TuneConfig {
                tile_sizes: vec![8, 64],
                group_limit: 2,
                smooth_band: 8,
                tier: KernelTier::Scalar,
            },
            metric: 0.5,
            source: TuneSource::Online,
            evals: 17,
            seed: u64::MAX,
        });
        assert_eq!(store.len(), 3);

        let back = TunedStore::from_json(&store.to_json()).unwrap();
        assert_eq!(back, store);
        let e = back.lookup(0xdead_beef_0123_4567, 2).unwrap();
        assert_eq!(e.config.tile_sizes, vec![32, 512]);
        assert_eq!(e.config.group_limit, 6);
        assert!(!e.fast_math());
        assert_eq!(e.source, TuneSource::Sweep);
        assert!(back.lookup(u64::MAX, 3).unwrap().fast_math());
        assert!(back.lookup(0xdead_beef_0123_4567, 3).is_none());
        assert!(back.lookup(1, 2).is_none());
        let online = back.lookup(7, 2).unwrap();
        assert_eq!(
            (online.source, online.evals, online.seed),
            (TuneSource::Online, 17, u64::MAX)
        );
        assert_eq!(online.config.smooth_band, 8);
        assert_eq!(online.config.tier, KernelTier::Scalar);

        // pre-provenance store files carry none of the new keys: band,
        // tier, source, evals and seed all take their legacy defaults
        let legacy = "{\"tuned\": [{\"fingerprint\": \"2a\", \"ndims\": 2, \
                      \"tile_sizes\": [8, 64], \"group_limit\": 2, \"metric\": 1.0}]}";
        let old = TunedStore::from_json(legacy).unwrap();
        let e = old.lookup(0x2a, 2).unwrap();
        assert!(!e.fast_math());
        assert_eq!(e.config.smooth_band, 4);
        assert_eq!(e.config.tier, KernelTier::LaneSafe);
        assert_eq!((e.source, e.evals, e.seed), (TuneSource::Sweep, 0, 0));
        // legacy fast_math flag still selects the fast-math tier
        let legacy_fm = "{\"tuned\": [{\"fingerprint\": \"2a\", \"ndims\": 2, \
                         \"tile_sizes\": [8, 64], \"group_limit\": 2, \"metric\": 1.0, \
                         \"fast_math\": true}]}";
        assert!(TunedStore::from_json(legacy_fm)
            .unwrap()
            .lookup(0x2a, 2)
            .unwrap()
            .fast_math());
    }

    #[test]
    fn tuned_store_rejects_malformed_input() {
        for bad in [
            "",
            "{}",
            "{\"tuned\": [{}]}",
            "{\"tuned\": [{\"fingerprint\": \"xyz\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 4, \"tile_sizes\": [8, 64, 64, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 3, \"tile_sizes\": [8, 64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, -64], \"group_limit\": 2}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 0}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2, \"smooth_band\": 0}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2, \"tier\": \"warp\"}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2, \"source\": \"oracle\"}]}",
            "{\"tuned\": [{\"fingerprint\": \"ff\", \"ndims\": 2, \"tile_sizes\": [8, 64], \"group_limit\": 2, \"seed\": \"zz\"}]}",
        ] {
            assert!(TunedStore::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tuned_store_file_round_trip() {
        let mut store = TunedStore::new();
        store.record(42, 2, TuneConfig::new(vec![8, 128], 2), 1.0);
        let path = std::env::temp_dir().join("gmg_tuned_store_test.json");
        store.save(&path).unwrap();
        let back = TunedStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, store);
        assert!(TunedStore::load(std::path::Path::new("/nonexistent/tuned.json")).is_err());
    }
}
