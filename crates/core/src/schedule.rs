//! The schedule IR: a [`CompiledPipeline`] lowered to a flat, explicit op
//! stream — the Rust analogue of the paper's generated C (Figure 8), where
//! one cycle is literally a sequence of `pool_allocate` / ghost-fill /
//! tiled-sweep / `pool_deallocate` statements.
//!
//! [`lower`] performs the lowering once; the resulting [`ExecProgram`] is
//! position-independent data (precomputed tile lists, propagation geometry
//! and time-band schedules — no closures) that `gmg-runtime`'s VM interprets
//! op by op. Making the schedule first-class buys three things:
//!
//! * it is *inspectable* (`polymg-cli --dump-schedule`, [`ExecProgram::dump`]);
//! * it is *instrumentable* — the VM records one trace span per op, giving
//!   `--profile` an op-level timeline;
//! * it is *retargetable* — a program does not have to come from `lower` at
//!   all: `gmg-dist` assembles programs whose [`ExecOp::HaloExchange`] ops
//!   call back into its communication layer, so distributed smoothing runs
//!   on the same VM as shared-memory cycles.

use crate::plan::{CompiledPipeline, GroupTiling, ScratchBufferSpec, StageKernel};
use crate::specialize::{classify, unit_block, KernelImpl, KernelSel, KernelTier};
use gmg_ir::{StageId, StageInput};
use gmg_poly::diamond::{split_time_tiling, TimeBand};
use gmg_poly::region::{GroupEdge, GroupStage};
use gmg_poly::tiling::tile_partition;
use gmg_poly::{BoxDomain, Ratio};

/// One storage slot of a program: a dense array (ghost ring included) the
/// VM binds externally or allocates itself.
#[derive(Clone, Debug)]
pub struct SlotSpec {
    /// Binding tag (external slots) / report name.
    pub name: String,
    /// Global coordinate of element 0, outermost first (all-zero for
    /// shared-memory programs; distributed programs bind sub-grids whose
    /// first stored row sits below the rank's owned range).
    pub origin: Vec<i64>,
    /// Allocation extents including the ghost ring, outermost first.
    pub extents: Vec<i64>,
    /// Ghost-ring fill value.
    pub boundary: f64,
    /// True when the VM must bind this slot from caller-provided arrays.
    pub external: bool,
}

impl SlotSpec {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.extents.iter().product::<i64>() as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One kernel input of a scheduled stage.
#[derive(Clone, Debug)]
pub enum OpInput {
    /// Identically-zero input.
    Zero,
    /// Full-array read from a program slot.
    Slot { slot: usize, boundary: f64 },
    /// Read from an earlier stage of the *same* op (scratchpad view in
    /// overlapped groups, previous parity buffer in diamond chains).
    Local { stage: usize, boundary: f64 },
}

/// A stage as scheduled inside an op: kernel + geometry, fully resolved.
#[derive(Clone, Debug)]
pub struct StageExec {
    /// Display name (trace spans, dumps).
    pub name: String,
    /// Index into [`ExecProgram::kernels`].
    pub kernel: usize,
    /// Interior iteration domain.
    pub domain: BoxDomain,
    /// Ghost/boundary value of this stage's own result.
    pub boundary: f64,
    /// Kernel inputs in slot order.
    pub ins: Vec<OpInput>,
    /// Full-array slot holding the result (`None` for scratch-resident
    /// stages of overlapped groups).
    pub slot: Option<usize>,
    /// Specialized kernel family selected at lowering time
    /// ([`KernelImpl::Generic`] = generic tap loop / interpreter).
    pub impl_tag: KernelImpl,
    /// Implementation tier of the specialized kernel (scalar unrolled vs
    /// the explicit-lane tiers), also selected at lowering time.
    pub tier: KernelTier,
    /// Unit-stride cache-block length for the lane tiers, derived from the
    /// pipeline's innermost tile extent at lowering.
    pub xblock: usize,
}

impl StageExec {
    /// The runtime kernel selection this stage was lowered to.
    pub fn sel(&self) -> KernelSel {
        KernelSel {
            impl_tag: self.impl_tag,
            tier: self.tier,
            xblock: self.xblock,
        }
    }
}

/// Precomputed overlapped-tiling geometry (the former per-group runtime
/// state, now carried by the op itself).
#[derive(Clone, Debug)]
pub struct OverlappedGeom {
    /// Tile list over the reference stage's domain.
    pub tiles: Vec<BoxDomain>,
    /// Group-local stages for region propagation.
    pub gstages: Vec<GroupStage>,
    /// Group-local dependence edges.
    pub edges: Vec<GroupEdge>,
    /// Per stage, per dimension: stage-space / reference-space scale.
    pub scales: Vec<Vec<Ratio>>,
}

/// One step of the schedule.
#[derive(Clone, Debug)]
pub enum ExecOp {
    /// Per-cycle `malloc` of a non-pooled intermediate (zero-initialised).
    MallocFresh { slot: usize },
    /// `pool_allocate` at the §3.2.3 alloc point.
    PoolAlloc { slot: usize },
    /// Fill the slot's ghost ring with its boundary value.
    FillGhost { slot: usize },
    /// Full-domain sweep of a single stage, parallel over outer rows.
    RunUntiledStage { stage: StageExec },
    /// Overlapped-tile sweep of a fused group with scratchpads.
    RunOverlappedGroup {
        stages: Vec<StageExec>,
        live_out: Vec<bool>,
        scratch_slot: Vec<Option<usize>>,
        scratch_buffers: Vec<ScratchBufferSpec>,
        geom: OverlappedGeom,
    },
    /// Single-precision smoother chain: state converts f64→f32 once, the
    /// sweeps run on f32 ping-pong buffers, the final step converts back
    /// into `out_slot`.
    RunMixedChain {
        /// One `StageExec` per time step.
        stages: Vec<StageExec>,
        /// Slot receiving the final step's value.
        out_slot: usize,
    },
    /// Diamond/split time-tiled smoother chain with two modulo buffers.
    RunDiamondChain {
        /// One `StageExec` per time step.
        stages: Vec<StageExec>,
        /// Precomputed split-tiling bands.
        schedule: Vec<TimeBand>,
        radius: i64,
        /// Slot receiving the final step's value.
        out_slot: usize,
    },
    /// Copy `region` of `src` into `dst` (same global coordinates).
    CopyLiveOut {
        src: usize,
        dst: usize,
        region: BoxDomain,
    },
    /// `pool_deallocate` at the §3.2.3 free point.
    PoolFree { slot: usize },
    /// Hook into the host's communication layer (distributed programs):
    /// exchange ghost rows to `depth` before the following sweeps. The VM
    /// delegates to the installed `ExecHooks`; shared-memory programs never
    /// contain this op.
    HaloExchange { depth: usize },
}

impl ExecOp {
    /// Short lowercase op name (trace timeline rows, dumps).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ExecOp::MallocFresh { .. } => "malloc_fresh",
            ExecOp::PoolAlloc { .. } => "pool_alloc",
            ExecOp::FillGhost { .. } => "fill_ghost",
            ExecOp::RunUntiledStage { .. } => "run_untiled",
            ExecOp::RunOverlappedGroup { .. } => "run_overlapped",
            ExecOp::RunMixedChain { .. } => "run_mixed_chain",
            ExecOp::RunDiamondChain { .. } => "run_diamond",
            ExecOp::CopyLiveOut { .. } => "copy_live_out",
            ExecOp::PoolFree { .. } => "pool_free",
            ExecOp::HaloExchange { .. } => "halo_exchange",
        }
    }

    /// Every program slot this op touches (reads or writes), unordered.
    /// Ghost fills count as uses: a pooled buffer must already be allocated
    /// when its ring is filled.
    pub fn slots_used(&self) -> Vec<usize> {
        fn ins_slots(acc: &mut Vec<usize>, stage: &StageExec) {
            if let Some(s) = stage.slot {
                acc.push(s);
            }
            for i in &stage.ins {
                if let OpInput::Slot { slot, .. } = i {
                    acc.push(*slot);
                }
            }
        }
        let mut acc = Vec::new();
        match self {
            ExecOp::MallocFresh { slot }
            | ExecOp::PoolAlloc { slot }
            | ExecOp::FillGhost { slot }
            | ExecOp::PoolFree { slot } => acc.push(*slot),
            ExecOp::RunUntiledStage { stage } => ins_slots(&mut acc, stage),
            ExecOp::RunOverlappedGroup { stages, .. } => {
                for s in stages {
                    ins_slots(&mut acc, s);
                }
            }
            ExecOp::RunMixedChain { stages, out_slot }
            | ExecOp::RunDiamondChain {
                stages, out_slot, ..
            } => {
                acc.push(*out_slot);
                for s in stages {
                    ins_slots(&mut acc, s);
                }
            }
            ExecOp::CopyLiveOut { src, dst, .. } => {
                acc.push(*src);
                acc.push(*dst);
            }
            ExecOp::HaloExchange { .. } => {}
        }
        acc.sort_unstable();
        acc.dedup();
        acc
    }
}

/// A complete lowered schedule: slots + kernels + the flat op stream. The
/// VM in `gmg-runtime` interprets this directly; nothing in it refers back
/// to the producing [`CompiledPipeline`].
#[derive(Clone, Debug)]
pub struct ExecProgram {
    /// Pipeline (or synthetic program) name, for reports.
    pub name: String,
    pub slots: Vec<SlotSpec>,
    /// Kernel table; [`StageExec::kernel`] indexes into this.
    pub kernels: Vec<StageKernel>,
    pub ops: Vec<ExecOp>,
    /// Whether intermediates are pool-managed (controls run statistics).
    pub pooled: bool,
    /// Worker threads (0 = ambient rayon pool).
    pub threads: usize,
}

/// Lower a compiled plan into its explicit schedule.
pub fn lower(plan: &CompiledPipeline) -> ExecProgram {
    let graph = &plan.graph;
    let consumers = graph.consumers();
    let pooled = plan.options.pooled_allocation;

    // Kernel table: compact the per-stage Option<StageKernel> vector.
    let mut kernel_of: Vec<Option<usize>> = vec![None; plan.kernels.len()];
    let mut kernels = Vec::new();
    for (i, k) in plan.kernels.iter().enumerate() {
        if let Some(k) = k {
            kernel_of[i] = Some(kernels.len());
            kernels.push(k.clone());
        }
    }

    let slots: Vec<SlotSpec> = plan
        .storage
        .arrays
        .iter()
        .map(|a| SlotSpec {
            name: a.tag.clone(),
            origin: vec![0; a.extents.len()],
            extents: a.extents.clone(),
            boundary: a.boundary,
            external: a.external,
        })
        .collect();

    // Resolve one stage's kernel inputs. `local_of(p)` gives the producer's
    // in-op stage index when it should be read from op-local storage.
    let stage_exec = |sid: StageId, local_of: &dyn Fn(StageId) -> Option<usize>| -> StageExec {
        let stage = graph.stage(sid);
        let ins = stage
            .inputs
            .iter()
            .map(|inp| match inp {
                StageInput::Zero => OpInput::Zero,
                StageInput::Stage(p) => {
                    let boundary = graph.stage(*p).boundary.value();
                    match local_of(*p) {
                        Some(pi) => OpInput::Local {
                            stage: pi,
                            boundary,
                        },
                        None => OpInput::Slot {
                            slot: plan.storage.array_of_stage[p.0].expect("producer without array"),
                            boundary,
                        },
                    }
                }
            })
            .collect();
        let kernel = kernel_of[sid.0].expect("input stage scheduled for execution");
        let ndims = stage.domain.ndims();
        let impl_tag = if plan.options.specialize {
            classify(&kernels[kernel], ndims)
        } else {
            KernelImpl::Generic
        };
        let tier = KernelTier::select(impl_tag, plan.options.simd, plan.options.fast_math);
        // Unit-stride cache block from the innermost tile extent the planner
        // already chose (scalar stages ignore it).
        let xblock = unit_block(*plan.options.tiles_for_rank(ndims).last().expect("rank >= 1"));
        StageExec {
            name: stage.name.clone(),
            kernel,
            domain: stage.domain.clone(),
            boundary: stage.boundary.value(),
            ins,
            slot: plan.storage.array_of_stage[sid.0],
            impl_tag,
            tier,
            xblock,
        }
    };

    let mut ops = Vec::new();

    // Per-cycle fresh allocations of every non-pooled intermediate, in slot
    // order, before the group loop (the VM zero-initialises on malloc, so a
    // ghost fill is only needed for non-zero boundaries).
    if !pooled {
        for (ai, spec) in slots.iter().enumerate() {
            if spec.external {
                continue;
            }
            ops.push(ExecOp::MallocFresh { slot: ai });
            if spec.boundary != 0.0 {
                ops.push(ExecOp::FillGhost { slot: ai });
            }
        }
    }

    for (gi, group) in plan.groups.iter().enumerate() {
        if pooled {
            // §3.2.3 alloc points. Pooled buffers may hold stale data from
            // an earlier tenant, so the ghost ring is always refilled.
            for &a in &plan.storage.alloc_before_group[gi] {
                ops.push(ExecOp::PoolAlloc { slot: a });
                ops.push(ExecOp::FillGhost { slot: a });
            }
        }

        match &group.tiling {
            GroupTiling::Untiled => {
                assert_eq!(group.stages.len(), 1, "untiled groups are single-stage");
                ops.push(ExecOp::RunUntiledStage {
                    stage: stage_exec(group.stages[0], &|_| None),
                });
            }
            GroupTiling::Overlapped {
                ref_stage_local,
                tile_sizes,
                scales,
            } => {
                let (gstages, edges, _, _, _) =
                    crate::grouping::group_geometry(graph, &group.stages, &consumers);
                let tiles = tile_partition(&gstages[*ref_stage_local].domain, tile_sizes);
                // In-group producers with a scratchpad are read from it;
                // everything else comes from full arrays.
                let members = &group.stages;
                let scratch = &group.scratch_slot;
                let local_of = |p: StageId| -> Option<usize> {
                    members
                        .iter()
                        .position(|s| *s == p)
                        .filter(|pi| scratch[*pi].is_some())
                };
                ops.push(ExecOp::RunOverlappedGroup {
                    stages: members.iter().map(|s| stage_exec(*s, &local_of)).collect(),
                    live_out: group.live_out.clone(),
                    scratch_slot: group.scratch_slot.clone(),
                    scratch_buffers: group.scratch_buffers.clone(),
                    geom: OverlappedGeom {
                        tiles,
                        gstages,
                        edges,
                        scales: scales.clone(),
                    },
                });
            }
            GroupTiling::MixedChain => {
                let steps = group.stages.len();
                assert!(steps >= 1);
                assert!(
                    group.live_out.iter().take(steps - 1).all(|l| !l),
                    "mixed chain with interior live-out"
                );
                let members = &group.stages;
                let local_of =
                    |p: StageId| -> Option<usize> { members.iter().position(|s| *s == p) };
                ops.push(ExecOp::RunMixedChain {
                    stages: members.iter().map(|s| stage_exec(*s, &local_of)).collect(),
                    out_slot: plan.storage.array_of_stage[members[steps - 1].0]
                        .expect("mixed chain live-out without array"),
                });
            }
            GroupTiling::Diamond {
                tile_w,
                band_h,
                radius,
            } => {
                let steps = group.stages.len();
                assert!(steps >= 1);
                assert!(
                    group.live_out.iter().take(steps - 1).all(|l| !l),
                    "diamond chain with interior live-out"
                );
                let members = &group.stages;
                let local_of =
                    |p: StageId| -> Option<usize> { members.iter().position(|s| *s == p) };
                let n_outer = graph.stage(members[0]).domain.0[0].len();
                ops.push(ExecOp::RunDiamondChain {
                    stages: members.iter().map(|s| stage_exec(*s, &local_of)).collect(),
                    schedule: split_time_tiling(n_outer, steps, *tile_w, *band_h, *radius),
                    radius: *radius,
                    out_slot: plan.storage.array_of_stage[members[steps - 1].0]
                        .expect("diamond live-out without array"),
                });
            }
        }

        if pooled {
            for &a in &plan.storage.free_after_group[gi] {
                ops.push(ExecOp::PoolFree { slot: a });
            }
        }
    }

    ExecProgram {
        name: graph.pipeline_name.clone(),
        slots,
        kernels,
        ops,
        pooled,
        threads: plan.options.threads,
    }
}

impl ExecProgram {
    /// Human-readable schedule listing with geometry summaries (the
    /// `polymg-cli --dump-schedule` output).
    pub fn dump(&self) -> String {
        fn dims(v: &[i64]) -> String {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("x")
        }
        fn dom(d: &BoxDomain) -> String {
            d.0.iter()
                .map(|iv| format!("[{},{}]", iv.lo, iv.hi))
                .collect::<Vec<_>>()
                .join("x")
        }
        let mut s = format!(
            "program '{}': {} slots, {} kernels, {} ops ({}, threads={})\n",
            self.name,
            self.slots.len(),
            self.kernels.len(),
            self.ops.len(),
            if self.pooled { "pooled" } else { "fresh-alloc" },
            self.threads,
        );
        s.push_str("slots:\n");
        for (i, sl) in self.slots.iter().enumerate() {
            s.push_str(&format!(
                "  %{i:<3} {:<22} ext {:<12} boundary {}{}\n",
                sl.name,
                dims(&sl.extents),
                sl.boundary,
                if sl.external { "  external" } else { "" },
            ));
        }
        s.push_str("ops:\n");
        for (i, op) in self.ops.iter().enumerate() {
            let detail = match op {
                ExecOp::MallocFresh { slot }
                | ExecOp::PoolAlloc { slot }
                | ExecOp::FillGhost { slot }
                | ExecOp::PoolFree { slot } => format!("%{slot} ({})", self.slots[*slot].name),
                ExecOp::RunUntiledStage { stage } => {
                    format!(
                        "{} over {} -> %{} [{}/{}]",
                        stage.name,
                        dom(&stage.domain),
                        stage.slot.expect("untiled stage without slot"),
                        stage.impl_tag.label(),
                        stage.tier.label(),
                    )
                }
                ExecOp::RunOverlappedGroup {
                    stages,
                    live_out,
                    scratch_buffers,
                    geom,
                    ..
                } => {
                    let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
                    let scratch: Vec<String> =
                        scratch_buffers.iter().map(|b| dims(&b.extents)).collect();
                    format!(
                        "[{}] tiles={} scratch=[{}] live_out={}/{}",
                        names.join(" "),
                        geom.tiles.len(),
                        scratch.join(", "),
                        live_out.iter().filter(|l| **l).count(),
                        stages.len(),
                    )
                }
                ExecOp::RunMixedChain { stages, out_slot } => format!(
                    "{} steps={} f32 -> %{}",
                    stages.first().map(|s| s.name.as_str()).unwrap_or("<empty>"),
                    stages.len(),
                    out_slot,
                ),
                ExecOp::RunDiamondChain {
                    stages,
                    schedule,
                    radius,
                    out_slot,
                } => format!(
                    "{} steps={} bands={} radius={} -> %{}",
                    stages.first().map(|s| s.name.as_str()).unwrap_or("<empty>"),
                    stages.len(),
                    schedule.len(),
                    radius,
                    out_slot,
                ),
                ExecOp::CopyLiveOut { src, dst, region } => {
                    format!("%{src} -> %{dst} region {}", dom(region))
                }
                ExecOp::HaloExchange { depth } => format!("depth={depth}"),
            };
            s.push_str(&format!("  {i:>3}  {:<14} {detail}\n", op.mnemonic()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::options::{PipelineOptions, Variant};
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d, stencil_3d};
    use gmg_ir::{ParamBindings, Pipeline, StepCount};

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    fn two_level_pipeline(n: i64) -> Pipeline {
        let mut p = Pipeline::new("frag");
        let v = p.input("V", 2, n, 1);
        let f = p.input("F", 2, n, 1);
        let pre = p.tstencil(
            "pre",
            2,
            n,
            1,
            StepCount::Fixed(4),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        let d = p.function(
            "defect",
            2,
            n,
            1,
            Operand::Func(f).at(&[0, 0]) - stencil_2d(Operand::Func(pre), &five(), 1.0),
        );
        let nc = (n + 1) / 2 - 1;
        let r = p.restrict_fn(
            "restrict",
            2,
            nc,
            0,
            restrict_full_weighting_2d(Operand::Func(d)),
        );
        let e = p.interp_fn("interp", 2, n, 1, r);
        let c = p.function(
            "correct",
            2,
            n,
            1,
            Operand::Func(pre).at(&[0, 0]) + Operand::Func(e).at(&[0, 0]),
        );
        let post = p.tstencil(
            "post",
            2,
            n,
            1,
            StepCount::Fixed(4),
            Some(c),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(post);
        p
    }

    fn seven() -> Vec<Vec<Vec<f64>>> {
        let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
        w[1][1][1] = 6.0;
        w[0][1][1] = -1.0;
        w[2][1][1] = -1.0;
        w[1][0][1] = -1.0;
        w[1][2][1] = -1.0;
        w[1][1][0] = -1.0;
        w[1][1][2] = -1.0;
        w
    }

    fn smoother_3d(n: i64) -> Pipeline {
        let mut p = Pipeline::new("sm3");
        let v = p.input("V", 3, n, 1);
        let f = p.input("F", 3, n, 1);
        let pre = p.tstencil(
            "pre",
            3,
            n,
            1,
            StepCount::Fixed(3),
            Some(v),
            Operand::State.at(&[0, 0, 0])
                - 0.8
                    * (stencil_3d(Operand::State, &seven(), 1.0) - Operand::Func(f).at(&[0, 0, 0])),
        );
        let d = p.function(
            "defect",
            3,
            n,
            1,
            Operand::Func(f).at(&[0, 0, 0]) - stencil_3d(Operand::Func(pre), &seven(), 1.0),
        );
        p.mark_output(d);
        p
    }

    fn lower_variant(p: &Pipeline, v: Variant, ndims: usize) -> ExecProgram {
        let plan = compile(
            p,
            &ParamBindings::new(),
            PipelineOptions::for_variant(v, ndims),
        )
        .unwrap();
        lower(&plan)
    }

    /// §3.2.3 invariant, restated on the schedule: every pooled slot gets
    /// exactly one `PoolAlloc` before its first use and exactly one
    /// `PoolFree` after its last use.
    fn assert_pool_invariants(prog: &ExecProgram) {
        assert!(prog.pooled);
        for (si, spec) in prog.slots.iter().enumerate() {
            if spec.external {
                // externals are caller-bound, never pooled
                for op in &prog.ops {
                    assert!(
                        !matches!(op,
                            ExecOp::PoolAlloc { slot } | ExecOp::PoolFree { slot }
                            | ExecOp::MallocFresh { slot } if *slot == si),
                        "external slot %{si} managed by the schedule"
                    );
                }
                continue;
            }
            let allocs: Vec<usize> = prog
                .ops
                .iter()
                .enumerate()
                .filter(|(_, op)| matches!(op, ExecOp::PoolAlloc { slot } if *slot == si))
                .map(|(i, _)| i)
                .collect();
            let frees: Vec<usize> = prog
                .ops
                .iter()
                .enumerate()
                .filter(|(_, op)| matches!(op, ExecOp::PoolFree { slot } if *slot == si))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                allocs.len(),
                1,
                "slot %{si} must have exactly one PoolAlloc"
            );
            assert_eq!(frees.len(), 1, "slot %{si} must have exactly one PoolFree");
            let (alloc, free) = (allocs[0], frees[0]);
            assert!(alloc < free, "slot %{si} freed before allocated");
            for (i, op) in prog.ops.iter().enumerate() {
                if i == alloc || i == free {
                    continue;
                }
                if op.slots_used().contains(&si) {
                    assert!(
                        i > alloc && i < free,
                        "slot %{si} used at op {i} outside its [{alloc},{free}] lifetime"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_slots_alloc_once_before_first_use_free_once_after_last_2d() {
        let p = two_level_pipeline(255);
        assert_pool_invariants(&lower_variant(&p, Variant::OptPlus, 2));
        assert_pool_invariants(&lower_variant(&p, Variant::DtileOptPlus, 2));
    }

    #[test]
    fn pooled_slots_alloc_once_before_first_use_free_once_after_last_3d() {
        let p = smoother_3d(63);
        assert_pool_invariants(&lower_variant(&p, Variant::OptPlus, 3));
        assert_pool_invariants(&lower_variant(&p, Variant::DtileOptPlus, 3));
    }

    #[test]
    fn naive_lowering_is_fresh_mallocs_plus_untiled_sweeps() {
        let p = two_level_pipeline(255);
        let prog = lower_variant(&p, Variant::Naive, 2);
        assert!(!prog.pooled);
        let n_stages = prog
            .ops
            .iter()
            .filter(|op| matches!(op, ExecOp::RunUntiledStage { .. }))
            .count();
        let n_malloc = prog
            .ops
            .iter()
            .filter(|op| matches!(op, ExecOp::MallocFresh { .. }))
            .count();
        let n_intermediate = prog.slots.iter().filter(|s| !s.external).count();
        assert_eq!(n_malloc, n_intermediate);
        assert!(n_stages > 0);
        assert!(prog
            .ops
            .iter()
            .all(|op| !matches!(op, ExecOp::PoolAlloc { .. } | ExecOp::PoolFree { .. })));
        // mallocs all precede the first sweep
        let first_run = prog
            .ops
            .iter()
            .position(|op| matches!(op, ExecOp::RunUntiledStage { .. }))
            .unwrap();
        for (i, op) in prog.ops.iter().enumerate() {
            if matches!(op, ExecOp::MallocFresh { .. }) {
                assert!(i < first_run);
            }
        }
    }

    #[test]
    fn overlapped_ops_carry_tiles_and_dtile_carries_bands() {
        let p = two_level_pipeline(255);
        let prog = lower_variant(&p, Variant::OptPlus, 2);
        let has_overlapped = prog.ops.iter().any(
            |op| matches!(op, ExecOp::RunOverlappedGroup { geom, .. } if !geom.tiles.is_empty()),
        );
        assert!(has_overlapped, "opt+ schedule must contain tiled groups");

        let prog = lower_variant(&p, Variant::DtileOptPlus, 2);
        let diamond = prog.ops.iter().find_map(|op| match op {
            ExecOp::RunDiamondChain {
                stages, schedule, ..
            } => Some((stages, schedule)),
            _ => None,
        });
        let (stages, schedule) = diamond.expect("dtile schedule must contain a diamond chain");
        assert_eq!(stages.len(), 4, "4 smoother steps");
        assert!(!schedule.is_empty());
        // consecutive steps read the previous step locally
        for (t, st) in stages.iter().enumerate().skip(1) {
            assert!(st
                .ins
                .iter()
                .any(|i| matches!(i, OpInput::Local { stage, .. } if *stage == t - 1)));
        }
    }

    #[test]
    fn lowering_tags_stencil_restrict_and_interp_kernels() {
        use crate::specialize::KernelImpl;
        fn stages_of(prog: &ExecProgram) -> Vec<&StageExec> {
            let mut out = Vec::new();
            for op in &prog.ops {
                match op {
                    ExecOp::RunUntiledStage { stage } => out.push(stage),
                    ExecOp::RunOverlappedGroup { stages, .. }
                    | ExecOp::RunDiamondChain { stages, .. } => out.extend(stages.iter()),
                    _ => {}
                }
            }
            out
        }

        let p = two_level_pipeline(255);
        let prog = lower_variant(&p, Variant::OptPlus, 2);
        let tags: Vec<KernelImpl> = stages_of(&prog).iter().map(|s| s.impl_tag).collect();
        // the V-cycle fragment exercises every 2-D family
        assert!(tags.contains(&KernelImpl::Stencil2D5), "{tags:?}");
        assert!(tags.contains(&KernelImpl::Restrict), "{tags:?}");
        assert!(tags.contains(&KernelImpl::Interp), "{tags:?}");

        let p3 = smoother_3d(63);
        let prog3 = lower_variant(&p3, Variant::Naive, 3);
        let tags3: Vec<KernelImpl> = stages_of(&prog3).iter().map(|s| s.impl_tag).collect();
        assert!(tags3.contains(&KernelImpl::Stencil3D7), "{tags3:?}");

        // the knob turns every tag off
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.specialize = false;
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let off = lower(&plan);
        assert!(stages_of(&off)
            .iter()
            .all(|s| s.impl_tag == KernelImpl::Generic));
    }

    #[test]
    fn lowering_selects_tiers_and_blocks_from_the_knobs() {
        use crate::specialize::{KernelImpl, KernelTier};
        fn stages_of(prog: &ExecProgram) -> Vec<&StageExec> {
            let mut out = Vec::new();
            for op in &prog.ops {
                match op {
                    ExecOp::RunUntiledStage { stage } => out.push(stage),
                    ExecOp::RunOverlappedGroup { stages, .. }
                    | ExecOp::RunDiamondChain { stages, .. } => out.extend(stages.iter()),
                    _ => {}
                }
            }
            out
        }

        let p = two_level_pipeline(255);

        // default: every specialized stage is lane-safe, generic stays scalar
        let prog = lower_variant(&p, Variant::OptPlus, 2);
        for st in stages_of(&prog) {
            if st.impl_tag == KernelImpl::Generic {
                assert_eq!(st.tier, KernelTier::Scalar, "{}", st.name);
            } else {
                assert_eq!(st.tier, KernelTier::LaneSafe, "{}", st.name);
            }
            // 2-D default tiles are 32x512 -> innermost 512, clamped up to
            // the minimum useful block
            assert_eq!(st.xblock, 1024, "{}", st.name);
        }
        assert!(stages_of(&prog)
            .iter()
            .any(|s| s.tier == KernelTier::LaneSafe));

        // --no-simd: everything scalar, tags untouched
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.simd = false;
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let off = lower(&plan);
        assert!(stages_of(&off).iter().all(|s| s.tier == KernelTier::Scalar));
        assert!(stages_of(&off)
            .iter()
            .any(|s| s.impl_tag != KernelImpl::Generic));

        // --fast-math: specialized stages move to the reassociating tier
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.fast_math = true;
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let fm = lower(&plan);
        for st in stages_of(&fm) {
            if st.impl_tag == KernelImpl::Generic {
                assert_eq!(st.tier, KernelTier::Scalar, "{}", st.name);
            } else {
                assert_eq!(st.tier, KernelTier::FastMath, "{}", st.name);
            }
        }

        // tiny innermost tiles clamp up to the minimum block
        let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
        opts.tile_sizes = vec![8, 16];
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let small = lower(&plan);
        assert!(stages_of(&small)
            .iter()
            .all(|s| s.xblock == crate::specialize::UNIT_BLOCK_MIN));
    }

    #[test]
    fn dump_lists_every_op_and_slot() {
        let p = two_level_pipeline(63);
        let prog = lower_variant(&p, Variant::DtileOptPlus, 2);
        let d = prog.dump();
        for (i, op) in prog.ops.iter().enumerate() {
            assert!(d.contains(op.mnemonic()), "dump missing op {i}");
        }
        for sl in &prog.slots {
            assert!(d.contains(&sl.name), "dump missing slot {}", sl.name);
        }
        assert!(d.contains("tiles=") || d.contains("bands="));
    }
}
