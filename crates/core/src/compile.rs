//! The compilation driver: DSL pipeline → [`CompiledPipeline`].
//!
//! Phases (paper Figure 4): unroll → validate → lower kernels → auto-group →
//! per-group tiling decision + scratchpad planning (with intra-group reuse)
//! → full-array planning (with inter-group reuse) → pooled alloc/free
//! schedule.

use crate::grouping::{auto_group, group_geometry, Grouping};
use crate::lowering::lower_all;
use crate::options::{PipelineOptions, TilingMode};
use crate::plan::{
    ArraySpec, CompiledPipeline, GroupPlan, GroupTiling, ScratchBufferSpec, StoragePlan,
};
use crate::storage::{bucket_extents, remap_storage, RemapItem, StorageClass};
use gmg_ir::{FuncKind, ParamBindings, Pipeline, StageGraph, StageId, StageKind};
use gmg_poly::region::propagate_regions;
use gmg_poly::tiling::{owned_region, tile_partition};
use gmg_poly::BoxDomain;

/// Compile a pipeline. Returns validation diagnostics on error.
pub fn compile(
    pipeline: &Pipeline,
    bindings: &ParamBindings,
    options: PipelineOptions,
) -> Result<CompiledPipeline, Vec<String>> {
    let graph = StageGraph::build(pipeline, bindings);
    let errs = gmg_ir::validate::validate(pipeline, &graph);
    if !errs.is_empty() {
        return Err(errs);
    }
    let kernels = lower_all(&graph, options.coeff_factoring);
    let grouping = auto_group(pipeline, &graph, &options);
    let groups = plan_groups(pipeline, &graph, &grouping, &options);
    let storage = plan_full_arrays(&graph, &groups, &options);
    // chaos is a runtime property; never bake it into a (cacheable) plan
    let options = PipelineOptions {
        chaos: None,
        ..options
    };
    Ok(CompiledPipeline {
        graph,
        kernels,
        groups,
        storage,
        options,
    })
}

/// Decide tiling and scratchpad layout for every group.
fn plan_groups(
    pipeline: &Pipeline,
    graph: &StageGraph,
    grouping: &Grouping,
    options: &PipelineOptions,
) -> Vec<GroupPlan> {
    let consumers = graph.consumers();
    let mut plans = Vec::with_capacity(grouping.groups.len());

    for members in &grouping.groups {
        let (gstages, edges, ref_local, scales, live_out) =
            group_geometry(graph, members, &consumers);
        let in_group = |sid: StageId| members.contains(&sid);
        // a stage needs a scratchpad iff some consumer reads it inside the
        // group (then tiles read the overlap region, which only the
        // scratchpad holds)
        let needs_scratch: Vec<bool> = members
            .iter()
            .map(|sid| consumers[sid.0].iter().any(|c| in_group(*c)))
            .collect();

        let ndims = graph.stage(members[0]).domain.ndims();
        let is_smoother_chain = members.len() >= 2
            && members.iter().all(|s| {
                pipeline.func(graph.stage(*s).func).kind == FuncKind::TStencil
                    && graph.stage(*s).func == graph.stage(members[0]).func
            });

        // mixed precision moves eligible smoother chains onto f32 buffers:
        // every step must be a single-case, offset-access linear kernel
        // without coefficient factors (the f32 chain executor evaluates a
        // flat tap list; anything else keeps the f64 path).
        let mixed_chain_ok = options.mixed_precision
            && is_smoother_chain
            && members.iter().all(|s| {
                let st = graph.stage(*s);
                st.cases.len() == 1
                    && gmg_ir::linearize_with_coeffs(&st.cases[0].1, &st.coeff_slots)
                        .is_some_and(|f| {
                            f.taps.iter().all(|t| {
                                t.cfactor.is_none()
                                    && t.access.0.iter().all(|a| a.num == 1 && a.den == 1)
                            })
                        })
            });

        let tiling = if options.tiling == TilingMode::None || members.len() == 1 {
            // single-stage groups need no tiling for temporal reuse (§4.2:
            // "exception was the single defect node")
            GroupTiling::Untiled
        } else if mixed_chain_ok {
            GroupTiling::MixedChain
        } else if options.dtile_smoother && is_smoother_chain {
            let radius = graph.stage(members[1]).max_unit_radius().max(1);
            let tile_w = options.tiles_for_rank(ndims)[0]
                .max(2 * radius * (options.dtile_band as i64 - 1) + 1);
            GroupTiling::Diamond {
                tile_w,
                band_h: options.dtile_band,
                radius,
            }
        } else {
            GroupTiling::Overlapped {
                ref_stage_local: ref_local,
                tile_sizes: options.tiles_for_rank(ndims),
                scales: scales.clone(),
            }
        };

        // scratchpad planning (overlapped groups only; diamond groups use
        // modulo full buffers managed by the runtime, untiled groups are all
        // live-out)
        let (scratch_slot, scratch_buffers) = match &tiling {
            GroupTiling::Overlapped {
                ref_stage_local,
                tile_sizes,
                scales,
            } => plan_scratchpads(
                graph,
                members,
                &gstages,
                &edges,
                *ref_stage_local,
                tile_sizes,
                scales,
                &live_out,
                &needs_scratch,
                options,
            ),
            _ => (vec![None; members.len()], Vec::new()),
        };

        plans.push(GroupPlan {
            stages: members.clone(),
            live_out,
            scratch_slot,
            scratch_buffers,
            tiling,
        });
    }
    plans
}

/// Compute per-stage maximal scratch extents over all tiles, form storage
/// classes, and run the intra-group remapping (Algorithms 2–3).
#[allow(clippy::too_many_arguments)]
fn plan_scratchpads(
    graph: &StageGraph,
    members: &[StageId],
    gstages: &[gmg_poly::region::GroupStage],
    edges: &[gmg_poly::region::GroupEdge],
    ref_local: usize,
    tile_sizes: &[i64],
    scales: &[Vec<gmg_poly::Ratio>],
    live_out: &[bool],
    needs_scratch: &[bool],
    options: &PipelineOptions,
) -> (Vec<Option<usize>>, Vec<ScratchBufferSpec>) {
    let ref_dom = gstages[ref_local].domain.clone();
    let tiles = tile_partition(&ref_dom, tile_sizes);
    let ndims = ref_dom.ndims();
    // max alloc extents per stage over all tiles
    let mut max_ext = vec![vec![0i64; ndims]; members.len()];
    for tile in &tiles {
        let tile_stages: Vec<gmg_poly::region::GroupStage> = gstages
            .iter()
            .enumerate()
            .map(|(i, s)| gmg_poly::region::GroupStage {
                domain: s.domain.clone(),
                owned: if live_out[i] {
                    owned_region(tile, &scales[i], &s.domain)
                } else {
                    BoxDomain::empty(ndims)
                },
            })
            .collect();
        let regions = propagate_regions(&tile_stages, edges);
        for (i, r) in regions.iter().enumerate() {
            if !needs_scratch[i] {
                continue;
            }
            for (d, e) in r.alloc.extents().iter().enumerate() {
                max_ext[i][d] = max_ext[i][d].max(*e);
            }
        }
    }

    // remap items: only stages that need scratch. Timestamps are schedule
    // positions; last use is the position of the last in-group consumer.
    let pos_of = |sid: StageId| members.iter().position(|m| *m == sid).unwrap();
    let consumers = graph.consumers();
    let mut item_stage = Vec::new();
    let mut items = Vec::new();
    for (i, sid) in members.iter().enumerate() {
        if !needs_scratch[i] {
            continue;
        }
        let last = consumers[sid.0]
            .iter()
            .filter(|c| members.contains(c))
            .map(|c| pos_of(*c) as i64)
            .max()
            .unwrap_or(i as i64);
        let key = bucket_extents(&max_ext[i], options.scratch_quantum);
        items.push(RemapItem {
            time: i as i64,
            last_use: last,
            class: StorageClass {
                ndims,
                size_key: key,
                param_tag: None,
            },
        });
        item_stage.push(i);
    }
    let result = remap_storage(&items, options.intra_group_reuse);

    let mut scratch_slot = vec![None; members.len()];
    for (it, &stage_local) in item_stage.iter().enumerate() {
        scratch_slot[stage_local] = Some(result.buffer_of[it]);
    }
    // buffer specs: the class size key is the (bucketed) max extents
    let scratch_buffers = result
        .buffer_class
        .iter()
        .map(|c| ScratchBufferSpec {
            extents: c.size_key.clone(),
            capacity: c.size_key.iter().product::<i64>() as usize,
        })
        .collect();
    (scratch_slot, scratch_buffers)
}

/// Plan full arrays: inputs, live-outs, inter-group reuse and the pooled
/// alloc/free schedule.
fn plan_full_arrays(
    graph: &StageGraph,
    groups: &[GroupPlan],
    options: &PipelineOptions,
) -> StoragePlan {
    let nstages = graph.stages.len();
    // group index of each stage (inputs: none)
    let mut group_of = vec![None; nstages];
    for (gi, g) in groups.iter().enumerate() {
        for s in &g.stages {
            group_of[s.0] = Some(gi);
        }
    }
    let consumers = graph.consumers();

    // collect array-needing stages: inputs + live-outs
    struct Want {
        stage: usize,
        time: i64,
        last_use: i64,
        external: bool,
    }
    let mut wants: Vec<Want> = Vec::new();
    for (si, st) in graph.stages.iter().enumerate() {
        let is_input = st.kind == StageKind::Input;
        let live_out = group_of[si]
            .map(|gi| {
                let g = &groups[gi];
                let local = g.stages.iter().position(|s| s.0 == si).unwrap();
                g.live_out[local]
            })
            .unwrap_or(false);
        if !is_input && !live_out {
            continue;
        }
        let time = group_of[si].map(|g| g as i64).unwrap_or(-1);
        let last_read = consumers[si]
            .iter()
            .filter_map(|c| group_of[c.0])
            .map(|g| g as i64)
            .max();
        let last_use = if st.is_output || is_input {
            i64::MAX // never recycled
        } else {
            last_read.unwrap_or(time)
        };
        wants.push(Want {
            stage: si,
            time,
            last_use,
            external: is_input || st.is_output,
        });
    }

    // remap the internal (reusable) live-outs; externals get dedicated arrays
    let mut items = Vec::new();
    let mut item_stage = Vec::new();
    for w in wants.iter().filter(|w| !w.external) {
        let st = &graph.stages[w.stage];
        let extents: Vec<i64> = st.domain.extents().iter().map(|e| e + 2).collect();
        items.push(RemapItem {
            time: w.time,
            last_use: w.last_use,
            class: StorageClass {
                ndims: st.domain.ndims(),
                size_key: extents,
                param_tag: st.size_param.map(|p| p.0),
            },
        });
        item_stage.push(w.stage);
    }
    let remap = remap_storage(&items, options.inter_group_reuse);

    let mut array_of_stage = vec![None; nstages];
    let mut arrays: Vec<ArraySpec> = Vec::new();
    // externals first
    for w in wants.iter().filter(|w| w.external) {
        let st = &graph.stages[w.stage];
        array_of_stage[w.stage] = Some(arrays.len());
        arrays.push(ArraySpec {
            extents: st.domain.extents().iter().map(|e| e + 2).collect(),
            boundary: st.boundary.value(),
            external: true,
            tag: st.name.clone(),
        });
    }
    // internal buffers from the remap
    let base = arrays.len();
    for (b, class) in remap.buffer_class.iter().enumerate() {
        // tag with the first stage mapped to it
        let first = item_stage
            .iter()
            .zip(&remap.buffer_of)
            .find(|(_, bb)| **bb == b)
            .map(|(s, _)| graph.stages[*s].name.clone())
            .unwrap_or_default();
        arrays.push(ArraySpec {
            extents: class.size_key.clone(),
            boundary: item_stage
                .iter()
                .zip(&remap.buffer_of)
                .find(|(_, bb)| **bb == b)
                .map(|(s, _)| graph.stages[*s].boundary.value())
                .unwrap_or(0.0),
            external: false,
            tag: first,
        });
    }
    for (k, &si) in item_stage.iter().enumerate() {
        array_of_stage[si] = Some(base + remap.buffer_of[k]);
    }

    // pooled alloc/free schedule over groups
    let ngroups = groups.len();
    let mut first_write = vec![i64::MAX; arrays.len()];
    let mut last_read = vec![-1i64; arrays.len()];
    for w in &wants {
        let Some(a) = array_of_stage[w.stage] else {
            continue;
        };
        if arrays[a].external {
            continue;
        }
        first_write[a] = first_write[a].min(w.time);
        last_read[a] = last_read[a].max(if w.last_use == i64::MAX {
            ngroups as i64
        } else {
            w.last_use.max(w.time)
        });
    }
    let mut alloc_before_group = vec![Vec::new(); ngroups];
    let mut free_after_group = vec![Vec::new(); ngroups];
    for (a, spec) in arrays.iter().enumerate() {
        if spec.external || first_write[a] == i64::MAX {
            continue;
        }
        alloc_before_group[first_write[a] as usize].push(a);
        let fr = last_read[a];
        if fr >= 0 && (fr as usize) < ngroups {
            free_after_group[fr as usize].push(a);
        }
    }

    StoragePlan {
        array_of_stage,
        arrays,
        alloc_before_group,
        free_after_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Variant;
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d};
    use gmg_ir::StepCount;

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    /// Two-level fragment: pre-smooth → defect → restrict; interp → correct
    /// → post-smooth.
    fn two_level_pipeline(n: i64) -> Pipeline {
        let mut p = Pipeline::new("frag");
        let v = p.input("V", 2, n, 1);
        let f = p.input("F", 2, n, 1);
        let pre = p.tstencil(
            "pre",
            2,
            n,
            1,
            StepCount::Fixed(4),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        let d = p.function(
            "defect",
            2,
            n,
            1,
            Operand::Func(f).at(&[0, 0]) - stencil_2d(Operand::Func(pre), &five(), 1.0),
        );
        let nc = (n + 1) / 2 - 1;
        let r = p.restrict_fn(
            "restrict",
            2,
            nc,
            0,
            restrict_full_weighting_2d(Operand::Func(d)),
        );
        let e = p.interp_fn("interp", 2, n, 1, r);
        let c = p.function(
            "correct",
            2,
            n,
            1,
            Operand::Func(pre).at(&[0, 0]) + Operand::Func(e).at(&[0, 0]),
        );
        let post = p.tstencil(
            "post",
            2,
            n,
            1,
            StepCount::Fixed(4),
            Some(c),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(post);
        p
    }

    #[test]
    fn compile_naive() {
        let p = two_level_pipeline(255);
        let plan = compile(
            &p,
            &ParamBindings::new(),
            PipelineOptions::for_variant(Variant::Naive, 2),
        )
        .unwrap();
        // every compute stage its own untiled group, all live-out
        assert_eq!(plan.groups.len(), plan.graph.num_compute_stages());
        for g in &plan.groups {
            assert!(matches!(g.tiling, GroupTiling::Untiled));
            assert!(g.live_out.iter().all(|&l| l));
            assert!(g.scratch_buffers.is_empty());
        }
        // 1:1 arrays: every compute stage has one
        let n_arrays = plan.storage.arrays.len();
        assert_eq!(
            n_arrays,
            plan.graph.num_compute_stages() + 2 // + V, F inputs
        );
    }

    #[test]
    fn compile_opt_plus_reuses_arrays() {
        let p = two_level_pipeline(255);
        let mut onaive = PipelineOptions::for_variant(Variant::Opt, 2);
        onaive.tile_sizes = vec![32, 64];
        let plan_opt = compile(&p, &ParamBindings::new(), onaive).unwrap();
        let mut oplus = PipelineOptions::for_variant(Variant::OptPlus, 2);
        oplus.tile_sizes = vec![32, 64];
        let plan_plus = compile(&p, &ParamBindings::new(), oplus).unwrap();

        assert!(
            plan_plus.storage.num_intermediate_arrays()
                <= plan_opt.storage.num_intermediate_arrays()
        );
        assert!(plan_plus.storage.intermediate_bytes() <= plan_opt.storage.intermediate_bytes());
        // grouping reduced the number of groups below the stage count
        assert!(plan_plus.groups.len() < plan_plus.graph.num_compute_stages());
        // intra reuse reduced scratch buffer count
        assert!(plan_plus.total_scratch_buffers() <= plan_opt.total_scratch_buffers());
    }

    #[test]
    fn scratch_only_for_in_group_consumed_stages() {
        let p = two_level_pipeline(255);
        let mut o = PipelineOptions::for_variant(Variant::OptPlus, 2);
        o.tile_sizes = vec![32, 64];
        let plan = compile(&p, &ParamBindings::new(), o).unwrap();
        for g in &plan.groups {
            if let GroupTiling::Overlapped { .. } = &g.tiling {
                for (i, slot) in g.scratch_slot.iter().enumerate() {
                    let sid = g.stages[i];
                    let consumed_inside = plan.graph.consumers()[sid.0]
                        .iter()
                        .any(|c| g.stages.contains(c));
                    assert_eq!(slot.is_some(), consumed_inside);
                    if slot.is_none() {
                        assert!(g.live_out[i], "stage neither scratch nor live-out");
                    }
                }
            }
        }
    }

    #[test]
    fn alloc_free_schedule_is_consistent() {
        let p = two_level_pipeline(255);
        let mut o = PipelineOptions::for_variant(Variant::OptPlus, 2);
        o.tile_sizes = vec![32, 64];
        let plan = compile(&p, &ParamBindings::new(), o).unwrap();
        let st = &plan.storage;
        // every non-external array allocated exactly once, freed at most once
        let mut allocs = vec![0; st.arrays.len()];
        let mut frees = vec![0; st.arrays.len()];
        for g in &st.alloc_before_group {
            for &a in g {
                allocs[a] += 1;
            }
        }
        for g in &st.free_after_group {
            for &a in g {
                frees[a] += 1;
            }
        }
        for (a, spec) in st.arrays.iter().enumerate() {
            if spec.external {
                assert_eq!(allocs[a], 0);
                assert_eq!(frees[a], 0);
            } else {
                assert_eq!(allocs[a], 1, "array {a} ({}) allocs", spec.tag);
                assert!(frees[a] <= 1);
            }
        }
        // alloc group ≤ free group
        for (gi, g) in st.free_after_group.iter().enumerate() {
            for &a in g {
                let ag = st
                    .alloc_before_group
                    .iter()
                    .position(|v| v.contains(&a))
                    .unwrap();
                assert!(ag <= gi);
            }
        }
    }

    #[test]
    fn dtile_marks_smoother_groups_diamond() {
        let p = two_level_pipeline(255);
        let mut o = PipelineOptions::for_variant(Variant::DtileOptPlus, 2);
        o.tile_sizes = vec![32, 64];
        let plan = compile(&p, &ParamBindings::new(), o).unwrap();
        let n_diamond = plan
            .groups
            .iter()
            .filter(|g| matches!(g.tiling, GroupTiling::Diamond { .. }))
            .count();
        assert_eq!(n_diamond, 2, "pre and post smoother chains");
        for g in &plan.groups {
            if let GroupTiling::Diamond {
                tile_w,
                band_h,
                radius,
            } = g.tiling
            {
                assert!(tile_w > 2 * radius * (band_h as i64 - 1));
            }
        }
    }

    #[test]
    fn validation_errors_propagate() {
        let mut p = Pipeline::new("bad");
        let v = p.input("V", 2, 8, 0);
        let a = p.function("a", 2, 8, 0, Operand::Func(v).at(&[0, 5]));
        p.mark_output(a);
        let r = compile(
            &p,
            &ParamBindings::new(),
            PipelineOptions::for_variant(Variant::Naive, 2),
        );
        assert!(r.is_err());
    }
}
