//! Human-readable compilation reports: the grouping/storage dump that
//! corresponds to the paper's Figures 6 (grouping + storage mapping) and 7
//! (scratchpad colouring), plus summary statistics used by the benchmark
//! harness tables.

use crate::plan::{CompiledPipeline, GroupTiling};

/// Summary statistics of a compiled pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    pub num_stages: usize,
    pub num_groups: usize,
    pub max_group_size: usize,
    pub num_overlapped_groups: usize,
    pub num_diamond_groups: usize,
    pub num_untiled_groups: usize,
    pub num_full_arrays: usize,
    pub intermediate_bytes: usize,
    pub total_scratch_buffers: usize,
    pub peak_scratch_bytes: usize,
}

/// Collect [`PlanStats`] from a plan.
pub fn stats(plan: &CompiledPipeline) -> PlanStats {
    let mut overlapped = 0;
    let mut diamond = 0;
    let mut untiled = 0;
    for g in &plan.groups {
        match g.tiling {
            GroupTiling::Overlapped { .. } => overlapped += 1,
            GroupTiling::MixedChain | GroupTiling::Diamond { .. } => diamond += 1,
            GroupTiling::Untiled => untiled += 1,
        }
    }
    PlanStats {
        num_stages: plan.graph.num_compute_stages(),
        num_groups: plan.groups.len(),
        max_group_size: plan
            .groups
            .iter()
            .map(|g| g.stages.len())
            .max()
            .unwrap_or(0),
        num_overlapped_groups: overlapped,
        num_diamond_groups: diamond,
        num_untiled_groups: untiled,
        num_full_arrays: plan.storage.num_intermediate_arrays(),
        intermediate_bytes: plan.storage.intermediate_bytes(),
        total_scratch_buffers: plan.total_scratch_buffers(),
        peak_scratch_bytes: plan.peak_scratch_bytes(),
    }
}

/// Memory behaviour of one run, pairing the *predicted* numbers from the
/// compiled plan with the *observed* counters the runtime incremented while
/// executing it (via `gmg-trace`). `reproduce memory` and the Fig-11b table
/// both derive their byte columns from this, so a mismatch between what the
/// planner promised and what the pool actually served is visible directly.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservedMemory {
    /// Plan-predicted bytes of full intermediate arrays.
    pub plan_intermediate_bytes: usize,
    /// Plan-predicted peak scratchpad bytes per thread.
    pub plan_peak_scratch_bytes: usize,
    /// Pool counters observed while running (hits/misses/alloc/peak).
    pub pool: gmg_trace::PoolSnapshot,
    /// Scratchpad arenas created vs recycled across tiles.
    pub arena_created: u64,
    pub arena_recycled: u64,
}

impl ObservedMemory {
    /// Fraction of buffer requests served from the pool's free lists.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool.hits + self.pool.misses;
        if total == 0 {
            return 0.0;
        }
        self.pool.hits as f64 / total as f64
    }
}

/// Combine a compiled plan's static storage prediction with the runtime
/// counters captured in a [`gmg_trace::Report`].
pub fn observed_memory(plan: &CompiledPipeline, report: &gmg_trace::Report) -> ObservedMemory {
    ObservedMemory {
        plan_intermediate_bytes: plan.storage.intermediate_bytes(),
        plan_peak_scratch_bytes: plan.peak_scratch_bytes(),
        pool: report.pool,
        arena_created: report.arena_created,
        arena_recycled: report.arena_recycled,
    }
}

/// Render a [`gmg_trace::Report`] alongside the plan's predictions as a
/// human-readable observability section: per-stage times, the kernel
/// dispatch histogram, and pooled-allocation behaviour.
pub fn observability_dump(plan: &CompiledPipeline, report: &gmg_trace::Report) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "observed execution of '{}':", plan.graph.pipeline_name);
    let total_ns: u64 = report.stages.iter().map(|s| s.ns).sum();
    for s in &report.stages {
        let pct = if total_ns == 0 {
            0.0
        } else {
            100.0 * s.ns as f64 / total_ns as f64
        };
        let _ = writeln!(
            out,
            "  {:<24} {:>10.3} ms {:>5.1}%  {:>8} tiles  {:>12} cells  [{}]",
            s.name,
            s.ns as f64 / 1e6,
            pct,
            s.tiles,
            s.cells,
            s.kind
        );
    }
    if !report.ops.is_empty() {
        let op_total: u64 = report.ops.iter().map(|o| o.ns).sum();
        let _ = writeln!(out, "  schedule timeline ({} ops):", report.ops.len());
        for o in &report.ops {
            let pct = if op_total == 0 {
                0.0
            } else {
                100.0 * o.ns as f64 / op_total as f64
            };
            let _ = writeln!(
                out,
                "    op {:>3} {:<14} {:>10.3} ms {:>5.1}%  ×{}",
                o.index,
                o.mnemonic,
                o.ns as f64 / 1e6,
                pct,
                o.invocations
            );
        }
    }
    if report.plan_cache.hits + report.plan_cache.misses > 0 {
        let _ = writeln!(
            out,
            "  plan cache: {} hits / {} misses",
            report.plan_cache.hits, report.plan_cache.misses
        );
    }
    let _ = write!(out, "  dispatch:");
    for (label, count) in gmg_trace::dispatch::LABELS.iter().zip(report.dispatch) {
        if count > 0 {
            let _ = write!(out, " {label}={count}");
        }
    }
    let _ = writeln!(out);
    if report.kernel_impls.iter().any(|&c| c > 0) {
        let _ = write!(out, "  kernel impls:");
        for (label, count) in gmg_trace::dispatch::IMPL_LABELS
            .iter()
            .zip(report.kernel_impls)
        {
            if count > 0 {
                let _ = write!(out, " {label}={count}");
            }
        }
        let _ = writeln!(out);
    }
    if report.kernel_tiers.iter().any(|&c| c > 0) {
        let _ = write!(out, "  kernel tiers:");
        for (label, count) in gmg_trace::dispatch::TIER_LABELS
            .iter()
            .zip(report.kernel_tiers)
        {
            if count > 0 {
                let _ = write!(out, " {label}={count}");
            }
        }
        let _ = writeln!(out);
    }
    if report.threads.regions > 0 {
        let _ = writeln!(
            out,
            "  threads: {} workers, {} regions / {} items, {} steals, {} parks",
            report.threads.workers,
            report.threads.regions,
            report.threads.items,
            report.threads.steals,
            report.threads.parks,
        );
    }
    let mem = observed_memory(plan, report);
    let _ = writeln!(
        out,
        "  pool: {} hits / {} misses ({:.1}% hit), {} KiB allocated, {} KiB peak live",
        mem.pool.hits,
        mem.pool.misses,
        100.0 * mem.pool_hit_rate(),
        mem.pool.allocated_bytes / 1024,
        mem.pool.peak_live_bytes / 1024,
    );
    let _ = writeln!(
        out,
        "  plan predicted: {} KiB intermediates, {} KiB peak scratch",
        mem.plan_intermediate_bytes / 1024,
        mem.plan_peak_scratch_bytes / 1024,
    );
    let _ = writeln!(
        out,
        "  arenas: {} created, {} recycled",
        mem.arena_created, mem.arena_recycled
    );
    if report.comm.messages > 0 {
        let _ = writeln!(
            out,
            "  comm: {} messages, {} doubles, {} collectives",
            report.comm.messages, report.comm.doubles, report.comm.collectives
        );
    }
    out
}

/// Render the Figure-6/7 style dump: one block per group listing its stages,
/// their storage kind (scratchpad colour or full-array id) and the tiling.
pub fn grouping_dump(plan: &CompiledPipeline) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeline '{}': {} stages, {} groups",
        plan.graph.pipeline_name,
        plan.graph.num_compute_stages(),
        plan.groups.len()
    );
    for (gi, g) in plan.groups.iter().enumerate() {
        let tiling = match &g.tiling {
            GroupTiling::Untiled => "untiled".to_string(),
            GroupTiling::MixedChain => "mixed-chain f32".to_string(),
            GroupTiling::Overlapped { tile_sizes, .. } => {
                format!("overlapped tiles {tile_sizes:?}")
            }
            GroupTiling::Diamond {
                tile_w,
                band_h,
                radius,
            } => format!("diamond w={tile_w} h={band_h} r={radius}"),
        };
        let _ = writeln!(out, "group {gi} [{tiling}]");
        for (i, sid) in g.stages.iter().enumerate() {
            let st = plan.graph.stage(*sid);
            let mut storage = Vec::new();
            if let Some(b) = g.scratch_slot[i] {
                storage.push(format!("scratch#{b}"));
            }
            if g.live_out[i] {
                let arr = plan.storage.array_of_stage[sid.0]
                    .map(|a| {
                        let spec = &plan.storage.arrays[a];
                        if spec.external {
                            format!("array#{a} (external)")
                        } else {
                            format!("array#{a}")
                        }
                    })
                    .unwrap_or_else(|| "?".to_string());
                storage.push(format!("live-out → {arr}"));
            }
            let _ = writeln!(out, "  {:<24} {}", st.name, storage.join(", "));
        }
        if !g.scratch_buffers.is_empty() {
            let bufs: Vec<String> = g
                .scratch_buffers
                .iter()
                .map(|b| format!("{:?}={}el", b.extents, b.capacity))
                .collect();
            let _ = writeln!(out, "  scratchpads: {}", bufs.join(" "));
        }
    }
    let _ = writeln!(
        out,
        "full arrays: {} intermediate ({} KiB) + {} external",
        plan.storage.num_intermediate_arrays(),
        plan.storage.intermediate_bytes() / 1024,
        plan.storage.arrays.iter().filter(|a| a.external).count()
    );
    out
}

/// Render the stage DAG with its grouping as Graphviz DOT — the machine-
/// readable form of the paper's Figures 2 and 6. Groups become clusters;
/// node fill encodes storage (scratchpad colour index or full array id),
/// dashed nodes are pipeline inputs, double-peripheried nodes are outputs.
pub fn dot_dump(plan: &CompiledPipeline) -> String {
    use std::fmt::Write;
    let palette = [
        "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", plan.graph.pipeline_name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, style=filled];");

    // inputs
    for (i, st) in plan.graph.stages.iter().enumerate() {
        if st.kind == gmg_ir::StageKind::Input {
            let _ = writeln!(
                out,
                "  s{i} [label=\"{}\", style=\"dashed\", fillcolor=white];",
                st.name
            );
        }
    }
    // groups as clusters
    for (gi, g) in plan.groups.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{gi} {{");
        let tiling = match &g.tiling {
            GroupTiling::Untiled => "untiled".to_string(),
            GroupTiling::MixedChain => "mixed f32".to_string(),
            GroupTiling::Overlapped { tile_sizes, .. } => format!("overlapped {tile_sizes:?}"),
            GroupTiling::Diamond { band_h, .. } => format!("diamond h={band_h}"),
        };
        let _ = writeln!(out, "    label=\"group {gi} ({tiling})\";");
        for (i, sid) in g.stages.iter().enumerate() {
            let st = plan.graph.stage(*sid);
            let colour = match g.scratch_slot[i] {
                Some(b) => palette[b % palette.len()],
                None => "#e8e8e8",
            };
            let peri = if st.is_output { 2 } else { 1 };
            let storage = match (g.scratch_slot[i], g.live_out[i]) {
                (Some(b), true) => format!("scratch {b} → arr"),
                (Some(b), false) => format!("scratch {b}"),
                (None, _) => plan.storage.array_of_stage[sid.0]
                    .map(|a| format!("arr {a}"))
                    .unwrap_or_default(),
            };
            let _ = writeln!(
                out,
                "    s{} [label=\"{}\\n{}\", fillcolor=\"{}\", peripheries={}];",
                sid.0, st.name, storage, colour, peri
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // edges
    for (p, c, _) in plan.graph.edges() {
        let _ = writeln!(out, "  s{} -> s{};", p.0, c.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::options::{PipelineOptions, Variant};
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::stencil_2d;
    use gmg_ir::{ParamBindings, Pipeline, StepCount};

    fn plan(v: Variant) -> CompiledPipeline {
        let mut p = Pipeline::new("rep");
        let five = vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ];
        let vg = p.input("V", 2, 127, 1);
        let fg = p.input("F", 2, 127, 1);
        let sm = p.tstencil(
            "sm",
            2,
            127,
            1,
            StepCount::Fixed(4),
            Some(vg),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(fg).at(&[0, 0])),
        );
        p.mark_output(sm);
        let mut o = PipelineOptions::for_variant(v, 2);
        o.tile_sizes = vec![16, 32];
        compile(&p, &ParamBindings::new(), o).unwrap()
    }

    #[test]
    fn stats_sum_to_group_count() {
        let pl = plan(Variant::OptPlus);
        let s = stats(&pl);
        assert_eq!(
            s.num_overlapped_groups + s.num_diamond_groups + s.num_untiled_groups,
            s.num_groups
        );
        assert_eq!(s.num_stages, 4);
        assert!(s.peak_scratch_bytes > 0);
    }

    #[test]
    fn dump_mentions_every_stage() {
        let pl = plan(Variant::OptPlus);
        let d = grouping_dump(&pl);
        for st in &pl.graph.stages {
            if st.kind == gmg_ir::StageKind::Compute {
                assert!(d.contains(&st.name), "dump missing {}", st.name);
            }
        }
        assert!(d.contains("scratch#"));
        assert!(d.contains("live-out"));
    }

    #[test]
    fn naive_dump_has_no_scratch() {
        let pl = plan(Variant::Naive);
        let d = grouping_dump(&pl);
        assert!(!d.contains("scratch#"));
        assert!(d.contains("untiled"));
    }

    #[test]
    fn observability_dump_reflects_counters() {
        let pl = plan(Variant::OptPlus);
        let report = gmg_trace::Report {
            meta: vec![],
            stages: vec![gmg_trace::StageReport {
                name: "sm_step0".to_string(),
                kind: "overlapped".to_string(),
                ns: 2_000_000,
                invocations: 1,
                tiles: 16,
                cells: 127 * 127,
            }],
            ops: vec![gmg_trace::OpReport {
                index: 2,
                mnemonic: "run_overlapped".to_string(),
                ns: 2_000_000,
                invocations: 1,
            }],
            plan_cache: gmg_trace::PlanCacheSnapshot {
                hits: 4,
                misses: 1,
                evictions: 0,
            },
            dispatch: {
                let mut d = [0u64; gmg_trace::dispatch::KINDS];
                d[gmg_trace::dispatch::Kind::UnitUnrolled as usize] = 16;
                d
            },
            pool: gmg_trace::PoolSnapshot {
                hits: 3,
                misses: 1,
                allocated_bytes: 4096,
                peak_live_bytes: 4096,
            },
            kernel_impls: {
                let mut k = [0u64; gmg_trace::dispatch::IMPLS];
                k[crate::KernelImpl::Stencil2D5.index()] = 16;
                k
            },
            kernel_tiers: {
                let mut k = [0u64; gmg_trace::dispatch::TIERS];
                k[crate::KernelTier::LaneSafe.index()] = 16;
                k
            },
            threads: gmg_trace::ThreadsSnapshot {
                workers: 3,
                regions: 8,
                items: 128,
                steals: 5,
                parks: 8,
            },
            arena_created: 2,
            arena_recycled: 14,
            arena_workers: vec![(1, 7), (1, 7)],
            comm: Default::default(),
            chaos: Default::default(),
            server: Default::default(),
            shards: vec![],
            tuner: Default::default(),
            cycles: vec![],
        };
        let mem = observed_memory(&pl, &report);
        assert_eq!(mem.pool.hits, 3);
        assert_eq!(mem.plan_intermediate_bytes, pl.storage.intermediate_bytes());
        assert!((mem.pool_hit_rate() - 0.75).abs() < 1e-12);
        let d = observability_dump(&pl, &report);
        assert!(d.contains("sm_step0"));
        assert!(d.contains("run_overlapped"));
        assert!(d.contains("plan cache: 4 hits / 1 misses"));
        assert!(d.contains("unit_unrolled=16"));
        assert!(d.contains("stencil2d5=16"));
        assert!(d.contains("lane_safe=16"));
        assert!(d.contains("3 workers, 8 regions / 128 items, 5 steals, 8 parks"));
        assert!(d.contains("3 hits / 1 misses"));
        assert!(d.contains("14 recycled"));
    }

    #[test]
    fn dot_dump_is_well_formed() {
        let pl = plan(Variant::OptPlus);
        let d = dot_dump(&pl);
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        // one node per stage, one edge per graph edge
        for st in &pl.graph.stages {
            assert!(d.contains(&format!("\"{}", st.name)) || d.contains(&st.name));
        }
        assert_eq!(
            d.matches(" -> ").count(),
            pl.graph.edges().len(),
            "edge count mismatch"
        );
        // clusters per group
        assert_eq!(d.matches("subgraph cluster_").count(), pl.groups.len());
        // inputs dashed, output double-peripheried
        assert!(d.contains("style=\"dashed\""));
        assert!(d.contains("peripheries=2"));
    }
}
