//! Storage optimization — Section 3.2 of the paper.
//!
//! The heart of this module is the pair of passes the paper specifies as
//! Algorithm 2 (`getLastUseMap`) and Algorithm 3 (`remapStorage`): a greedy,
//! schedule-ordered remapping of "functions" to abstract buffers, where
//! reuse is only allowed inside a *storage class*. The same generic
//! remapper serves both levels:
//!
//! * **intra-group** — tile scratchpads, classed by bucketed compile-time
//!   extents (the "±constant threshold" relaxation, §3.2.1), timestamps are
//!   schedule positions inside the group;
//! * **inter-group** — full arrays for group live-outs, classed by size
//!   parameter identity + ghost offsets (§3.2.2), timestamps are group
//!   indices, and pipeline inputs/outputs are excluded from reuse.

use std::collections::HashMap;

/// A storage class: reuse is permitted only among items of the same class.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StorageClass {
    /// Rank of the buffers.
    pub ndims: usize,
    /// Class-defining size key. For scratchpads: extents bucketed to the
    /// quantum. For full arrays: exact allocation extents (+ the parameter
    /// identity encoded by the caller).
    pub size_key: Vec<i64>,
    /// Distinguishes parametric classes with the same concrete size (e.g.
    /// two different size parameters that happen to be equal).
    pub param_tag: Option<usize>,
}

/// One item to be assigned storage.
#[derive(Clone, Debug)]
pub struct RemapItem {
    /// Schedule timestamp of the item's (single) definition.
    pub time: i64,
    /// Timestamp of the item's last use; `i64::MAX` keeps the buffer
    /// occupied forever (pipeline outputs). An item with no uses gets
    /// `time` (released right after being produced).
    pub last_use: i64,
    pub class: StorageClass,
}

/// Result of remapping: `buffer_of[i]` is the abstract buffer id assigned to
/// item `i`; `buffer_class[b]` the class of buffer `b`.
#[derive(Clone, Debug)]
pub struct RemapResult {
    pub buffer_of: Vec<usize>,
    pub buffer_class: Vec<StorageClass>,
}

impl RemapResult {
    /// Number of distinct buffers.
    pub fn num_buffers(&self) -> usize {
        self.buffer_class.len()
    }
}

/// Algorithm 2: timestamp → items whose last use is at that timestamp.
pub fn last_use_map(items: &[RemapItem]) -> HashMap<i64, Vec<usize>> {
    let mut map: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, it) in items.iter().enumerate() {
        if it.last_use != i64::MAX {
            map.entry(it.last_use).or_default().push(i);
        }
    }
    map
}

/// Algorithm 3: greedy schedule-ordered remapping with per-class pools.
///
/// Deviating slightly from the paper's per-function loop, items sharing a
/// timestamp are all assigned *before* any buffer dying at that timestamp is
/// released: a group's live-outs must not reuse an array the same group is
/// still reading (§3.2.2's "only one of these is allowed to reuse it"
/// constraint falls out of the pool `pop` plus this ordering).
///
/// When `reuse` is false the pass degrades to PolyMage's original one-to-one
/// allocation (one buffer per item) — used by the `polymg-opt` baseline.
pub fn remap_storage(items: &[RemapItem], reuse: bool) -> RemapResult {
    let n = items.len();
    let mut buffer_of = vec![usize::MAX; n];
    let mut buffer_class: Vec<StorageClass> = Vec::new();

    if !reuse {
        for (i, it) in items.iter().enumerate() {
            buffer_of[i] = buffer_class.len();
            buffer_class.push(it.class.clone());
        }
        return RemapResult {
            buffer_of,
            buffer_class,
        };
    }

    let deaths = last_use_map(items);
    let mut death_times: Vec<i64> = deaths.keys().copied().collect();
    death_times.sort();
    // sort item indices by timestamp (stable: original order breaks ties)
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| items[i].time);

    let mut pool: HashMap<StorageClass, Vec<usize>> = HashMap::new();
    let release =
        |pool: &mut HashMap<StorageClass, Vec<usize>>, buffer_of: &Vec<usize>, tt: i64| {
            for &dead in &deaths[&tt] {
                if buffer_of[dead] != usize::MAX {
                    pool.entry(items[dead].class.clone())
                        .or_default()
                        .push(buffer_of[dead]);
                }
            }
        };
    let mut dk = 0usize; // next unreleased death time
    let mut k = 0usize;
    while k < order.len() {
        let t = items[order[k]].time;
        // release everything that died strictly before t
        while dk < death_times.len() && death_times[dk] < t {
            release(&mut pool, &buffer_of, death_times[dk]);
            dk += 1;
        }
        // assign every item defined at time t
        let mut j = k;
        while j < order.len() && items[order[j]].time == t {
            let i = order[j];
            let it = &items[i];
            let b = match pool.get_mut(&it.class).and_then(Vec::pop) {
                Some(b) => b,
                None => {
                    buffer_class.push(it.class.clone());
                    buffer_class.len() - 1
                }
            };
            buffer_of[i] = b;
            j += 1;
        }
        // release deaths at exactly t (covers items with no consumers:
        // last_use == their own definition time)
        if dk < death_times.len() && death_times[dk] == t {
            release(&mut pool, &buffer_of, t);
            dk += 1;
        }
        k = j;
    }
    RemapResult {
        buffer_of,
        buffer_class,
    }
}

/// Bucket scratchpad extents up to the quantum to form the class size key
/// (the paper's ±threshold class relaxation).
pub fn bucket_extents(extents: &[i64], quantum: i64) -> Vec<i64> {
    assert!(quantum >= 1);
    extents
        .iter()
        .map(|&e| gmg_poly::div_ceil(e.max(1), quantum) * quantum)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(key: &[i64]) -> StorageClass {
        StorageClass {
            ndims: key.len(),
            size_key: key.to_vec(),
            param_tag: None,
        }
    }

    fn item(time: i64, last_use: i64, key: &[i64]) -> RemapItem {
        RemapItem {
            time,
            last_use,
            class: class(key),
        }
    }

    #[test]
    fn chain_reuses_two_buffers() {
        // The Figure 7 situation: a chain f0→f1→…→f4, each consumed only by
        // the next; two buffers suffice (ping-pong).
        let items: Vec<RemapItem> = (0..5).map(|t| item(t, t + 1, &[10, 10])).collect();
        let r = remap_storage(&items, true);
        assert_eq!(r.num_buffers(), 2, "chain must colour with 2 buffers");
        // consecutive stages use different buffers
        for w in r.buffer_of.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn no_reuse_is_one_to_one() {
        let items: Vec<RemapItem> = (0..5).map(|t| item(t, t + 1, &[10, 10])).collect();
        let r = remap_storage(&items, false);
        assert_eq!(r.num_buffers(), 5);
    }

    #[test]
    fn long_lived_value_blocks_reuse() {
        // f0 is read by the last stage: its buffer must stay distinct.
        let mut items: Vec<RemapItem> = vec![item(0, 4, &[8])];
        items.extend((1..5).map(|t| item(t, t + 1, &[8])));
        let r = remap_storage(&items, true);
        let b0 = r.buffer_of[0];
        for &b in &r.buffer_of[1..4] {
            assert_ne!(b, b0, "live value's buffer reused while still needed");
        }
        assert_eq!(r.num_buffers(), 3);
    }

    #[test]
    fn classes_do_not_mix() {
        // alternate sizes: no cross-class reuse even when lifetimes allow
        let items = vec![
            item(0, 1, &[10]),
            item(1, 2, &[20]),
            item(2, 3, &[10]),
            item(3, 4, &[20]),
        ];
        let r = remap_storage(&items, true);
        assert_eq!(r.buffer_of[0], r.buffer_of[2]);
        assert_eq!(r.buffer_of[1], r.buffer_of[3]);
        assert_ne!(r.buffer_of[0], r.buffer_of[1]);
        assert_eq!(r.num_buffers(), 2);
    }

    #[test]
    fn same_timestamp_items_get_distinct_buffers() {
        // two live-outs of one group (same timestamp): must not share, and
        // must not grab a buffer dying at that same timestamp.
        let items = vec![
            item(0, 1, &[8]), // read by group 1
            item(1, 2, &[8]), // live-out A of group 1
            item(1, 2, &[8]), // live-out B of group 1
        ];
        let r = remap_storage(&items, true);
        assert_ne!(r.buffer_of[1], r.buffer_of[2]);
        assert_ne!(r.buffer_of[1], r.buffer_of[0]);
        assert_ne!(r.buffer_of[2], r.buffer_of[0]);
        assert_eq!(r.num_buffers(), 3);
    }

    #[test]
    fn buffer_freed_at_t_available_at_t_plus_1() {
        let items = vec![
            item(0, 1, &[8]),
            item(1, 2, &[8]),
            item(2, 3, &[8]), // can take item0's buffer (freed at t=1)
        ];
        let r = remap_storage(&items, true);
        assert_eq!(r.buffer_of[2], r.buffer_of[0]);
    }

    #[test]
    fn outputs_never_release() {
        let items = vec![
            item(0, i64::MAX, &[8]), // pipeline output
            item(1, 2, &[8]),
            item(2, 3, &[8]),
        ];
        let r = remap_storage(&items, true);
        assert_ne!(r.buffer_of[1], r.buffer_of[0]);
        assert_ne!(r.buffer_of[2], r.buffer_of[0]);
    }

    #[test]
    fn unused_item_released_immediately() {
        // item with last_use == its own time: next item can take its buffer
        let items = vec![item(0, 0, &[8]), item(1, 2, &[8])];
        let r = remap_storage(&items, true);
        assert_eq!(r.buffer_of[1], r.buffer_of[0]);
    }

    #[test]
    fn bucketing() {
        assert_eq!(bucket_extents(&[10, 34], 8), vec![16, 40]);
        assert_eq!(bucket_extents(&[8, 16], 8), vec![8, 16]);
        assert_eq!(bucket_extents(&[1], 8), vec![8]);
        assert_eq!(bucket_extents(&[7], 1), vec![7]);
    }

    #[test]
    fn last_use_map_groups_by_time() {
        let items = vec![item(0, 5, &[8]), item(1, 5, &[8]), item(2, i64::MAX, &[8])];
        let m = last_use_map(&items);
        assert_eq!(m[&5].len(), 2);
        assert!(!m.contains_key(&i64::MAX));
    }

    /// Cross-check: the remapping never aliases two simultaneously-live
    /// items (brute-force interval overlap check over random-ish inputs).
    #[test]
    fn no_aliasing_of_live_ranges() {
        let mut items = Vec::new();
        let mut seed = 123u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i64
        };
        for t in 0..40 {
            let life = 1 + next().rem_euclid(6);
            let key = [8 * (1 + next().rem_euclid(3))];
            items.push(item(t, t + life, &key));
        }
        let r = remap_storage(&items, true);
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                if r.buffer_of[i] != r.buffer_of[j] {
                    continue;
                }
                // live range of i is [time_i, last_use_i]; j defined at
                // time_j > time_i must start strictly after i's last use.
                let (a, b) = (&items[i], &items[j]);
                assert!(
                    b.time > a.last_use || a.time > b.last_use,
                    "items {i} and {j} alias while both live"
                );
            }
        }
    }
}
