//! # polymg — the PolyMG optimizing compiler
//!
//! This crate implements the contribution of the SC'17 paper on top of the
//! `gmg-ir` DSL and the `gmg-poly` engine: it turns a pipeline's unrolled
//! [`gmg_ir::StageGraph`] into a [`plan::CompiledPipeline`] — the complete
//! execution plan the `gmg-runtime` crate carries out. The phases mirror
//! Figure 4 of the paper:
//!
//! 1. **Lowering** ([`lowering`]) — each stage's piecewise definition is
//!    linearised into flat tap lists (the specialised-kernel form); nonlinear
//!    cases fall back to the reference interpreter.
//! 2. **Grouping** ([`grouping`]) — PolyMage's greedy auto-grouping merges
//!    producer groups into consumers under a group-size limit and an
//!    overlap (redundant-computation) threshold (§3.1).
//! 3. **Tiling** ([`plan`]) — each multi-stage group is overlap-tiled over
//!    its finest stage's domain; per-stage scales and scratchpad bounds are
//!    derived with `gmg-poly`. Optionally, pure smoother chains are marked
//!    for diamond/split time tiling (`polymg-dtile-opt+`).
//! 4. **Storage optimization** ([`storage`]) — the paper's Algorithms 2 & 3:
//!    intra-group scratchpad reuse and inter-group full-array reuse over
//!    storage classes, plus pooled allocation/deallocation points (§3.2).
//! 5. **Schedule lowering** ([`schedule`]) — the plan is flattened into an
//!    explicit [`schedule::ExecProgram`] op stream (the analogue of the
//!    paper's generated C, Figure 8) that the runtime VM interprets.
//! 6. **Autotuning** ([`autotune`]) — enumeration of tile-size × group-limit
//!    configurations (§3.2.4).
//!
//! Compiled plans are shared through the fingerprint-keyed [`cache`], so
//! repeated runner construction for one configuration compiles once.
//!
//! The variant matrix of the paper's evaluation (`polymg-naive`,
//! `polymg-opt`, `polymg-opt+`, `polymg-dtile-opt+`) is expressed as
//! [`options::PipelineOptions`] presets.

pub mod autotune;
pub mod cache;
pub mod chaos;
pub mod codegen;
pub mod compile;
pub mod grouping;
pub mod jsonio;
pub mod lowering;
pub mod options;
pub mod plan;
pub mod report;
pub mod scenario;
pub mod schedule;
pub mod specialize;
pub mod storage;

pub use autotune::{SmootherSeq, TuneConfig, TuneError, TunedStore};
pub use cache::{compile_cached, pipeline_fingerprint, PlanCache};
pub use chaos::{ChaosOptions, ChaosStats, FaultPlan, FaultSite};
pub use compile::compile;
pub use options::{PipelineOptions, TilingMode, Variant};
pub use plan::{
    ArraySpec, CompiledPipeline, GroupPlan, GroupTiling, KernelBody, KernelCase, ScratchBufferSpec,
    StageKernel, StoragePlan,
};
pub use scenario::{Scenario, ScenarioError};
pub use schedule::{ExecOp, ExecProgram, OpInput, SlotSpec, StageExec};
pub use specialize::{KernelImpl, KernelSel, KernelTier};
