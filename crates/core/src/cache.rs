//! The plan cache: compiled pipelines keyed by a structural fingerprint of
//! `(Pipeline, ParamBindings, PipelineOptions)`.
//!
//! Compiling a pipeline (lowering + grouping + tiling + storage planning)
//! is pure: the same inputs always produce the same plan. Serving many
//! solves therefore must not recompile per solver construction — the
//! `DslRunner`, the NAS runner, autotuning sweeps and the bench harnesses
//! all funnel through [`compile_cached`], which returns a shared
//! [`Arc<CompiledPipeline>`] from the process-wide [`PlanCache`]. Hit/miss
//! counters are published into trace reports (`plan_cache` section).

use crate::compile::compile;
use crate::options::{PipelineOptions, TilingMode};
use crate::plan::CompiledPipeline;
use gmg_ir::{ParamBindings, Pipeline};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// 64-bit FNV-1a, fed field by field with type tags so adjacent fields
/// cannot alias (e.g. `group_limit=12, band=4` vs `group_limit=1, band=24`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Structural fingerprint of one compilation request. Every
/// [`PipelineOptions`] field participates; parameter bindings are hashed in
/// sorted order (the map's iteration order is not deterministic).
pub fn fingerprint(
    pipeline: &Pipeline,
    bindings: &ParamBindings,
    options: &PipelineOptions,
) -> u64 {
    let mut h = Fnv::new();

    // The pipeline is pure tree data (Vecs only), so its Debug rendering is
    // a stable structural encoding.
    h.tag(0x01);
    h.str(&format!("{pipeline:?}"));

    h.tag(0x02);
    let mut pairs: Vec<(usize, i64)> = bindings.0.iter().map(|(p, v)| (p.0, *v)).collect();
    pairs.sort_unstable();
    h.u64(pairs.len() as u64);
    for (p, v) in pairs {
        h.u64(p as u64);
        h.i64(v);
    }

    h.tag(0x03);
    h.bool(matches!(options.tiling, TilingMode::Overlapped));
    h.tag(0x04);
    h.u64(options.group_limit as u64);
    h.tag(0x05);
    h.f64(options.overlap_threshold);
    h.tag(0x06);
    h.u64(options.tile_sizes.len() as u64);
    for &t in &options.tile_sizes {
        h.i64(t);
    }
    h.tag(0x07);
    h.bool(options.intra_group_reuse);
    h.tag(0x08);
    h.bool(options.inter_group_reuse);
    h.tag(0x09);
    h.bool(options.pooled_allocation);
    h.tag(0x0a);
    h.bool(options.dtile_smoother);
    h.tag(0x0b);
    h.u64(options.dtile_band as u64);
    h.tag(0x0c);
    h.i64(options.scratch_quantum);
    h.tag(0x0d);
    h.bool(options.coeff_factoring);
    h.tag(0x0e);
    h.u64(options.threads as u64);
    h.tag(0x0f);
    h.bool(options.specialize);
    // `options.chaos` is deliberately NOT hashed: faults are a runtime
    // property, and a chaos run must share the cached plan of its
    // fault-free twin (the differential oracle compares the two).
    h.0
}

/// Fingerprint-keyed store of compiled plans with hit/miss counters.
/// Counters are monotonic for the cache's lifetime — observers (tests,
/// trace publishing) should work with deltas.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<HashMap<u64, Arc<CompiledPipeline>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The process-wide cache shared by every runner/harness.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Look up (or compile and insert) the plan for this request.
    /// Compilation errors are returned directly and never cached.
    pub fn get_or_compile(
        &self,
        pipeline: &Pipeline,
        bindings: &ParamBindings,
        options: PipelineOptions,
    ) -> Result<Arc<CompiledPipeline>, Vec<String>> {
        let key = fingerprint(pipeline, bindings, &options);
        if let Some(plan) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // Compile outside the lock: a miss may take milliseconds and other
        // configurations should not serialise behind it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(compile(pipeline, bindings, options)?);
        let mut map = self.map.lock().unwrap();
        // A racing thread may have inserted meanwhile; keep the first plan
        // so every holder shares one allocation.
        Ok(Arc::clone(map.entry(key).or_insert(plan)))
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters keep running).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

/// Compile through the process-wide [`PlanCache`].
pub fn compile_cached(
    pipeline: &Pipeline,
    bindings: &ParamBindings,
    options: PipelineOptions,
) -> Result<Arc<CompiledPipeline>, Vec<String>> {
    PlanCache::global().get_or_compile(pipeline, bindings, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Variant;
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::stencil_2d;
    use proptest::prelude::*;

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    fn tiny_pipeline(name: &str, n: i64) -> Pipeline {
        let mut p = Pipeline::new(name);
        let f = p.input("F", 2, n, 0);
        let d = p.function(
            "defect",
            2,
            n,
            0,
            stencil_2d(Operand::Func(f), &five(), 1.0),
        );
        p.mark_output(d);
        p
    }

    fn base_opts() -> PipelineOptions {
        PipelineOptions::for_variant(Variant::OptPlus, 2)
    }

    #[test]
    fn every_options_field_changes_the_fingerprint() {
        let p = tiny_pipeline("fp", 63);
        let b = ParamBindings::new();
        let base = fingerprint(&p, &b, &base_opts());
        type Mutation = Box<dyn Fn(&mut PipelineOptions)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("tiling", Box::new(|o| o.tiling = TilingMode::None)),
            ("group_limit", Box::new(|o| o.group_limit += 1)),
            (
                "overlap_threshold",
                Box::new(|o| o.overlap_threshold += 0.5),
            ),
            ("tile_sizes", Box::new(|o| o.tile_sizes[0] += 8)),
            (
                "intra_group_reuse",
                Box::new(|o| o.intra_group_reuse = !o.intra_group_reuse),
            ),
            (
                "inter_group_reuse",
                Box::new(|o| o.inter_group_reuse = !o.inter_group_reuse),
            ),
            (
                "pooled_allocation",
                Box::new(|o| o.pooled_allocation = !o.pooled_allocation),
            ),
            (
                "dtile_smoother",
                Box::new(|o| o.dtile_smoother = !o.dtile_smoother),
            ),
            ("dtile_band", Box::new(|o| o.dtile_band += 1)),
            ("scratch_quantum", Box::new(|o| o.scratch_quantum += 1)),
            (
                "coeff_factoring",
                Box::new(|o| o.coeff_factoring = !o.coeff_factoring),
            ),
            ("threads", Box::new(|o| o.threads += 1)),
            ("specialize", Box::new(|o| o.specialize = !o.specialize)),
        ];
        for (field, m) in mutations {
            let mut o = base_opts();
            m(&mut o);
            assert_ne!(
                fingerprint(&p, &b, &o),
                base,
                "mutating `{field}` must change the fingerprint"
            );
        }
    }

    #[test]
    fn chaos_options_do_not_change_the_fingerprint() {
        let p = tiny_pipeline("chaos-fp", 63);
        let b = ParamBindings::new();
        let base = fingerprint(&p, &b, &base_opts());
        let mut o = base_opts();
        o.chaos = Some(crate::chaos::ChaosOptions::new(42, 0.5));
        assert_eq!(
            fingerprint(&p, &b, &o),
            base,
            "chaos is a runtime property and must not split the plan cache"
        );
    }

    #[test]
    fn pipeline_and_bindings_change_the_fingerprint() {
        let b = ParamBindings::new();
        let fp1 = fingerprint(&tiny_pipeline("a", 63), &b, &base_opts());
        let fp2 = fingerprint(&tiny_pipeline("b", 63), &b, &base_opts());
        let fp3 = fingerprint(&tiny_pipeline("a", 127), &b, &base_opts());
        assert_ne!(fp1, fp2);
        assert_ne!(fp1, fp3);

        let mut bound = ParamBindings::new();
        bound.0.insert(gmg_ir::ParamId(0), 7);
        let fp4 = fingerprint(&tiny_pipeline("a", 63), &bound, &base_opts());
        assert_ne!(fp1, fp4);
    }

    #[test]
    fn hits_and_misses_count() {
        let cache = PlanCache::new();
        let p = tiny_pipeline("counted", 63);
        let b = ParamBindings::new();
        let plan1 = cache.get_or_compile(&p, &b, base_opts()).unwrap();
        assert_eq!(cache.counters(), (0, 1));
        let plan2 = cache.get_or_compile(&p, &b, base_opts()).unwrap();
        assert_eq!(cache.counters(), (1, 1));
        assert!(
            Arc::ptr_eq(&plan1, &plan2),
            "a hit shares the compiled plan"
        );

        let mut other = base_opts();
        other.tile_sizes = vec![16, 256];
        let plan3 = cache.get_or_compile(&p, &b, other).unwrap();
        assert_eq!(cache.counters(), (1, 2));
        assert!(!Arc::ptr_eq(&plan1, &plan3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new();
        // radius-2 read with ghost depth 1 -> validation error
        let mut p = Pipeline::new("bad");
        let f = p.input("F", 2, 63, 0);
        let s = p.function("oob", 2, 63, 0, Operand::Func(f).at(&[0, 2]));
        p.mark_output(s);
        let b = ParamBindings::new();
        assert!(cache.get_or_compile(&p, &b, base_opts()).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.counters().0, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random single-field perturbations never collide with the base
        /// fingerprint, and equal option sets always agree.
        #[test]
        fn perturbed_options_never_alias(
            field in 0usize..13,
            delta in 1u32..9,
        ) {
            let p = tiny_pipeline("prop", 63);
            let b = ParamBindings::new();
            let base = base_opts();
            let mut o = base_opts();
            let d = delta as usize;
            match field {
                0 => o.tiling = TilingMode::None,
                1 => o.group_limit += d,
                2 => o.overlap_threshold += delta as f64 * 0.25,
                3 => o.tile_sizes[0] += delta as i64,
                4 => o.intra_group_reuse = !o.intra_group_reuse,
                5 => o.inter_group_reuse = !o.inter_group_reuse,
                6 => o.pooled_allocation = !o.pooled_allocation,
                7 => o.dtile_smoother = !o.dtile_smoother,
                8 => o.dtile_band += d,
                9 => o.scratch_quantum += delta as i64,
                10 => o.coeff_factoring = !o.coeff_factoring,
                11 => o.specialize = !o.specialize,
                _ => o.threads += d,
            }
            prop_assert_ne!(fingerprint(&p, &b, &o), fingerprint(&p, &b, &base));
            prop_assert_eq!(fingerprint(&p, &b, &base), fingerprint(&p, &b, &base_opts()));
        }
    }
}
