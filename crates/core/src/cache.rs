//! The plan cache: compiled pipelines keyed by a structural fingerprint of
//! `(Pipeline, ParamBindings, PipelineOptions)`.
//!
//! Compiling a pipeline (lowering + grouping + tiling + storage planning)
//! is pure: the same inputs always produce the same plan. Serving many
//! solves therefore must not recompile per solver construction — the
//! `DslRunner`, the NAS runner, autotuning sweeps and the bench harnesses
//! all funnel through [`compile_cached`], which returns a shared
//! [`Arc<CompiledPipeline>`] from the process-wide [`PlanCache`]. Hit/miss
//! counters are published into trace reports (`plan_cache` section).

use crate::compile::compile;
use crate::options::{PipelineOptions, TilingMode};
use crate::plan::CompiledPipeline;
use gmg_ir::{ParamBindings, Pipeline};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// 64-bit FNV-1a, fed field by field with type tags so adjacent fields
/// cannot alias (e.g. `group_limit=12, band=4` vs `group_limit=1, band=24`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Structural fingerprint of one compilation request. Every
/// [`PipelineOptions`] field participates; parameter bindings are hashed in
/// sorted order (the map's iteration order is not deterministic).
pub fn fingerprint(
    pipeline: &Pipeline,
    bindings: &ParamBindings,
    options: &PipelineOptions,
) -> u64 {
    let mut h = Fnv::new();

    // The pipeline is pure tree data (Vecs only), so its Debug rendering is
    // a stable structural encoding.
    h.tag(0x01);
    h.str(&format!("{pipeline:?}"));

    h.tag(0x02);
    let mut pairs: Vec<(usize, i64)> = bindings.0.iter().map(|(p, v)| (p.0, *v)).collect();
    pairs.sort_unstable();
    h.u64(pairs.len() as u64);
    for (p, v) in pairs {
        h.u64(p as u64);
        h.i64(v);
    }

    h.tag(0x03);
    h.bool(matches!(options.tiling, TilingMode::Overlapped));
    h.tag(0x04);
    h.u64(options.group_limit as u64);
    h.tag(0x05);
    h.f64(options.overlap_threshold);
    h.tag(0x06);
    h.u64(options.tile_sizes.len() as u64);
    for &t in &options.tile_sizes {
        h.i64(t);
    }
    h.tag(0x07);
    h.bool(options.intra_group_reuse);
    h.tag(0x08);
    h.bool(options.inter_group_reuse);
    h.tag(0x09);
    h.bool(options.pooled_allocation);
    h.tag(0x0a);
    h.bool(options.dtile_smoother);
    h.tag(0x0b);
    h.u64(options.dtile_band as u64);
    h.tag(0x0c);
    h.i64(options.scratch_quantum);
    h.tag(0x0d);
    h.bool(options.coeff_factoring);
    h.tag(0x0e);
    h.u64(options.threads as u64);
    h.tag(0x0f);
    h.bool(options.specialize);
    h.tag(0x10);
    h.bool(options.simd);
    // `fast_math` changes the numerical results a plan produces (the
    // reassociating tier), so unlike `chaos` it MUST split the cache: a
    // fast-math run and its bitwise twin are different plans.
    h.tag(0x11);
    h.bool(options.fast_math);
    // `mixed_precision` swaps smoother chains onto f32 buffers — results
    // differ, so it splits the cache like `fast_math` does.
    h.tag(0x12);
    h.bool(options.mixed_precision);
    // `options.chaos` is deliberately NOT hashed: faults are a runtime
    // property, and a chaos run must share the cached plan of its
    // fault-free twin (the differential oracle compares the two).
    h.0
}

/// Structural fingerprint of the pipeline and bindings alone — no options.
/// This is the key for *tuned-configuration* persistence
/// ([`crate::autotune::TunedStore`]): tile sizes and grouping limits are
/// what the tuner varies, so they must not participate in the key that
/// looks the tuned values up.
pub fn pipeline_fingerprint(pipeline: &Pipeline, bindings: &ParamBindings) -> u64 {
    let mut h = Fnv::new();
    h.tag(0x01);
    h.str(&format!("{pipeline:?}"));
    h.tag(0x02);
    let mut pairs: Vec<(usize, i64)> = bindings.0.iter().map(|(p, v)| (p.0, *v)).collect();
    pairs.sort_unstable();
    h.u64(pairs.len() as u64);
    for (p, v) in pairs {
        h.u64(p as u64);
        h.i64(v);
    }
    h.0
}

/// Default resident-plan bound of [`PlanCache::new`] and the global cache:
/// large enough that a full §3.2.4 autotuning sweep (80/135 configurations)
/// plus the benchmark matrix stays warm, small enough that a long-lived
/// server compiling arbitrary shapes cannot grow without bound.
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// A plan being compiled by one thread while others wait for it (the
/// single-flight slot that prevents cache stampedes).
struct InFlight {
    done: Mutex<Option<Result<Arc<CompiledPipeline>, Vec<String>>>>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<CompiledPipeline>, Vec<String>>) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<CompiledPipeline>, Vec<String>> {
        let mut g = self.done.lock().unwrap();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

enum Entry {
    /// Resident compiled plan with its LRU stamp.
    Ready {
        plan: Arc<CompiledPipeline>,
        last_used: u64,
    },
    /// Compilation in progress on another thread; join it instead of
    /// compiling the same plan twice.
    InFlight(Arc<InFlight>),
}

struct State {
    map: HashMap<u64, Entry>,
    /// Monotonic access clock for LRU stamps.
    tick: u64,
    capacity: usize,
}

impl State {
    /// Resident (`Ready`) plans only — in-flight slots hold no plan yet.
    fn resident(&self) -> usize {
        self.map
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }
}

/// Fingerprint-keyed store of compiled plans with hit/miss/eviction
/// counters. Counters are monotonic for the cache's lifetime — observers
/// (tests, trace publishing) should work with deltas.
///
/// The cache is **bounded**: at most `capacity` plans stay resident, with
/// least-recently-used eviction (a long-lived solve server churning through
/// distinct shapes must not leak plans forever). While a plan is resident,
/// every `get_or_compile` returns the same `Arc`. Concurrent misses on one
/// key are **single-flight**: the first thread compiles, the rest wait and
/// share the result (counted as hits).
pub struct PlanCache {
    state: Mutex<State>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CAPACITY)
    }

    /// A cache bounded to `capacity` resident plans (min 1).
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            state: Mutex::new(State {
                map: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache shared by every runner/harness.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// The resident-plan bound.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().capacity
    }

    /// Change the resident-plan bound (min 1), evicting LRU plans
    /// immediately if the cache is over the new bound.
    pub fn set_capacity(&self, capacity: usize) {
        let mut st = self.state.lock().unwrap();
        st.capacity = capacity.max(1);
        self.evict_over_capacity(&mut st);
    }

    /// Evict least-recently-used `Ready` entries until within capacity.
    fn evict_over_capacity(&self, st: &mut State) {
        while st.resident() > st.capacity {
            let victim = st
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::InFlight(_) => None,
                })
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    st.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Look up (or compile and insert) the plan for this request.
    /// Compilation errors are returned directly and never cached.
    pub fn get_or_compile(
        &self,
        pipeline: &Pipeline,
        bindings: &ParamBindings,
        options: PipelineOptions,
    ) -> Result<Arc<CompiledPipeline>, Vec<String>> {
        let key = fingerprint(pipeline, bindings, &options);
        let flight = {
            let mut st = self.state.lock().unwrap();
            st.tick += 1;
            let tick = st.tick;
            match st.map.get_mut(&key) {
                Some(Entry::Ready { plan, last_used }) => {
                    *last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(plan));
                }
                Some(Entry::InFlight(fl)) => Some(Arc::clone(fl)),
                None => {
                    // We own the compile for this key: park a single-flight
                    // slot so concurrent requests join instead of racing.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let fl = Arc::new(InFlight::new());
                    st.map.insert(key, Entry::InFlight(Arc::clone(&fl)));
                    drop(st);
                    // Compile outside the lock: a miss may take milliseconds
                    // and other configurations should not serialise behind it.
                    let result = compile(pipeline, bindings, options).map(Arc::new);
                    let mut st = self.state.lock().unwrap();
                    // Our slot may have been dropped by a concurrent clear();
                    // only replace it if it is still ours.
                    let still_ours = matches!(
                        st.map.get(&key),
                        Some(Entry::InFlight(cur)) if Arc::ptr_eq(cur, &fl)
                    );
                    if still_ours {
                        st.map.remove(&key);
                    }
                    if let Ok(plan) = &result {
                        st.tick += 1;
                        let last_used = st.tick;
                        st.map.insert(
                            key,
                            Entry::Ready {
                                plan: Arc::clone(plan),
                                last_used,
                            },
                        );
                        self.evict_over_capacity(&mut st);
                    }
                    drop(st);
                    fl.publish(result.clone());
                    return result;
                }
            }
        };
        // Another thread is compiling this exact plan: wait for it and share
        // the result — a hit from this thread's perspective (no compile).
        let flight = flight.expect("in-flight slot");
        let result = flight.wait();
        if result.is_ok() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Plans evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of resident plans (in-flight compilations excluded).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().resident()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters keep running). In-flight
    /// compilations are detached: their waiters still receive the result,
    /// it is just not retained here.
    pub fn clear(&self) {
        self.state.lock().unwrap().map.clear();
    }
}

/// Compile through the process-wide [`PlanCache`].
pub fn compile_cached(
    pipeline: &Pipeline,
    bindings: &ParamBindings,
    options: PipelineOptions,
) -> Result<Arc<CompiledPipeline>, Vec<String>> {
    PlanCache::global().get_or_compile(pipeline, bindings, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Variant;
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::stencil_2d;
    use proptest::prelude::*;

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    fn tiny_pipeline(name: &str, n: i64) -> Pipeline {
        let mut p = Pipeline::new(name);
        let f = p.input("F", 2, n, 0);
        let d = p.function(
            "defect",
            2,
            n,
            0,
            stencil_2d(Operand::Func(f), &five(), 1.0),
        );
        p.mark_output(d);
        p
    }

    fn base_opts() -> PipelineOptions {
        PipelineOptions::for_variant(Variant::OptPlus, 2)
    }

    #[test]
    fn every_options_field_changes_the_fingerprint() {
        let p = tiny_pipeline("fp", 63);
        let b = ParamBindings::new();
        let base = fingerprint(&p, &b, &base_opts());
        type Mutation = Box<dyn Fn(&mut PipelineOptions)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("tiling", Box::new(|o| o.tiling = TilingMode::None)),
            ("group_limit", Box::new(|o| o.group_limit += 1)),
            (
                "overlap_threshold",
                Box::new(|o| o.overlap_threshold += 0.5),
            ),
            ("tile_sizes", Box::new(|o| o.tile_sizes[0] += 8)),
            (
                "intra_group_reuse",
                Box::new(|o| o.intra_group_reuse = !o.intra_group_reuse),
            ),
            (
                "inter_group_reuse",
                Box::new(|o| o.inter_group_reuse = !o.inter_group_reuse),
            ),
            (
                "pooled_allocation",
                Box::new(|o| o.pooled_allocation = !o.pooled_allocation),
            ),
            (
                "dtile_smoother",
                Box::new(|o| o.dtile_smoother = !o.dtile_smoother),
            ),
            ("dtile_band", Box::new(|o| o.dtile_band += 1)),
            ("scratch_quantum", Box::new(|o| o.scratch_quantum += 1)),
            (
                "coeff_factoring",
                Box::new(|o| o.coeff_factoring = !o.coeff_factoring),
            ),
            ("threads", Box::new(|o| o.threads += 1)),
            ("specialize", Box::new(|o| o.specialize = !o.specialize)),
            ("simd", Box::new(|o| o.simd = !o.simd)),
            ("fast_math", Box::new(|o| o.fast_math = !o.fast_math)),
            (
                "mixed_precision",
                Box::new(|o| o.mixed_precision = !o.mixed_precision),
            ),
        ];
        for (field, m) in mutations {
            let mut o = base_opts();
            m(&mut o);
            assert_ne!(
                fingerprint(&p, &b, &o),
                base,
                "mutating `{field}` must change the fingerprint"
            );
        }
    }

    #[test]
    fn chaos_options_do_not_change_the_fingerprint() {
        let p = tiny_pipeline("chaos-fp", 63);
        let b = ParamBindings::new();
        let base = fingerprint(&p, &b, &base_opts());
        let mut o = base_opts();
        o.chaos = Some(crate::chaos::ChaosOptions::new(42, 0.5));
        assert_eq!(
            fingerprint(&p, &b, &o),
            base,
            "chaos is a runtime property and must not split the plan cache"
        );
    }

    #[test]
    fn pipeline_and_bindings_change_the_fingerprint() {
        let b = ParamBindings::new();
        let fp1 = fingerprint(&tiny_pipeline("a", 63), &b, &base_opts());
        let fp2 = fingerprint(&tiny_pipeline("b", 63), &b, &base_opts());
        let fp3 = fingerprint(&tiny_pipeline("a", 127), &b, &base_opts());
        assert_ne!(fp1, fp2);
        assert_ne!(fp1, fp3);

        let mut bound = ParamBindings::new();
        bound.0.insert(gmg_ir::ParamId(0), 7);
        let fp4 = fingerprint(&tiny_pipeline("a", 63), &bound, &base_opts());
        assert_ne!(fp1, fp4);
    }

    #[test]
    fn hits_and_misses_count() {
        let cache = PlanCache::new();
        let p = tiny_pipeline("counted", 63);
        let b = ParamBindings::new();
        let plan1 = cache.get_or_compile(&p, &b, base_opts()).unwrap();
        assert_eq!(cache.counters(), (0, 1));
        let plan2 = cache.get_or_compile(&p, &b, base_opts()).unwrap();
        assert_eq!(cache.counters(), (1, 1));
        assert!(
            Arc::ptr_eq(&plan1, &plan2),
            "a hit shares the compiled plan"
        );

        let mut other = base_opts();
        other.tile_sizes = vec![16, 256];
        let plan3 = cache.get_or_compile(&p, &b, other).unwrap();
        assert_eq!(cache.counters(), (1, 2));
        assert!(!Arc::ptr_eq(&plan1, &plan3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_misses_compile_once() {
        // The cache-stampede property: N threads racing on one uncached
        // pipeline must produce exactly one compile (miss count 1) and all
        // receive pointer-equal Arcs of the same plan.
        let cache = Arc::new(PlanCache::new());
        let p = Arc::new(tiny_pipeline("stampede", 127));
        let n_threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n_threads));
        let plans: Vec<Arc<CompiledPipeline>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let p = Arc::clone(&p);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        cache
                            .get_or_compile(&p, &ParamBindings::new(), base_opts())
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 1, "stampede must compile exactly once");
        assert_eq!(hits, n_threads as u64 - 1, "waiters/hits share the plan");
        for plan in &plans[1..] {
            assert!(
                Arc::ptr_eq(&plans[0], plan),
                "all racers must share one allocation"
            );
        }
    }

    #[test]
    fn lru_eviction_bounds_residency() {
        let cache = PlanCache::with_capacity(2);
        let b = ParamBindings::new();
        let p1 = tiny_pipeline("lru-1", 63);
        let p2 = tiny_pipeline("lru-2", 63);
        let p3 = tiny_pipeline("lru-3", 63);
        let plan1 = cache.get_or_compile(&p1, &b, base_opts()).unwrap();
        let _plan2 = cache.get_or_compile(&p2, &b, base_opts()).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);

        // Touch p1 so p2 becomes the LRU victim when p3 arrives.
        let plan1_again = cache.get_or_compile(&p1, &b, base_opts()).unwrap();
        assert!(Arc::ptr_eq(&plan1, &plan1_again));
        let _plan3 = cache.get_or_compile(&p3, &b, base_opts()).unwrap();
        assert_eq!(cache.len(), 2, "capacity must bound residency");
        assert_eq!(cache.evictions(), 1);

        // p1 survived (recently used): same Arc, a hit.
        let (hits0, _) = cache.counters();
        let plan1_resident = cache.get_or_compile(&p1, &b, base_opts()).unwrap();
        assert!(Arc::ptr_eq(&plan1, &plan1_resident));
        assert_eq!(cache.counters().0, hits0 + 1);

        // p2 was evicted: recompiles (a miss), residency still bounded.
        let (_, misses0) = cache.counters();
        let _ = cache.get_or_compile(&p2, &b, base_opts()).unwrap();
        assert_eq!(cache.counters().1, misses0 + 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn shape_churn_never_exceeds_capacity() {
        let cache = PlanCache::with_capacity(3);
        let b = ParamBindings::new();
        for round in 0..4 {
            for i in 0..6 {
                let p = tiny_pipeline(&format!("churn-{i}"), 63);
                let _ = cache.get_or_compile(&p, &b, base_opts()).unwrap();
                assert!(
                    cache.len() <= 3,
                    "round {round}: resident {} > capacity 3",
                    cache.len()
                );
            }
        }
        assert!(cache.evictions() > 0, "churn past capacity must evict");
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = PlanCache::with_capacity(4);
        let b = ParamBindings::new();
        for i in 0..4 {
            let p = tiny_pipeline(&format!("shrink-{i}"), 63);
            let _ = cache.get_or_compile(&p, &b, base_opts()).unwrap();
        }
        assert_eq!(cache.len(), 4);
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new();
        // radius-2 read with ghost depth 1 -> validation error
        let mut p = Pipeline::new("bad");
        let f = p.input("F", 2, 63, 0);
        let s = p.function("oob", 2, 63, 0, Operand::Func(f).at(&[0, 2]));
        p.mark_output(s);
        let b = ParamBindings::new();
        assert!(cache.get_or_compile(&p, &b, base_opts()).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.counters().0, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random single-field perturbations never collide with the base
        /// fingerprint, and equal option sets always agree.
        #[test]
        fn perturbed_options_never_alias(
            field in 0usize..16,
            delta in 1u32..9,
        ) {
            let p = tiny_pipeline("prop", 63);
            let b = ParamBindings::new();
            let base = base_opts();
            let mut o = base_opts();
            let d = delta as usize;
            match field {
                0 => o.tiling = TilingMode::None,
                1 => o.group_limit += d,
                2 => o.overlap_threshold += delta as f64 * 0.25,
                3 => o.tile_sizes[0] += delta as i64,
                4 => o.intra_group_reuse = !o.intra_group_reuse,
                5 => o.inter_group_reuse = !o.inter_group_reuse,
                6 => o.pooled_allocation = !o.pooled_allocation,
                7 => o.dtile_smoother = !o.dtile_smoother,
                8 => o.dtile_band += d,
                9 => o.scratch_quantum += delta as i64,
                10 => o.coeff_factoring = !o.coeff_factoring,
                11 => o.specialize = !o.specialize,
                12 => o.simd = !o.simd,
                13 => o.fast_math = !o.fast_math,
                14 => o.mixed_precision = !o.mixed_precision,
                _ => o.threads += d,
            }
            prop_assert_ne!(fingerprint(&p, &b, &o), fingerprint(&p, &b, &base));
            prop_assert_eq!(fingerprint(&p, &b, &base), fingerprint(&p, &b, &base_opts()));
        }
    }
}
