//! Problem scenarios — the named operator/cycle families a serving process
//! can be asked to solve.
//!
//! The compiler itself is scenario-agnostic: a scenario only describes
//! *which pipeline shape* the `gmg-multigrid` builders emit (constant- or
//! variable-coefficient operator, which smoother sequence, plain cycles or
//! full multigrid) and whether the mixed-precision smoothing tier is legal
//! for it. The descriptor lives here, below the builders, because the
//! server's wire protocol and the autotuner both need to name scenarios
//! without depending on the benchmark layer.

/// One solvable problem family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Constant-coefficient Poisson, weighted-Jacobi smoothing — the
    /// paper's benchmark problem and the wire default.
    Constant,
    /// Variable-coefficient Poisson `a(x)·(−∇²u) = f`: the stencil taps
    /// are scaled at run time by a coefficient grid shipped as an extra
    /// read-only external input.
    VarCoef,
    /// Full multigrid (nested iteration): coarse-to-fine ladder with DSL
    /// prolongation between levels.
    Fmg,
    /// Red-black Gauss–Seidel smoothing expressed through parity cases.
    Rbgs,
    /// Chebyshev polynomial smoothing chains (per-step coefficients).
    Chebyshev,
}

/// Typed failure of scenario parsing/validation. Servers build scenarios
/// from request bytes and CLI strings, so every bad input must surface as
/// a value, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// A label that names no scenario (CLI / config input).
    UnknownLabel(String),
    /// A wire id that names no scenario (request input).
    UnknownWireId(u8),
    /// Mixed-precision smoothing requested for a scenario whose smoother
    /// chain cannot run on the f32 tier.
    UnsupportedMixed(Scenario),
    /// The scenario requires a coefficient grid but none was supplied.
    MissingCoeff(Scenario),
    /// A coefficient grid was supplied for a scenario that takes none.
    UnexpectedCoeff(Scenario),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownLabel(s) => write!(f, "unknown scenario {s:?}"),
            ScenarioError::UnknownWireId(id) => write!(f, "unknown scenario wire id {id}"),
            ScenarioError::UnsupportedMixed(s) => write!(
                f,
                "scenario '{}' does not support mixed-precision smoothing",
                s.label()
            ),
            ScenarioError::MissingCoeff(s) => {
                write!(f, "scenario '{}' needs a coefficient grid", s.label())
            }
            ScenarioError::UnexpectedCoeff(s) => {
                write!(f, "scenario '{}' takes no coefficient grid", s.label())
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Every scenario, in wire-id order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Constant,
        Scenario::VarCoef,
        Scenario::Fmg,
        Scenario::Rbgs,
        Scenario::Chebyshev,
    ];

    /// Stable display / CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Constant => "constant",
            Scenario::VarCoef => "varcoef",
            Scenario::Fmg => "fmg",
            Scenario::Rbgs => "rbgs",
            Scenario::Chebyshev => "chebyshev",
        }
    }

    /// Parse a CLI/config label.
    pub fn parse(s: &str) -> Result<Scenario, ScenarioError> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.label() == s)
            .ok_or_else(|| ScenarioError::UnknownLabel(s.to_string()))
    }

    /// One-byte wire encoding (the SOLVE-SCENARIO request carries this).
    pub fn wire_id(self) -> u8 {
        match self {
            Scenario::Constant => 0,
            Scenario::VarCoef => 1,
            Scenario::Fmg => 2,
            Scenario::Rbgs => 3,
            Scenario::Chebyshev => 4,
        }
    }

    /// Decode a wire id.
    pub fn from_wire_id(id: u8) -> Result<Scenario, ScenarioError> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.wire_id() == id)
            .ok_or(ScenarioError::UnknownWireId(id))
    }

    /// Does the scenario take a coefficient grid as an extra external
    /// input ("A", same extents as the finest level)?
    pub fn needs_coeff(self) -> bool {
        matches!(self, Scenario::VarCoef)
    }

    /// Is the mixed-precision smoothing tier meaningful here? Only pure
    /// single-case constant-coefficient `TStencil` chains (weighted
    /// Jacobi) lower to the f32 chain op: RB-GS is multi-case by
    /// construction, Chebyshev steps are distinct `Function` stages, and
    /// variable-coefficient taps carry run-time factors the f32 kernels
    /// do not model.
    pub fn supports_mixed_precision(self) -> bool {
        matches!(self, Scenario::Constant | Scenario::Fmg)
    }

    /// Validate a full request shape: mixed-precision flag and presence of
    /// a coefficient grid against what the scenario supports.
    pub fn validate(self, mixed: bool, has_coeff: bool) -> Result<(), ScenarioError> {
        if mixed && !self.supports_mixed_precision() {
            return Err(ScenarioError::UnsupportedMixed(self));
        }
        if self.needs_coeff() && !has_coeff {
            return Err(ScenarioError::MissingCoeff(self));
        }
        if !self.needs_coeff() && has_coeff {
            return Err(ScenarioError::UnexpectedCoeff(self));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_wire_ids_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.label()).unwrap(), sc);
            assert_eq!(Scenario::from_wire_id(sc.wire_id()).unwrap(), sc);
        }
        assert_eq!(
            Scenario::parse("warp"),
            Err(ScenarioError::UnknownLabel("warp".into()))
        );
        assert_eq!(Scenario::from_wire_id(9), Err(ScenarioError::UnknownWireId(9)));
    }

    #[test]
    fn validation_matrix() {
        // only varcoef takes (and requires) a coefficient grid
        assert_eq!(
            Scenario::VarCoef.validate(false, false),
            Err(ScenarioError::MissingCoeff(Scenario::VarCoef))
        );
        assert!(Scenario::VarCoef.validate(false, true).is_ok());
        assert_eq!(
            Scenario::Constant.validate(false, true),
            Err(ScenarioError::UnexpectedCoeff(Scenario::Constant))
        );
        // mixed precision only on Jacobi-chain scenarios
        assert!(Scenario::Constant.validate(true, false).is_ok());
        assert!(Scenario::Fmg.validate(true, false).is_ok());
        for sc in [Scenario::Rbgs, Scenario::Chebyshev] {
            assert_eq!(sc.validate(true, false), Err(ScenarioError::UnsupportedMixed(sc)));
        }
        assert_eq!(
            Scenario::VarCoef.validate(true, true),
            Err(ScenarioError::UnsupportedMixed(Scenario::VarCoef))
        );
        // errors render (servers embed them in error frames)
        assert!(ScenarioError::UnsupportedMixed(Scenario::Rbgs)
            .to_string()
            .contains("rbgs"));
    }
}
