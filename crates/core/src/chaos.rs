//! Deterministic fault injection (`FaultPlan`) for chaos testing.
//!
//! A `FaultPlan` arms injection points threaded through the execution
//! stack: pool/arena allocation failure, worker panics inside the
//! work-stealing pool, per-op error injection in the VM, and drop /
//! short-read faults in the distributed halo exchange. Decisions are a
//! pure function of `(seed, site, per-site sequence number)` via
//! splitmix64, so a given seed replays the same fault schedule on every
//! run — the differential oracle ("recovered run is bitwise-identical to
//! the fault-free run, or a typed error, never a wrong grid") depends on
//! this determinism.
//!
//! Faults are a *runtime* property, not a plan property: `ChaosOptions`
//! rides on [`crate::PipelineOptions`] for convenience but is excluded
//! from the plan-cache fingerprint and normalized away from compiled
//! plans.

use std::sync::atomic::{AtomicU64, Ordering};

/// Site bitmask: pool allocation faults.
pub const SITE_POOL: u8 = 1;
/// Site bitmask: arena allocation faults.
pub const SITE_ARENA: u8 = 2;
/// Site bitmask: worker panics inside parallel regions.
pub const SITE_PANIC: u8 = 4;
/// Site bitmask: per-op error injection at op entry.
pub const SITE_OP: u8 = 8;
/// Site bitmask: halo message drop / short-read faults.
pub const SITE_HALO: u8 = 16;
/// Site bitmask: all sites.
pub const SITE_ALL: u8 = SITE_POOL | SITE_ARENA | SITE_PANIC | SITE_OP | SITE_HALO;

/// User-facing chaos configuration (`--chaos-seed N --chaos-rate R`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability in `[0, 1]` that an armed site fires.
    pub rate: f64,
    /// Bitmask of [`SITE_POOL`]-style flags selecting which sites arm.
    pub sites: u8,
}

impl ChaosOptions {
    /// All sites armed at the given seed and rate.
    pub fn new(seed: u64, rate: f64) -> Self {
        ChaosOptions {
            seed,
            rate,
            sites: SITE_ALL,
        }
    }

    /// Restrict to a site mask.
    pub fn with_sites(mut self, sites: u8) -> Self {
        self.sites = sites;
        self
    }
}

/// An individual injection point in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `BufferPool::allocate` fails; recovery: fresh malloc, counted.
    PoolAlloc,
    /// `ArenaPool::get` fails; recovery: fresh arena, counted.
    ArenaAlloc,
    /// A worker panics mid-item; recovery: region poisoned, surfaced as
    /// `ExecError::WorkerPanicked`, pool stays reusable.
    WorkerPanic,
    /// Error injected at untiled-op entry (no recovery: typed error).
    OpUntiled,
    /// Error injected at overlapped-op entry (no recovery: typed error).
    OpOverlapped,
    /// Error injected at diamond-op entry (no recovery: typed error).
    OpDiamond,
    /// Error injected at mixed-precision-chain-op entry (no recovery:
    /// typed error).
    OpMixed,
    /// A halo message is dropped; recovery: bounded retry with backoff.
    HaloDrop,
    /// A halo message arrives truncated; recovery: resend of the row.
    HaloShort,
}

impl FaultSite {
    /// Number of distinct sites (array sizing).
    pub const COUNT: usize = 9;

    /// Every site, in counter order.
    pub fn all() -> [FaultSite; Self::COUNT] {
        [
            FaultSite::PoolAlloc,
            FaultSite::ArenaAlloc,
            FaultSite::WorkerPanic,
            FaultSite::OpUntiled,
            FaultSite::OpOverlapped,
            FaultSite::OpDiamond,
            FaultSite::OpMixed,
            FaultSite::HaloDrop,
            FaultSite::HaloShort,
        ]
    }

    /// Dense index into the per-site counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSite::PoolAlloc => 0,
            FaultSite::ArenaAlloc => 1,
            FaultSite::WorkerPanic => 2,
            FaultSite::OpUntiled => 3,
            FaultSite::OpOverlapped => 4,
            FaultSite::OpDiamond => 5,
            FaultSite::OpMixed => 6,
            FaultSite::HaloDrop => 7,
            FaultSite::HaloShort => 8,
        }
    }

    /// Stable label used in trace events and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::PoolAlloc => "pool_alloc",
            FaultSite::ArenaAlloc => "arena_alloc",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::OpUntiled => "op_untiled",
            FaultSite::OpOverlapped => "op_overlapped",
            FaultSite::OpDiamond => "op_diamond",
            FaultSite::OpMixed => "op_mixed",
            FaultSite::HaloDrop => "halo_drop",
            FaultSite::HaloShort => "halo_short",
        }
    }

    /// Which [`ChaosOptions::sites`] bit gates this site.
    pub fn mask(self) -> u8 {
        match self {
            FaultSite::PoolAlloc => SITE_POOL,
            FaultSite::ArenaAlloc => SITE_ARENA,
            FaultSite::WorkerPanic => SITE_PANIC,
            FaultSite::OpUntiled
            | FaultSite::OpOverlapped
            | FaultSite::OpDiamond
            | FaultSite::OpMixed => SITE_OP,
            FaultSite::HaloDrop | FaultSite::HaloShort => SITE_HALO,
        }
    }

    /// Per-site salt so sites draw independent splitmix64 streams.
    fn salt(self) -> u64 {
        // arbitrary odd constants; only distinctness matters
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.index() as u64 + 1) | 1
    }
}

/// splitmix64: tiny, statistically solid, and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counter snapshot of a [`FaultPlan`], indexed by [`FaultSite::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Times each site was consulted.
    pub armed: [u64; FaultSite::COUNT],
    /// Times each site fired a fault.
    pub fired: [u64; FaultSite::COUNT],
    /// Times a fired fault was recovered from (fresh malloc, retry, …).
    pub recovered: [u64; FaultSite::COUNT],
}

impl ChaosStats {
    /// Total consults across all sites.
    pub fn total_armed(&self) -> u64 {
        self.armed.iter().sum()
    }

    /// Total fired faults across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Total recovered faults across all sites.
    pub fn total_recovered(&self) -> u64 {
        self.recovered.iter().sum()
    }

    /// Element-wise `self - earlier` (for delta ingestion into a trace).
    pub fn delta_since(&self, earlier: &ChaosStats) -> ChaosStats {
        let mut d = ChaosStats::default();
        for i in 0..FaultSite::COUNT {
            d.armed[i] = self.armed[i] - earlier.armed[i];
            d.fired[i] = self.fired[i] - earlier.fired[i];
            d.recovered[i] = self.recovered[i] - earlier.recovered[i];
        }
        d
    }
}

/// A seeded, deterministic fault schedule shared by every layer of the
/// stack (engine, pool, arena, workers, halo exchange).
///
/// Thread-safe: `should_fire` may be called concurrently from worker
/// threads. The decision for the k-th consult of a site is a pure
/// function of `(seed, site, k)`; concurrency can permute which *caller*
/// observes which k, but the multiset of decisions per site is fixed,
/// and on the serial sites (op entry, pool ops, halo) the mapping is
/// exactly reproducible.
#[derive(Debug, Default)]
pub struct FaultPlan {
    enabled: bool,
    opts: ChaosOptions,
    seq: [AtomicU64; FaultSite::COUNT],
    armed: [AtomicU64; FaultSite::COUNT],
    fired: [AtomicU64; FaultSite::COUNT],
    recovered: [AtomicU64; FaultSite::COUNT],
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0,
            rate: 0.0,
            sites: 0,
        }
    }
}

impl FaultPlan {
    /// A plan that never fires; `should_fire` short-circuits without
    /// touching any counter.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// Arm a plan from user options.
    pub fn new(opts: ChaosOptions) -> Self {
        FaultPlan {
            enabled: opts.rate > 0.0 && opts.sites != 0,
            opts,
            ..FaultPlan::default()
        }
    }

    /// Whether any site can fire at all (fast path guard).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The options this plan was armed with.
    pub fn options(&self) -> ChaosOptions {
        self.opts
    }

    /// Consult the schedule: should the next event at `site` fault?
    ///
    /// Counts an armed consult, draws the site's next deterministic
    /// uniform in `[0, 1)`, and fires iff it falls below the configured
    /// rate.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        if !self.enabled || self.opts.sites & site.mask() == 0 {
            return false;
        }
        let i = site.index();
        self.armed[i].fetch_add(1, Ordering::Relaxed);
        let k = self.seq[i].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(splitmix64(self.opts.seed ^ site.salt()).wrapping_add(k));
        // 53 high bits → uniform double in [0, 1)
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let fire = u < self.opts.rate;
        if fire {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Record that a fired fault at `site` was recovered from.
    pub fn record_recovered(&self, site: FaultSite) {
        self.recovered[site.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> ChaosStats {
        let mut s = ChaosStats::default();
        for i in 0..FaultSite::COUNT {
            s.armed[i] = self.armed[i].load(Ordering::Relaxed);
            s.fired[i] = self.fired[i].load(Ordering::Relaxed);
            s.recovered[i] = self.recovered[i].load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires_or_counts() {
        let p = FaultPlan::disabled();
        for site in FaultSite::all() {
            assert!(!p.should_fire(site));
        }
        assert_eq!(p.snapshot(), ChaosStats::default());
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let hot = FaultPlan::new(ChaosOptions::new(42, 1.0));
        let cold = FaultPlan::new(ChaosOptions::new(42, 0.0));
        for site in FaultSite::all() {
            for _ in 0..10 {
                assert!(hot.should_fire(site));
                assert!(!cold.should_fire(site));
            }
        }
        let s = hot.snapshot();
        let expect = 10 * FaultSite::COUNT as u64;
        assert_eq!(s.total_armed(), expect);
        assert_eq!(s.total_fired(), expect);
        // rate-0 plans are disabled entirely: nothing armed
        assert_eq!(cold.snapshot().total_armed(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::new(ChaosOptions::new(seed, 0.5));
            (0..64)
                .map(|_| p.should_fire(FaultSite::PoolAlloc))
                .collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds should differ");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let p = FaultPlan::new(ChaosOptions::new(11, 0.5));
        let a: Vec<bool> = (0..64)
            .map(|_| p.should_fire(FaultSite::PoolAlloc))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| p.should_fire(FaultSite::HaloDrop))
            .collect();
        assert_ne!(a, b, "sites must not share one stream");
    }

    #[test]
    fn site_mask_gates_without_counting() {
        let p = FaultPlan::new(ChaosOptions::new(3, 1.0).with_sites(SITE_POOL));
        assert!(p.should_fire(FaultSite::PoolAlloc));
        assert!(!p.should_fire(FaultSite::WorkerPanic));
        assert!(!p.should_fire(FaultSite::HaloDrop));
        let s = p.snapshot();
        assert_eq!(s.total_armed(), 1, "masked sites must not count as armed");
        assert_eq!(s.fired[FaultSite::PoolAlloc.index()], 1);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let p = FaultPlan::new(ChaosOptions::new(1234, 0.25));
        let fired = (0..4000)
            .filter(|_| p.should_fire(FaultSite::OpUntiled))
            .count();
        assert!(
            (800..1200).contains(&fired),
            "expected ~1000 of 4000 at rate 0.25, got {fired}"
        );
    }

    #[test]
    fn recovered_counter_and_delta() {
        let p = FaultPlan::new(ChaosOptions::new(5, 1.0));
        let before = p.snapshot();
        assert!(p.should_fire(FaultSite::ArenaAlloc));
        p.record_recovered(FaultSite::ArenaAlloc);
        let d = p.snapshot().delta_since(&before);
        assert_eq!(d.fired[FaultSite::ArenaAlloc.index()], 1);
        assert_eq!(d.recovered[FaultSite::ArenaAlloc.index()], 1);
        assert_eq!(d.total_armed(), 1);
    }
}
