//! Compilation options and the paper's variant presets.

use crate::chaos::ChaosOptions;

/// How multi-stage groups are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TilingMode {
    /// No tiling: every stage sweeps its full domain (still parallel over
    /// the outermost dimension) — `polymg-naive`.
    None,
    /// Overlapped (hyper-trapezoidal) tiling with scratchpads — the PolyMage
    /// strategy (§3.1).
    Overlapped,
}

/// The evaluated configurations of Section 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Straightforward parallel code generation: no fusion, no tiling, no
    /// storage optimization.
    Naive,
    /// Stock-PolyMage optimizations: grouping + overlapped tiling +
    /// scratchpads, one buffer per function, no pooled allocation.
    Opt,
    /// `Opt` plus the paper's contributions: intra-group scratchpad reuse,
    /// inter-group full-array reuse, pooled allocation.
    OptPlus,
    /// `OptPlus` with diamond/split time tiling applied to the
    /// pre-/post-smoothing `TStencil` chains instead of overlapped tiling.
    DtileOptPlus,
}

impl Variant {
    /// Display name matching the paper's plots.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Naive => "polymg-naive",
            Variant::Opt => "polymg-opt",
            Variant::OptPlus => "polymg-opt+",
            Variant::DtileOptPlus => "polymg-dtile-opt+",
        }
    }

    /// All variants in the order the paper plots them.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Naive,
            Variant::Opt,
            Variant::OptPlus,
            Variant::DtileOptPlus,
        ]
    }
}

/// Full knob set for one compilation.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Execution strategy for fused groups.
    pub tiling: TilingMode,
    /// Upper bound on the number of stages merged into one group (the
    /// "grouping limit" swept by the auto-tuner, §3.2.4).
    pub group_limit: usize,
    /// Maximum tolerated redundant-work ratio for a merged group
    /// (tiled points / base points) at the configured tile sizes.
    pub overlap_threshold: f64,
    /// Tile sizes, outermost dimension first. Interpreted for the pipeline's
    /// rank (first 2 entries for 2-D, first 3 for 3-D).
    pub tile_sizes: Vec<i64>,
    /// Intra-group scratchpad reuse (§3.2.1).
    pub intra_group_reuse: bool,
    /// Inter-group full-array reuse (§3.2.2).
    pub inter_group_reuse: bool,
    /// Pooled memory allocation across cycle invocations (§3.2.3).
    pub pooled_allocation: bool,
    /// Apply diamond/split time tiling to pure `TStencil` smoother chains.
    pub dtile_smoother: bool,
    /// Time-band height for diamond/split tiling.
    pub dtile_band: usize,
    /// Scratchpad size-class threshold: extents are bucketed to multiples of
    /// this quantum when forming storage classes (the paper's "±constant
    /// threshold").
    pub scratch_quantum: i64,
    /// Coefficient factoring: sort lowered taps by coefficient so the
    /// runtime can sum equal-weight taps before multiplying — the automatic
    /// form of NPB MG's hand-written partial-sum loop bodies. Changes
    /// floating-point association (results differ at round-off level).
    pub coeff_factoring: bool,
    /// Worker threads for the runtime.
    pub threads: usize,
    /// Emit specialized unrolled kernels for recognised constant-coefficient
    /// stencil shapes (see `specialize::classify`). Specialized kernels are
    /// bitwise-identical to the generic path; this knob exists for A/B
    /// benchmarking (`--no-specialize`).
    pub specialize: bool,
    /// Lower specialized kernels to the explicit f64-lane (SIMD) tier with
    /// cache blocking of the unit-stride dimension. The default lane-safe
    /// tier preserves the generic accumulation order per output point, so
    /// it stays bitwise-identical to the generic path; this knob exists for
    /// A/B benchmarking (`--no-simd`). Ignored when `specialize` is off.
    pub simd: bool,
    /// Select the reassociating lane tier: per-point tap chains are split
    /// into independent partial sums (and fused where the host supports
    /// FMA). Results differ from the generic path at round-off level, so
    /// this is opt-in (`--fast-math`), part of the plan-cache fingerprint,
    /// and verified by a ULP-bounded differential suite rather than
    /// bitwise equality. Implies nothing unless `specialize` and `simd`
    /// are on.
    pub fast_math: bool,
    /// Run pure smoother chains in single precision: the chain's state is
    /// converted f64→f32 once, the smoothing sweeps execute on f32 buffers
    /// (halving their memory traffic), and the result converts back before
    /// the f64 residual/correction stages. Opt-in (`--mixed-precision`),
    /// part of the plan-cache fingerprint, and validated by convergence
    /// tests rather than bitwise equality.
    pub mixed_precision: bool,
    /// Deterministic fault injection for chaos testing. A *runtime*
    /// property, not a plan property: excluded from the plan-cache
    /// fingerprint and normalized to `None` in compiled plans — runners
    /// arm the engine's `FaultPlan` from this field at construction.
    pub chaos: Option<ChaosOptions>,
}

impl PipelineOptions {
    /// Preset for a paper variant with default tile sizes for `ndims`.
    pub fn for_variant(v: Variant, ndims: usize) -> Self {
        let base = PipelineOptions {
            tiling: TilingMode::Overlapped,
            group_limit: 6,
            overlap_threshold: 2.0,
            tile_sizes: default_tiles(ndims),
            intra_group_reuse: false,
            inter_group_reuse: false,
            pooled_allocation: false,
            dtile_smoother: false,
            dtile_band: 4,
            scratch_quantum: 8,
            coeff_factoring: true,
            threads: 0, // 0 = runtime default
            specialize: true,
            simd: true,
            fast_math: false,
            mixed_precision: false,
            chaos: None,
        };
        match v {
            Variant::Naive => PipelineOptions {
                tiling: TilingMode::None,
                group_limit: 1,
                ..base
            },
            Variant::Opt => base,
            Variant::OptPlus => PipelineOptions {
                intra_group_reuse: true,
                inter_group_reuse: true,
                pooled_allocation: true,
                ..base
            },
            Variant::DtileOptPlus => PipelineOptions {
                intra_group_reuse: true,
                inter_group_reuse: true,
                pooled_allocation: true,
                dtile_smoother: true,
                ..base
            },
        }
    }

    /// Compact human-readable rendering of the knob set, used in runner
    /// labels and trace metadata (e.g. `tiled32x512,g6,intra,inter,pool`).
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(match self.tiling {
            TilingMode::None => "untiled".to_string(),
            TilingMode::Overlapped => format!(
                "tiled{}",
                self.tile_sizes
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            ),
        });
        parts.push(format!("g{}", self.group_limit));
        if self.intra_group_reuse {
            parts.push("intra".to_string());
        }
        if self.inter_group_reuse {
            parts.push("inter".to_string());
        }
        if self.pooled_allocation {
            parts.push("pool".to_string());
        }
        if self.dtile_smoother {
            parts.push(format!("dtile{}", self.dtile_band));
        }
        if !self.coeff_factoring {
            parts.push("nocf".to_string());
        }
        if self.threads > 0 {
            parts.push(format!("th{}", self.threads));
        }
        if !self.specialize {
            parts.push("nospec".to_string());
        }
        if !self.simd {
            parts.push("nosimd".to_string());
        }
        if self.fast_math {
            parts.push("fm".to_string());
        }
        if self.mixed_precision {
            parts.push("mp".to_string());
        }
        parts.join(",")
    }

    /// The effective tile sizes for a rank (panics if too few are set).
    pub fn tiles_for_rank(&self, ndims: usize) -> Vec<i64> {
        assert!(
            self.tile_sizes.len() >= ndims,
            "options carry {} tile sizes but the pipeline is {ndims}-D",
            self.tile_sizes.len()
        );
        self.tile_sizes[..ndims].to_vec()
    }
}

/// Paper §3.2.4 default-ish tile sizes: outer dimensions small, innermost
/// large (2-D: 32×512; 3-D: 16×16×128).
pub fn default_tiles(ndims: usize) -> Vec<i64> {
    match ndims {
        2 => vec![32, 512],
        3 => vec![16, 16, 128],
        _ => panic!("unsupported rank {ndims}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_matrix() {
        let naive = PipelineOptions::for_variant(Variant::Naive, 2);
        assert_eq!(naive.tiling, TilingMode::None);
        assert!(!naive.intra_group_reuse && !naive.pooled_allocation);

        let opt = PipelineOptions::for_variant(Variant::Opt, 2);
        assert_eq!(opt.tiling, TilingMode::Overlapped);
        assert!(!opt.intra_group_reuse && !opt.inter_group_reuse);

        let optp = PipelineOptions::for_variant(Variant::OptPlus, 3);
        assert!(optp.intra_group_reuse && optp.inter_group_reuse && optp.pooled_allocation);
        assert!(!optp.dtile_smoother);

        let dt = PipelineOptions::for_variant(Variant::DtileOptPlus, 3);
        assert!(dt.dtile_smoother && dt.pooled_allocation);
    }

    #[test]
    fn tiles_for_rank() {
        let o = PipelineOptions::for_variant(Variant::Opt, 3);
        assert_eq!(o.tiles_for_rank(3).len(), 3);
        assert_eq!(o.tiles_for_rank(2).len(), 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::Naive.label(), "polymg-naive");
        assert_eq!(Variant::all().len(), 4);
    }

    #[test]
    #[should_panic(expected = "unsupported rank")]
    fn bad_rank_tiles() {
        let _ = default_tiles(4);
    }
}
